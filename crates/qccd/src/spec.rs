//! QCCD trap-array geometry.

use crate::error::QccdError;

/// A linear array of `n_traps` traps, each holding at most `capacity`
/// ions, connected by shuttling segments between neighbours.
///
/// The TILT paper's comparison (§VI-B) uses linear-topology QCCD
/// configurations with 15–35 ions per trap, following Murali et al.\[64\].
///
/// # Example
///
/// ```
/// use tilt_qccd::QccdSpec;
///
/// let spec = QccdSpec::for_qubits(64, 17)?;
/// assert_eq!(spec.n_traps(), 4);
/// assert!(spec.capacity() >= 18); // transport headroom
/// # Ok::<(), tilt_qccd::QccdError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QccdSpec {
    n_traps: usize,
    capacity: usize,
}

/// Minimum spare slots per trap so ions can transit without deadlock.
const HEADROOM: usize = 2;

impl QccdSpec {
    /// Creates an array of `n_traps` traps with `capacity` ion slots each.
    ///
    /// # Errors
    ///
    /// Rejects arrays without at least one trap or without room for two
    /// ions plus transport headroom per trap.
    pub fn new(n_traps: usize, capacity: usize) -> Result<Self, QccdError> {
        if n_traps == 0 {
            return Err(QccdError::InvalidSpec {
                reason: "need at least one trap".into(),
            });
        }
        if capacity < 2 + HEADROOM {
            return Err(QccdError::InvalidSpec {
                reason: format!("capacity {capacity} leaves no room for gates plus transport"),
            });
        }
        Ok(QccdSpec { n_traps, capacity })
    }

    /// Sizes an array for `n_qubits` total with roughly `ions_per_trap`
    /// resident ions per trap (the 15–35 sweep parameter of \[64\]),
    /// reserving transport headroom on top.
    ///
    /// # Errors
    ///
    /// Propagates [`QccdSpec::new`] validation.
    pub fn for_qubits(n_qubits: usize, ions_per_trap: usize) -> Result<Self, QccdError> {
        if ions_per_trap == 0 {
            return Err(QccdError::InvalidSpec {
                reason: "ions_per_trap must be positive".into(),
            });
        }
        let n_traps = n_qubits.div_ceil(ions_per_trap).max(1);
        QccdSpec::new(n_traps, ions_per_trap + HEADROOM)
    }

    /// Number of traps in the array.
    pub fn n_traps(&self) -> usize {
        self.n_traps
    }

    /// Maximum ions a trap can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total qubits the array can host while leaving transport headroom.
    pub fn usable_slots(&self) -> usize {
        self.n_traps * (self.capacity - HEADROOM)
    }

    /// Number of shuttling segments between traps `a` and `b`.
    pub fn segments_between(&self, a: usize, b: usize) -> usize {
        a.abs_diff(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_qubits_sizes_array() {
        let s = QccdSpec::for_qubits(64, 16).unwrap();
        assert_eq!(s.n_traps(), 4);
        assert_eq!(s.capacity(), 18);
        assert_eq!(s.usable_slots(), 64);
    }

    #[test]
    fn for_qubits_rounds_up() {
        let s = QccdSpec::for_qubits(64, 30).unwrap();
        assert_eq!(s.n_traps(), 3);
    }

    #[test]
    fn rejects_degenerate_arrays() {
        assert!(QccdSpec::new(0, 10).is_err());
        assert!(QccdSpec::new(2, 3).is_err());
        assert!(QccdSpec::for_qubits(10, 0).is_err());
    }

    #[test]
    fn segments_are_hop_counts() {
        let s = QccdSpec::new(5, 10).unwrap();
        assert_eq!(s.segments_between(0, 4), 4);
        assert_eq!(s.segments_between(3, 3), 0);
        assert_eq!(s.segments_between(4, 1), 3);
    }
}
