//! QCCD success-rate and timing estimation.
//!
//! Replays a compiled primitive trace, tracking per-trap motional quanta.
//! Two-qubit gates use the same Eq. 3 gate-time and Eq. 4 fidelity models
//! as the TILT simulator — the architectures differ only in *where heat
//! comes from* (split/merge/shuttle vs whole-chain tape moves) and in the
//! sympathetic cooling QCCD devices perform between primitives.

use crate::params::QccdParams;
use crate::program::{QccdOp, QccdProgram};
use tilt_sim::{GateTimeModel, NoiseModel};

/// Outcome of a QCCD estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QccdReport {
    /// Natural log of the success probability.
    pub ln_success: f64,
    /// Success probability.
    pub success: f64,
    /// Two-qubit gates simulated.
    pub two_qubit_gates: usize,
    /// Single-qubit gates simulated.
    pub single_qubit_gates: usize,
    /// Measurements simulated.
    pub measurements: usize,
    /// Ion transports (split/shuttle/merge sequences).
    pub transports: usize,
    /// Individual shuttle segments traversed.
    pub shuttle_segments: usize,
    /// Sympathetic cooling rounds triggered.
    pub cooling_rounds: usize,
    /// Serial execution-time estimate in µs.
    pub exec_time_us: f64,
    /// Hottest any chain got, in quanta.
    pub peak_quanta: f64,
}

impl QccdReport {
    /// Base-10 log of the success probability.
    pub fn log10_success(&self) -> f64 {
        self.ln_success / std::f64::consts::LN_10
    }
}

/// Estimates the success rate of a compiled QCCD program.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
/// use tilt_sim::{GateTimeModel, NoiseModel};
///
/// let mut c = Circuit::new(8);
/// c.cnot(Qubit(0), Qubit(7));
/// let spec = QccdSpec::new(2, 6)?;
/// let program = compile_qccd(&c, &spec)?;
/// let r = estimate_qccd_success(
///     &program,
///     &NoiseModel::default(),
///     &GateTimeModel::default(),
///     &QccdParams::default(),
/// );
/// assert!(r.success > 0.0 && r.success < 1.0);
/// # Ok::<(), tilt_qccd::QccdError>(())
/// ```
pub fn estimate_qccd_success(
    program: &QccdProgram,
    noise: &NoiseModel,
    times: &GateTimeModel,
    params: &QccdParams,
) -> QccdReport {
    let n_traps = program.spec().n_traps();
    let mut quanta = vec![0.0f64; n_traps];
    let mut in_flight = 0.0f64;
    let mut ln_success = 0.0f64;
    let mut exec_time_us = 0.0f64;
    let mut peak_quanta = 0.0f64;
    let (mut two_q, mut one_q, mut meas) = (0usize, 0usize, 0usize);
    let (mut transports, mut segments, mut cooling_rounds) = (0usize, 0usize, 0usize);

    // Chain-length scaling of heating, as for TILT tape moves (§IV-E).
    let scale = |len: usize| (len as f64 / noise.n_ref).sqrt();

    for op in program.ops() {
        match *op {
            QccdOp::EdgeMove {
                trap,
                sites,
                chain_len,
            } => {
                quanta[trap] += params.edge_move_quanta_per_site * sites as f64 * scale(chain_len);
                exec_time_us += params.edge_move_us_per_site * sites as f64;
            }
            QccdOp::Split {
                trap,
                chain_len_before,
            } => {
                transports += 1;
                quanta[trap] += params.split_quanta * scale(chain_len_before);
                exec_time_us += params.split_us;
            }
            QccdOp::ShuttleSegment { .. } => {
                segments += 1;
                in_flight += params.shuttle_quanta_per_segment;
                exec_time_us += params.shuttle_segment_us;
            }
            QccdOp::Merge {
                trap,
                chain_len_after,
            } => {
                quanta[trap] += params.merge_quanta * scale(chain_len_after) + in_flight;
                in_flight = 0.0;
                exec_time_us += params.merge_us;
            }
            QccdOp::TwoQubitGate { trap, distance } => {
                two_q += 1;
                let f = noise.two_qubit_fidelity(times.two_qubit_us(distance), quanta[trap]);
                ln_success += f.ln();
                exec_time_us += times.two_qubit_us(distance);
            }
            QccdOp::SingleQubitGate { .. } => {
                one_q += 1;
                ln_success += noise.single_qubit_fidelity().ln();
                exec_time_us += times.single_qubit_us;
            }
            QccdOp::Measure { .. } => {
                meas += 1;
                ln_success += noise.measurement_fidelity().ln();
                exec_time_us += times.measure_us;
            }
        }
        // Sympathetic cooling: any chain past the threshold is re-cooled.
        for q in &mut quanta {
            if *q > peak_quanta {
                peak_quanta = *q;
            }
            if *q > params.cooling_threshold_quanta {
                *q = 0.0;
                cooling_rounds += 1;
                exec_time_us += params.cooling_us;
            }
        }
    }

    QccdReport {
        ln_success,
        success: ln_success.exp(),
        two_qubit_gates: two_q,
        single_qubit_gates: one_q,
        measurements: meas,
        transports,
        shuttle_segments: segments,
        cooling_rounds,
        exec_time_us,
        peak_quanta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_qccd;
    use crate::spec::QccdSpec;
    use tilt_circuit::{Circuit, Qubit};

    fn estimate(c: &Circuit, spec: &QccdSpec) -> QccdReport {
        let p = compile_qccd(c, spec).unwrap();
        estimate_qccd_success(
            &p,
            &NoiseModel::default(),
            &GateTimeModel::default(),
            &QccdParams::default(),
        )
    }

    #[test]
    fn local_gates_match_cold_chain_fidelity() {
        let spec = QccdSpec::new(1, 10).unwrap();
        let mut c = Circuit::new(8);
        c.cnot(Qubit(0), Qubit(1));
        let r = estimate(&c, &spec);
        let noise = NoiseModel::default();
        let expected = noise.two_qubit_fidelity(GateTimeModel::default().two_qubit_us(1), 0.0);
        assert!((r.success - expected).abs() < 1e-12);
        assert_eq!(r.transports, 0);
    }

    #[test]
    fn transports_heat_the_chain() {
        let spec = QccdSpec::new(2, 8).unwrap();
        let mut local = Circuit::new(12);
        local.cnot(Qubit(0), Qubit(1));
        let mut cross = Circuit::new(12);
        cross.cnot(Qubit(0), Qubit(11));
        let rl = estimate(&local, &spec);
        let rc = estimate(&cross, &spec);
        assert!(rc.success < rl.success);
        assert_eq!(rc.transports, 1);
        assert!(rc.peak_quanta > 0.0);
    }

    #[test]
    fn cooling_bounds_heat() {
        let spec = QccdSpec::new(2, 10).unwrap();
        let mut c = Circuit::new(14);
        // Qubit 0 ping-pongs between a partner in each trap, forcing a
        // transport per gate and piling up heat.
        for _ in 0..10 {
            c.cnot(Qubit(0), Qubit(13));
            c.cnot(Qubit(0), Qubit(5));
        }
        let p = compile_qccd(&c, &spec).unwrap();
        let cooled = estimate_qccd_success(
            &p,
            &NoiseModel::default(),
            &GateTimeModel::default(),
            &QccdParams::default(),
        );
        let uncooled = estimate_qccd_success(
            &p,
            &NoiseModel::default(),
            &GateTimeModel::default(),
            &QccdParams::default().without_cooling(),
        );
        assert!(cooled.cooling_rounds > 0);
        assert_eq!(uncooled.cooling_rounds, 0);
        assert!(cooled.success > uncooled.success);
        assert!(uncooled.peak_quanta > cooled.peak_quanta);
    }

    #[test]
    fn report_counters_match_program() {
        let spec = QccdSpec::for_qubits(64, 16).unwrap();
        let mut c = Circuit::new(64);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(63));
        c.measure(Qubit(63));
        let p = compile_qccd(&c, &spec).unwrap();
        let r = estimate_qccd_success(
            &p,
            &NoiseModel::default(),
            &GateTimeModel::default(),
            &QccdParams::default(),
        );
        assert_eq!(r.two_qubit_gates, p.two_qubit_gate_count());
        assert_eq!(r.transports, p.transport_count());
        assert_eq!(r.shuttle_segments, p.shuttle_segment_count());
        assert_eq!(r.single_qubit_gates, 1);
        assert_eq!(r.measurements, 1);
    }

    #[test]
    fn exec_time_is_positive_and_grows_with_work() {
        let spec = QccdSpec::new(2, 8).unwrap();
        let mut small = Circuit::new(12);
        small.cnot(Qubit(0), Qubit(1));
        let mut big = Circuit::new(12);
        for _ in 0..5 {
            big.cnot(Qubit(0), Qubit(11));
            big.cnot(Qubit(5), Qubit(6));
        }
        assert!(estimate(&big, &spec).exec_time_us > estimate(&small, &spec).exec_time_us);
    }
}
