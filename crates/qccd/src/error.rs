//! QCCD error types.

use std::error::Error;
use std::fmt;

/// Why building or compiling for a QCCD device failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QccdError {
    /// The trap array cannot hold the requested qubits (or has degenerate
    /// geometry).
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
    /// The circuit needs more qubits than the array can hold with
    /// transport headroom.
    CircuitTooWide {
        /// Circuit register width.
        circuit_qubits: usize,
        /// Usable qubit slots.
        usable_slots: usize,
    },
}

impl fmt::Display for QccdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QccdError::InvalidSpec { reason } => write!(f, "invalid QCCD spec: {reason}"),
            QccdError::CircuitTooWide {
                circuit_qubits,
                usable_slots,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but the trap array holds {usable_slots} with headroom"
            ),
        }
    }
}

impl Error for QccdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = QccdError::CircuitTooWide {
            circuit_qubits: 64,
            usable_slots: 60,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("60"));
    }
}
