//! QCCD: the quantum charge-coupled device comparator architecture
//! (Kielpinski et al., Nature 417; modelled after Murali et al.,
//! arXiv:2004.04706 — reference \[64\] of the TILT paper).
//!
//! A QCCD machine is a linear array of small traps connected by shuttling
//! segments. Within a trap, ions are fully connected; to interact ions in
//! *different* traps the device must move an ion to the chain edge,
//! **split** it off, **shuttle** it across one or more segments, and
//! **merge** it into the destination chain — each primitive depositing
//! motional quanta (Honeywell reports ≈2 quanta per shuttling operation
//! including split/merge, §IV-E of the TILT paper). Honeywell-style
//! devices keep chains cold with sympathetic cooling rounds, which this
//! model includes as a quanta threshold.
//!
//! This crate reproduces the *cost structure* Fig. 8 of the TILT paper
//! compares against: cheap short-range parallelism, expensive cross-trap
//! communication. [`compile_qccd`] routes a circuit onto the trap array
//! and [`estimate_qccd_success`] walks the primitive trace under the same
//! Eq. 3/Eq. 4 models used for TILT.
//!
//! # Example
//!
//! ```
//! use tilt_benchmarks::qaoa::qaoa_maxcut;
//! use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
//! use tilt_sim::{GateTimeModel, NoiseModel};
//!
//! let circuit = qaoa_maxcut(32, 4, 1);
//! let spec = QccdSpec::for_qubits(32, 17)?;
//! let program = compile_qccd(&circuit, &spec)?;
//! let report = estimate_qccd_success(
//!     &program,
//!     &NoiseModel::default(),
//!     &GateTimeModel::default(),
//!     &QccdParams::default(),
//! );
//! assert!(report.success > 0.0);
//! assert!(report.transports > 0);
//! # Ok::<(), tilt_qccd::QccdError>(())
//! ```

pub mod error;
pub mod fingerprint;
pub mod params;
pub mod program;
pub mod router;
pub mod sim;
pub mod spec;
pub mod verify;

pub use error::QccdError;
pub use params::QccdParams;
pub use program::{QccdOp, QccdProgram};
pub use router::compile_qccd;
pub use sim::{estimate_qccd_success, QccdReport};
pub use spec::QccdSpec;
