//! [`Fingerprint`] implementations for the QCCD configuration surface.
//!
//! `compile_qccd` + `estimate_qccd_success` are deterministic in the
//! trap-array geometry and the primitive cost parameters (plus the
//! shared noise/gate-time models fingerprinted in `tilt-sim`), so these
//! two types complete the QCCD backend's compile-cache key.

use crate::params::QccdParams;
use crate::spec::QccdSpec;
use tilt_hash::{Fingerprint, Hasher};

impl Fingerprint for QccdSpec {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_usize(self.n_traps()).write_usize(self.capacity());
    }
}

impl Fingerprint for QccdParams {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_f64(self.split_quanta)
            .write_f64(self.merge_quanta)
            .write_f64(self.shuttle_quanta_per_segment)
            .write_f64(self.edge_move_quanta_per_site)
            .write_f64(self.cooling_threshold_quanta)
            .write_f64(self.split_us)
            .write_f64(self.merge_us)
            .write_f64(self.shuttle_segment_us)
            .write_f64(self.edge_move_us_per_site)
            .write_f64(self.cooling_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_and_params_are_content_addressed() {
        let spec = QccdSpec::for_qubits(64, 17).unwrap();
        assert_eq!(
            spec.fingerprint(),
            QccdSpec::for_qubits(64, 17).unwrap().fingerprint()
        );
        assert_ne!(
            spec.fingerprint(),
            QccdSpec::for_qubits(64, 15).unwrap().fingerprint()
        );

        let base = QccdParams::default().fingerprint();
        assert_ne!(base, QccdParams::default().without_cooling().fingerprint());
        let slower = QccdParams {
            shuttle_segment_us: 120.0,
            ..QccdParams::default()
        };
        assert_ne!(base, slower.fingerprint());
    }
}
