//! Greedy QCCD placement and routing.
//!
//! Logical qubits are placed contiguously across the trap array. For a
//! cross-trap gate the router moves one endpoint to the partner's trap
//! (Fig. 3a of the TILT paper: swap to chain edge → split → shuttle →
//! merge → interact) and leaves it there — moved data tends to be reused
//! where it lands. When a destination chain is full, the router first
//! evicts an edge ion onward (capacity headroom guarantees this settles).

use crate::error::QccdError;
use crate::program::{QccdOp, QccdProgram};
use crate::spec::QccdSpec;
use tilt_circuit::{Circuit, Gate};

/// Mutable trap-array state during routing.
struct TrapArray {
    spec: QccdSpec,
    /// Chain contents per trap, in physical order (logical qubit ids).
    chains: Vec<Vec<usize>>,
    /// logical qubit → (trap, index in chain).
    loc: Vec<(usize, usize)>,
    ops: Vec<QccdOp>,
}

impl TrapArray {
    fn new(spec: QccdSpec, n_qubits: usize) -> Self {
        let traps = spec.n_traps();
        let base = n_qubits / traps;
        let extra = n_qubits % traps;
        let mut chains = Vec::with_capacity(traps);
        let mut loc = vec![(0usize, 0usize); n_qubits];
        let mut next = 0usize;
        for t in 0..traps {
            let fill = base + usize::from(t < extra);
            let chain: Vec<usize> = (next..next + fill).collect();
            for (i, &q) in chain.iter().enumerate() {
                loc[q] = (t, i);
            }
            next += fill;
            chains.push(chain);
        }
        TrapArray {
            spec,
            chains,
            loc,
            ops: Vec::new(),
        }
    }

    fn reindex(&mut self, trap: usize) {
        for (i, &q) in self.chains[trap].iter().enumerate() {
            self.loc[q] = (trap, i);
        }
    }

    /// Moves `q` to the edge of its chain facing direction `dir`
    /// (+1 = right edge, -1 = left edge), logging the intra-trap
    /// transport.
    fn move_to_edge(&mut self, q: usize, dir: isize) {
        let (trap, idx) = self.loc[q];
        let len = self.chains[trap].len();
        let edge = if dir > 0 { len - 1 } else { 0 };
        let sites = edge.abs_diff(idx);
        if sites > 0 {
            self.ops.push(QccdOp::EdgeMove {
                trap,
                sites,
                chain_len: len,
            });
            let ion = self.chains[trap].remove(idx);
            if dir > 0 {
                self.chains[trap].push(ion);
            } else {
                self.chains[trap].insert(0, ion);
            }
            self.reindex(trap);
        }
    }

    /// Transports `q` from its current trap to `target` trap, splitting
    /// once, shuttling across every segment, and merging at the entry
    /// edge. Evicts an ion from `target` first if it is full.
    fn transport(&mut self, q: usize, target: usize, depth: usize) {
        assert!(
            depth <= 2 * self.spec.n_traps(),
            "trap array gridlocked; capacity headroom violated"
        );
        let (source, _) = self.loc[q];
        debug_assert_ne!(source, target);
        let dir: isize = if target > source { 1 } else { -1 };

        if self.chains[target].len() >= self.spec.capacity() {
            self.make_room(target, dir, depth + 1);
        }

        self.move_to_edge(q, dir);
        let len_before = self.chains[source].len();
        self.ops.push(QccdOp::Split {
            trap: source,
            chain_len_before: len_before,
        });
        let edge = if dir > 0 { len_before - 1 } else { 0 };
        let ion = self.chains[source].remove(edge);
        debug_assert_eq!(ion, q);
        self.reindex(source);

        let mut t = source;
        while t != target {
            let next = (t as isize + dir) as usize;
            self.ops.push(QccdOp::ShuttleSegment { from: t, to: next });
            t = next;
        }

        // Arriving with direction `dir`, the ion enters at the near edge.
        if dir > 0 {
            self.chains[target].insert(0, q);
        } else {
            self.chains[target].push(q);
        }
        self.reindex(target);
        self.ops.push(QccdOp::Merge {
            trap: target,
            chain_len_after: self.chains[target].len(),
        });
    }

    /// Frees one slot in `trap` by transporting its far-edge ion one trap
    /// onward, away from the incoming direction when possible.
    fn make_room(&mut self, trap: usize, incoming_dir: isize, depth: usize) {
        // Preferred eviction direction: keep moving with the flow.
        let onward = trap as isize + incoming_dir;
        let evict_to = if onward >= 0 && (onward as usize) < self.spec.n_traps() {
            onward as usize
        } else {
            // Array end: push back against the flow (the upstream trap
            // just lost the incoming ion's slot or has headroom).
            (trap as isize - incoming_dir) as usize
        };
        let dir: isize = if evict_to > trap { 1 } else { -1 };
        let edge = if dir > 0 {
            self.chains[trap].len() - 1
        } else {
            0
        };
        let victim = self.chains[trap][edge];
        // Recursion bounded by `depth` guard in `transport`.
        self.transport(victim, evict_to, depth);
    }
}

/// Routes `circuit` onto the QCCD array described by `spec`, producing the
/// primitive trace.
///
/// The circuit should be at two-qubit granularity (CNOT level or native);
/// three-qubit gates are rejected by validation in practice — decompose
/// first.
///
/// # Errors
///
/// Returns [`QccdError::CircuitTooWide`] when the circuit does not fit on
/// the array with transport headroom.
///
/// # Panics
///
/// Panics on gates of arity 3 (decompose Toffolis first).
pub fn compile_qccd(circuit: &Circuit, spec: &QccdSpec) -> Result<QccdProgram, QccdError> {
    if circuit.n_qubits() > spec.usable_slots() {
        return Err(QccdError::CircuitTooWide {
            circuit_qubits: circuit.n_qubits(),
            usable_slots: spec.usable_slots(),
        });
    }

    let mut array = TrapArray::new(*spec, circuit.n_qubits());
    for g in circuit {
        match g {
            Gate::Barrier => {}
            Gate::Measure(q) | Gate::Reset(q) => {
                let (trap, _) = array.loc[q.index()];
                array.ops.push(QccdOp::Measure { trap });
            }
            g if g.is_two_qubit() => {
                let qs = g.qubits();
                let (a, b) = (qs[0].index(), qs[1].index());
                let (ta, _) = array.loc[a];
                let (tb, _) = array.loc[b];
                if ta != tb {
                    // Move the endpoint from the more crowded trap, which
                    // balances occupancy; ties move `a`.
                    let (mover, target) = if array.chains[ta].len() >= array.chains[tb].len() {
                        (a, tb)
                    } else {
                        (b, ta)
                    };
                    array.transport(mover, target, 0);
                }
                let (trap, ia) = array.loc[a];
                let (_, ib) = array.loc[b];
                array.ops.push(QccdOp::TwoQubitGate {
                    trap,
                    distance: ia.abs_diff(ib),
                });
            }
            g if g.arity() == 1 => {
                let (trap, _) = array.loc[g.qubits()[0].index()];
                array.ops.push(QccdOp::SingleQubitGate { trap });
            }
            other => panic!("QCCD router requires two-qubit granularity, got {other:?}"),
        }
    }
    Ok(QccdProgram::new(*spec, array.ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;

    #[test]
    fn same_trap_gate_needs_no_transport() {
        let spec = QccdSpec::new(2, 10).unwrap();
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(5)); // both in trap 0
        let p = compile_qccd(&c, &spec).unwrap();
        assert_eq!(p.transport_count(), 0);
        assert_eq!(p.two_qubit_gate_count(), 1);
    }

    #[test]
    fn cross_trap_gate_transports_once() {
        let spec = QccdSpec::new(2, 10).unwrap();
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(12)); // trap 0 and trap 1
        let p = compile_qccd(&c, &spec).unwrap();
        assert_eq!(p.transport_count(), 1);
        assert_eq!(p.shuttle_segment_count(), 1);
    }

    #[test]
    fn distant_traps_cost_multiple_segments() {
        let spec = QccdSpec::for_qubits(64, 16).unwrap(); // 4 traps
        let mut c = Circuit::new(64);
        c.cnot(Qubit(0), Qubit(63)); // trap 0 ↔ trap 3
        let p = compile_qccd(&c, &spec).unwrap();
        assert_eq!(p.transport_count(), 1);
        assert_eq!(p.shuttle_segment_count(), 3);
    }

    #[test]
    fn moved_qubit_stays_for_reuse() {
        let spec = QccdSpec::new(2, 10).unwrap();
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(12));
        c.cnot(Qubit(0), Qubit(12)); // second gate: already co-located
        let p = compile_qccd(&c, &spec).unwrap();
        assert_eq!(p.transport_count(), 1);
        assert_eq!(p.two_qubit_gate_count(), 2);
    }

    #[test]
    fn interior_ion_edge_moves_before_split() {
        let spec = QccdSpec::new(2, 10).unwrap();
        let mut c = Circuit::new(16);
        // Chains are [0..8) and [8..16) with equal sizes, so the mover is
        // the first operand: qubit 12, interior at index 4 of trap 1.
        // Moving left to trap 0 needs an EdgeMove of 4 sites (index 4 → 0).
        c.cnot(Qubit(12), Qubit(4));
        let p = compile_qccd(&c, &spec).unwrap();
        let edge_moves: Vec<_> = p
            .ops()
            .iter()
            .filter(|op| matches!(op, QccdOp::EdgeMove { .. }))
            .collect();
        assert_eq!(edge_moves.len(), 1);
        match edge_moves[0] {
            QccdOp::EdgeMove { trap, sites, .. } => {
                assert_eq!(*trap, 1);
                assert_eq!(*sites, 4);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn full_trap_evicts_before_merge() {
        // Drive transports directly: fill trap 1 to capacity, then force
        // one more arrival — make_room must evict an edge ion first.
        let spec = QccdSpec::new(2, 5).unwrap();
        let mut array = TrapArray::new(spec, 8); // chains 4/4
        array.transport(0, 1, 0); // trap 1 now holds 5 (full)
        assert_eq!(array.chains[1].len(), 5);
        array.transport(1, 1, 0); // needs an eviction
        let splits = array
            .ops
            .iter()
            .filter(|op| matches!(op, QccdOp::Split { .. }))
            .count();
        assert_eq!(splits, 3, "two requested transports plus one eviction");
        for chain in &array.chains {
            assert!(chain.len() <= spec.capacity());
        }
        // Location table stays consistent through evictions.
        for q in 0..8 {
            let (t, i) = array.loc[q];
            assert_eq!(array.chains[t][i], q);
        }
    }

    #[test]
    fn rejects_circuit_beyond_usable_slots() {
        let spec = QccdSpec::new(2, 6).unwrap(); // usable 8
        let c = Circuit::new(9);
        assert!(matches!(
            compile_qccd(&c, &spec),
            Err(QccdError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn balanced_initial_placement() {
        let spec = QccdSpec::for_qubits(10, 4).unwrap(); // 3 traps
        let array = TrapArray::new(spec, 10);
        let lens: Vec<usize> = array.chains.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        // Location table is consistent.
        for q in 0..10 {
            let (t, i) = array.loc[q];
            assert_eq!(array.chains[t][i], q);
        }
    }

    #[test]
    fn nearest_neighbour_workload_keeps_transports_low() {
        // A QAOA-like chain sweep: only boundary pairs transport.
        let spec = QccdSpec::for_qubits(32, 16).unwrap(); // 2 traps
        let mut c = Circuit::new(32);
        for i in 0..31 {
            c.zz(Qubit(i), Qubit(i + 1), 0.3);
        }
        let p = compile_qccd(&c, &spec).unwrap();
        assert!(
            p.transport_count() <= 4,
            "expected few transports, got {}",
            p.transport_count()
        );
    }
}
