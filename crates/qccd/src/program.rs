//! The QCCD primitive trace.
//!
//! [`compile_qccd`](crate::compile_qccd) lowers a circuit into a linear
//! trace of device primitives. Each op records the chain sizes it acted
//! on, so the noise estimator can replay heating without re-simulating
//! placement.

use crate::spec::QccdSpec;

/// One QCCD machine primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QccdOp {
    /// Reposition an ion `sites` slots along its chain so it reaches the
    /// chain edge before a split (intra-trap transport).
    EdgeMove {
        /// Trap where the move happens.
        trap: usize,
        /// Number of chain slots traversed.
        sites: usize,
        /// Chain length at the time of the move.
        chain_len: usize,
    },
    /// Split one ion off the chain edge of `trap`.
    Split {
        /// Source trap.
        trap: usize,
        /// Chain length *before* the split.
        chain_len_before: usize,
    },
    /// Shuttle the split ion across one inter-trap segment.
    ShuttleSegment {
        /// Segment source trap.
        from: usize,
        /// Segment destination trap.
        to: usize,
    },
    /// Merge the travelling ion into the chain edge of `trap`.
    Merge {
        /// Destination trap.
        trap: usize,
        /// Chain length *after* the merge.
        chain_len_after: usize,
    },
    /// Two-qubit gate inside `trap` between ions `distance` slots apart.
    TwoQubitGate {
        /// Executing trap.
        trap: usize,
        /// Intra-chain operand distance in slots.
        distance: usize,
    },
    /// Single-qubit gate inside `trap`.
    SingleQubitGate {
        /// Executing trap.
        trap: usize,
    },
    /// Measurement inside `trap`.
    Measure {
        /// Executing trap.
        trap: usize,
    },
}

/// A compiled QCCD program: the primitive trace plus the device geometry.
#[derive(Clone, Debug, PartialEq)]
pub struct QccdProgram {
    spec: QccdSpec,
    ops: Vec<QccdOp>,
}

impl QccdProgram {
    /// Wraps a primitive trace for `spec`.
    pub fn new(spec: QccdSpec, ops: Vec<QccdOp>) -> Self {
        QccdProgram { spec, ops }
    }

    /// The device geometry.
    pub fn spec(&self) -> &QccdSpec {
        &self.spec
    }

    /// The primitive trace in execution order.
    pub fn ops(&self) -> &[QccdOp] {
        &self.ops
    }

    /// Number of ion transports (split → shuttle → merge sequences).
    pub fn transport_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, QccdOp::Split { .. }))
            .count()
    }

    /// Number of individual shuttle segments traversed.
    pub fn shuttle_segment_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, QccdOp::ShuttleSegment { .. }))
            .count()
    }

    /// Number of two-qubit gates executed.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, QccdOp::TwoQubitGate { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let spec = QccdSpec::new(2, 6).unwrap();
        let p = QccdProgram::new(
            spec,
            vec![
                QccdOp::Split {
                    trap: 0,
                    chain_len_before: 3,
                },
                QccdOp::ShuttleSegment { from: 0, to: 1 },
                QccdOp::Merge {
                    trap: 1,
                    chain_len_after: 4,
                },
                QccdOp::TwoQubitGate {
                    trap: 1,
                    distance: 1,
                },
            ],
        );
        assert_eq!(p.transport_count(), 1);
        assert_eq!(p.shuttle_segment_count(), 1);
        assert_eq!(p.two_qubit_gate_count(), 1);
    }
}
