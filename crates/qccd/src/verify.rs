//! Static verification of QCCD primitive traces.
//!
//! The QCCD rule pack of the program-invariant verifier (see
//! `tilt_compiler::verify` for the rule engine and diagnostic format).
//! The estimator replays the recorded chain lengths to model heating,
//! so a trace whose lengths exceed the trap capacity — or whose
//! shuttles jump between non-adjacent traps — would be silently
//! mis-scored rather than rejected.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `qccd/trap-index` | every primitive references traps inside the array |
//! | `qccd/trap-capacity` | recorded chain lengths never exceed the trap capacity; intra-trap moves and gate distances fit inside their chain |
//! | `qccd/shuttle-route` | every transport is a well-formed split → adjacent-segment shuttle → merge sequence, and nothing else executes mid-flight |

use crate::program::{QccdOp, QccdProgram};
use tilt_compiler::verify::Diagnostic;

/// Runs the QCCD rule pack over one compiled trace.
pub fn verify_qccd(program: &QccdProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let spec = program.spec();
    let n_traps = spec.n_traps();
    let capacity = spec.capacity();

    // In-flight ion position for the shuttle state machine; `None`
    // between transports.
    let mut in_flight: Option<usize> = None;
    for (i, op) in program.ops().iter().enumerate() {
        let check_trap = |t: usize, what: &str, diags: &mut Vec<Diagnostic>| {
            if t >= n_traps {
                diags.push(Diagnostic::error(
                    "qccd/trap-index",
                    i,
                    format!("{what} references trap {t}, outside the {n_traps}-trap array"),
                ));
            }
        };
        match *op {
            QccdOp::EdgeMove {
                trap,
                sites,
                chain_len,
            } => {
                check_trap(trap, "edge move", &mut diags);
                if chain_len > capacity {
                    diags.push(Diagnostic::error(
                        "qccd/trap-capacity",
                        i,
                        format!(
                            "edge move records a {chain_len}-ion chain in trap {trap}, over \
                             the {capacity}-ion capacity"
                        ),
                    ));
                } else if sites >= chain_len {
                    diags.push(Diagnostic::error(
                        "qccd/trap-capacity",
                        i,
                        format!("edge move of {sites} sites cannot fit a {chain_len}-ion chain"),
                    ));
                }
            }
            QccdOp::Split {
                trap,
                chain_len_before,
            } => {
                check_trap(trap, "split", &mut diags);
                if chain_len_before == 0 || chain_len_before > capacity {
                    diags.push(Diagnostic::error(
                        "qccd/trap-capacity",
                        i,
                        format!(
                            "split records a {chain_len_before}-ion chain in trap {trap}, \
                             outside 1..={capacity}"
                        ),
                    ));
                }
                if in_flight.is_some() {
                    diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        "split issued while another ion is already in transit".into(),
                    ));
                }
                in_flight = Some(trap);
            }
            QccdOp::ShuttleSegment { from, to } => {
                check_trap(from, "shuttle segment", &mut diags);
                check_trap(to, "shuttle segment", &mut diags);
                if from.abs_diff(to) != 1 {
                    diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        format!("shuttle segment {from}→{to} skips over non-adjacent traps"),
                    ));
                }
                match in_flight {
                    Some(at) if at == from => {}
                    Some(at) => diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        format!("shuttle segment departs trap {from} but the ion is at trap {at}"),
                    )),
                    None => diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        "shuttle segment with no split ion in transit".into(),
                    )),
                }
                // Resync to the segment's destination so one corruption
                // yields one finding, not a cascade.
                in_flight = Some(to);
            }
            QccdOp::Merge {
                trap,
                chain_len_after,
            } => {
                check_trap(trap, "merge", &mut diags);
                if chain_len_after == 0 || chain_len_after > capacity {
                    diags.push(Diagnostic::error(
                        "qccd/trap-capacity",
                        i,
                        format!(
                            "merge grows trap {trap} to {chain_len_after} ions, outside \
                             1..={capacity}"
                        ),
                    ));
                }
                match in_flight.take() {
                    Some(at) if at == trap => {}
                    Some(at) => diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        format!("merge into trap {trap} but the ion is at trap {at}"),
                    )),
                    None => diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        "merge with no split ion in transit".into(),
                    )),
                }
            }
            QccdOp::TwoQubitGate { trap, distance } => {
                check_trap(trap, "two-qubit gate", &mut diags);
                if distance == 0 || distance >= capacity {
                    diags.push(Diagnostic::error(
                        "qccd/trap-capacity",
                        i,
                        format!(
                            "two-qubit gate at distance {distance} cannot fit a \
                             {capacity}-ion trap"
                        ),
                    ));
                }
                if in_flight.is_some() {
                    diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        "two-qubit gate executed while an ion is in transit".into(),
                    ));
                }
            }
            QccdOp::SingleQubitGate { trap } | QccdOp::Measure { trap } => {
                check_trap(trap, "gate", &mut diags);
                if in_flight.is_some() {
                    diags.push(Diagnostic::error(
                        "qccd/shuttle-route",
                        i,
                        "gate executed while an ion is in transit".into(),
                    ));
                }
            }
        }
    }
    if in_flight.is_some() {
        diags.push(Diagnostic::error(
            "qccd/shuttle-route",
            program.ops().len(),
            "trace ends with an ion split off and never merged".into(),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::compile_qccd;
    use crate::spec::QccdSpec;
    use tilt_circuit::{Circuit, Qubit};

    fn traced() -> QccdProgram {
        let spec = QccdSpec::for_qubits(32, 9).unwrap();
        let mut c = Circuit::new(32);
        for i in 0..31 {
            c.cnot(Qubit(i), Qubit(i + 1));
        }
        c.cnot(Qubit(0), Qubit(31));
        compile_qccd(&c, &spec).unwrap()
    }

    #[test]
    fn clean_trace_verifies_clean() {
        assert_eq!(verify_qccd(&traced()), Vec::new());
    }

    #[test]
    fn out_of_array_trap_is_diagnosed() {
        let p = traced();
        let spec = *p.spec();
        let mut ops = p.ops().to_vec();
        let idx = ops
            .iter()
            .position(|op| matches!(op, QccdOp::TwoQubitGate { .. }))
            .unwrap();
        ops[idx] = QccdOp::TwoQubitGate {
            trap: spec.n_traps(),
            distance: 1,
        };
        let diags = verify_qccd(&QccdProgram::new(spec, ops));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "qccd/trap-index" && d.op_index == idx),
            "{diags:?}"
        );
    }

    #[test]
    fn overfull_merge_is_diagnosed() {
        let p = traced();
        let spec = *p.spec();
        let mut ops = p.ops().to_vec();
        let idx = ops
            .iter()
            .position(|op| matches!(op, QccdOp::Merge { .. }))
            .expect("wrap-around CNOT forces a transport");
        if let QccdOp::Merge {
            chain_len_after, ..
        } = &mut ops[idx]
        {
            *chain_len_after = spec.capacity() + 1;
        }
        let diags = verify_qccd(&QccdProgram::new(spec, ops));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "qccd/trap-capacity" && d.op_index == idx),
            "{diags:?}"
        );
    }

    #[test]
    fn teleporting_shuttle_is_diagnosed() {
        let p = traced();
        let spec = *p.spec();
        let mut ops = p.ops().to_vec();
        let idx = ops
            .iter()
            .position(|op| matches!(op, QccdOp::ShuttleSegment { .. }))
            .unwrap();
        if let QccdOp::ShuttleSegment { from, to } = ops[idx] {
            ops[idx] = QccdOp::ShuttleSegment {
                from,
                to: if to + 2 < spec.n_traps() { to + 2 } else { 0 },
            };
        }
        let diags = verify_qccd(&QccdProgram::new(spec, ops));
        assert!(
            diags.iter().any(|d| d.rule == "qccd/shuttle-route"),
            "{diags:?}"
        );
    }

    #[test]
    fn dangling_split_is_diagnosed() {
        let spec = QccdSpec::new(2, 6).unwrap();
        let ops = vec![QccdOp::Split {
            trap: 0,
            chain_len_before: 3,
        }];
        let diags = verify_qccd(&QccdProgram::new(spec, ops));
        assert!(
            diags.iter().any(|d| d.message.contains("never merged")),
            "{diags:?}"
        );
    }
}
