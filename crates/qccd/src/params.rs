//! QCCD-specific cost parameters.

/// Heating and timing costs of the QCCD primitives.
///
/// Quanta values follow §IV-E of the TILT paper: Honeywell reports an
/// *average of 2 quanta per shuttling operation including split/merge and
/// swap*, with split/merge the dominant contributors — so split and merge
/// each deposit ~1 quantum (scaled by `√(chain/8)` like all chain heating)
/// and a plain shuttle segment deposits far less. Honeywell-style QCCD
/// devices hold chains near the motional ground state with sympathetic
/// cooling between operations; [`QccdParams::cooling_threshold_quanta`]
/// models that as a reset once a chain passes the threshold.
///
/// Primitive durations follow the scale of Murali et al.\[64\]
/// (split/merge ≈ 80 µs, segment shuttle ≈ 100 µs, cooling ≈ 400 µs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QccdParams {
    /// Quanta deposited in the source chain per split (before √n scaling).
    pub split_quanta: f64,
    /// Quanta deposited in the destination chain per merge (before √n
    /// scaling).
    pub merge_quanta: f64,
    /// Quanta picked up by the travelling ion per shuttle segment.
    pub shuttle_quanta_per_segment: f64,
    /// Quanta per chain slot traversed when repositioning an ion to the
    /// chain edge.
    pub edge_move_quanta_per_site: f64,
    /// Sympathetic-cooling trigger: a chain hotter than this is re-cooled
    /// to the ground state after the current primitive.
    pub cooling_threshold_quanta: f64,
    /// Split duration in µs.
    pub split_us: f64,
    /// Merge duration in µs.
    pub merge_us: f64,
    /// Per-segment shuttle duration in µs.
    pub shuttle_segment_us: f64,
    /// Per-site edge-move duration in µs.
    pub edge_move_us_per_site: f64,
    /// Cooling-round duration in µs.
    pub cooling_us: f64,
}

impl Default for QccdParams {
    fn default() -> Self {
        QccdParams {
            split_quanta: 1.0,
            merge_quanta: 1.0,
            shuttle_quanta_per_segment: 0.1,
            edge_move_quanta_per_site: 0.02,
            cooling_threshold_quanta: 16.0,
            split_us: 80.0,
            merge_us: 80.0,
            shuttle_segment_us: 100.0,
            edge_move_us_per_site: 5.0,
            cooling_us: 400.0,
        }
    }
}

impl QccdParams {
    /// Disables sympathetic cooling (ablation: heat accumulates for the
    /// whole program, as on TILT).
    pub fn without_cooling(mut self) -> Self {
        self.cooling_threshold_quanta = f64::INFINITY;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_honeywell_budget() {
        let p = QccdParams::default();
        // Split + merge ≈ the 2-quanta average reported for Honeywell.
        assert!((p.split_quanta + p.merge_quanta - 2.0).abs() < 1e-12);
        // Linear shuttling is much cheaper than split/merge (§IV-E).
        assert!(p.shuttle_quanta_per_segment < p.split_quanta / 2.0);
    }

    #[test]
    fn without_cooling_disables_threshold() {
        let p = QccdParams::default().without_cooling();
        assert!(p.cooling_threshold_quanta.is_infinite());
    }
}
