//! Monte Carlo cross-validation of the analytic success estimator.
//!
//! The §IV-E model multiplies per-gate fidelities into one number. This
//! module samples the same model stochastically — each gate fails as an
//! independent Bernoulli trial with its Eq. 4 probability — and reports
//! the empirical success fraction with a confidence radius. Agreement
//! between the two (see tests) validates the independence assumption is
//! implemented consistently; the sampler also gives shot-by-shot
//! distributions for harnesses that want error bars.
//!
//! Shots are *batched*: the per-gate Eq. 4 probabilities are computed
//! once per program and collapsed (in log space) into the single
//! probability that a whole shot survives, so each shot is one uniform
//! draw instead of one per gate. Because the per-gate failures are
//! independent Bernoulli trials, `P(all succeed) = Π pᵢ` exactly — the
//! batched sampler draws from the *identical* distribution as the
//! per-gate loop, at `O(shots)` instead of `O(shots · gates)`.

use crate::gate_time::GateTimeModel;
use crate::noise::NoiseModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::Gate;
use tilt_compiler::{TiltOp, TiltProgram};

/// Result of a Monte Carlo estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloReport {
    /// Shots simulated.
    pub shots: usize,
    /// Shots in which every gate succeeded.
    pub successes: usize,
    /// Empirical success fraction.
    pub success_rate: f64,
    /// One standard error of the estimate (`√(p(1-p)/shots)`).
    pub std_error: f64,
}

/// Samples `shots` executions of `program`; each gate fails
/// independently with its Eq. 4 error probability, collapsed into one
/// Bernoulli draw per shot (see the module docs).
///
/// # Panics
///
/// Panics if `shots == 0`.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::{Compiler, DeviceSpec};
/// use tilt_sim::monte_carlo::sample_success;
/// use tilt_sim::{GateTimeModel, NoiseModel};
///
/// let mut c = Circuit::new(8);
/// c.cnot(Qubit(0), Qubit(7));
/// let out = Compiler::new(DeviceSpec::new(8, 4)?).compile(&c)?;
/// let mc = sample_success(&out.program, &NoiseModel::default(),
///                         &GateTimeModel::default(), 2000, 7);
/// assert!(mc.success_rate > 0.9); // a short program rarely fails
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn sample_success(
    program: &TiltProgram,
    noise: &NoiseModel,
    times: &GateTimeModel,
    shots: usize,
    seed: u64,
) -> MonteCarloReport {
    assert!(shots > 0, "need at least one shot");
    // Fold the independent per-gate trials straight into one
    // shot-survival probability (log space guards against underflow on
    // long programs); each shot then reduces to a single Bernoulli draw
    // against `p_shot = Π fᵢ`.
    let k = noise.k_for_chain(program.spec().n_ions());
    let mut quanta = 0.0f64;
    let mut log_p = 0.0f64;
    for op in program.ops() {
        match op {
            TiltOp::Move { .. } => quanta += k,
            TiltOp::Gate { gate, .. } => {
                let f = match gate {
                    Gate::Measure(_) | Gate::Reset(_) => noise.measurement_fidelity(),
                    Gate::Barrier => 1.0,
                    g if g.is_two_qubit() => noise.two_qubit_fidelity(times.gate_us(g), quanta),
                    _ => noise.single_qubit_fidelity(),
                };
                if f < 1.0 {
                    log_p += f.ln();
                }
            }
        }
    }
    let p_shot = log_p.exp();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut successes = 0usize;
    for _ in 0..shots {
        if rng.gen::<f64>() < p_shot {
            successes += 1;
        }
    }
    let p = successes as f64 / shots as f64;
    MonteCarloReport {
        shots,
        successes,
        success_rate: p,
        std_error: (p * (1.0 - p) / shots as f64).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_success;
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::{Compiler, DeviceSpec};

    fn program() -> TiltProgram {
        let mut c = Circuit::new(16);
        for i in 0..8 {
            c.cnot(Qubit(i), Qubit(15 - i));
        }
        Compiler::new(DeviceSpec::new(16, 8).unwrap())
            .compile(&c)
            .unwrap()
            .program
    }

    #[test]
    fn agrees_with_analytic_estimator() {
        let p = program();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let analytic = estimate_success(&p, &noise, &times);
        let mc = sample_success(&p, &noise, &times, 40_000, 3);
        let tolerance = 5.0 * mc.std_error.max(1e-4);
        assert!(
            (mc.success_rate - analytic.success).abs() < tolerance,
            "MC {} vs analytic {} (tol {tolerance})",
            mc.success_rate,
            analytic.success
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = program();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let a = sample_success(&p, &noise, &times, 1000, 11);
        let b = sample_success(&p, &noise, &times, 1000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_model_always_succeeds() {
        let p = program();
        let noise = NoiseModel {
            gamma_per_us: 0.0,
            epsilon: 0.0,
            single_qubit_error: 0.0,
            measurement_error: 0.0,
            k_base: 0.0,
            n_ref: 8.0,
        };
        let mc = sample_success(&p, &noise, &GateTimeModel::default(), 500, 1);
        assert_eq!(mc.successes, 500);
        assert_eq!(mc.std_error, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_panics() {
        sample_success(
            &program(),
            &NoiseModel::default(),
            &GateTimeModel::default(),
            0,
            0,
        );
    }
}
