//! The "Ideal TI" reference device (§VI-B of the paper).
//!
//! An ideal trapped-ion machine has enough laser controls for every qubit:
//! any pair can interact directly, so no swaps and no shuttling are ever
//! needed and the chain never heats. Gates still take their Eq. 3 time
//! (the AM gate slows with distance even on an ideal device) and carry the
//! cold-chain Eq. 4 error. Comparing against this bound shows how close
//! LinQ gets to the connectivity-unconstrained optimum (Fig. 8).

use crate::gate_time::GateTimeModel;
use crate::noise::NoiseModel;
use crate::success::SuccessReport;
use tilt_circuit::{Circuit, Gate};
use tilt_compiler::decompose::decompose;

/// Estimates the success rate of `circuit` on an ideal fully-connected
/// trapped-ion device.
///
/// The circuit is lowered to native gates first; qubits sit at their
/// logical chain positions (identity placement), so a gate between qubits
/// `i` and `j` runs in `τ(|i-j|)`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::qft::qft;
/// use tilt_sim::{estimate_ideal_success, GateTimeModel, NoiseModel};
///
/// let r = estimate_ideal_success(&qft(8), &NoiseModel::default(), &GateTimeModel::default());
/// assert!(r.success > 0.0);
/// assert_eq!(r.moves, 0);
/// ```
pub fn estimate_ideal_success(
    circuit: &Circuit,
    noise: &NoiseModel,
    times: &GateTimeModel,
) -> SuccessReport {
    let native = decompose(circuit);
    let mut ln_success = 0.0f64;
    let mut two_q = 0usize;
    let mut one_q = 0usize;
    let mut meas = 0usize;

    for g in &native {
        let f = match g {
            Gate::Barrier => 1.0,
            Gate::Measure(_) | Gate::Reset(_) => {
                meas += 1;
                noise.measurement_fidelity()
            }
            g if g.is_two_qubit() => {
                two_q += 1;
                noise.two_qubit_fidelity(times.gate_us(g), 0.0)
            }
            _ => {
                one_q += 1;
                noise.single_qubit_fidelity()
            }
        };
        ln_success += f.ln();
    }

    SuccessReport {
        ln_success,
        success: ln_success.exp(),
        two_qubit_gates: two_q,
        single_qubit_gates: one_q,
        measurements: meas,
        moves: 0,
        final_quanta: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_success;
    use tilt_circuit::Qubit;
    use tilt_compiler::{Compiler, DeviceSpec};

    #[test]
    fn ideal_never_moves_or_heats() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(15));
        let r = estimate_ideal_success(&c, &NoiseModel::default(), &GateTimeModel::default());
        assert_eq!(r.moves, 0);
        assert_eq!(r.final_quanta, 0.0);
        assert_eq!(r.two_qubit_gates, 1);
    }

    #[test]
    fn ideal_upper_bounds_tilt_on_swap_heavy_circuits() {
        let mut c = Circuit::new(16);
        for i in 0..8 {
            c.cnot(Qubit(i), Qubit(15 - i));
        }
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let ideal = estimate_ideal_success(&c, &noise, &times);
        let out = Compiler::new(DeviceSpec::new(16, 4).unwrap())
            .compile(&c)
            .unwrap();
        let tilt = estimate_success(&out.program, &noise, &times);
        assert!(ideal.success > tilt.success);
    }

    #[test]
    fn gate_counts_match_native_decomposition() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).cphase(Qubit(0), Qubit(3), 0.5);
        let r = estimate_ideal_success(&c, &NoiseModel::default(), &GateTimeModel::default());
        assert_eq!(r.two_qubit_gates, 2); // cphase = 2 XX
    }

    #[test]
    fn distance_still_costs_time_fidelity() {
        let mut near = Circuit::new(16);
        near.cnot(Qubit(0), Qubit(1));
        let mut far = Circuit::new(16);
        far.cnot(Qubit(0), Qubit(15));
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let rn = estimate_ideal_success(&near, &noise, &times);
        let rf = estimate_ideal_success(&far, &noise, &times);
        assert!(rn.success > rf.success);
    }
}
