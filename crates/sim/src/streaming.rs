//! Streaming estimator accumulators for bounded-memory compilation.
//!
//! [`estimate_success`](crate::estimate_success) and
//! [`execution_time_us`](crate::execution_time_us) are both sequential
//! folds over the scheduled op stream; these accumulators apply the
//! *same* folds one op at a time, so a streaming compile that never
//! materializes its [`TiltProgram`](tilt_compiler::TiltProgram) can still
//! produce **bit-identical** `ln_success` and `exec_time_us` to the
//! monolithic path. Every floating-point operation happens in the same
//! order with the same operands; nothing is re-associated.
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//! use tilt_compiler::{Compiler, DeviceSpec};
//! use tilt_sim::streaming::{ExecTimeAccumulator, SuccessAccumulator};
//! use tilt_sim::{estimate_success, ExecTimeModel, GateTimeModel, NoiseModel};
//!
//! let mut c = Circuit::new(8);
//! c.cnot(Qubit(0), Qubit(7));
//! let out = Compiler::new(DeviceSpec::new(8, 4)?).compile(&c)?;
//! let (noise, times) = (NoiseModel::default(), GateTimeModel::default());
//! let mut acc = SuccessAccumulator::new(8, &noise, &times);
//! let mut exec = ExecTimeAccumulator::new(8, &times, &ExecTimeModel::default());
//! for op in out.program.ops() {
//!     acc.push(op);
//!     exec.push(op);
//! }
//! let mono = estimate_success(&out.program, &noise, &times);
//! assert_eq!(acc.finish().ln_success, mono.ln_success);
//! # Ok::<(), tilt_compiler::CompileError>(())
//! ```

use crate::exec_time::ExecTimeModel;
use crate::gate_time::GateTimeModel;
use crate::noise::NoiseModel;
use crate::success::SuccessReport;
use tilt_circuit::Gate;
use tilt_compiler::TiltOp;

/// The [`estimate_success`](crate::estimate_success) fold, applied one
/// op at a time.
///
/// State is O(1): the chain's accumulated motional quanta, the running
/// log-fidelity, and the op-class counters.
#[derive(Clone, Debug)]
pub struct SuccessAccumulator {
    noise: NoiseModel,
    times: GateTimeModel,
    /// Per-move quanta for this chain length (`k(n)` with the `√n`
    /// scaling), fixed at construction like the monolithic estimator.
    k: f64,
    quanta: f64,
    ln_success: f64,
    two_q: usize,
    one_q: usize,
    meas: usize,
    moves: usize,
}

impl SuccessAccumulator {
    /// Starts an estimate for a chain of `n_ions` ions under `noise` and
    /// `times`.
    pub fn new(n_ions: usize, noise: &NoiseModel, times: &GateTimeModel) -> Self {
        SuccessAccumulator {
            noise: *noise,
            times: *times,
            k: noise.k_for_chain(n_ions),
            quanta: 0.0,
            ln_success: 0.0,
            two_q: 0,
            one_q: 0,
            meas: 0,
            moves: 0,
        }
    }

    /// Folds one scheduled op into the estimate.
    pub fn push(&mut self, op: &TiltOp) {
        match op {
            TiltOp::Move { .. } => {
                self.moves += 1;
                self.quanta += self.k;
            }
            TiltOp::Gate { gate, .. } => {
                let f = match gate {
                    Gate::Measure(_) | Gate::Reset(_) => {
                        self.meas += 1;
                        self.noise.measurement_fidelity()
                    }
                    g if g.is_two_qubit() => {
                        self.two_q += 1;
                        self.noise
                            .two_qubit_fidelity(self.times.gate_us(g), self.quanta)
                    }
                    Gate::Barrier => 1.0,
                    _ => {
                        self.one_q += 1;
                        self.noise.single_qubit_fidelity()
                    }
                };
                self.ln_success += f.ln();
            }
        }
    }

    /// The estimate over everything pushed so far. The accumulator stays
    /// usable; this is a snapshot, not a terminator.
    pub fn finish(&self) -> SuccessReport {
        SuccessReport {
            ln_success: self.ln_success,
            success: self.ln_success.exp(),
            two_qubit_gates: self.two_q,
            single_qubit_gates: self.one_q,
            measurements: self.meas,
            moves: self.moves,
            final_quanta: self.quanta,
        }
    }
}

/// The [`execution_time_us`](crate::execution_time_us) fold, applied one
/// op at a time.
///
/// State is O(chain): the per-qubit layer indices and per-layer maxima
/// of the current head-position segment (a tape move fences layering, so
/// the segment state never outlives two moves).
#[derive(Clone, Debug)]
pub struct ExecTimeAccumulator {
    times: GateTimeModel,
    exec: ExecTimeModel,
    level: Vec<usize>,
    layer_max: Vec<f64>,
    total_us: f64,
    /// Travel distance folded exactly like
    /// [`TiltProgram::move_distance_ions`](tilt_compiler::TiltProgram::move_distance_ions).
    move_distance_ions: usize,
    last_head: Option<usize>,
}

impl ExecTimeAccumulator {
    /// Starts a timing estimate for a chain of `n_ions` ions.
    pub fn new(n_ions: usize, times: &GateTimeModel, exec: &ExecTimeModel) -> Self {
        ExecTimeAccumulator {
            times: *times,
            exec: *exec,
            level: vec![0; n_ions],
            layer_max: Vec::new(),
            total_us: 0.0,
            move_distance_ions: 0,
            last_head: None,
        }
    }

    fn flush_segment(&mut self) {
        self.total_us += self.layer_max.iter().sum::<f64>();
        self.layer_max.clear();
        self.level.iter_mut().for_each(|l| *l = 0);
    }

    /// Folds one scheduled op into the estimate.
    pub fn push(&mut self, op: &TiltOp) {
        match op {
            TiltOp::Move { to } => {
                self.flush_segment();
                if let Some(p) = self.last_head {
                    self.move_distance_ions += p.abs_diff(*to);
                }
                self.last_head = Some(*to);
            }
            TiltOp::Gate { gate, head_pos } => {
                if self.last_head.is_none() {
                    self.last_head = Some(*head_pos);
                }
                if matches!(gate, Gate::Barrier) {
                    return;
                }
                let qs = gate.qubits();
                let layer = qs.iter().map(|q| self.level[q.index()]).max().unwrap_or(0);
                for q in &qs {
                    self.level[q.index()] = layer + 1;
                }
                if self.layer_max.len() <= layer {
                    self.layer_max.resize(layer + 1, 0.0);
                }
                let dur = self.times.gate_us(gate);
                if dur > self.layer_max[layer] {
                    self.layer_max[layer] = dur;
                }
            }
        }
    }

    /// Total execution time in µs over everything pushed so far: the
    /// final segment flush plus the Eq. 5 travel term.
    ///
    /// Unlike [`SuccessAccumulator::finish`] this *is* a terminator —
    /// the trailing segment is flushed into the total.
    pub fn finish(mut self) -> f64 {
        self.flush_segment();
        self.total_us
            + self.move_distance_ions as f64 * self.exec.ion_spacing_um
                / self.exec.shuttle_um_per_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_success, execution_time_us};
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::{Compiler, DeviceSpec, TiltProgram};

    fn workload(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..gates {
            let a = Qubit((rng() as usize) % n);
            let b = Qubit((rng() as usize) % n);
            match rng() % 10 {
                0 => {
                    c.barrier();
                }
                1 => {
                    c.measure(a);
                }
                2 | 3 => {
                    c.h(a);
                }
                _ if a != b => {
                    c.cnot(a, b);
                }
                _ => {
                    c.t(a);
                }
            }
        }
        c
    }

    fn compile(c: &Circuit, n: usize, head: usize) -> TiltProgram {
        Compiler::new(DeviceSpec::new(n, head).unwrap())
            .compile(c)
            .unwrap()
            .program
    }

    #[test]
    fn success_fold_is_bit_identical_to_the_monolithic_estimator() {
        let (noise, times) = (NoiseModel::default(), GateTimeModel::default());
        for (n, head, gates, seed) in [(8, 4, 60, 3), (16, 4, 400, 11), (24, 8, 900, 29)] {
            let p = compile(&workload(n, gates, seed), n, head);
            let mono = estimate_success(&p, &noise, &times);
            let mut acc = SuccessAccumulator::new(n, &noise, &times);
            for op in p.ops() {
                acc.push(op);
            }
            let s = acc.finish();
            assert_eq!(s.ln_success, mono.ln_success);
            assert_eq!(s.success, mono.success);
            assert_eq!(s.final_quanta, mono.final_quanta);
            assert_eq!(s.two_qubit_gates, mono.two_qubit_gates);
            assert_eq!(s.single_qubit_gates, mono.single_qubit_gates);
            assert_eq!(s.measurements, mono.measurements);
            assert_eq!(s.moves, mono.moves);
        }
    }

    #[test]
    fn exec_time_fold_is_bit_identical_to_the_monolithic_estimator() {
        let times = GateTimeModel::default();
        let exec = ExecTimeModel::default();
        for (n, head, gates, seed) in [(8, 4, 60, 5), (16, 4, 400, 17), (24, 8, 900, 31)] {
            let p = compile(&workload(n, gates, seed), n, head);
            let mono = execution_time_us(&p, &times, &exec);
            let mut acc = ExecTimeAccumulator::new(n, &times, &exec);
            for op in p.ops() {
                acc.push(op);
            }
            assert_eq!(acc.finish(), mono);
        }
    }

    #[test]
    fn success_snapshot_does_not_consume_the_accumulator() {
        let (noise, times) = (NoiseModel::default(), GateTimeModel::default());
        let p = compile(&workload(8, 40, 7), 8, 4);
        let mut acc = SuccessAccumulator::new(8, &noise, &times);
        for op in p.ops() {
            acc.push(op);
            let _ = acc.finish(); // mid-stream snapshots are fine
        }
        assert_eq!(
            acc.finish().ln_success,
            estimate_success(&p, &noise, &times).ln_success
        );
    }

    #[test]
    fn empty_stream_is_certain_success_in_zero_time() {
        let (noise, times) = (NoiseModel::default(), GateTimeModel::default());
        let acc = SuccessAccumulator::new(4, &noise, &times);
        assert_eq!(acc.finish().success, 1.0);
        let exec = ExecTimeAccumulator::new(4, &times, &ExecTimeModel::default());
        assert_eq!(exec.finish(), 0.0);
    }
}
