//! Sympathetic cooling for TILT (§VII of the paper, "Trapped-Ion
//! Scaling").
//!
//! A dual-species chain carries coolant ions that can be laser-cooled
//! *during* circuit execution without disturbing the data qubits,
//! resetting the chain's motional energy. The paper lists this as the
//! natural TILT extension ("would reduce the heating due to shuttling and
//! allow for longer circuits") without evaluating it; this module
//! implements that evaluation. Two trigger policies are provided — a heat
//! threshold (cool when the chain passes `q` quanta) and a periodic
//! schedule (cool every `n` moves) — each paying a configurable time cost.

use crate::gate_time::GateTimeModel;
use crate::noise::NoiseModel;
use crate::success::SuccessReport;
use tilt_circuit::Gate;
use tilt_compiler::{TiltOp, TiltProgram};

/// When to run a sympathetic-cooling round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoolingTrigger {
    /// Never cool (the paper's evaluated baseline TILT).
    Never,
    /// Cool once accumulated quanta exceed the threshold.
    QuantaThreshold(f64),
    /// Cool after every `n` tape moves.
    EveryMoves(usize),
}

/// Sympathetic-cooling policy for a TILT chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoolingPolicy {
    /// Trigger condition.
    pub trigger: CoolingTrigger,
    /// Duration of one cooling round in µs (resolved sideband cooling of
    /// the shared motional mode; hundreds of µs in practice).
    pub cooling_us: f64,
}

impl CoolingPolicy {
    /// No cooling — the configuration the paper evaluates.
    pub fn never() -> Self {
        CoolingPolicy {
            trigger: CoolingTrigger::Never,
            cooling_us: 0.0,
        }
    }

    /// Cool when the chain exceeds `quanta` motional quanta.
    pub fn threshold(quanta: f64) -> Self {
        CoolingPolicy {
            trigger: CoolingTrigger::QuantaThreshold(quanta),
            cooling_us: 400.0,
        }
    }

    /// Cool after every `moves` tape moves.
    pub fn periodic(moves: usize) -> Self {
        CoolingPolicy {
            trigger: CoolingTrigger::EveryMoves(moves),
            cooling_us: 400.0,
        }
    }
}

impl Default for CoolingPolicy {
    fn default() -> Self {
        CoolingPolicy::never()
    }
}

/// Success estimation under a cooling policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CooledSuccessReport {
    /// The usual per-gate statistics.
    pub report: SuccessReport,
    /// Cooling rounds performed.
    pub cooling_rounds: usize,
    /// Total time spent cooling, in µs (add to Eq. 5's execution time).
    pub cooling_time_us: f64,
}

/// Estimates the success rate of `program` with sympathetic cooling.
///
/// Identical to [`crate::estimate_success`] except that the accumulated
/// motional quanta reset to zero whenever the policy triggers. With
/// [`CoolingPolicy::never`] the two agree exactly.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::qft::qft;
/// use tilt_compiler::{Compiler, DeviceSpec};
/// use tilt_sim::cooling::{estimate_success_with_cooling, CoolingPolicy};
/// use tilt_sim::{GateTimeModel, NoiseModel};
///
/// let out = Compiler::new(DeviceSpec::new(16, 8)?).compile(&qft(16))?;
/// let noise = NoiseModel::default();
/// let times = GateTimeModel::default();
/// let hot = estimate_success_with_cooling(&out.program, &noise, &times, &CoolingPolicy::never());
/// let cold = estimate_success_with_cooling(&out.program, &noise, &times, &CoolingPolicy::threshold(1.0));
/// assert!(cold.report.success >= hot.report.success);
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn estimate_success_with_cooling(
    program: &TiltProgram,
    noise: &NoiseModel,
    times: &GateTimeModel,
    policy: &CoolingPolicy,
) -> CooledSuccessReport {
    let k = noise.k_for_chain(program.spec().n_ions());
    let mut quanta = 0.0f64;
    let mut moves_since_cool = 0usize;
    let mut ln_success = 0.0f64;
    let mut cooling_rounds = 0usize;
    let (mut two_q, mut one_q, mut meas, mut moves) = (0usize, 0usize, 0usize, 0usize);

    for op in program.ops() {
        match op {
            TiltOp::Move { .. } => {
                moves += 1;
                moves_since_cool += 1;
                quanta += k;
                let cool = match policy.trigger {
                    CoolingTrigger::Never => false,
                    CoolingTrigger::QuantaThreshold(t) => quanta > t,
                    CoolingTrigger::EveryMoves(n) => n > 0 && moves_since_cool >= n,
                };
                if cool {
                    quanta = 0.0;
                    moves_since_cool = 0;
                    cooling_rounds += 1;
                }
            }
            TiltOp::Gate { gate, .. } => {
                let f = match gate {
                    Gate::Measure(_) | Gate::Reset(_) => {
                        meas += 1;
                        noise.measurement_fidelity()
                    }
                    g if g.is_two_qubit() => {
                        two_q += 1;
                        noise.two_qubit_fidelity(times.gate_us(g), quanta)
                    }
                    Gate::Barrier => 1.0,
                    _ => {
                        one_q += 1;
                        noise.single_qubit_fidelity()
                    }
                };
                ln_success += f.ln();
            }
        }
    }

    CooledSuccessReport {
        report: SuccessReport {
            ln_success,
            success: ln_success.exp(),
            two_qubit_gates: two_q,
            single_qubit_gates: one_q,
            measurements: meas,
            moves,
            final_quanta: quanta,
        },
        cooling_rounds,
        cooling_time_us: cooling_rounds as f64 * policy.cooling_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_success;
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::{Compiler, DeviceSpec};

    fn ping_pong_program() -> TiltProgram {
        let mut c = Circuit::new(32);
        for _ in 0..6 {
            c.cnot(Qubit(0), Qubit(1));
            c.cnot(Qubit(30), Qubit(31));
            c.barrier();
        }
        Compiler::new(DeviceSpec::new(32, 8).unwrap())
            .compile(&c)
            .unwrap()
            .program
    }

    #[test]
    fn never_matches_plain_estimator() {
        let p = ping_pong_program();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let plain = estimate_success(&p, &noise, &times);
        let never = estimate_success_with_cooling(&p, &noise, &times, &CoolingPolicy::never());
        assert_eq!(plain, never.report);
        assert_eq!(never.cooling_rounds, 0);
    }

    #[test]
    fn cooling_improves_move_heavy_programs() {
        let p = ping_pong_program();
        assert!(p.move_count() >= 4, "{}", p.move_count());
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let hot = estimate_success_with_cooling(&p, &noise, &times, &CoolingPolicy::never());
        let cold =
            estimate_success_with_cooling(&p, &noise, &times, &CoolingPolicy::threshold(0.5));
        assert!(cold.cooling_rounds > 0);
        assert!(cold.report.success > hot.report.success);
        assert!(cold.report.final_quanta <= hot.report.final_quanta);
    }

    #[test]
    fn periodic_policy_counts_rounds() {
        let p = ping_pong_program();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let every2 = estimate_success_with_cooling(&p, &noise, &times, &CoolingPolicy::periodic(2));
        assert_eq!(every2.cooling_rounds, p.move_count() / 2);
        assert_eq!(every2.cooling_time_us, every2.cooling_rounds as f64 * 400.0);
    }

    #[test]
    fn tighter_threshold_cools_more_and_wins() {
        let p = ping_pong_program();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let loose =
            estimate_success_with_cooling(&p, &noise, &times, &CoolingPolicy::threshold(5.0));
        let tight =
            estimate_success_with_cooling(&p, &noise, &times, &CoolingPolicy::threshold(0.2));
        assert!(tight.cooling_rounds >= loose.cooling_rounds);
        assert!(tight.report.success >= loose.report.success);
    }
}
