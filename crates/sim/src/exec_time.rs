//! Program execution-time estimation (Eq. 5 of the paper).
//!
//! `t_exe = t_m · dist + Σ_d t_d`: tape travel at the shuttle rate plus
//! the sum over depth layers of each layer's maximum gate time. Gates
//! executed at the same head position on disjoint qubits share a layer
//! (the head's lasers drive them simultaneously); a tape move fences
//! layering, since nothing executes while the chain is in flight.

use crate::gate_time::GateTimeModel;
use tilt_circuit::Gate;
use tilt_compiler::{TiltOp, TiltProgram};

/// Shuttle-speed parameters for Eq. 5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecTimeModel {
    /// Tape shuttle rate in µm per µs (1 µm/µs, §VI-C).
    pub shuttle_um_per_us: f64,
    /// Ion spacing in µm (≈5 µm in modern traps, §II-B).
    pub ion_spacing_um: f64,
}

impl Default for ExecTimeModel {
    fn default() -> Self {
        ExecTimeModel {
            shuttle_um_per_us: 1.0,
            ion_spacing_um: 5.0,
        }
    }
}

impl ExecTimeModel {
    /// Total tape travel distance of `program` in µm (the `dist` column of
    /// Table III).
    pub fn travel_um(&self, program: &TiltProgram) -> f64 {
        program.move_distance_ions() as f64 * self.ion_spacing_um
    }
}

/// Estimates the execution time of `program` in microseconds (Eq. 5).
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::{Compiler, DeviceSpec};
/// use tilt_sim::{execution_time_us, ExecTimeModel, GateTimeModel};
///
/// let mut c = Circuit::new(8);
/// c.cnot(Qubit(0), Qubit(1));
/// let out = Compiler::new(DeviceSpec::new(8, 4)?).compile(&c)?;
/// let t = execution_time_us(&out.program, &GateTimeModel::default(), &ExecTimeModel::default());
/// assert!(t > 0.0);
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn execution_time_us(
    program: &TiltProgram,
    times: &GateTimeModel,
    exec: &ExecTimeModel,
) -> f64 {
    let n = program.spec().n_ions();
    let mut total_us = 0.0f64;

    // Per-qubit layer index and per-layer maximum duration for the current
    // head-position segment.
    let mut level = vec![0usize; n];
    let mut layer_max: Vec<f64> = Vec::new();
    let flush = |layer_max: &mut Vec<f64>, level: &mut Vec<usize>| -> f64 {
        let t: f64 = layer_max.iter().sum();
        layer_max.clear();
        level.iter_mut().for_each(|l| *l = 0);
        t
    };

    for op in program.ops() {
        match op {
            TiltOp::Move { .. } => {
                total_us += flush(&mut layer_max, &mut level);
            }
            TiltOp::Gate { gate, .. } => {
                if matches!(gate, Gate::Barrier) {
                    continue;
                }
                let qs = gate.qubits();
                let layer = qs.iter().map(|q| level[q.index()]).max().unwrap_or(0);
                for q in &qs {
                    level[q.index()] = layer + 1;
                }
                if layer_max.len() <= layer {
                    layer_max.resize(layer + 1, 0.0);
                }
                let dur = times.gate_us(gate);
                if dur > layer_max[layer] {
                    layer_max[layer] = dur;
                }
            }
        }
    }
    total_us += flush(&mut layer_max, &mut level);
    total_us += exec.travel_um(program) / exec.shuttle_um_per_us;
    total_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::{Compiler, DeviceSpec};

    fn compile(c: &Circuit, n: usize, head: usize) -> TiltProgram {
        Compiler::new(DeviceSpec::new(n, head).unwrap())
            .compile(c)
            .unwrap()
            .program
    }

    fn exec_us(p: &TiltProgram) -> f64 {
        execution_time_us(p, &GateTimeModel::default(), &ExecTimeModel::default())
    }

    #[test]
    fn empty_program_takes_no_time() {
        assert_eq!(exec_us(&compile(&Circuit::new(4), 4, 4)), 0.0);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        // Two disjoint XX gates in one zone: time = max, not sum.
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(1), 0.1); // span 1 → 48 µs
        c.xx(Qubit(2), Qubit(3), 0.1); // span 1 → 48 µs
        let p = compile(&c, 8, 4);
        assert_eq!(p.move_count(), 0);
        assert_eq!(exec_us(&p), 48.0);
    }

    #[test]
    fn dependent_gates_stack_layers() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.xx(Qubit(1), Qubit(2), 0.1);
        let p = compile(&c, 8, 4);
        assert_eq!(exec_us(&p), 96.0);
    }

    #[test]
    fn moves_add_travel_time() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.xx(Qubit(14), Qubit(15), 0.1);
        let p = compile(&c, 16, 4);
        assert_eq!(p.move_count(), 1);
        let travel_ions = p.move_distance_ions() as f64;
        // 5 µm per spacing at 1 µm/µs plus two 48 µs gate layers.
        assert_eq!(exec_us(&p), travel_ions * 5.0 + 96.0);
    }

    #[test]
    fn travel_um_uses_ion_spacing() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.xx(Qubit(14), Qubit(15), 0.1);
        let p = compile(&c, 16, 4);
        let exec = ExecTimeModel::default();
        assert_eq!(exec.travel_um(&p), p.move_distance_ions() as f64 * 5.0);
    }

    #[test]
    fn longer_span_dominates_layer() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(3), 0.1); // span 3 → 124 µs
        c.xx(Qubit(4), Qubit(5), 0.1); // span 1 → 48 µs (parallel)
        let p = compile(&c, 8, 8);
        assert_eq!(exec_us(&p), 124.0);
    }

    #[test]
    fn slower_shuttle_increases_time() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.xx(Qubit(14), Qubit(15), 0.1);
        let p = compile(&c, 16, 4);
        let fast = execution_time_us(
            &p,
            &GateTimeModel::default(),
            &ExecTimeModel {
                shuttle_um_per_us: 2.0,
                ion_spacing_um: 5.0,
            },
        );
        let slow = exec_us(&p);
        assert!(fast < slow);
    }
}
