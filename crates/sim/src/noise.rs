//! The thermal-heating noise model (Eq. 4 of the paper).
//!
//! Every shuttle adds motional quanta to the chain; a hot chain makes the
//! Mølmer–Sørensen gate more sensitive to laser imperfections. After `m`
//! moves that each add `k` quanta, a two-qubit gate of duration `τ` has
//! fidelity
//!
//! ```text
//! F_m = 1 − Γτ + (1 − (1+ε)^{2mk+1})                     (Eq. 4)
//! ```
//!
//! where `Γ` is the trap's background heating rate and `ε` the per-gate
//! error from residual spin–motion entanglement. The exponential is kept
//! exact (the paper explicitly avoids linearizing it, §IV-E). The per-move
//! heating scales with chain length as `k ∝ √n` (§III-A / §IV-E): the
//! centre-of-mass mode softens while the stopping force stays constant.

/// Noise parameters of a trapped-ion device.
///
/// Defaults are calibrated once against the paper's reported success-rate
/// scales (see EXPERIMENTS.md) and held fixed across all experiments:
/// `ε` is within the "as low as 10⁻³" two-qubit error budget of §II-B,
/// `k` is below Honeywell's 2-quanta-per-shuttle bound (§IV-E, linear
/// shuttles are cheaper than split/merge), and `Γτ` contributes
/// `~10⁻⁵`-per-gate background error.
///
/// # Example
///
/// ```
/// use tilt_sim::NoiseModel;
///
/// let noise = NoiseModel::default();
/// let cold = noise.two_qubit_fidelity(48.0, 0.0);
/// let hot = noise.two_qubit_fidelity(48.0, 50.0);
/// assert!(hot < cold);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Background heating rate `Γ` per microsecond.
    pub gamma_per_us: f64,
    /// Residual-entanglement error `ε` per two-qubit gate.
    pub epsilon: f64,
    /// Constant single-qubit gate error (thermal-independent, §IV-E).
    pub single_qubit_error: f64,
    /// Measurement error (not modelled by the paper; defaults to 0).
    pub measurement_error: f64,
    /// Heating quanta added per shuttle for a chain of `n_ref` ions.
    pub k_base: f64,
    /// Reference chain length for `k_base` (Honeywell's 8-ion device).
    pub n_ref: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            gamma_per_us: 1e-7,
            epsilon: 1.2e-4,
            single_qubit_error: 1e-4,
            measurement_error: 0.0,
            k_base: 0.1,
            n_ref: 8.0,
        }
    }
}

impl NoiseModel {
    /// Per-shuttle heating `k` for a chain of `n_ions`, scaled by `√n`
    /// relative to the reference chain (§IV-E).
    pub fn k_for_chain(&self, n_ions: usize) -> f64 {
        self.k_base * (n_ions as f64 / self.n_ref).sqrt()
    }

    /// Two-qubit gate fidelity (Eq. 4) for a gate of duration `tau_us`
    /// executed on a chain carrying `quanta` accumulated motional quanta
    /// (`m·k` for TILT; a per-primitive sum for QCCD).
    ///
    /// The value is clamped below at 0 — a sufficiently hot chain yields a
    /// certainly-failing gate rather than a negative fidelity.
    pub fn two_qubit_fidelity(&self, tau_us: f64, quanta: f64) -> f64 {
        let f = 1.0
            - self.gamma_per_us * tau_us
            - ((1.0 + self.epsilon).powf(2.0 * quanta + 1.0) - 1.0);
        f.max(0.0)
    }

    /// Single-qubit gate fidelity: independent of thermal energy (§IV-E).
    pub fn single_qubit_fidelity(&self) -> f64 {
        1.0 - self.single_qubit_error
    }

    /// Measurement fidelity.
    pub fn measurement_fidelity(&self) -> f64 {
        1.0 - self.measurement_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_chain_error_is_epsilon_plus_background() {
        let n = NoiseModel::default();
        let f = n.two_qubit_fidelity(100.0, 0.0);
        let expected = 1.0 - n.gamma_per_us * 100.0 - n.epsilon;
        assert!((f - expected).abs() < 1e-9);
    }

    #[test]
    fn fidelity_decreases_with_heat() {
        let n = NoiseModel::default();
        let mut prev = 1.0;
        for m in 0..200 {
            let f = n.two_qubit_fidelity(48.0, m as f64 * n.k_for_chain(64));
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn fidelity_decreases_with_gate_time() {
        let n = NoiseModel::default();
        assert!(n.two_qubit_fidelity(1000.0, 1.0) < n.two_qubit_fidelity(10.0, 1.0));
    }

    #[test]
    fn fidelity_clamped_at_zero() {
        let n = NoiseModel {
            epsilon: 0.5,
            ..NoiseModel::default()
        };
        assert_eq!(n.two_qubit_fidelity(10.0, 1e6), 0.0);
    }

    #[test]
    fn k_scales_as_sqrt_n() {
        let n = NoiseModel::default();
        let k8 = n.k_for_chain(8);
        let k32 = n.k_for_chain(32);
        assert!((k32 / k8 - 2.0).abs() < 1e-12);
        let k64 = n.k_for_chain(64);
        assert!((k64 / k8 - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_not_linearized() {
        // For large quanta the exact model must be strictly worse than the
        // linear approximation 1 - ε(2q+1).
        let n = NoiseModel::default();
        let q = 500.0;
        let exact = n.two_qubit_fidelity(0.0, q);
        let linear = 1.0 - n.epsilon * (2.0 * q + 1.0);
        assert!(exact < linear);
    }

    #[test]
    fn single_qubit_fidelity_is_thermal_independent() {
        let n = NoiseModel::default();
        assert_eq!(n.single_qubit_fidelity(), 1.0 - n.single_qubit_error);
    }
}
