//! Noise-aware fidelity and timing simulation for TILT programs (§IV-E of
//! the paper).
//!
//! The simulator consumes the executable gate/move stream produced by the
//! LinQ compiler and estimates:
//!
//! * **Program success rate** — the product of per-gate fidelities under
//!   the thermal-heating noise model of Eq. 4, where every tape move adds
//!   `k ∝ √n` motional quanta to the chain and two-qubit gates become more
//!   sensitive to laser imperfections as the chain heats
//!   ([`estimate_success`]).
//! * **Execution time** — Eq. 5: shuttle time at 1 µm/µs plus the sum of
//!   per-depth maximum gate times, with the AM two-qubit gate time
//!   `τ(d) = 38·d + 10 µs` of Eq. 3 ([`execution_time_us`]).
//! * **Ideal trapped-ion reference** — the same gate-level model with full
//!   connectivity and zero shuttling ([`estimate_ideal_success`]),
//!   the "Ideal TI" series of Fig. 8.
//!
//! # Example
//!
//! ```
//! use tilt_benchmarks::bv::bernstein_vazirani;
//! use tilt_compiler::{Compiler, DeviceSpec};
//! use tilt_sim::{estimate_success, GateTimeModel, NoiseModel};
//!
//! let circuit = bernstein_vazirani(16, &[true; 15]);
//! let out = Compiler::new(DeviceSpec::new(16, 8)?).compile(&circuit)?;
//! let report = estimate_success(&out.program, &NoiseModel::default(), &GateTimeModel::default());
//! assert!(report.success > 0.0 && report.success < 1.0);
//! # Ok::<(), tilt_compiler::CompileError>(())
//! ```

pub mod cooling;
pub mod exec_time;
pub mod fingerprint;
pub mod gate_time;
pub mod ideal;
pub mod monte_carlo;
pub mod noise;
pub mod streaming;
pub mod success;

pub use cooling::{estimate_success_with_cooling, CooledSuccessReport, CoolingPolicy};
pub use exec_time::{execution_time_us, ExecTimeModel};
pub use gate_time::GateTimeModel;
pub use ideal::estimate_ideal_success;
pub use noise::NoiseModel;
pub use success::{estimate_success, SuccessReport};
