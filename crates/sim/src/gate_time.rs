//! Gate duration model (Eq. 3 of the paper).

use tilt_circuit::Gate;

/// Gate durations in microseconds.
///
/// The two-qubit time is the amplitude-modulated (AM) gate model of
/// Trout et al. (NJP 20 043038), adopted by the paper as Eq. 3:
/// `τ(d) = 38·d + 10 µs` with `d` the operand distance in ion spacings.
/// Single-qubit and measurement durations are not specified by the paper;
/// the defaults follow the conventions of Murali et al. and are
/// configurable.
///
/// # Example
///
/// ```
/// use tilt_sim::GateTimeModel;
///
/// let t = GateTimeModel::default();
/// assert_eq!(t.two_qubit_us(1), 48.0);
/// assert_eq!(t.two_qubit_us(15), 580.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateTimeModel {
    /// Slope of the AM gate time in µs per ion spacing (38 in Eq. 3).
    pub two_qubit_slope_us: f64,
    /// Offset of the AM gate time in µs (10 in Eq. 3).
    pub two_qubit_offset_us: f64,
    /// Duration of a single-qubit rotation in µs.
    pub single_qubit_us: f64,
    /// Duration of a measurement in µs.
    pub measure_us: f64,
}

impl Default for GateTimeModel {
    fn default() -> Self {
        GateTimeModel {
            two_qubit_slope_us: 38.0,
            two_qubit_offset_us: 10.0,
            single_qubit_us: 10.0,
            measure_us: 100.0,
        }
    }
}

impl GateTimeModel {
    /// AM two-qubit gate time for operands `d` ion spacings apart (Eq. 3).
    pub fn two_qubit_us(&self, d: usize) -> f64 {
        self.two_qubit_slope_us * d as f64 + self.two_qubit_offset_us
    }

    /// Duration of an arbitrary gate. Two-qubit gates use Eq. 3 with the
    /// gate's physical span; barriers take no time.
    pub fn gate_us(&self, g: &Gate) -> f64 {
        match g {
            Gate::Barrier => 0.0,
            // Reset = optical pumping, a measurement-class duration.
            Gate::Measure(_) | Gate::Reset(_) => self.measure_us,
            g if g.is_two_qubit() => {
                self.two_qubit_us(g.span().expect("two-qubit gates have a span"))
            }
            _ => self.single_qubit_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;

    #[test]
    fn eq3_values() {
        let t = GateTimeModel::default();
        assert_eq!(t.two_qubit_us(0), 10.0);
        assert_eq!(t.two_qubit_us(8), 314.0);
        assert_eq!(t.two_qubit_us(63), 2404.0);
    }

    #[test]
    fn gate_dispatch() {
        let t = GateTimeModel::default();
        assert_eq!(t.gate_us(&Gate::Rx(Qubit(0), 1.0)), 10.0);
        assert_eq!(t.gate_us(&Gate::Xx(Qubit(0), Qubit(5), 0.1)), 200.0);
        assert_eq!(t.gate_us(&Gate::Measure(Qubit(0))), 100.0);
        assert_eq!(t.gate_us(&Gate::Reset(Qubit(0))), 100.0);
        assert_eq!(t.gate_us(&Gate::Barrier), 0.0);
    }

    #[test]
    fn longer_gates_take_longer() {
        let t = GateTimeModel::default();
        assert!(t.two_qubit_us(10) > t.two_qubit_us(1));
    }
}
