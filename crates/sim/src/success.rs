//! Program success-rate estimation.
//!
//! The success rate of a program is the product of its per-gate
//! fidelities. The estimator walks the scheduled gate/move stream in
//! execution order, accumulating motional quanta on every move (Eq. 4's
//! `m·k`) and multiplying fidelities in log space so that deep circuits
//! underflow gracefully (QFT success rates reach 10⁻¹⁴ and below in the
//! paper — far outside `f64` product stability if multiplied naively).

use crate::gate_time::GateTimeModel;
use crate::noise::NoiseModel;
use tilt_circuit::Gate;
use tilt_compiler::{TiltOp, TiltProgram};

/// Outcome of a success-rate estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuccessReport {
    /// Natural log of the success probability (`-inf` if any gate fails
    /// with certainty).
    pub ln_success: f64,
    /// Success probability (may underflow to 0 for very deep circuits;
    /// use [`SuccessReport::log10_success`] for plotting).
    pub success: f64,
    /// Two-qubit gates simulated.
    pub two_qubit_gates: usize,
    /// Single-qubit gates simulated.
    pub single_qubit_gates: usize,
    /// Measurements simulated.
    pub measurements: usize,
    /// Tape moves executed.
    pub moves: usize,
    /// Motional quanta accumulated by the end of the program.
    pub final_quanta: f64,
}

impl SuccessReport {
    /// Base-10 log of the success probability.
    pub fn log10_success(&self) -> f64 {
        self.ln_success / std::f64::consts::LN_10
    }
}

/// Estimates the success rate of a scheduled TILT program under `noise`
/// and `times` (§IV-E).
///
/// Every [`TiltOp::Move`] adds `k(n)` motional quanta (with the `√n`
/// chain-length scaling); every two-qubit gate contributes the Eq. 4
/// fidelity at the chain's current heat; single-qubit gates contribute a
/// constant fidelity.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::{Compiler, DeviceSpec};
/// use tilt_sim::{estimate_success, GateTimeModel, NoiseModel};
///
/// let mut c = Circuit::new(8);
/// c.cnot(Qubit(0), Qubit(7));
/// let out = Compiler::new(DeviceSpec::new(8, 4)?).compile(&c)?;
/// let r = estimate_success(&out.program, &NoiseModel::default(), &GateTimeModel::default());
/// assert!(r.two_qubit_gates >= 1);
/// assert!(r.ln_success < 0.0);
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn estimate_success(
    program: &TiltProgram,
    noise: &NoiseModel,
    times: &GateTimeModel,
) -> SuccessReport {
    let k = noise.k_for_chain(program.spec().n_ions());
    let mut quanta = 0.0f64;
    let mut ln_success = 0.0f64;
    let mut two_q = 0usize;
    let mut one_q = 0usize;
    let mut meas = 0usize;
    let mut moves = 0usize;

    for op in program.ops() {
        match op {
            TiltOp::Move { .. } => {
                moves += 1;
                quanta += k;
            }
            TiltOp::Gate { gate, .. } => {
                let f = match gate {
                    // Resets are measurement-class operations (optical
                    // pumping): same fidelity budget, counted together.
                    Gate::Measure(_) | Gate::Reset(_) => {
                        meas += 1;
                        noise.measurement_fidelity()
                    }
                    g if g.is_two_qubit() => {
                        two_q += 1;
                        noise.two_qubit_fidelity(times.gate_us(g), quanta)
                    }
                    Gate::Barrier => 1.0,
                    _ => {
                        one_q += 1;
                        noise.single_qubit_fidelity()
                    }
                };
                ln_success += f.ln(); // ln(0) = -inf propagates correctly
            }
        }
    }

    SuccessReport {
        ln_success,
        success: ln_success.exp(),
        two_qubit_gates: two_q,
        single_qubit_gates: one_q,
        measurements: meas,
        moves,
        final_quanta: quanta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::{Compiler, DeviceSpec};

    fn compile(c: &Circuit, n: usize, head: usize) -> TiltProgram {
        Compiler::new(DeviceSpec::new(n, head).unwrap())
            .compile(c)
            .unwrap()
            .program
    }

    fn default_estimate(p: &TiltProgram) -> SuccessReport {
        estimate_success(p, &NoiseModel::default(), &GateTimeModel::default())
    }

    #[test]
    fn empty_program_succeeds_certainly() {
        let p = compile(&Circuit::new(4), 4, 4);
        let r = default_estimate(&p);
        assert_eq!(r.success, 1.0);
        assert_eq!(r.final_quanta, 0.0);
    }

    #[test]
    fn counts_match_program() {
        let mut c = Circuit::new(8);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(7)).measure(Qubit(7));
        let p = compile(&c, 8, 4);
        let r = default_estimate(&p);
        assert_eq!(r.two_qubit_gates, p.two_qubit_gate_count());
        assert_eq!(r.moves, p.move_count());
        assert_eq!(r.measurements, 1);
    }

    #[test]
    fn more_moves_means_lower_success() {
        // Same gates, two schedules: ping-pong between zones vs batched.
        let mut c = Circuit::new(32);
        for _ in 0..4 {
            c.cnot(Qubit(0), Qubit(1));
            c.cnot(Qubit(30), Qubit(31));
        }
        let spec = DeviceSpec::new(32, 8).unwrap();
        let greedy = Compiler::new(spec).compile(&c).unwrap().program;
        let naive = {
            let mut cc = Compiler::new(spec);
            cc.scheduler(tilt_compiler::SchedulerKind::NaiveNextGate);
            cc.compile(&c).unwrap().program
        };
        assert!(greedy.move_count() < naive.move_count());
        let rg = default_estimate(&greedy);
        let rn = default_estimate(&naive);
        assert!(rg.success > rn.success);
    }

    #[test]
    fn quanta_accumulate_per_move() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(14), Qubit(15));
        let p = compile(&c, 16, 4);
        let r = default_estimate(&p);
        let noise = NoiseModel::default();
        let expected = r.moves as f64 * noise.k_for_chain(16);
        assert!((r.final_quanta - expected).abs() < 1e-12);
    }

    #[test]
    fn log10_matches_ln() {
        let mut c = Circuit::new(8);
        c.cnot(Qubit(0), Qubit(7));
        let r = default_estimate(&compile(&c, 8, 4));
        assert!((r.log10_success() - r.ln_success / std::f64::consts::LN_10).abs() < 1e-12);
    }

    #[test]
    fn noiseless_model_gives_unit_success() {
        let noise = NoiseModel {
            gamma_per_us: 0.0,
            epsilon: 0.0,
            single_qubit_error: 0.0,
            measurement_error: 0.0,
            k_base: 0.0,
            n_ref: 8.0,
        };
        let mut c = Circuit::new(8);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(7));
        let p = compile(&c, 8, 4);
        let r = estimate_success(&p, &noise, &GateTimeModel::default());
        assert_eq!(r.success, 1.0);
    }

    #[test]
    fn certain_failure_yields_zero_success() {
        let noise = NoiseModel {
            epsilon: 0.9,
            k_base: 100.0,
            ..NoiseModel::default()
        };
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(14), Qubit(15));
        c.cnot(Qubit(0), Qubit(1));
        let p = compile(&c, 16, 4);
        let r = estimate_success(&p, &noise, &GateTimeModel::default());
        assert_eq!(r.success, 0.0);
        assert_eq!(r.ln_success, f64::NEG_INFINITY);
    }
}
