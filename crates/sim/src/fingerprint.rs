//! [`Fingerprint`] implementations for the physical models.
//!
//! The success/timing estimators are pure functions of the compiled
//! program and these models, so a model fingerprint plus the compile
//! configuration pins every number in a run report — the property the
//! engine's compile cache rests on.

use crate::cooling::{CoolingPolicy, CoolingTrigger};
use crate::exec_time::ExecTimeModel;
use crate::gate_time::GateTimeModel;
use crate::noise::NoiseModel;
use tilt_hash::{Fingerprint, Hasher};

impl Fingerprint for NoiseModel {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_f64(self.gamma_per_us)
            .write_f64(self.epsilon)
            .write_f64(self.single_qubit_error)
            .write_f64(self.measurement_error)
            .write_f64(self.k_base)
            .write_f64(self.n_ref);
    }
}

impl Fingerprint for GateTimeModel {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_f64(self.two_qubit_slope_us)
            .write_f64(self.two_qubit_offset_us)
            .write_f64(self.single_qubit_us)
            .write_f64(self.measure_us);
    }
}

impl Fingerprint for ExecTimeModel {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_f64(self.shuttle_um_per_us)
            .write_f64(self.ion_spacing_um);
    }
}

impl Fingerprint for CoolingPolicy {
    fn fingerprint_into(&self, h: &mut Hasher) {
        match self.trigger {
            CoolingTrigger::Never => {
                h.write_tag(1);
            }
            CoolingTrigger::QuantaThreshold(q) => {
                h.write_tag(2).write_f64(q);
            }
            CoolingTrigger::EveryMoves(n) => {
                h.write_tag(3).write_usize(n);
            }
        }
        h.write_f64(self.cooling_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_fingerprints_track_every_field() {
        let base = NoiseModel::default().fingerprint();
        let hotter = NoiseModel {
            epsilon: 2e-4,
            ..NoiseModel::default()
        };
        assert_ne!(base, hotter.fingerprint());
        assert_eq!(base, NoiseModel::default().fingerprint());

        let times = GateTimeModel::default().fingerprint();
        let slower = GateTimeModel {
            measure_us: 200.0,
            ..GateTimeModel::default()
        };
        assert_ne!(times, slower.fingerprint());

        let exec = ExecTimeModel::default().fingerprint();
        let wider = ExecTimeModel {
            ion_spacing_um: 6.0,
            ..ExecTimeModel::default()
        };
        assert_ne!(exec, wider.fingerprint());
    }

    #[test]
    fn cooling_policies_are_distinct() {
        let fps = [
            CoolingPolicy::never().fingerprint(),
            CoolingPolicy::threshold(2.0).fingerprint(),
            CoolingPolicy::threshold(4.0).fingerprint(),
            CoolingPolicy::periodic(2).fingerprint(),
            CoolingPolicy::periodic(4).fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
    }
}
