//! Logical-circuit simulation riding along with compilation.
//!
//! A session can ask the engine to also *simulate* each input circuit
//! (the logical program, before decomposition and routing) and record
//! the measurement outcomes in the run report. Two simulators are
//! available, selected by [`SimMethod`]:
//!
//! * **Stabilizer** — the bit-packed tableau of `tilt-stabilizer`.
//!   Handles Clifford programs only, but scales to thousands of qubits
//!   (QEC syndrome-extraction territory). A non-Clifford gate is a
//!   structured [`TiltError::NonClifford`] naming the gate and its
//!   index.
//! * **Statevec** — the dense simulator of `tilt-statevec`, with
//!   sampled mid-circuit measurement. Any gate set, but capped at
//!   [`tilt_statevec::DEFAULT_MAX_QUBITS`] qubits.
//! * **Auto** — stabilizer when [`Circuit::is_clifford`] says the whole
//!   program qualifies, statevec otherwise.
//!
//! Simulation is deterministic per `(circuit, method, seed)`; both the
//! method and the seed are folded into the session's config
//! fingerprint, so cached run reports (which embed the [`SimReport`])
//! stay byte-identical to fresh ones.

use crate::error::TiltError;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tilt_circuit::{Circuit, Gate};
use tilt_statevec::State;

/// Which simulator a session (or request) asks for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SimMethod {
    /// Pick per circuit: stabilizer for all-Clifford programs, dense
    /// state vector otherwise.
    #[default]
    Auto,
    /// Force the dense state-vector simulator.
    Statevec,
    /// Force the stabilizer tableau (non-Clifford programs error).
    Stabilizer,
}

impl SimMethod {
    /// Parses the wire/CLI spelling.
    pub fn parse(name: &str) -> Option<SimMethod> {
        match name {
            "auto" => Some(SimMethod::Auto),
            "statevec" => Some(SimMethod::Statevec),
            "stabilizer" => Some(SimMethod::Stabilizer),
            _ => None,
        }
    }

    /// Stable tag for config fingerprinting.
    pub(crate) fn tag(self) -> u8 {
        match self {
            SimMethod::Auto => 0,
            SimMethod::Statevec => 1,
            SimMethod::Stabilizer => 2,
        }
    }
}

impl std::fmt::Display for SimMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimMethod::Auto => "auto",
            SimMethod::Statevec => "statevec",
            SimMethod::Stabilizer => "stabilizer",
        })
    }
}

/// Which simulator actually ran (the resolution of [`SimMethod::Auto`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimulatorKind {
    /// Dense state vector.
    Statevec,
    /// Stabilizer tableau.
    Stabilizer,
}

impl std::fmt::Display for SimulatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimulatorKind::Statevec => "statevec",
            SimulatorKind::Stabilizer => "stabilizer",
        })
    }
}

/// One shot of the logical circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// The simulator that ran.
    pub simulator: SimulatorKind,
    /// One `0`/`1` character per `measure` gate, in program order.
    pub bitstring: String,
    /// Number of `measure` gates executed.
    pub measurements: usize,
    /// Outcomes fixed by the state (stabilizer backend only).
    pub deterministic_measurements: Option<usize>,
    /// Fresh coin flips (stabilizer backend only).
    pub random_measurements: Option<usize>,
}

/// Runs `circuit` on the simulator `method` selects.
pub(crate) fn simulate(
    circuit: &Circuit,
    method: SimMethod,
    seed: u64,
) -> Result<SimReport, TiltError> {
    let resolved = match method {
        SimMethod::Auto => {
            if circuit.is_clifford() {
                SimulatorKind::Stabilizer
            } else {
                SimulatorKind::Statevec
            }
        }
        SimMethod::Statevec => SimulatorKind::Statevec,
        SimMethod::Stabilizer => SimulatorKind::Stabilizer,
    };
    match resolved {
        SimulatorKind::Stabilizer => {
            let run = tilt_stabilizer::run(circuit, seed).map_err(|e| TiltError::NonClifford {
                gate: e.gate,
                index: e.index,
            })?;
            Ok(SimReport {
                simulator: SimulatorKind::Stabilizer,
                measurements: run.outcomes.len(),
                deterministic_measurements: Some(run.deterministic_measurements),
                random_measurements: Some(run.random_measurements),
                bitstring: run.bitstring(),
            })
        }
        SimulatorKind::Statevec => {
            let state = State::try_zero(circuit.n_qubits()).map_err(|e| {
                let reason = match e {
                    tilt_statevec::StateError::TooManyQubits { n_qubits, cap } => format!(
                        "{n_qubits} qubits exceed the dense simulator's {cap}-qubit cap; \
                         Clifford programs can use the stabilizer method instead"
                    ),
                    other => other.to_string(),
                };
                TiltError::Simulation { reason }
            })?;
            let mut rng = SmallRng::seed_from_u64(seed);
            let (_, outcomes) = state.run_sampled(circuit, &mut rng);
            let measurements = circuit
                .iter()
                .filter(|g| matches!(g, Gate::Measure(_)))
                .count();
            debug_assert_eq!(outcomes.len(), measurements);
            Ok(SimReport {
                simulator: SimulatorKind::Statevec,
                bitstring: outcomes
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect(),
                measurements,
                deterministic_measurements: None,
                random_measurements: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;

    #[test]
    fn method_spellings_round_trip() {
        for m in [SimMethod::Auto, SimMethod::Statevec, SimMethod::Stabilizer] {
            assert_eq!(SimMethod::parse(&m.to_string()), Some(m));
        }
        assert_eq!(SimMethod::parse("qpu9000"), None);
    }

    #[test]
    fn auto_picks_stabilizer_for_clifford_programs() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure(Qubit(0));
        c.measure(Qubit(1));
        let r = simulate(&c, SimMethod::Auto, 1).unwrap();
        assert_eq!(r.simulator, SimulatorKind::Stabilizer);
        assert_eq!(r.measurements, 2);
        assert_eq!(r.bitstring.len(), 2);
        // Bell pair: the two bits agree.
        let bits: Vec<char> = r.bitstring.chars().collect();
        assert_eq!(bits[0], bits[1]);
        assert_eq!(r.random_measurements, Some(1));
    }

    #[test]
    fn auto_falls_back_to_statevec_for_non_clifford() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.t(Qubit(0));
        c.measure(Qubit(0));
        let r = simulate(&c, SimMethod::Auto, 1).unwrap();
        assert_eq!(r.simulator, SimulatorKind::Statevec);
        assert_eq!(r.measurements, 1);
        assert!(r.deterministic_measurements.is_none());
    }

    #[test]
    fn forced_stabilizer_rejects_non_clifford_with_position() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.t(Qubit(1));
        let err = simulate(&c, SimMethod::Stabilizer, 0).unwrap_err();
        match err {
            TiltError::NonClifford { gate, index } => {
                assert_eq!(index, 1);
                assert!(gate.contains('t'), "{gate}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn forced_statevec_respects_the_qubit_cap() {
        let c = Circuit::new(500);
        let err = simulate(&c, SimMethod::Statevec, 0).unwrap_err();
        assert!(matches!(err, TiltError::Simulation { .. }), "{err}");
        assert!(err.to_string().contains("stabilizer"), "{err}");
    }

    #[test]
    fn stabilizer_scales_where_statevec_cannot() {
        // 600-qubit GHZ + measure: trivially out of dense reach.
        let n = 600;
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        for i in 1..n {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        for i in 0..n {
            c.measure(Qubit(i));
        }
        let r = simulate(&c, SimMethod::Auto, 9).unwrap();
        assert_eq!(r.simulator, SimulatorKind::Stabilizer);
        assert_eq!(r.measurements, n);
        assert!(r
            .bitstring
            .chars()
            .all(|b| b == r.bitstring.chars().next().unwrap()));
    }

    #[test]
    fn same_seed_same_outcomes() {
        let mut c = Circuit::new(6);
        for i in 0..6 {
            c.h(Qubit(i));
            c.measure(Qubit(i));
        }
        for method in [SimMethod::Stabilizer, SimMethod::Statevec] {
            let a = simulate(&c, method, 5).unwrap();
            let b = simulate(&c, method, 5).unwrap();
            assert_eq!(a, b);
        }
    }
}
