//! The content-addressed compile cache.
//!
//! Every compilation in this workspace is deterministic: the same
//! circuit under the same session configuration produces the same
//! program, success estimate, and execution time, bit for bit. The cache
//! exploits that by keying compile results on
//! `(circuit digest, config fingerprint)` — see [`Circuit::digest`] and
//! the `Fingerprint` impls across `tilt-compiler`/`tilt-sim`/
//! `tilt-qccd`/`tilt-scale` — so a repeated circuit skips the whole
//! decompose → route → schedule → estimate pipeline.
//!
//! # Shape
//!
//! A bounded LRU map under one mutex — bounded by **entry count and
//! approximate payload bytes** (artifact size scales with circuit
//! depth, so a count bound alone would not cap memory). Entries are
//! [`Arc`]-shared: a hit clones the `Arc` inside the lock and
//! materializes the (potentially large) report clone *outside* it, so
//! batch workers contend only for the map op, never for the payload
//! copy. Counters (`hits`, `misses`, `evictions`, `entries`) feed the
//! service's `{"op":"stats"}` probe.
//!
//! Circuit keys are **salted**: each cache holds a random 128-bit key
//! folded into the hasher's initial state ([`Hasher::keyed`]), because
//! plain FNV is invertible and a hostile client could otherwise
//! engineer two circuits with colliding digests and poison another
//! request's response. Within one cache the salted key is exactly as
//! deterministic as the unsalted digest; across caches keys differ,
//! which is why snapshots persist their salt.
//!
//! Each entry carries two views of one result:
//!
//! * `full` — the complete [`RunReport`] (programs included), returned
//!   by [`Engine`](crate::Engine) hits so `run`/`run_batch` callers see
//!   exactly what a fresh compile would have produced.
//! * `wire` — the [`WireReport`] projection the JSON-lines service
//!   renders. Always present; it is all a *persisted* entry can restore
//!   (programs do not round-trip through the snapshot format), so
//!   disk-loaded entries serve the wire and upgrade to `full` on the
//!   next engine compile.
//!
//! # Persistence
//!
//! [`CompileCache::save`] snapshots the wire view of every entry as one
//! JSON object per line (through the workspace's own [`Json`] writer) to
//! `compile-cache.jsonl` under a directory; [`CompileCache::load`]
//! replays it. Every line embeds a `check` digest over its own payload:
//! a corrupted, truncated, hand-edited, or version-skewed line fails
//! verification and is dropped individually — a bad snapshot degrades to
//! a cold start, never to a wrong response. Stale-but-valid entries
//! (from a session configured differently) are harmless: their config
//! fingerprint no longer matches any key the server computes, so they
//! age out of the LRU untouched.

use crate::report::{BackendKind, RunReport};
use crate::sim::{SimReport, SimulatorKind};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tilt_circuit::Circuit;
use tilt_hash::{Digest, Fingerprint, Hasher};
use tilt_report::Json;

/// Entries a serve-loop cache holds by default.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default approximate-payload budget. Entries are bounded by **both**
/// count and bytes: artifact size scales with circuit depth, so an
/// entry-count bound alone would let a stream of large distinct
/// circuits grow the cache without limit (the service's request caps
/// allow multi-MB programs). The estimate is deliberately rough — a
/// DoS bound, not an accountant.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// Snapshot file name under a `--cache-dir`.
pub const SNAPSHOT_FILE: &str = "compile-cache.jsonl";

/// Snapshot format version; bumped when the line schema changes.
const SNAPSHOT_VERSION: f64 = 1.0;

/// The content address of one compile result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Salted structural digest of the source circuit
    /// ([`CompileCache::circuit_key`]).
    pub circuit: Digest,
    /// The session's config fingerprint
    /// ([`Engine::config_fingerprint`](crate::Engine::config_fingerprint)).
    pub config: Digest,
}

/// The wire-level projection of a run: every field a service response
/// carries. Numbers are stored exactly as the fresh path would render
/// them, so a response served from cache is byte-identical to one served
/// from a fresh compile.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReport {
    /// Which backend compiled the circuit.
    pub backend: BackendKind,
    /// Inserted SWAP count.
    pub swaps: usize,
    /// Opposing-swap count.
    pub opposing_swaps: usize,
    /// Tape moves / transports.
    pub moves: usize,
    /// Tape travel / shuttle segments.
    pub move_distance: usize,
    /// Compiled gate count.
    pub native_gates: usize,
    /// Compiled two-qubit gate count.
    pub native_two_qubit: usize,
    /// EPR pairs consumed (scaled backend).
    pub epr_pairs: usize,
    /// ln of the success probability.
    pub ln_success: f64,
    /// Success probability.
    pub success: f64,
    /// Execution-time estimate in µs.
    pub exec_time_us: f64,
    /// Scheduled TILT program text, when materialized (rendered lazily:
    /// at snapshot time, or carried by a loaded entry).
    pub program_text: Option<String>,
    /// Logical-circuit simulation outcome, when the session simulated.
    pub sim: Option<SimReport>,
}

impl WireReport {
    /// Projects a fresh run report onto the wire fields (program text
    /// stays lazy — see [`CacheEntry::program_text`]).
    pub fn of(report: &RunReport) -> WireReport {
        let c = &report.compile;
        WireReport {
            backend: report.backend,
            swaps: c.swap_count,
            opposing_swaps: c.opposing_swap_count,
            moves: c.move_count,
            move_distance: c.move_distance,
            native_gates: c.native_gate_count,
            native_two_qubit: c.native_two_qubit_count,
            epr_pairs: c.epr_pairs,
            ln_success: report.ln_success,
            success: report.success,
            exec_time_us: report.exec_time_us,
            program_text: None,
            sim: report.sim.clone(),
        }
    }

    /// Renders the response body shared by fresh and cached paths —
    /// the single place the wire field order is defined.
    pub(crate) fn response(&self, id: &Json, emit_program: bool) -> Json {
        let mut resp = Json::object()
            .set("id", id.clone())
            .set("ok", true)
            .set("backend", self.backend.to_string())
            .set("swaps", self.swaps)
            .set("opposing_swaps", self.opposing_swaps)
            .set("moves", self.moves)
            .set("move_distance", self.move_distance)
            .set("native_gates", self.native_gates)
            .set("native_two_qubit", self.native_two_qubit)
            .set("epr_pairs", self.epr_pairs)
            .set("ln_success", self.ln_success)
            .set("success", self.success)
            .set("exec_time_us", self.exec_time_us);
        if let Some(sim) = &self.sim {
            let mut body = Json::object()
                .set("simulator", sim.simulator.to_string())
                .set("bitstring", sim.bitstring.as_str())
                .set("measurements", sim.measurements);
            if let Some(d) = sim.deterministic_measurements {
                body = body.set("deterministic_measurements", d);
            }
            if let Some(r) = sim.random_measurements {
                body = body.set("random_measurements", r);
            }
            resp = resp.set("sim", body);
        }
        if emit_program {
            if let Some(text) = &self.program_text {
                resp = resp.set("program", text.as_str());
            }
        }
        resp
    }
}

/// One cached compile result.
#[derive(Debug)]
pub struct CacheEntry {
    /// The complete report; `None` for entries restored from a snapshot
    /// (programs do not round-trip through the wire format).
    pub full: Option<RunReport>,
    /// The wire projection, always present.
    pub wire: WireReport,
}

impl CacheEntry {
    /// Wraps a fresh run report.
    pub fn of(report: RunReport) -> CacheEntry {
        CacheEntry {
            wire: WireReport::of(&report),
            full: Some(report),
        }
    }

    /// The scheduled TILT program text for this entry, materializing
    /// from the full report when present.
    pub fn program_text(&self) -> Option<String> {
        if let Some(text) = &self.wire.program_text {
            return Some(text.clone());
        }
        self.full
            .as_ref()
            .and_then(|r| r.tilt_program())
            .map(std::string::ToString::to_string)
    }
}

/// Counter snapshot of a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh compile.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheCounters {
    /// Hit fraction of all counted lookups; 0 when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    entry: Arc<CacheEntry>,
    stamp: u64,
    /// Approximate payload bytes this entry pins (see
    /// [`approx_entry_bytes`]).
    bytes: usize,
}

struct CacheState {
    map: HashMap<CacheKey, Slot>,
    /// Recency index: stamp → key, oldest first. Stamps are unique
    /// (monotonic clock), so this is a faithful LRU order.
    order: BTreeMap<u64, CacheKey>,
    clock: u64,
    /// Sum of every resident slot's `bytes`.
    total_bytes: usize,
    /// Random key folded into every circuit digest this cache computes
    /// (see [`CompileCache::circuit_key`]); replaced by
    /// [`CompileCache::load`] so persisted keys keep matching.
    salt: u128,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheState {
    fn touch(&mut self, key: CacheKey) {
        let slot = self.map.get_mut(&key).expect("touch of resident key");
        self.order.remove(&slot.stamp);
        self.clock += 1;
        slot.stamp = self.clock;
        self.order.insert(self.clock, key);
    }
}

/// Approximate resident size of one entry: wire strings plus a
/// per-gate estimate for the retained full artifacts (scheduled ops,
/// routed circuit, per-pass reports).
fn approx_entry_bytes(entry: &CacheEntry) -> usize {
    let text = entry.wire.program_text.as_ref().map_or(0, String::len);
    let artifacts = entry
        .full
        .as_ref()
        .map_or(0, |r| r.compile.native_gate_count * 64 + 512);
    256 + text + artifacts
}

/// A random 128-bit key from the OS entropy the standard library seeds
/// [`std::collections::hash_map::RandomState`] with (the workspace
/// builds offline, without a rand crate for non-shim code).
fn random_salt() -> u128 {
    use std::hash::{BuildHasher, Hasher as _};
    let word = |tag: u64| {
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(tag);
        h.finish()
    };
    ((word(1) as u128) << 64) | word(2) as u128
}

/// A bounded, thread-safe, content-addressed compile cache.
///
/// Share one instance (behind [`Arc`]) between an
/// [`Engine`](crate::Engine) session, its batch workers, and any number
/// of service loops; see the module docs for the design.
pub struct CompileCache {
    capacity: usize,
    max_bytes: usize,
    state: Mutex<CacheState>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("CompileCache")
            .field("capacity", &self.capacity)
            .field("entries", &c.entries)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .field("evictions", &c.evictions)
            .finish()
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl CompileCache {
    /// A cache bounded to `capacity` entries (floor 1) and the default
    /// byte budget ([`DEFAULT_CACHE_BYTES`]).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache::bounded(capacity, DEFAULT_CACHE_BYTES)
    }

    /// A cache bounded to `capacity` entries **and** roughly
    /// `max_bytes` of payload (each with a floor of 1; whichever bound
    /// is hit first evicts). A single entry estimated above the byte
    /// budget is not cached at all — one giant artifact must not flush
    /// everything else.
    pub fn bounded(capacity: usize, max_bytes: usize) -> CompileCache {
        CompileCache {
            capacity: capacity.max(1),
            max_bytes: max_bytes.max(1),
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
                total_bytes: 0,
                salt: random_salt(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The state lock, recovering from poison. A batch worker that
    /// panics mid-insert (compiles can panic; see the fault harness)
    /// must not brick the cache for every future request: all state
    /// mutations under this lock are scoped so a mid-update panic at
    /// worst loses or double-counts one entry, never corrupts the
    /// map/order invariants observed by later calls.
    fn state(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The circuit half of this cache's keys: the circuit's structural
    /// content hashed under the cache's random salt. Salting makes
    /// engineered digest collisions infeasible for remote clients (FNV
    /// alone is invertible — see [`Hasher::keyed`]); determinism within
    /// one cache is all the key needs, and [`CompileCache::load`]
    /// restores the salt a snapshot's keys were computed under.
    pub fn circuit_key(&self, circuit: &Circuit) -> Digest {
        let salt = self.state().salt;
        let mut h = Hasher::keyed(salt);
        circuit.fingerprint_into(&mut h);
        h.digest()
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        let state = self.state();
        CacheCounters {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.map.len(),
        }
    }

    /// Full-report lookup for the engine: `Some` only when the entry
    /// carries a complete [`RunReport`]. Counts a hit or a miss (a
    /// wire-only entry counts as a miss — the compile it triggers
    /// upgrades the entry in place).
    pub(crate) fn get_full(&self, key: CacheKey) -> Option<Arc<CacheEntry>> {
        let mut state = self.state();
        match state.map.get(&key) {
            Some(slot) if slot.entry.full.is_some() => {
                let entry = Arc::clone(&slot.entry);
                state.hits += 1;
                state.touch(key);
                Some(entry)
            }
            _ => {
                state.misses += 1;
                None
            }
        }
    }

    /// Wire-level probe for the service: `Some` for any resident entry.
    /// Counts a hit when found and **nothing** on absence — a probe miss
    /// falls through to the engine, whose own lookup counts the miss
    /// exactly once.
    pub(crate) fn get_wire(&self, key: CacheKey) -> Option<Arc<CacheEntry>> {
        let mut state = self.state();
        let slot = state.map.get(&key)?;
        let entry = Arc::clone(&slot.entry);
        state.hits += 1;
        state.touch(key);
        Some(entry)
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used
    /// entries while either bound (entry count, payload bytes) is
    /// exceeded.
    pub(crate) fn insert(&self, key: CacheKey, entry: CacheEntry) {
        let mut state = self.state();
        self.insert_locked(&mut state, key, Arc::new(entry));
    }

    fn insert_locked(&self, state: &mut CacheState, key: CacheKey, entry: Arc<CacheEntry>) {
        // The injected panic fires before any mutation, so a poisoned
        // lock is the only damage the recovery path has to absorb.
        #[cfg(any(test, feature = "faults"))]
        crate::faults::cache_insert_seam();
        let bytes = approx_entry_bytes(&entry);
        if bytes > self.max_bytes {
            // An entry bigger than the whole budget is served fresh
            // every time rather than flushing the cache for it.
            return;
        }
        if let Some(slot) = state.map.get_mut(&key) {
            state.total_bytes = state.total_bytes - slot.bytes + bytes;
            slot.entry = entry;
            slot.bytes = bytes;
            state.touch(key);
        } else {
            state.clock += 1;
            let stamp = state.clock;
            state.map.insert(
                key,
                Slot {
                    entry,
                    stamp,
                    bytes,
                },
            );
            state.order.insert(stamp, key);
            state.total_bytes += bytes;
        }
        // The just-inserted entry has the freshest stamp, so it is
        // never its own victim while anything else remains; and alone
        // it fits (checked above).
        while state.map.len() > self.capacity || state.total_bytes > self.max_bytes {
            let (&stamp, &victim) = state.order.iter().next().expect("bounded cache non-empty");
            state.order.remove(&stamp);
            let slot = state.map.remove(&victim).expect("indexed slot resident");
            state.total_bytes -= slot.bytes;
            state.evictions += 1;
        }
    }

    /// Snapshots to `dir/compile-cache.jsonl` (creating `dir`): a
    /// header line carrying the cache's salt, then every entry's wire
    /// view, oldest first so a reload rebuilds the same recency order.
    /// Entries with non-finite estimates are skipped (JSON cannot
    /// round-trip them). Returns the number of entries written.
    ///
    /// The snapshot is replaced **atomically**: the text is written to
    /// `compile-cache.jsonl.tmp` and renamed over the live file, so a
    /// crash or SIGTERM mid-save leaves the previous snapshot intact
    /// rather than truncated in place.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, full disk).
    pub fn save(&self, dir: &Path) -> io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut text = String::new();
        let mut written = 0usize;
        {
            let state = self.state();
            // Header: the salt the entry keys below were computed
            // under. Local to this snapshot — a reader of the file
            // could already forge whole entries, so persisting the
            // salt gives up nothing against the remote-client threat
            // the salt exists for.
            let header = Json::object()
                .set("v", SNAPSHOT_VERSION)
                .set("salt", Digest(state.salt).to_hex());
            let check = payload_check(&header);
            text.push_str(&header.set("check", check.to_hex()).render());
            text.push('\n');
            for key in state.order.values() {
                let slot = &state.map[key];
                let wire = &slot.entry.wire;
                if !(wire.ln_success.is_finite()
                    && wire.success.is_finite()
                    && wire.exec_time_us.is_finite())
                {
                    continue;
                }
                let mut payload = Json::object()
                    .set("v", SNAPSHOT_VERSION)
                    .set("circuit", key.circuit.to_hex())
                    .set("config", key.config.to_hex())
                    .set("backend", wire.backend.to_string())
                    .set("swaps", wire.swaps)
                    .set("opposing_swaps", wire.opposing_swaps)
                    .set("moves", wire.moves)
                    .set("move_distance", wire.move_distance)
                    .set("native_gates", wire.native_gates)
                    .set("native_two_qubit", wire.native_two_qubit)
                    .set("epr_pairs", wire.epr_pairs)
                    .set("ln_success", wire.ln_success)
                    .set("success", wire.success)
                    .set("exec_time_us", wire.exec_time_us);
                if let Some(program) = slot.entry.program_text() {
                    payload = payload.set("program", program);
                }
                // Simulation fields are flat and optional, so v1.0
                // readers and sim-less entries are both unaffected.
                if let Some(sim) = &wire.sim {
                    payload = payload
                        .set("sim_simulator", sim.simulator.to_string())
                        .set("sim_bitstring", sim.bitstring.as_str())
                        .set("sim_measurements", sim.measurements);
                    if let Some(d) = sim.deterministic_measurements {
                        payload = payload.set("sim_deterministic", d);
                    }
                    if let Some(r) = sim.random_measurements {
                        payload = payload.set("sim_random", r);
                    }
                }
                let check = payload_check(&payload);
                text.push_str(&payload.set("check", check.to_hex()).render());
                text.push('\n');
                written += 1;
            }
        }
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        #[cfg(any(test, feature = "faults"))]
        crate::faults::snapshot_save_seam(&tmp, &mut text)?;
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
        Ok(written)
    }

    /// Restores entries from `dir/compile-cache.jsonl`, adopting the
    /// snapshot's salt (so its keys keep matching future requests —
    /// call this at startup, before serving). Every line is verified
    /// against its embedded `check` digest; entry lines that fail to
    /// parse, verify, or carry the expected fields are dropped
    /// individually, and a bad **header** rejects the whole snapshot
    /// (without the right salt its keys could never be hit anyway). A
    /// missing snapshot file is an empty load, not an error. Returns
    /// `(loaded, rejected)`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem read errors other than a missing file.
    pub fn load(&self, dir: &Path) -> io::Result<(usize, usize)> {
        let text = match std::fs::read_to_string(dir.join(SNAPSHOT_FILE)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((0, 0)),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let mut state = self.state();
        match lines.next().and_then(parse_snapshot_header) {
            Some(salt) => state.salt = salt,
            None => return Ok((0, text.lines().filter(|l| !l.trim().is_empty()).count())),
        }
        let mut loaded = 0usize;
        let mut rejected = 0usize;
        for line in lines {
            match parse_snapshot_line(line) {
                Some((key, entry)) => {
                    self.insert_locked(&mut state, key, Arc::new(entry));
                    loaded += 1;
                }
                None => rejected += 1,
            }
        }
        Ok((loaded, rejected))
    }
}

/// Verifies and decodes the snapshot header line, returning its salt.
fn parse_snapshot_header(line: &str) -> Option<u128> {
    let Ok(Json::Obj(mut entries)) = Json::parse(line) else {
        return None;
    };
    let check_at = entries.iter().position(|(k, _)| k == "check")?;
    let (_, check) = entries.remove(check_at);
    let check = Digest::from_hex(check.as_str()?)?;
    let header = Json::Obj(entries);
    if payload_check(&header) != check || header.get("v")?.as_f64()? != SNAPSHOT_VERSION {
        return None;
    }
    // Headers carry no entry fields — a swapped header/entry line
    // must not smuggle a salt-less record through.
    if header.get("circuit").is_some() {
        return None;
    }
    Some(Digest::from_hex(header.get("salt")?.as_str()?)?.0)
}

/// The integrity digest of one snapshot payload (the rendered line
/// without its `check` field).
fn payload_check(payload: &Json) -> Digest {
    let mut h = Hasher::new();
    h.write_str(&payload.render());
    h.digest()
}

/// Verifies and decodes one snapshot line; `None` rejects it.
fn parse_snapshot_line(line: &str) -> Option<(CacheKey, CacheEntry)> {
    let Ok(Json::Obj(mut entries)) = Json::parse(line) else {
        return None;
    };
    // Detach the check field, re-render the remainder, and compare: any
    // byte-level tampering either breaks the parse above or lands here.
    let check_at = entries.iter().position(|(k, _)| k == "check")?;
    let (_, check) = entries.remove(check_at);
    let check = Digest::from_hex(check.as_str()?)?;
    let payload = Json::Obj(entries);
    if payload_check(&payload) != check {
        return None;
    }
    if payload.get("v")?.as_f64()? != SNAPSHOT_VERSION {
        return None;
    }
    let key = CacheKey {
        circuit: Digest::from_hex(payload.get("circuit")?.as_str()?)?,
        config: Digest::from_hex(payload.get("config")?.as_str()?)?,
    };
    let backend = match payload.get("backend")?.as_str()? {
        "tilt" => BackendKind::Tilt,
        "qccd" => BackendKind::Qccd,
        "scaled" => BackendKind::Scaled,
        _ => return None,
    };
    let count = |field: &str| -> Option<usize> {
        let x = payload.get(field)?.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0).then_some(x as usize)
    };
    let num = |field: &str| -> Option<f64> {
        let x = payload.get(field)?.as_f64()?;
        x.is_finite().then_some(x)
    };
    let wire = WireReport {
        backend,
        swaps: count("swaps")?,
        opposing_swaps: count("opposing_swaps")?,
        moves: count("moves")?,
        move_distance: count("move_distance")?,
        native_gates: count("native_gates")?,
        native_two_qubit: count("native_two_qubit")?,
        epr_pairs: count("epr_pairs")?,
        ln_success: num("ln_success")?,
        success: num("success")?,
        exec_time_us: num("exec_time_us")?,
        program_text: match payload.get("program") {
            None => None,
            Some(p) => Some(p.as_str()?.to_string()),
        },
        sim: match payload.get("sim_simulator") {
            None => None,
            Some(s) => {
                let simulator = match s.as_str()? {
                    "statevec" => SimulatorKind::Statevec,
                    "stabilizer" => SimulatorKind::Stabilizer,
                    _ => return None,
                };
                let bitstring = payload.get("sim_bitstring")?.as_str()?.to_string();
                if !bitstring.chars().all(|c| c == '0' || c == '1') {
                    return None;
                }
                Some(SimReport {
                    simulator,
                    bitstring,
                    measurements: count("sim_measurements")?,
                    deterministic_measurements: match payload.get("sim_deterministic") {
                        None => None,
                        Some(_) => Some(count("sim_deterministic")?),
                    },
                    random_measurements: match payload.get("sim_random") {
                        None => None,
                        Some(_) => Some(count("sim_random")?),
                    },
                })
            }
        },
    };
    Some((key, CacheEntry { full: None, wire }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> CacheKey {
        CacheKey {
            circuit: Digest(n),
            config: Digest(0xc0),
        }
    }

    fn entry(moves: usize) -> CacheEntry {
        CacheEntry {
            full: None,
            wire: WireReport {
                backend: BackendKind::Tilt,
                swaps: 1,
                opposing_swaps: 0,
                moves,
                move_distance: 4,
                native_gates: 9,
                native_two_qubit: 3,
                epr_pairs: 0,
                ln_success: -0.25,
                success: 0.7788007830714049,
                exec_time_us: 191.0,
                program_text: Some(format!("move {moves}")),
                sim: None,
            },
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = CompileCache::new(2);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get_wire(key(1)).is_some());
        cache.insert(key(3), entry(3));
        assert!(cache.get_wire(key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get_wire(key(1)).is_some());
        assert!(cache.get_wire(key(3)).is_some());
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
    }

    #[test]
    fn replacing_an_entry_does_not_evict() {
        let cache = CompileCache::new(2);
        cache.insert(key(1), entry(1));
        cache.insert(key(1), entry(10));
        cache.insert(key(2), entry(2));
        let c = cache.counters();
        assert_eq!(c.evictions, 0);
        assert_eq!(c.entries, 2);
        assert_eq!(cache.get_wire(key(1)).unwrap().wire.moves, 10);
    }

    #[test]
    fn wire_probe_counts_only_hits() {
        let cache = CompileCache::new(4);
        assert!(cache.get_wire(key(1)).is_none());
        assert_eq!(cache.counters().misses, 0, "probe misses are uncounted");
        cache.insert(key(1), entry(1));
        assert!(cache.get_wire(key(1)).is_some());
        assert_eq!(cache.counters().hits, 1);
        // The engine-side lookup counts the miss exactly once.
        assert!(cache.get_full(key(2)).is_none());
        assert_eq!(cache.counters().misses, 1);
        // A wire-only entry is a miss for the full lookup.
        assert!(cache.get_full(key(1)).is_none());
        assert_eq!(cache.counters().misses, 2);
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-unit-{}", std::process::id()));
        let cache = CompileCache::new(8);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        assert_eq!(cache.save(&dir).unwrap(), 2);

        let restored = CompileCache::new(8);
        let (loaded, rejected) = restored.load(&dir).unwrap();
        assert_eq!((loaded, rejected), (2, 0));
        let got = restored.get_wire(key(2)).unwrap();
        assert_eq!(got.wire, entry(2).wire);
        assert!(got.full.is_none(), "snapshots restore the wire view only");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_sim_fields() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-sim-{}", std::process::id()));
        let cache = CompileCache::new(8);
        let mut with_sim = entry(1);
        with_sim.wire.sim = Some(SimReport {
            simulator: SimulatorKind::Stabilizer,
            bitstring: "0110".to_string(),
            measurements: 4,
            deterministic_measurements: Some(3),
            random_measurements: Some(1),
        });
        cache.insert(key(1), with_sim);
        cache.insert(key(2), entry(2));
        assert_eq!(cache.save(&dir).unwrap(), 2);

        let restored = CompileCache::new(8);
        assert_eq!(restored.load(&dir).unwrap(), (2, 0));
        let got = restored.get_wire(key(1)).unwrap();
        let sim = got.wire.sim.as_ref().expect("sim fields round-trip");
        assert_eq!(sim.simulator, SimulatorKind::Stabilizer);
        assert_eq!(sim.bitstring, "0110");
        assert_eq!(sim.deterministic_measurements, Some(3));
        assert!(restored.get_wire(key(2)).unwrap().wire.sim.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_snapshot_lines_are_rejected_individually() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-corrupt-{}", std::process::id()));
        let cache = CompileCache::new(8);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        cache.save(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Line 0 is the salt header; entries follow. Tamper with a
        // value inside the first entry — the check digest must catch
        // it.
        lines[1] = lines[1].replace("\"moves\":1", "\"moves\":7");
        // And append outright garbage plus a truncated line.
        lines.push("not json at all".to_string());
        lines.push(lines[2][..lines[2].len() / 2].to_string());
        std::fs::write(&path, lines.join("\n")).unwrap();

        let restored = CompileCache::new(8);
        let (loaded, rejected) = restored.load(&dir).unwrap();
        assert_eq!(loaded, 1, "only the intact line survives");
        assert_eq!(rejected, 3);
        assert!(restored.get_wire(key(1)).is_none());
        assert!(restored.get_wire(key(2)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_header_rejects_the_whole_snapshot() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-header-{}", std::process::id()));
        let cache = CompileCache::new(8);
        cache.insert(key(1), entry(1));
        cache.save(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Without a trustworthy salt no persisted key can be matched,
        // so a corrupt header must reject everything (cold start).
        lines[0] = lines[0].replace("\"salt\":\"", "\"salt\":\"f");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let restored = CompileCache::new(8);
        let (loaded, rejected) = restored.load(&dir).unwrap();
        assert_eq!(loaded, 0);
        assert_eq!(rejected, 2, "header plus its now-orphaned entry");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_adopts_the_snapshot_salt() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-salt-{}", std::process::id()));
        let mut circuit = Circuit::new(4);
        circuit.h(tilt_circuit::Qubit(0));
        let a = CompileCache::new(8);
        let b = CompileCache::new(8);
        assert_ne!(
            a.circuit_key(&circuit),
            b.circuit_key(&circuit),
            "independent caches hash under independent salts"
        );
        a.save(&dir).unwrap();
        b.load(&dir).unwrap();
        assert_eq!(
            a.circuit_key(&circuit),
            b.circuit_key(&circuit),
            "a restored cache computes the snapshot's keys"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_evicts_and_oversized_entries_are_skipped() {
        // Each entry below weighs ~256 + text bytes; budget fits two.
        let big_text = |tag: usize| {
            let mut e = entry(tag);
            e.wire.program_text = Some("x".repeat(2048));
            e
        };
        let cache = CompileCache::bounded(100, 6000);
        cache.insert(key(1), big_text(1));
        cache.insert(key(2), big_text(2));
        assert_eq!(cache.counters().entries, 2);
        cache.insert(key(3), big_text(3));
        let c = cache.counters();
        assert_eq!(c.entries, 2, "byte budget evicts despite spare capacity");
        assert_eq!(c.evictions, 1);
        assert!(cache.get_wire(key(1)).is_none(), "oldest paid the bytes");

        // A single entry above the whole budget is not cached at all —
        // and must not flush the resident entries.
        let mut giant = entry(9);
        giant.wire.program_text = Some("y".repeat(8192));
        cache.insert(key(9), giant);
        let c = cache.counters();
        assert!(cache.get_wire(key(9)).is_none());
        assert_eq!(c.entries, 2, "residents survive an oversized insert");
    }

    #[test]
    fn poisoned_lock_is_recovered_not_fatal() {
        let cache = Arc::new(CompileCache::new(4));
        cache.insert(key(1), entry(1));
        // Genuinely poison the mutex: a thread panics while holding it.
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("poisoning the cache lock");
        })
        .join();
        assert!(
            cache.state.lock().is_err(),
            "lock must actually be poisoned"
        );
        // Every operation recovers instead of bricking the cache.
        assert!(cache.get_wire(key(1)).is_some());
        cache.insert(key(2), entry(2));
        assert_eq!(cache.counters().entries, 2);
        assert!(cache.get_full(key(2)).is_none(), "wire-only entry");
        let dir = std::env::temp_dir().join(format!("tilt-cache-poison-{}", std::process::id()));
        assert_eq!(cache.save(&dir).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_the_snapshot_atomically() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-atomic-{}", std::process::id()));
        let cache = CompileCache::new(8);
        cache.insert(key(1), entry(1));
        cache.save(&dir).unwrap();
        // No temporary file survives a successful save, and the live
        // file is complete.
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
        let restored = CompileCache::new(8);
        assert_eq!(restored.load(&dir).unwrap(), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_an_empty_load() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-missing-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(CompileCache::new(4).load(&dir).unwrap(), (0, 0));
    }

    #[test]
    fn non_finite_entries_are_not_persisted() {
        let dir = std::env::temp_dir().join(format!("tilt-cache-nonfinite-{}", std::process::id()));
        let cache = CompileCache::new(8);
        let mut bad = entry(1);
        bad.wire.ln_success = f64::NEG_INFINITY;
        cache.insert(key(1), bad);
        cache.insert(key(2), entry(2));
        assert_eq!(cache.save(&dir).unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
