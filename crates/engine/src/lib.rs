//! The session API: one entry point for compile→simulate across every
//! backend in the workspace.
//!
//! The workspace grew three parallel front doors — `Compiler::compile` +
//! `estimate_success` for TILT, `compile_qccd`/`estimate_qccd_success`
//! for the QCCD comparator, and `compile_scaled`/`estimate_scaled` for
//! MUSIQC-style ELU arrays — each with its own error type, config
//! surface, and report shape. [`Engine`] owns the device spec, the
//! noise/timing models, and the compilation policies **once**, then runs
//! one circuit or a thousand through them:
//!
//! * [`Engine::run`] — compile and estimate a single circuit, returning
//!   the unified [`RunReport`].
//! * [`Engine::run_batch`] — many circuits through one session,
//!   fanned out over the work-stealing pool with per-worker scratch
//!   buffers reused across circuits (the ROADMAP's "service mode").
//! * [`Engine::run_batch_streaming`] — the same, delivering each report
//!   to a callback in submission order as windows complete.
//!
//! Errors from every backend unify into [`TiltError`], so `?` works
//! regardless of which architecture a session targets.
//!
//! # Example
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//! use tilt_compiler::DeviceSpec;
//! use tilt_engine::{Backend, Engine};
//!
//! let mut ghz = Circuit::new(16);
//! ghz.h(Qubit(0));
//! for i in 1..16 {
//!     ghz.cnot(Qubit(i - 1), Qubit(i));
//! }
//! let engine = Engine::builder()
//!     .backend(Backend::Tilt(DeviceSpec::new(16, 8)?))
//!     .build()?;
//! let report = engine.run(&ghz)?;
//! assert!(report.success > 0.5);
//! assert!(report.compile.move_count >= 1);
//! # Ok::<(), tilt_engine::TiltError>(())
//! ```

pub mod admission;
pub mod cache;
pub mod error;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
pub mod report;
pub mod service;
pub mod sim;
pub mod stream;
pub mod verify;

mod batch;

pub use admission::{AdmissionControl, AdmissionCounters, AdmissionPermit};
pub use cache::{CacheCounters, CacheKey, CompileCache, WireReport, DEFAULT_CACHE_CAPACITY};
pub use error::TiltError;
pub use report::{BackendKind, CompileStats, RunDetail, RunReport};
pub use service::{Service, ServiceStats, ServiceSummary, ShutdownCause};
pub use sim::{SimMethod, SimReport, SimulatorKind};
pub use stream::{NullSink, StreamOutcome, StreamSink, DEFAULT_STREAM_WINDOW};
pub use tilt_compiler::verify::{Diagnostic, Severity};
pub use verify::VerifyLevel;

use cache::CacheEntry;
use std::sync::Arc;
use std::time::Instant;
use tilt_circuit::Circuit;
use tilt_compiler::decompose::decompose_into;
use tilt_compiler::{
    CompileScratch, Compiler, DeviceSpec, InitialMapping, RouterKind, SchedulerKind,
};
use tilt_hash::{Digest, Fingerprint, Hasher};
use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
use tilt_scale::{compile_scaled, estimate_scaled, ScaleSpec};
use tilt_sim::cooling::CoolingTrigger;
use tilt_sim::{
    estimate_success, estimate_success_with_cooling, execution_time_us, CooledSuccessReport,
    CoolingPolicy, ExecTimeModel, GateTimeModel, NoiseModel,
};

/// The target architecture of a session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Backend {
    /// A monolithic TILT tape.
    Tilt(DeviceSpec),
    /// A QCCD trap array (the paper's §VI-B comparator).
    Qccd(QccdSpec),
    /// A MUSIQC-style array of TILT ELUs (§VII).
    Scaled(ScaleSpec),
}

impl Backend {
    /// The tag for this backend.
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Tilt(_) => BackendKind::Tilt,
            Backend::Qccd(_) => BackendKind::Qccd,
            Backend::Scaled(_) => BackendKind::Scaled,
        }
    }
}

/// Configures and validates an [`Engine`].
///
/// Every knob defaults to the paper's configuration: LinQ routing with
/// greedy scheduling, the Eq. 3/4/5 models, no sympathetic cooling.
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    backend: Option<Backend>,
    noise: NoiseModel,
    gate_times: GateTimeModel,
    exec_time: ExecTimeModel,
    cooling: CoolingPolicy,
    qccd_params: QccdParams,
    // `None` = "not set on the builder": the TILT backend falls back to
    // the paper defaults, the scaled backend keeps whatever the
    // `ScaleSpec` itself carries. This distinction is what lets both
    // `ScaleSpec::with_router(..)` and `.router(..)` on the builder
    // configure a scaled session without clobbering each other.
    router: Option<RouterKind>,
    scheduler: Option<SchedulerKind>,
    initial_mapping: Option<InitialMapping>,
    /// Shared content-addressed compile cache; `None` (the default)
    /// compiles every run from scratch.
    pub(crate) cache: Option<Arc<CompileCache>>,
    /// `None` (the default) = no logical-circuit simulation: report
    /// shapes stay bit-identical to pre-simulation sessions.
    sim_method: Option<SimMethod>,
    sim_seed: u64,
    /// Post-compile static verification (off by default).
    verify: VerifyLevel,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            backend: None,
            noise: NoiseModel::default(),
            gate_times: GateTimeModel::default(),
            exec_time: ExecTimeModel::default(),
            cooling: CoolingPolicy::never(),
            qccd_params: QccdParams::default(),
            router: None,
            scheduler: None,
            initial_mapping: None,
            cache: None,
            sim_method: None,
            sim_seed: 0,
            verify: VerifyLevel::Off,
        }
    }
}

impl EngineBuilder {
    /// Selects the target architecture (required).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Replaces the Eq. 4 noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the Eq. 3 gate-time model.
    pub fn gate_times(mut self, times: GateTimeModel) -> Self {
        self.gate_times = times;
        self
    }

    /// Replaces the Eq. 5 shuttle-time model (TILT backend).
    pub fn exec_time(mut self, exec: ExecTimeModel) -> Self {
        self.exec_time = exec;
        self
    }

    /// Selects a sympathetic-cooling policy (TILT backend; the default
    /// is [`CoolingPolicy::never`], the configuration the paper
    /// evaluates).
    pub fn cooling(mut self, policy: CoolingPolicy) -> Self {
        self.cooling = policy;
        self
    }

    /// Replaces the QCCD primitive cost parameters (QCCD backend).
    pub fn qccd_params(mut self, params: QccdParams) -> Self {
        self.qccd_params = params;
        self
    }

    /// Selects the swap-insertion policy (TILT backend; per-ELU LinQ on
    /// the scaled backend).
    pub fn router(mut self, router: RouterKind) -> Self {
        self.router = Some(router);
        self
    }

    /// Selects the tape-scheduling policy (TILT backend; per-ELU LinQ
    /// on the scaled backend).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Selects the initial-placement strategy (TILT backend; per-ELU
    /// LinQ on the scaled backend).
    pub fn initial_mapping(mut self, initial: InitialMapping) -> Self {
        self.initial_mapping = Some(initial);
        self
    }

    /// Attaches a content-addressed compile cache: runs whose
    /// `(circuit digest, config fingerprint)` key is resident return the
    /// cached report instead of recompiling. The cache is shared — hand
    /// the same [`Arc`] to several builders (or clone a builder, as the
    /// service does for per-request overrides) and they serve each
    /// other's hits. Cached results are byte-identical to fresh
    /// compiles; see [`cache`](crate::cache) for the key model.
    pub fn compile_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables logical-circuit simulation alongside compilation: every
    /// run also executes the *input* circuit on the simulator `method`
    /// selects and records the outcome in [`RunReport::sim`]. Off by
    /// default. The method (and seed) become part of the session's
    /// config fingerprint, so cached reports carry matching outcomes.
    pub fn simulate(mut self, method: SimMethod) -> Self {
        self.sim_method = Some(method);
        self
    }

    /// Seeds the simulator's RNG (default 0). Only observable when
    /// [`EngineBuilder::simulate`] is on.
    pub fn sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = seed;
        self
    }

    /// Enables post-compile static verification: every run's compiled
    /// artifacts are re-checked against the backend's program
    /// invariants (see [`verify`](crate::verify) for the levels and
    /// [`tilt_compiler::verify`] for the rule taxonomy). Off by
    /// default; the level becomes part of the session's config
    /// fingerprint so cached reports carry their diagnostics.
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// Validation happens **here, once** — router parameters are checked
    /// against the device spec so that per-circuit [`Engine::run`] calls
    /// never re-discover a configuration error mid-batch.
    ///
    /// # Errors
    ///
    /// [`TiltError::Config`] when no backend was selected;
    /// [`TiltError::Compile`] when the router configuration is
    /// inconsistent with the TILT device spec.
    pub fn build(self) -> Result<Engine, TiltError> {
        let mut backend = self.backend.ok_or_else(|| TiltError::Config {
            reason: "no backend selected: call .backend(Backend::Tilt(spec)) or similar".into(),
        })?;
        let compiler = match &mut backend {
            Backend::Tilt(spec) => {
                let router = self.router.unwrap_or_default();
                router.validate(*spec)?;
                let mut compiler = Compiler::new(*spec);
                compiler
                    .router(router)
                    .scheduler(self.scheduler.unwrap_or_default())
                    .initial_mapping(self.initial_mapping.unwrap_or_default());
                Some(compiler)
            }
            // The session's routing knobs reach every ELU's LinQ
            // instance: explicitly-set builder policies overlay the
            // spec's own, and the combination is validated against the
            // per-ELU geometry here, once.
            Backend::Scaled(spec) => {
                if let Some(router) = self.router {
                    spec.router = router;
                }
                if let Some(scheduler) = self.scheduler {
                    spec.scheduler = scheduler;
                }
                if let Some(initial) = self.initial_mapping {
                    spec.initial_mapping = initial;
                }
                spec.validate_policies()?;
                None
            }
            // The QCCD spec was validated at construction; the tape
            // routing knobs do not apply to it.
            Backend::Qccd(_) => None,
        };
        // The config half of the compile-cache key, computed once from
        // the *resolved* configuration (post-overlay, post-default).
        let config_fp = config_fingerprint(
            &backend,
            self.router.unwrap_or_default(),
            self.scheduler.unwrap_or_default(),
            self.initial_mapping.unwrap_or_default(),
            &self.noise,
            &self.gate_times,
            &self.exec_time,
            &self.cooling,
            &self.qccd_params,
            self.sim_method.map(|m| (m, self.sim_seed)),
            self.verify,
        );
        Ok(Engine {
            backend,
            compiler,
            noise: self.noise,
            gate_times: self.gate_times,
            exec_time: self.exec_time,
            cooling: self.cooling,
            qccd_params: self.qccd_params,
            router: self.router.unwrap_or_default(),
            cache: self.cache,
            sim: self.sim_method.map(|m| (m, self.sim_seed)),
            verify: self.verify,
            config_fp,
        })
    }
}

/// Fingerprints exactly the configuration surface each backend's
/// compile + estimate path consults. Distinct backends write distinct
/// leading tags, so a TILT session and a QCCD session never share keys
/// even on improbable hash agreement of their specs.
#[allow(clippy::too_many_arguments)]
fn config_fingerprint(
    backend: &Backend,
    router: RouterKind,
    scheduler: SchedulerKind,
    initial_mapping: InitialMapping,
    noise: &NoiseModel,
    gate_times: &GateTimeModel,
    exec_time: &ExecTimeModel,
    cooling: &CoolingPolicy,
    qccd_params: &QccdParams,
    sim: Option<(SimMethod, u64)>,
    verify: VerifyLevel,
) -> Digest {
    let mut h = Hasher::new();
    match backend {
        Backend::Tilt(spec) => {
            h.write_str("tilt");
            spec.fingerprint_into(&mut h);
            router.fingerprint_into(&mut h);
            scheduler.fingerprint_into(&mut h);
            initial_mapping.fingerprint_into(&mut h);
            noise.fingerprint_into(&mut h);
            gate_times.fingerprint_into(&mut h);
            exec_time.fingerprint_into(&mut h);
            cooling.fingerprint_into(&mut h);
        }
        Backend::Qccd(spec) => {
            h.write_str("qccd");
            spec.fingerprint_into(&mut h);
            qccd_params.fingerprint_into(&mut h);
            noise.fingerprint_into(&mut h);
            gate_times.fingerprint_into(&mut h);
        }
        // The scaled spec already carries its per-ELU policies (the
        // builder overlay ran before this), its geometry, and the
        // photonic-link model.
        Backend::Scaled(spec) => {
            h.write_str("scaled");
            spec.fingerprint_into(&mut h);
            noise.fingerprint_into(&mut h);
            gate_times.fingerprint_into(&mut h);
        }
    }
    // Simulation outcomes live inside the cached report, so the method
    // and seed must split the key space; sessions without simulation
    // write nothing and keep their pre-simulation fingerprints.
    if let Some((method, seed)) = sim {
        h.write_str("sim");
        h.write_tag(method.tag());
        h.write_u64(seed);
    }
    // Diagnostics ride inside the cached report, so the level must
    // split the key space; `Off` sessions write nothing and keep their
    // pre-verifier fingerprints.
    if verify != VerifyLevel::Off {
        h.write_str("verify");
        h.write_tag(verify.tag());
    }
    h.digest()
}

/// Per-run scratch buffers, reused across circuits within a batch
/// worker (one per pool thread).
#[derive(Clone, Debug, Default)]
pub(crate) struct EngineScratch {
    compile: CompileScratch,
    native: Circuit,
}

/// A compile→simulate session bound to one backend and one set of
/// models.
///
/// Build with [`Engine::builder`] (or the [`Engine::tilt`] /
/// [`Engine::qccd`] / [`Engine::scaled`] shorthands), then call
/// [`Engine::run`] per circuit or [`Engine::run_batch`] for many. The
/// engine is immutable and `Sync`: one instance serves any number of
/// threads.
#[derive(Clone, Debug)]
pub struct Engine {
    backend: Backend,
    /// Pre-configured LinQ compiler ([`Backend::Tilt`] only).
    compiler: Option<Compiler>,
    noise: NoiseModel,
    gate_times: GateTimeModel,
    exec_time: ExecTimeModel,
    cooling: CoolingPolicy,
    qccd_params: QccdParams,
    /// Resolved routing policy — bounds the verifier's swap-chain rule.
    router: RouterKind,
    /// Shared compile cache, when the builder attached one.
    cache: Option<Arc<CompileCache>>,
    /// Logical-circuit simulation config (method, seed), when enabled.
    sim: Option<(SimMethod, u64)>,
    /// Post-compile static verification level.
    verify: VerifyLevel,
    /// Fingerprint of the resolved configuration — the config half of
    /// every cache key this session produces.
    config_fp: Digest,
}

impl Engine {
    /// Starts a builder with the paper-default models and policies.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// A default-configured session for a TILT tape.
    pub fn tilt(spec: DeviceSpec) -> Engine {
        Engine::builder()
            .backend(Backend::Tilt(spec))
            .build()
            .expect("a valid DeviceSpec with default policies always builds")
    }

    /// A default-configured session for a QCCD trap array.
    pub fn qccd(spec: QccdSpec) -> Engine {
        Engine::builder()
            .backend(Backend::Qccd(spec))
            .build()
            .expect("a valid QccdSpec with default policies always builds")
    }

    /// A default-configured session for an ELU array.
    pub fn scaled(spec: ScaleSpec) -> Engine {
        Engine::builder()
            .backend(Backend::Scaled(spec))
            .build()
            .expect("a valid ScaleSpec with default policies always builds")
    }

    /// The session's backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The session's noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The session's gate-time model.
    pub fn gate_times(&self) -> &GateTimeModel {
        &self.gate_times
    }

    /// The session's compile cache, when one is attached.
    pub fn compile_cache(&self) -> Option<&Arc<CompileCache>> {
        self.cache.as_ref()
    }

    /// Fingerprint of this session's resolved configuration — combined
    /// with [`tilt_circuit::Circuit::digest`], the complete compile-cache
    /// key. Two engines with equal fingerprints produce byte-identical
    /// results for every circuit.
    pub fn config_fingerprint(&self) -> Digest {
        self.config_fp
    }

    /// Compiles and estimates one circuit.
    ///
    /// # Errors
    ///
    /// Any backend compile error, unified into [`TiltError`]: invalid
    /// circuits, circuits wider than the device, per-ELU failures.
    ///
    /// # Example
    ///
    /// ```
    /// use tilt_benchmarks::bv::bernstein_vazirani;
    /// use tilt_compiler::DeviceSpec;
    /// use tilt_engine::Engine;
    ///
    /// let engine = Engine::tilt(DeviceSpec::new(16, 8)?);
    /// let report = engine.run(&bernstein_vazirani(16, &[true; 15]))?;
    /// assert!(report.success > 0.0 && report.success < 1.0);
    /// # Ok::<(), tilt_engine::TiltError>(())
    /// ```
    pub fn run(&self, circuit: &Circuit) -> Result<RunReport, TiltError> {
        self.run_with_scratch(circuit, &mut EngineScratch::default())
    }

    /// [`Engine::run`] with caller-owned scratch — identical output, but
    /// transient compile buffers are recycled between calls. The batch
    /// layer hands one scratch to each pool worker.
    pub(crate) fn run_with_scratch(
        &self,
        circuit: &Circuit,
        scratch: &mut EngineScratch,
    ) -> Result<RunReport, TiltError> {
        let Some(cache) = &self.cache else {
            return self.run_uncached(circuit, scratch);
        };
        let key = CacheKey {
            circuit: cache.circuit_key(circuit),
            config: self.config_fp,
        };
        if let Some(entry) = cache.get_full(key) {
            let report = entry
                .full
                .as_ref()
                .expect("get_full returns complete entries");
            // The Arc clone happened inside the lock; the (potentially
            // large) report clone happens here, outside it, so cache
            // hits from parallel batch workers do not serialize.
            return Ok(report.clone());
        }
        let report = self.run_uncached(circuit, scratch)?;
        cache.insert(key, CacheEntry::of(report.clone()));
        Ok(report)
    }

    /// The uncached compile→estimate path (also the upgrade path for
    /// entries restored from a snapshot, which carry only wire data).
    fn run_uncached(
        &self,
        circuit: &Circuit,
        scratch: &mut EngineScratch,
    ) -> Result<RunReport, TiltError> {
        #[cfg(any(test, feature = "faults"))]
        crate::faults::before_compile(circuit.n_qubits());
        let mut report = match &self.backend {
            Backend::Tilt(_) => self.run_tilt(circuit, scratch),
            Backend::Qccd(spec) => self.run_qccd(circuit, *spec, scratch),
            Backend::Scaled(spec) => self.run_scaled(circuit, *spec),
        }?;
        // Simulation runs on the *logical* input circuit (what the user
        // wrote), not the routed native program — outcomes are
        // architecture-independent by construction.
        if let Some((method, seed)) = self.sim {
            report.sim = Some(sim::simulate(circuit, method, seed)?);
        }
        if self.verify != VerifyLevel::Off {
            let diags = verify::check(&report, self.router);
            if self.verify == VerifyLevel::Strict {
                if let Some(first) = diags.iter().find(|d| d.severity == Severity::Error) {
                    return Err(TiltError::Verify {
                        count: diags.len(),
                        first: first.to_string(),
                    });
                }
            }
            report.diagnostics = diags;
        }
        Ok(report)
    }

    fn run_tilt(
        &self,
        circuit: &Circuit,
        scratch: &mut EngineScratch,
    ) -> Result<RunReport, TiltError> {
        let compiler = self
            .compiler
            .as_ref()
            .expect("Tilt backend always carries a compiler");
        let output = compiler.compile_with_scratch(circuit, &mut scratch.compile)?;
        // `CoolingPolicy::never` takes the plain estimator path so the
        // session API is bit-identical to the legacy
        // `Compiler::compile` + `estimate_success` flow.
        let success = if matches!(self.cooling.trigger, CoolingTrigger::Never) {
            CooledSuccessReport {
                report: estimate_success(&output.program, &self.noise, &self.gate_times),
                cooling_rounds: 0,
                cooling_time_us: 0.0,
            }
        } else {
            estimate_success_with_cooling(
                &output.program,
                &self.noise,
                &self.gate_times,
                &self.cooling,
            )
        };
        let exec_time_us = execution_time_us(&output.program, &self.gate_times, &self.exec_time)
            + success.cooling_time_us;
        let r = &output.report;
        let compile = CompileStats {
            swap_count: r.swap_count,
            opposing_swap_count: r.opposing_swap_count,
            move_count: r.move_count,
            move_distance: r.move_distance_ions,
            native_gate_count: r.native_gate_count,
            native_two_qubit_count: r.native_two_qubit_count,
            epr_pairs: 0,
            t_decompose: r.t_decompose,
            t_swap: r.t_swap,
            t_move: r.t_move,
        };
        Ok(RunReport {
            backend: BackendKind::Tilt,
            compile,
            ln_success: success.report.ln_success,
            success: success.report.success,
            exec_time_us,
            sim: None,
            diagnostics: Vec::new(),
            detail: RunDetail::Tilt { output, success },
        })
    }

    fn run_qccd(
        &self,
        circuit: &Circuit,
        spec: QccdSpec,
        scratch: &mut EngineScratch,
    ) -> Result<RunReport, TiltError> {
        // Lower to the native set first so gate counts are comparable
        // with the TILT backend (the Fig. 8 methodology).
        let t0 = Instant::now();
        decompose_into(circuit, &mut scratch.native);
        let t_decompose = t0.elapsed();
        let t1 = Instant::now();
        let program = compile_qccd(&scratch.native, &spec)?;
        let t_swap = t1.elapsed();
        let report =
            estimate_qccd_success(&program, &self.noise, &self.gate_times, &self.qccd_params);
        let compile = CompileStats {
            swap_count: 0,
            opposing_swap_count: 0,
            move_count: report.transports,
            move_distance: report.shuttle_segments,
            native_gate_count: report.two_qubit_gates
                + report.single_qubit_gates
                + report.measurements,
            native_two_qubit_count: report.two_qubit_gates,
            epr_pairs: 0,
            t_decompose,
            t_swap,
            t_move: std::time::Duration::ZERO,
        };
        Ok(RunReport {
            backend: BackendKind::Qccd,
            compile,
            ln_success: report.ln_success,
            success: report.success,
            exec_time_us: report.exec_time_us,
            sim: None,
            diagnostics: Vec::new(),
            detail: RunDetail::Qccd { program, report },
        })
    }

    fn run_scaled(&self, circuit: &Circuit, spec: ScaleSpec) -> Result<RunReport, TiltError> {
        let program = compile_scaled(circuit, &spec)?;
        let report = estimate_scaled(&program, &self.noise, &self.gate_times);
        let mut compile = CompileStats {
            swap_count: report.total_swaps,
            move_count: report.total_moves,
            epr_pairs: program.epr_pairs,
            ..CompileStats::default()
        };
        for out in &program.elu_outputs {
            compile.opposing_swap_count += out.report.opposing_swap_count;
            compile.move_distance += out.report.move_distance_ions;
            compile.native_gate_count += out.report.native_gate_count;
            compile.native_two_qubit_count += out.report.native_two_qubit_count;
            compile.t_decompose += out.report.t_decompose;
            compile.t_swap += out.report.t_swap;
            compile.t_move += out.report.t_move;
        }
        Ok(RunReport {
            backend: BackendKind::Scaled,
            compile,
            ln_success: report.ln_success,
            success: report.success,
            exec_time_us: report.exec_time_us,
            sim: None,
            diagnostics: Vec::new(),
            detail: RunDetail::Scaled { program, report },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_benchmarks::qaoa::qaoa_maxcut;
    use tilt_circuit::Qubit;
    use tilt_compiler::route::LinqConfig;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        for i in 1..n {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        c
    }

    #[test]
    fn builder_requires_a_backend() {
        let err = Engine::builder().build().unwrap_err();
        assert!(matches!(err, TiltError::Config { .. }));
        assert!(err.to_string().contains("no backend"));
    }

    #[test]
    fn builder_validates_router_against_spec() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let err = Engine::builder()
            .backend(Backend::Tilt(spec))
            .router(RouterKind::Linq(LinqConfig::with_max_swap_len(7)))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TiltError::Compile(tilt_compiler::CompileError::InvalidRouterConfig { .. })
        ));
    }

    #[test]
    fn tilt_run_reports_unified_stats() {
        let engine = Engine::tilt(DeviceSpec::new(16, 4).unwrap());
        let report = engine.run(&ghz(16)).unwrap();
        assert_eq!(report.backend, BackendKind::Tilt);
        assert!(report.success > 0.0 && report.success < 1.0);
        assert!(report.exec_time_us > 0.0);
        assert!(report.compile.move_count >= 1);
        assert_eq!(report.compile.epr_pairs, 0);
        let out = report.tilt_output().unwrap();
        assert_eq!(out.report.move_count, report.compile.move_count);
    }

    #[test]
    fn qccd_run_reports_transports() {
        let engine = Engine::qccd(QccdSpec::for_qubits(16, 5).unwrap());
        let report = engine.run(&ghz(16)).unwrap();
        assert_eq!(report.backend, BackendKind::Qccd);
        assert!(report.compile.move_count > 0, "cross-trap GHZ must shuttle");
        assert_eq!(report.compile.swap_count, 0);
        assert!(report.qccd_report().unwrap().transports > 0);
    }

    #[test]
    fn scaled_run_reports_epr_pairs() {
        let engine = Engine::scaled(ScaleSpec::new(10, 4).unwrap());
        let report = engine.run(&ghz(16)).unwrap();
        assert_eq!(report.backend, BackendKind::Scaled);
        assert!(
            report.compile.epr_pairs >= 1,
            "GHZ chain crosses the ELU cut"
        );
        assert_eq!(
            report.compile.epr_pairs,
            report.scale_report().unwrap().remote_gates
        );
    }

    #[test]
    fn scaled_session_threads_policy_knobs() {
        // ROADMAP engine-coverage item: a scaled session with a
        // non-default scheduler must actually change the per-ELU
        // compiles (the knobs used to be silently dropped).
        let circuit = qaoa_maxcut(32, 2, 5);
        let spec = ScaleSpec::new(10, 4).unwrap();
        let base = Engine::scaled(spec).run(&circuit).unwrap();
        let naive = Engine::builder()
            .backend(Backend::Scaled(spec))
            .scheduler(SchedulerKind::NaiveNextGate)
            .build()
            .unwrap()
            .run(&circuit)
            .unwrap();
        assert_ne!(
            base.compile.move_count, naive.compile.move_count,
            "session scheduler must reach the ELU compilers"
        );
        // Builder-level and spec-level configuration are the same knob.
        let via_spec = Engine::scaled(spec.with_scheduler(SchedulerKind::NaiveNextGate))
            .run(&circuit)
            .unwrap();
        assert_eq!(naive.compile.move_count, via_spec.compile.move_count);
        assert_eq!(naive.ln_success, via_spec.ln_success);
    }

    #[test]
    fn scaled_builder_validates_router_against_elu_geometry() {
        let spec = ScaleSpec::new(10, 4).unwrap();
        let err = Engine::builder()
            .backend(Backend::Scaled(spec))
            .router(RouterKind::Linq(LinqConfig::with_max_swap_len(9)))
            .build()
            .unwrap_err();
        assert!(matches!(err, TiltError::Scale(_)), "{err}");
    }

    #[test]
    fn run_rejects_wide_circuits_per_backend() {
        let wide = Circuit::new(80);
        let tilt = Engine::tilt(DeviceSpec::tilt64(16));
        assert!(matches!(
            tilt.run(&wide).unwrap_err(),
            TiltError::Compile(tilt_compiler::CompileError::CircuitTooWide { .. })
        ));
        let qccd = Engine::qccd(QccdSpec::for_qubits(64, 16).unwrap());
        assert!(matches!(
            qccd.run(&wide).unwrap_err(),
            TiltError::Qccd(tilt_qccd::QccdError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn cooling_policy_changes_the_estimate() {
        let circuit = qaoa_maxcut(24, 4, 3);
        let spec = DeviceSpec::new(24, 4).unwrap();
        let base = Engine::tilt(spec).run(&circuit).unwrap();
        let cooled = Engine::builder()
            .backend(Backend::Tilt(spec))
            .cooling(CoolingPolicy::threshold(2.0))
            .build()
            .unwrap()
            .run(&circuit)
            .unwrap();
        let s = cooled.tilt_success().unwrap();
        assert!(s.cooling_rounds > 0);
        assert!(
            cooled.success > base.success,
            "cooling must help a hot chain"
        );
        assert!(
            cooled.exec_time_us > base.exec_time_us,
            "cooling costs time"
        );
    }

    #[test]
    fn simulation_is_off_by_default() {
        let engine = Engine::tilt(DeviceSpec::new(8, 4).unwrap());
        assert!(engine.run(&ghz(8)).unwrap().sim.is_none());
    }

    #[test]
    fn simulation_rides_along_with_the_report() {
        let mut c = ghz(8);
        for i in 0..8 {
            c.measure(Qubit(i));
        }
        let engine = Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(8, 4).unwrap()))
            .simulate(SimMethod::Auto)
            .sim_seed(3)
            .build()
            .unwrap();
        let report = engine.run(&c).unwrap();
        let sim = report.sim.expect("simulation was requested");
        assert_eq!(sim.simulator, SimulatorKind::Stabilizer);
        assert_eq!(sim.measurements, 8);
        assert!(sim.bitstring == "00000000" || sim.bitstring == "11111111");
    }

    #[test]
    fn sim_config_splits_the_fingerprint() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let plain = Engine::tilt(spec);
        let auto = Engine::builder()
            .backend(Backend::Tilt(spec))
            .simulate(SimMethod::Auto)
            .build()
            .unwrap();
        let seeded = Engine::builder()
            .backend(Backend::Tilt(spec))
            .simulate(SimMethod::Auto)
            .sim_seed(7)
            .build()
            .unwrap();
        let forced = Engine::builder()
            .backend(Backend::Tilt(spec))
            .simulate(SimMethod::Stabilizer)
            .build()
            .unwrap();
        let fps = [
            plain.config_fingerprint(),
            auto.config_fingerprint(),
            seeded.config_fingerprint(),
            forced.config_fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "fingerprints {i} and {j} collide");
            }
        }
    }

    #[test]
    fn verification_is_off_by_default_and_clean_when_on() {
        // All three backends, strict: a fresh compile must carry zero
        // diagnostics — every integration circuit doubles as a verifier
        // fixture.
        let circuit = ghz(16);
        let off = Engine::tilt(DeviceSpec::new(16, 4).unwrap());
        assert!(off.run(&circuit).unwrap().diagnostics.is_empty());
        for backend in [
            Backend::Tilt(DeviceSpec::new(16, 4).unwrap()),
            Backend::Qccd(QccdSpec::for_qubits(16, 5).unwrap()),
            Backend::Scaled(ScaleSpec::new(10, 4).unwrap()),
        ] {
            let engine = Engine::builder()
                .backend(backend)
                .verify(VerifyLevel::Strict)
                .build()
                .unwrap();
            let report = engine.run(&circuit).unwrap_or_else(|e| {
                panic!("clean compile must verify under strict on {backend:?}: {e}")
            });
            assert_eq!(report.diagnostics, Vec::new());
        }
    }

    #[test]
    fn warn_level_attaches_diagnostics_without_failing() {
        let circuit = qaoa_maxcut(24, 4, 2);
        let engine = Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(24, 6).unwrap()))
            .verify(VerifyLevel::Warn)
            .build()
            .unwrap();
        let report = engine.run(&circuit).unwrap();
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn verify_level_splits_the_fingerprint() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let mk = |level| {
            Engine::builder()
                .backend(Backend::Tilt(spec))
                .verify(level)
                .build()
                .unwrap()
                .config_fingerprint()
        };
        let fps = [
            mk(VerifyLevel::Off),
            mk(VerifyLevel::Warn),
            mk(VerifyLevel::Strict),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "fingerprints {i} and {j} collide");
            }
        }
        // Off is fingerprint-neutral: pre-verifier cache keys survive.
        assert_eq!(fps[0], Engine::tilt(spec).config_fingerprint());
    }

    #[test]
    fn non_clifford_under_forced_stabilizer_is_a_structured_error() {
        let mut c = ghz(8);
        c.t(Qubit(0));
        let engine = Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(8, 4).unwrap()))
            .simulate(SimMethod::Stabilizer)
            .build()
            .unwrap();
        let err = engine.run(&c).unwrap_err();
        assert!(
            matches!(err, TiltError::NonClifford { index: 8, .. }),
            "{err}"
        );
    }

    #[test]
    fn custom_models_flow_through() {
        // A noiseless model gives certain success on TILT.
        let noiseless = NoiseModel {
            gamma_per_us: 0.0,
            epsilon: 0.0,
            single_qubit_error: 0.0,
            measurement_error: 0.0,
            k_base: 0.0,
            n_ref: 8.0,
        };
        let engine = Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(8, 4).unwrap()))
            .noise(noiseless)
            .build()
            .unwrap();
        let report = engine.run(&ghz(8)).unwrap();
        assert_eq!(report.success, 1.0);
    }
}
