//! The batch/service layer: many circuits through one session.
//!
//! Batch runs amortize everything the session already owns — validated
//! specs, router configuration, the models — and add two further
//! economies on top:
//!
//! * **Parallel fan-out.** Circuits within a window are compiled
//!   concurrently on the work-stealing pool (`rayon::par_chunks_mut`),
//!   each landing in its own pre-allocated result slot.
//! * **Per-worker scratch reuse.** Every pool thread keeps a
//!   thread-local [`EngineScratch`] whose transient compile buffers
//!   (decomposed native circuit, swap-lowered circuit) are recycled
//!   across every circuit that worker processes — the allocation cost
//!   of pipeline setup is paid per worker, not per circuit.
//!
//! Reports stream back **in submission order**: the batch advances one
//! bounded window at a time, so memory stays proportional to the window
//! size (not the batch) and the callback variant observes circuit `i`
//! before circuit `i + window` starts compiling.

use crate::{Engine, EngineScratch, RunReport, TiltError};
use rayon::prelude::*;
use std::cell::RefCell;
use tilt_circuit::Circuit;

/// Circuits processed concurrently per window: enough slack for the
/// pool to stay busy across uneven circuit sizes, small enough that
/// streaming consumers see results promptly.
const WINDOW_PER_THREAD: usize = 4;

thread_local! {
    /// One scratch per pool worker, reused across circuits and batches.
    static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
}

/// One batch slot: the circuit moves in, the report moves out.
type Slot = (Option<Circuit>, Option<Result<RunReport, TiltError>>);

impl Engine {
    /// Runs every circuit through the session, returning one result per
    /// circuit **in submission order**.
    ///
    /// Individual failures (e.g. one circuit wider than the tape) do not
    /// abort the batch — each circuit gets its own `Result`.
    ///
    /// # Example
    ///
    /// ```
    /// use tilt_circuit::{Circuit, Qubit};
    /// use tilt_compiler::DeviceSpec;
    /// use tilt_engine::Engine;
    ///
    /// let engine = Engine::tilt(DeviceSpec::new(12, 4)?);
    /// let batch: Vec<Circuit> = (2..12)
    ///     .map(|k| {
    ///         let mut c = Circuit::new(12);
    ///         c.h(Qubit(0)).cnot(Qubit(0), Qubit(k));
    ///         c
    ///     })
    ///     .collect();
    /// let reports = engine.run_batch(batch);
    /// assert_eq!(reports.len(), 10);
    /// assert!(reports.iter().all(|r| r.is_ok()));
    /// # Ok::<(), tilt_engine::TiltError>(())
    /// ```
    pub fn run_batch(
        &self,
        circuits: impl IntoIterator<Item = Circuit>,
    ) -> Vec<Result<RunReport, TiltError>> {
        let mut reports = Vec::new();
        self.run_batch_streaming(circuits, |_, report| reports.push(report));
        reports
    }

    /// [`Engine::run_batch`], delivering each report to `sink` as its
    /// window completes — still in submission order, with `index`
    /// counting from 0.
    ///
    /// Use this to render progress (one table row per circuit) or to
    /// aggregate over batches too large to hold every report in memory.
    pub fn run_batch_streaming<F>(&self, circuits: impl IntoIterator<Item = Circuit>, mut sink: F)
    where
        F: FnMut(usize, Result<RunReport, TiltError>),
    {
        let window = (rayon::current_num_threads() * WINDOW_PER_THREAD).max(8);
        let mut iter = circuits.into_iter();
        let mut next_index = 0usize;
        loop {
            let mut slots: Vec<Slot> = iter
                .by_ref()
                .take(window)
                .map(|c| (Some(c), None))
                .collect();
            if slots.is_empty() {
                return;
            }
            // One slot per chunk: the pool steals whole circuits, and
            // each worker compiles through its thread-local scratch.
            // The scratch is *taken* out of the cell for the duration
            // of the run rather than held via `borrow_mut`: the shim
            // pool's help-first `join` can execute another stolen slot
            // on this thread while a future parallel stage inside the
            // run waits, and a held borrow would panic there — a taken
            // scratch just hands the re-entrant run a fresh default.
            slots.par_chunks_mut(1).for_each(|chunk| {
                let slot = &mut chunk[0];
                let circuit = slot.0.take().expect("slot filled exactly once");
                // Panic isolation: a compile that panics (a compiler bug
                // on one poisoned circuit) must cost exactly that
                // circuit its result — not the worker, the pool, or the
                // rest of the window. The scratch is taken and restored
                // *inside* the unwind boundary so a mid-compile panic
                // discards its possibly-corrupt buffers; the worker's
                // next circuit starts from a fresh default.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut scratch = SCRATCH.with(RefCell::take);
                    let result = self.run_with_scratch(&circuit, &mut scratch);
                    SCRATCH.with(|s| *s.borrow_mut() = scratch);
                    result
                }));
                slot.1 = Some(outcome.unwrap_or_else(|payload| {
                    Err(TiltError::Internal {
                        // `.as_ref()`: downcast the payload itself, not
                        // the box holding it.
                        message: crate::error::panic_message(payload.as_ref()),
                    })
                }));
            });
            for (_, report) in slots {
                sink(next_index, report.expect("window fully processed"));
                next_index += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Engine, TiltError};
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::DeviceSpec;

    fn chain(n: usize, k: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1 + k % (n - 1)));
        c
    }

    #[test]
    fn batch_matches_single_runs_in_order() {
        let engine = Engine::tilt(DeviceSpec::new(12, 4).unwrap());
        let circuits: Vec<Circuit> = (1..40).map(|k| chain(12, k)).collect();
        let batch = engine.run_batch(circuits.clone());
        assert_eq!(batch.len(), circuits.len());
        for (c, b) in circuits.iter().zip(&batch) {
            let single = engine.run(c).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(
                single.tilt_program().unwrap(),
                b.tilt_program().unwrap(),
                "batch must be decision-identical to single runs"
            );
            assert_eq!(single.ln_success, b.ln_success);
            assert_eq!(single.exec_time_us, b.exec_time_us);
        }
    }

    #[test]
    fn one_bad_circuit_does_not_poison_the_batch() {
        let engine = Engine::tilt(DeviceSpec::new(8, 4).unwrap());
        let circuits = vec![chain(8, 3), Circuit::new(20), chain(8, 5)];
        let reports = engine.run_batch(circuits);
        assert!(reports[0].is_ok());
        assert!(matches!(reports[1], Err(TiltError::Compile(_))));
        assert!(reports[2].is_ok());
    }

    #[test]
    fn a_panicking_compile_is_isolated_to_its_slot() {
        // Width 37 is used by no other test in this crate, so the armed
        // plan cannot interfere with concurrently running tests.
        let guard = crate::faults::install(crate::faults::FaultPlan {
            panic_on_width: Some(37),
            ..Default::default()
        });
        let engine = Engine::tilt(DeviceSpec::new(40, 4).unwrap());
        let circuits = vec![chain(8, 1), chain(37, 2), chain(8, 3)];
        let reports = engine.run_batch(circuits);
        assert!(reports[0].is_ok(), "{:?}", reports[0]);
        assert!(
            matches!(&reports[1], Err(TiltError::Internal { message })
                if message.contains("injected fault")),
            "{:?}",
            reports[1]
        );
        assert!(reports[2].is_ok(), "pool and window survive the panic");
        drop(guard);
        // The worker whose scratch was discarded mid-panic still
        // compiles correctly afterwards.
        let again = engine.run_batch(vec![chain(37, 2)]);
        assert!(again[0].is_ok());
    }

    #[test]
    fn streaming_preserves_submission_order_across_windows() {
        let engine = Engine::tilt(DeviceSpec::new(10, 4).unwrap());
        // More circuits than one window so the loop iterates.
        let circuits: Vec<Circuit> = (0..100).map(|k| chain(10, 1 + k % 9)).collect();
        let mut seen = Vec::new();
        engine.run_batch_streaming(circuits, |i, r| {
            assert!(r.is_ok());
            seen.push(i);
        });
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::tilt(DeviceSpec::new(8, 4).unwrap());
        assert!(engine.run_batch(Vec::new()).is_empty());
    }
}
