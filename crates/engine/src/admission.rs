//! Admission control: a global in-flight budget with load shedding.
//!
//! `tilt serve` queues run requests in bounded windows, but nothing
//! bounded the *aggregate* — a flood (or many TCP connections at once)
//! could pile up requests and bytes without limit. An
//! [`AdmissionControl`] is one process-wide budget shared by every
//! service loop: each queued run request holds an [`AdmissionPermit`]
//! (one request slot plus its line's bytes) from admission until its
//! response is written. A request that would exceed either bound is
//! **shed immediately** with a structured
//! `{"error":{"kind":"overloaded","retry_after_ms":N}}` response —
//! bounded latency for everything admitted, an explicit retry signal
//! for everything not, and never an unbounded queue.
//!
//! Permits are RAII over atomics: admission is one compare-and-swap
//! loop, release is two atomic subs, and no lock is shared with the
//! compile path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared in-flight budget (requests and line bytes).
#[derive(Debug)]
pub struct AdmissionControl {
    max_requests: usize,
    max_bytes: usize,
    in_flight: AtomicUsize,
    in_flight_bytes: AtomicUsize,
    shed: AtomicU64,
}

/// Counter snapshot of an [`AdmissionControl`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionCounters {
    /// Requests currently holding a permit.
    pub in_flight: usize,
    /// Bytes currently held by permits.
    pub in_flight_bytes: usize,
    /// Requests shed because a bound was exceeded.
    pub shed: u64,
}

impl AdmissionControl {
    /// A budget of `max_requests` in-flight requests and `max_bytes`
    /// in-flight request bytes (each with a floor of 1).
    pub fn new(max_requests: usize, max_bytes: usize) -> AdmissionControl {
        AdmissionControl {
            max_requests: max_requests.max(1),
            max_bytes: max_bytes.max(1),
            in_flight: AtomicUsize::new(0),
            in_flight_bytes: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The request bound.
    pub fn max_requests(&self) -> usize {
        self.max_requests
    }

    /// Tries to admit one request of `bytes` wire bytes. `Ok` carries
    /// the permit keeping the budget reserved until dropped; `Err`
    /// carries the `retry_after_ms` hint to send with the shed
    /// response.
    pub fn try_admit(self: &Arc<Self>, bytes: usize) -> Result<AdmissionPermit, u64> {
        let mut held = self.in_flight.load(Ordering::Relaxed);
        loop {
            if held >= self.max_requests {
                return Err(self.shed_with_hint());
            }
            match self.in_flight.compare_exchange_weak(
                held,
                held + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => held = actual,
            }
        }
        // The byte bound tolerates one oversized straggler (the add
        // happens before the check) — a DoS bound, not an accountant;
        // the request-count reservation above is already exact.
        let prior = self.in_flight_bytes.fetch_add(bytes, Ordering::AcqRel);
        if prior > 0 && prior + bytes > self.max_bytes {
            self.in_flight_bytes.fetch_sub(bytes, Ordering::AcqRel);
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(self.shed_with_hint());
        }
        Ok(AdmissionPermit {
            control: Arc::clone(self),
            bytes,
        })
    }

    fn shed_with_hint(&self) -> u64 {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.retry_after_ms()
    }

    /// The backoff hint sent with shed responses: scales with how far
    /// over budget the instant load is, clamped to [25, 1000] ms.
    /// Advisory — see the README's overload-semantics section for the
    /// client contract (exponential backoff with jitter on repeat).
    pub fn retry_after_ms(&self) -> u64 {
        let held = self.in_flight.load(Ordering::Relaxed);
        let over = held.saturating_mul(50) / self.max_requests;
        (over as u64).clamp(25, 1000)
    }

    /// Current counters.
    pub fn counters(&self) -> AdmissionCounters {
        AdmissionCounters {
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_bytes: self.in_flight_bytes.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// One admitted request's reservation; dropping it releases the budget.
#[derive(Debug)]
pub struct AdmissionPermit {
    control: Arc<AdmissionControl>,
    bytes: usize,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.control
            .in_flight_bytes
            .fetch_sub(self.bytes, Ordering::AcqRel);
        self.control.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_admits_up_to_the_bound_then_sheds() {
        let ctl = Arc::new(AdmissionControl::new(2, 1 << 20));
        let a = ctl.try_admit(100).unwrap();
        let b = ctl.try_admit(100).unwrap();
        let retry = ctl.try_admit(100).unwrap_err();
        assert!((25..=1000).contains(&retry));
        assert_eq!(ctl.counters().shed, 1);
        assert_eq!(ctl.counters().in_flight, 2);
        drop(a);
        let _c = ctl.try_admit(100).unwrap();
        drop(b);
        assert_eq!(ctl.counters().in_flight, 1);
        assert_eq!(ctl.counters().in_flight_bytes, 100);
    }

    #[test]
    fn byte_budget_sheds_but_admits_one_oversized_straggler() {
        let ctl = Arc::new(AdmissionControl::new(100, 1000));
        // An empty budget admits even an over-budget single request —
        // otherwise a giant request could never run at all.
        let big = ctl.try_admit(5000).unwrap();
        assert!(ctl.try_admit(10).is_err(), "bytes exhausted");
        drop(big);
        let a = ctl.try_admit(600).unwrap();
        assert!(ctl.try_admit(600).is_err());
        assert_eq!(ctl.counters().shed, 2);
        drop(a);
        assert_eq!(ctl.counters().in_flight_bytes, 0);
    }

    #[test]
    fn permits_release_across_threads() {
        let ctl = Arc::new(AdmissionControl::new(4, 1 << 20));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ctl = Arc::clone(&ctl);
                std::thread::spawn(move || ctl.try_admit(10).is_ok())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ctl.counters().in_flight, 0, "all permits released");
        assert_eq!(ctl.counters().in_flight_bytes, 0);
    }
}
