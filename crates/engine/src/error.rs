//! The unified error type for the session API.
//!
//! Each backend crate keeps its own error enum ([`CompileError`],
//! [`QccdError`], [`ScaleError`]); [`TiltError`] wraps all three behind
//! `From` impls so engine clients can use `?` regardless of which
//! backend a session targets.

use std::error::Error;
use std::fmt;
use tilt_compiler::CompileError;
use tilt_qccd::QccdError;
use tilt_scale::ScaleError;

/// Why an engine could not be built or a run failed — the union of the
/// three backend error types plus engine-level configuration errors.
#[derive(Clone, Debug, PartialEq)]
pub enum TiltError {
    /// A TILT (LinQ) compilation failed: invalid spec, circuit wider
    /// than the tape, invalid circuit, or inconsistent router config.
    Compile(CompileError),
    /// A QCCD compilation failed: invalid trap array or circuit wider
    /// than the usable slots.
    Qccd(QccdError),
    /// An ELU-array compilation failed: invalid ELU geometry or a
    /// per-ELU LinQ failure.
    Scale(ScaleError),
    /// The engine itself was misconfigured (e.g. no backend selected).
    Config {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A compile or simulate panicked inside a batch worker and was
    /// caught at the isolation boundary. The request that carried the
    /// poisoned circuit fails; the pool, the window, and every other
    /// in-flight request survive.
    Internal {
        /// The panic payload (when it was a string) or a placeholder.
        message: String,
    },
    /// The stabilizer simulator was asked to run a non-Clifford
    /// program. Carries the offending gate (rendered) and its index so
    /// clients can point at the exact instruction.
    NonClifford {
        /// The gate's rendered form (e.g. `t q0` or `rz(0.3) q1`).
        gate: String,
        /// Zero-based position of the gate in the logical circuit.
        index: usize,
    },
    /// The requested simulation cannot run (e.g. the circuit is wider
    /// than the dense simulator's qubit cap).
    Simulation {
        /// Human-readable description of the limit that was hit.
        reason: String,
    },
    /// The input gate stream of a streaming run failed — a QASM parse
    /// error or an I/O failure on the underlying reader. Carries the
    /// rendered source error (the stream error types are not `Clone`,
    /// which this enum requires).
    Stream {
        /// Human-readable description of the stream failure.
        reason: String,
    },
    /// Static verification found error-severity diagnostics under
    /// [`VerifyLevel::Strict`](crate::VerifyLevel::Strict): the
    /// compiled program violates a backend invariant.
    Verify {
        /// Total number of diagnostics the rule packs reported.
        count: usize,
        /// The first error-severity diagnostic, rendered.
        first: String,
    },
}

impl fmt::Display for TiltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TiltError::Compile(e) => write!(f, "TILT compile error: {e}"),
            TiltError::Qccd(e) => write!(f, "QCCD error: {e}"),
            TiltError::Scale(e) => write!(f, "ELU-array error: {e}"),
            TiltError::Config { reason } => write!(f, "engine configuration error: {reason}"),
            TiltError::Internal { message } => write!(f, "internal error: {message}"),
            TiltError::NonClifford { gate, index } => write!(
                f,
                "non-Clifford gate `{gate}` at index {index}: the stabilizer \
                 simulator only runs Clifford programs"
            ),
            TiltError::Simulation { reason } => write!(f, "simulation error: {reason}"),
            TiltError::Stream { reason } => write!(f, "gate stream error: {reason}"),
            TiltError::Verify { count, first } => write!(
                f,
                "verification failed with {count} diagnostic(s); first: {first}"
            ),
        }
    }
}

impl Error for TiltError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TiltError::Compile(e) => Some(e),
            TiltError::Qccd(e) => Some(e),
            TiltError::Scale(e) => Some(e),
            TiltError::Config { .. }
            | TiltError::Internal { .. }
            | TiltError::NonClifford { .. }
            | TiltError::Simulation { .. }
            | TiltError::Stream { .. }
            | TiltError::Verify { .. } => None,
        }
    }
}

/// Renders a caught panic payload for [`TiltError::Internal`]: the
/// panic message when it was a string, a placeholder otherwise.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

impl From<CompileError> for TiltError {
    fn from(e: CompileError) -> Self {
        TiltError::Compile(e)
    }
}

impl From<QccdError> for TiltError {
    fn from(e: QccdError) -> Self {
        TiltError::Qccd(e)
    }
}

impl From<ScaleError> for TiltError {
    fn from(e: ScaleError) -> Self {
        TiltError::Scale(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_enable_question_mark() {
        fn tilt() -> Result<(), TiltError> {
            Err(tilt_compiler::DeviceSpec::new(4, 9).unwrap_err())?;
            Ok(())
        }
        fn qccd() -> Result<(), TiltError> {
            Err(tilt_qccd::QccdSpec::new(0, 6).unwrap_err())?;
            Ok(())
        }
        fn scale() -> Result<(), TiltError> {
            Err(tilt_scale::ScaleSpec::new(2, 2).unwrap_err())?;
            Ok(())
        }
        assert!(matches!(tilt(), Err(TiltError::Compile(_))));
        assert!(matches!(qccd(), Err(TiltError::Qccd(_))));
        assert!(matches!(scale(), Err(TiltError::Scale(_))));
    }

    #[test]
    fn display_prefixes_backend_and_chains_source() {
        let e = TiltError::from(tilt_compiler::DeviceSpec::new(4, 9).unwrap_err());
        assert!(e.to_string().contains("TILT compile error"));
        assert!(Error::source(&e).is_some());
        let c = TiltError::Config {
            reason: "no backend selected".into(),
        };
        assert!(c.to_string().contains("no backend"));
        assert!(Error::source(&c).is_none());
    }
}
