//! `tilt serve` — a long-running compile/estimation service over the
//! session API.
//!
//! The ROADMAP's service-mode item has two halves: `run_batch` (landed)
//! and a persistent process an external load generator can hammer. This
//! module is the second half: a **JSON-lines protocol** over any
//! `BufRead`/`Write` pair (stdin/stdout in the CLI, a TCP stream per
//! connection, in-memory buffers in tests and benchmarks).
//!
//! # Wire protocol
//!
//! One JSON object per line in, one JSON object per line out, responses
//! **in submission order**. A request is either a circuit run (the
//! default), a session reconfiguration, a stats probe, or a shutdown:
//!
//! ```text
//! → {"id":1,"qasm":"qreg q[4];\nh q[0];\ncx q[0], q[3];\n"}
//! ← {"id":1,"ok":true,"backend":"tilt","swaps":0,...,"ln_success":-0.0016,"exec_time_us":191}
//! → {"op":"stats"}
//! ← {"ok":true,"stats":{"uptime_us":...,"served":1,"ok":1,"errors":0,...}}
//! → {"op":"shutdown"}
//! ← {"ok":true,"shutdown":true}
//! ```
//!
//! Run-request fields:
//!
//! * `qasm` (required) — the OpenQASM 2.0 payload.
//! * `id` (optional) — any JSON value, echoed back verbatim.
//! * `emit_program` (optional bool) — include the scheduled TILT
//!   program text in the response.
//! * `stream` (optional bool) — compile through the bounded-memory
//!   streaming pipeline, emitting increment lines (see *Streaming
//!   runs* below); `stream_window` (optional positive integer) sets
//!   the input gates buffered per compile window.
//! * `deadline_ms` (optional number) — the request is worthless after
//!   this many milliseconds: if it is still queued when the deadline
//!   passes it is shed with kind `deadline_exceeded` **without
//!   compiling** (checked at enqueue and again at window dequeue). The
//!   CLI's `--default-deadline-ms` supplies a default for requests that
//!   name none.
//! * Per-request **overrides** (each optional; present ⇒ the request
//!   compiles through its own one-off engine instead of the shared
//!   session): `backend` (`"tilt"|"qccd"|"scaled"`), `ions` (tilt
//!   only), `head` (tilt, and the per-ELU head for scaled),
//!   `router` (`"linq"|"stochastic"`), `max_swap_len`, `alpha`,
//!   `scheduler` (`"greedy"|"naive"`), `ions_per_trap` (qccd),
//!   `elu_ions` (scaled),
//!   `verify` (`"off"|"warn"|"strict"` — run the static program-invariant
//!   verifier over the compiled artifacts; `strict` fails the request
//!   with kind `verify_failed` on any error-severity finding),
//!   and `noise` (an object overriding any subset of the Eq. 4 model:
//!   `gamma_per_us`, `epsilon`, `single_qubit_error`,
//!   `measurement_error`, `k_base`, `n_ref`).
//!
//! # Streaming runs
//!
//! A run request with `"stream": true` compiles its payload through the
//! bounded-memory streaming pipeline
//! ([`Engine::run_streaming_qasm`](crate::Engine::run_streaming_qasm))
//! instead of the windowed batch path: the QASM text is pulled
//! statement-by-statement, compiled in windows of `stream_window` input
//! gates (optional; default
//! [`DEFAULT_STREAM_WINDOW`](crate::DEFAULT_STREAM_WINDOW)), and every
//! flushed window emits one **increment line** before the final report:
//!
//! ```text
//! → {"id":9,"stream":true,"stream_window":4,"qasm":"qreg q[4];\n..."}
//! ← {"id":9,"increment":1,"shard":0,"ops":12}
//! ← {"id":9,"increment":2,"shard":0,"ops":9}
//! ← {"id":9,"ok":true,"streamed":true,"backend":"tilt","increments":2,"input_gates":8,...}
//! ```
//!
//! The final line carries the same compile/estimate fields as a
//! monolithic response (bit-identical numbers — the streaming pipeline
//! is decision-identical by construction) plus `streamed`,
//! `increments`, and `input_gates`. With `"emit_program": true` each
//! increment also carries its rendered ops as `program`; concatenating
//! them per shard reproduces the monolithic program body. `shard` is
//! the ELU index on the scaled backend and always 0 on tilt.
//!
//! Streaming requests run immediately (after a window flush, so
//! submission order survives), bypass the compile cache and the parse
//! memo (there is no whole-circuit digest to key on), and compile
//! through the **shared session only** — per-request override fields
//! are rejected with `invalid_request`; send `{"op":"configure"}` first
//! to rebind. A mid-stream failure (bad QASM past the first window)
//! emits its error line *after* the increments already delivered.
//!
//! Every failure — malformed JSON, QASM parse error, a circuit wider
//! than the backend, an unknown backend name, a compile error, a shed
//! request — yields a structured
//! `{"id":...,"ok":false,"error":{"kind":...,"message":...}}` response
//! on its line and **never kills the loop**. The `kind` taxonomy:
//! `invalid_request` (the line never became a compilable request),
//! `compile` (the backend rejected the circuit), `non_clifford` (the
//! stabilizer simulator was asked to run a non-Clifford program; the
//! message names the gate and its index), `verify_failed` (the static
//! verifier found an invariant violation under `"verify":"strict"`),
//! `overloaded` (shed by admission control; carries `retry_after_ms`),
//! `deadline_exceeded` (shed by its deadline), and `internal` (a panic
//! caught at the batch isolation boundary — the request is lost, the
//! service is not).
//!
//! # Admission control
//!
//! An optional [`AdmissionControl`] (shared across every loop the CLI
//! runs — stdio or all TCP connections together) bounds aggregate
//! in-flight requests and bytes. A run request that would exceed the
//! budget is **shed immediately** with kind `overloaded` and a
//! `retry_after_ms` backoff hint instead of queuing unboundedly;
//! everything already admitted completes. Shed counts surface in
//! `{"op":"stats"}` and the exit summary.
//!
//! # Session reconfiguration
//!
//! A `{"op":"configure", ...}` message (typically the first line of a
//! connection) **rebinds this loop's default session** using the same
//! override fields a run request accepts — so a client that wants, say,
//! the stochastic router on every request configures once instead of
//! repeating overrides per line. The new session applies to every
//! subsequent default request; later per-request overrides overlay the
//! *reconfigured* session. Dimensions not named inherit the current
//! session machine (the run-override inheritance rule); a bad
//! configuration is rejected on its line and leaves the session
//! untouched. The ack echoes the resulting backend:
//! `{"id":...,"ok":true,"configured":true,"backend":"tilt"}`.
//!
//! # Compile cache
//!
//! Every service owns a content-addressed [`CompileCache`] (shared with
//! its engine and with override engines, and — in the CLI's TCP mode —
//! across all connections): responses for a previously seen
//! `(circuit digest, config fingerprint)` pair are served straight from
//! cache, byte-identical to a fresh compile. `{"op":"stats"}` reports
//! `cache: {hits, misses, evictions, entries}`; `tilt serve --cache-dir`
//! persists the cache across restarts (see [`crate::cache`]).
//!
//! # Backpressure and memory
//!
//! Default-session requests accumulate in a bounded window (at most
//! [`Service::window`] in flight) and fan out through
//! [`Engine::run_batch_streaming`], which preserves submission order.
//! Memory is proportional to the window, never to the total stream
//! length; `stats.max_in_flight` reports the high-water mark so tests
//! can pin the bound. Requests that need their own engine (overrides),
//! `stats`, `shutdown`, and error lines all flush the window first so
//! ordering survives.
//!
//! Batching is **flush-before-blocking**: only input that is already
//! buffered on the wire coalesces into a window — the loop drains
//! every pending request before it blocks waiting for more bytes, so
//! an interactive client gets its response immediately while a load
//! generator streaming ahead still gets full windowed fan-out.
//!
//! # Shutdown
//!
//! EOF on the input drains the window and returns (mid-stream EOF is a
//! clean shutdown). A `{"op":"shutdown"}` request does the same after
//! acknowledging. The optional `shutdown` flag is checked between
//! lines, so a SIGTERM handler that sets it (the CLI installs one)
//! drains and exits after the in-flight line. The flag alone cannot
//! wake a loop *blocked* in `fill_buf` — the caller must also unblock
//! the reader (the CLI shuts down idle TCP sockets, and for stdin
//! exits directly: a blocked loop has, by the flush-before-blocking
//! rule, nothing buffered to lose).

use crate::admission::{AdmissionControl, AdmissionPermit};
use crate::cache::{CacheCounters, CacheKey, CompileCache, WireReport};
use crate::stream::{StreamOutcome, DEFAULT_STREAM_WINDOW};
use crate::{Backend, Engine, EngineBuilder, RunReport, TiltError};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tilt_circuit::{qasm, Circuit, Gate};
use tilt_compiler::route::{LinqConfig, StochasticConfig};
use tilt_compiler::{DeviceSpec, RouterKind, SchedulerKind, TiltOp};
use tilt_hash::{Digest, Hasher};
use tilt_qccd::QccdSpec;
use tilt_report::Json;
use tilt_scale::ScaleSpec;
use tilt_sim::NoiseModel;

/// Power-of-two latency buckets: bucket `i` counts requests that took
/// `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`). 40 buckets cover up to
/// ~2^39 µs ≈ 6 days — far beyond any single compile.
const LATENCY_BUCKETS: usize = 40;

/// Longest request line the loop will buffer. A newline-free byte flood
/// would otherwise grow the accumulator without bound and abort the
/// whole process on allocation failure; 16 MiB comfortably holds the
/// QASM of any circuit that fits under [`MAX_REQUEST_IONS`].
const MAX_LINE_BYTES: usize = 16 << 20;

/// Bounds on the parsed-payload memo (entries and retained bytes). The
/// memo exists so that a repeated request costs neither its QASM parse
/// nor its compile — the two O(gates) stages — leaving only JSON
/// decode, two hash lookups, and response rendering on the warm path.
const PARSE_MEMO_CAPACITY: usize = 512;
const PARSE_MEMO_MAX_BYTES: usize = 64 << 20;

/// Hard ceiling on any machine dimension (ions, ELU ions, trap ions) or
/// circuit width a *request* can ask for. The service allocates data
/// structures proportional to these, so an uncapped request like
/// `"ions": 2e11` would abort the whole process on allocation failure —
/// violating per-request error isolation. 4096 ions is far beyond both
/// the paper's machines and any request the estimators finish in
/// reasonable time; the operator's own `--ions` is not capped.
const MAX_REQUEST_IONS: usize = 4096;

/// Request fields that trigger a per-request override engine (also the
/// fields a `configure` message accepts). Streaming requests reject
/// these — they compile through the shared session only.
const OVERRIDE_KEYS: [&str; 12] = [
    "backend",
    "ions",
    "head",
    "router",
    "max_swap_len",
    "alpha",
    "scheduler",
    "ions_per_trap",
    "elu_ions",
    "noise",
    "method",
    "verify",
];

/// A fixed-size log₂ latency histogram: bounded memory no matter how
/// many requests stream through, quantiles at power-of-two resolution.
#[derive(Clone, Debug)]
struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
        }
    }

    fn record_us(&mut self, us: u64) {
        let bucket = (u64::BITS - us.leading_zeros()) as usize; // floor(log2)+1, 0 for us=0
        self.buckets[bucket.min(LATENCY_BUCKETS - 1)] += 1;
        self.count += 1;
    }

    /// The upper bound (µs) of the bucket holding the `q`-quantile
    /// request, `0 < q <= 1`; 0 when nothing was recorded.
    fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

/// Live counters of one service loop.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    started: Instant,
    /// Responses written (ok + error), excluding stats/shutdown acks.
    pub served: u64,
    /// Successful circuit responses.
    pub ok: u64,
    /// Error responses (parse failures, compile failures, and shed
    /// requests — the shed counters below break those out).
    pub errors: u64,
    /// Requests shed by admission control (kind `overloaded`).
    pub shed_overloaded: u64,
    /// Requests shed by their deadline (kind `deadline_exceeded`).
    pub shed_deadline: u64,
    /// High-water mark of buffered requests — bounded by the window.
    pub max_in_flight: usize,
    latency: LatencyHistogram,
}

impl ServiceStats {
    fn new() -> Self {
        ServiceStats {
            started: Instant::now(),
            served: 0,
            ok: 0,
            errors: 0,
            shed_overloaded: 0,
            shed_deadline: 0,
            max_in_flight: 0,
            latency: LatencyHistogram::new(),
        }
    }

    fn record(&mut self, latency_us: u64, ok: bool) {
        self.served += 1;
        if ok {
            self.ok += 1;
        } else {
            self.errors += 1;
        }
        self.latency.record_us(latency_us);
    }

    /// Median request latency in µs: parse → response written,
    /// including any window queue wait (power-of-two bucket
    /// resolution). Under interactive traffic this is compile time;
    /// under a load generator streaming ahead it includes batching.
    pub fn p50_us(&self) -> u64 {
        self.latency.quantile_us(0.50)
    }

    /// 99th-percentile request latency in µs (same definition as
    /// [`ServiceStats::p50_us`]).
    pub fn p99_us(&self) -> u64 {
        self.latency.quantile_us(0.99)
    }

    fn to_json(&self, window: usize, cache: CacheCounters) -> Json {
        Json::object()
            .set("uptime_us", self.started.elapsed().as_micros() as u64)
            .set("served", self.served)
            .set("ok", self.ok)
            .set("errors", self.errors)
            .set("window", window)
            .set("max_in_flight", self.max_in_flight)
            .set("p50_latency_us", self.p50_us())
            .set("p99_latency_us", self.p99_us())
            .set(
                "shed",
                Json::object()
                    .set("overloaded", self.shed_overloaded)
                    .set("deadline", self.shed_deadline),
            )
            .set(
                "cache",
                Json::object()
                    .set("hits", cache.hits)
                    .set("misses", cache.misses)
                    .set("evictions", cache.evictions)
                    .set("entries", cache.entries),
            )
    }
}

/// Why a serve loop returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownCause {
    /// The input reached end-of-file (including mid-stream).
    Eof,
    /// A `{"op":"shutdown"}` request was acknowledged.
    Requested,
    /// The external shutdown flag (SIGTERM in the CLI) was raised.
    Signal,
}

/// Final accounting of one serve loop.
#[derive(Clone, Debug)]
pub struct ServiceSummary {
    /// Counter snapshot at exit.
    pub stats: ServiceStats,
    /// Compile-cache counters at exit. In TCP mode the cache is shared
    /// across connections, so these are *cache-lifetime* totals, not
    /// per-connection ones.
    pub cache: CacheCounters,
    /// What ended the loop.
    pub cause: ShutdownCause,
}

/// Memo of parsed request payloads: QASM-text digest → the original
/// text, the parsed circuit (shared with the memo, cloned only on a
/// compile miss), and its salted cache key. Purely an accelerator over
/// the compile cache — parsing is deterministic, so equal request text
/// always yields the equal circuit the memo returns; a hit **verifies
/// the text byte-for-byte**, so an engineered digest collision (FNV is
/// not collision-resistant) degrades to a memo miss instead of serving
/// another payload's circuit. Cleared wholesale when either bound
/// (entries, retained bytes) trips: it rebuilds itself from traffic,
/// so a crude bound beats LRU bookkeeping here.
#[derive(Default)]
struct ParseMemo {
    map: HashMap<Digest, MemoHit>,
    /// Approximate retained bytes (texts + gate lists).
    bytes: usize,
}

#[derive(Clone)]
struct MemoHit {
    text: Arc<str>,
    circuit: Arc<Circuit>,
    key: Digest,
}

impl ParseMemo {
    fn text_key(qasm_text: &str) -> Digest {
        let mut h = Hasher::new();
        h.write_str(qasm_text);
        h.digest()
    }

    fn get(&self, key: Digest, qasm_text: &str) -> Option<MemoHit> {
        let hit = self.map.get(&key)?;
        (*hit.text == *qasm_text).then(|| hit.clone())
    }

    fn insert(&mut self, key: Digest, hit: MemoHit) {
        if self.map.len() >= PARSE_MEMO_CAPACITY || self.bytes >= PARSE_MEMO_MAX_BYTES {
            self.map.clear();
            self.bytes = 0;
        }
        self.bytes += hit.text.len() + hit.circuit.len() * std::mem::size_of::<Gate>();
        self.map.insert(key, hit);
    }
}

/// One buffered run request awaiting its window flush.
struct RunItem {
    id: Json,
    /// Taken (not cloned) by the window flush — `None` afterwards. The
    /// [`Arc`] is shared with the parse memo; a cache-hit response
    /// drops it untouched.
    circuit: Option<Arc<Circuit>>,
    /// Salted compile-cache key of the circuit (the circuit half of
    /// its full key — see [`CompileCache::circuit_key`]).
    digest: Digest,
    emit_program: bool,
    enqueued: Instant,
    /// When the request stops being worth compiling (`deadline_ms`
    /// or the service default). Checked at enqueue and at dequeue.
    deadline: Option<Instant>,
    /// The admission slot this request occupies, released when the item
    /// drops (its response written, or the request shed at dequeue).
    /// `None` when the service runs without admission control.
    permit: Option<AdmissionPermit>,
}

impl RunItem {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// One streaming run request (`"stream": true`): compiled immediately
/// through the shared session's bounded-memory pipeline, never buffered
/// in the window.
struct StreamItem {
    id: Json,
    /// The QASM payload; pulled statement-by-statement, never parsed
    /// into a [`Circuit`].
    qasm: Box<str>,
    /// Input gates per compile window.
    window: usize,
    /// Attach each increment's rendered ops as `program`.
    emit_program: bool,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// One entry of the buffered window: either a run awaiting its compile,
/// or a response already decided at enqueue time (shed by admission or
/// by an already-expired deadline) that still must emit **at its
/// submission position** when the window flushes.
enum PendingItem {
    Run(RunItem),
    Resolved { enqueued: Instant, response: Json },
}

/// What one input line asks for.
enum Request {
    /// Compile through the shared session engine (windowed).
    Run(Box<RunItem>),
    /// Compile through a one-off engine built from per-request
    /// overrides (runs immediately, after a flush).
    RunOverride(Box<RunItem>, Box<Engine>),
    /// Stream-compile the payload in O(window) memory, emitting one
    /// increment line per flushed window (`"stream": true`; runs
    /// immediately, after a flush).
    RunStream(Box<StreamItem>),
    /// Rebind the loop's default session (`{"op":"configure"}`);
    /// `rebind` is `None` when the message named no override field (an
    /// acknowledged no-op).
    Configure {
        id: Json,
        rebind: Option<Box<(EngineBuilder, Engine)>>,
    },
    Stats,
    Shutdown,
    /// The line could not become a run: respond with this error object.
    Bad {
        id: Json,
        kind: &'static str,
        error: String,
    },
}

/// Wire error kinds (see the module docs for the taxonomy).
const KIND_INVALID_REQUEST: &str = "invalid_request";
const KIND_COMPILE: &str = "compile";
const KIND_OVERLOADED: &str = "overloaded";
const KIND_DEADLINE: &str = "deadline_exceeded";
const KIND_INTERNAL: &str = "internal";
const KIND_NON_CLIFFORD: &str = "non_clifford";
const KIND_VERIFY_FAILED: &str = "verify_failed";

/// A persistent compile/estimation service around one [`Engine`]
/// session.
///
/// Construct with [`Service::new`] from the same [`EngineBuilder`] you
/// would hand to [`EngineBuilder::build`]; the builder is kept as the
/// prototype for per-request override engines, so overrides inherit the
/// session's models and only replace what the request names.
pub struct Service {
    engine: Engine,
    proto: EngineBuilder,
    window: usize,
    stats: ServiceStats,
    /// The compile cache shared by the session engine, every override
    /// engine, and (through the builder) every other service built from
    /// the same prototype.
    cache: Arc<CompileCache>,
    /// Per-loop memo of parsed QASM payloads (see [`ParseMemo`]).
    parse_memo: ParseMemo,
    /// Shared admission budget; `None` admits everything (the default,
    /// matching the pre-admission protocol exactly).
    admission: Option<Arc<AdmissionControl>>,
    /// Deadline applied to run requests that name no `deadline_ms`.
    default_deadline: Option<Duration>,
}

impl Service {
    /// Builds the session engine and wraps it in a service.
    ///
    /// The service always runs cached: when the builder carries no
    /// [`CompileCache`] a private default-capacity one is attached, so
    /// repeated circuits skip compilation out of the box. Hand the
    /// builder a shared cache (via
    /// [`EngineBuilder::compile_cache`]) to pool hits across services —
    /// the CLI's TCP listener does this across connections.
    ///
    /// # Errors
    ///
    /// Any [`EngineBuilder::build`] error: no backend, invalid router
    /// configuration for the device.
    pub fn new(builder: EngineBuilder) -> Result<Service, TiltError> {
        let mut builder = builder;
        if builder.cache.is_none() {
            builder = builder.compile_cache(Arc::new(CompileCache::default()));
        }
        let engine = builder.clone().build()?;
        let cache = Arc::clone(
            engine
                .compile_cache()
                .expect("service engines always carry a cache"),
        );
        Ok(Service {
            engine,
            proto: builder,
            window: (rayon::current_num_threads() * 4).max(8),
            stats: ServiceStats::new(),
            cache,
            parse_memo: ParseMemo::default(),
            admission: None,
            default_deadline: None,
        })
    }

    /// Shares an [`AdmissionControl`] with this loop: run requests past
    /// the in-flight budget are shed with kind `overloaded` instead of
    /// queuing. The CLI hands every connection the same instance so the
    /// budget is global, not per-socket.
    pub fn with_admission(mut self, admission: Arc<AdmissionControl>) -> Service {
        self.admission = Some(admission);
        self
    }

    /// Applies `deadline` to every run request that names no
    /// `deadline_ms` of its own (`None` restores "no default").
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Service {
        self.default_deadline = deadline;
        self
    }

    /// Caps the in-flight request window (`0` restores the default,
    /// 4 × pool threads with a floor of 8).
    pub fn with_window(mut self, window: usize) -> Service {
        if window > 0 {
            self.window = window;
        } else {
            self.window = (rayon::current_num_threads() * 4).max(8);
        }
        self
    }

    /// The in-flight window bound.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Counters so far (useful after [`Service::serve`] returns the
    /// summary by value).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Runs the JSON-lines loop until EOF, a shutdown request, or the
    /// `shutdown` flag (checked between lines).
    ///
    /// Batching follows the **flush-before-blocking** rule: lines that
    /// are already buffered batch together up to the window (a load
    /// generator streaming ahead gets full fan-out), but the window is
    /// drained before the loop ever blocks waiting for more input — an
    /// interactive client sending one request and waiting for its
    /// response is never left hanging.
    ///
    /// # Errors
    ///
    /// Only I/O errors on `input`/`output` end the loop abnormally;
    /// every protocol-level failure becomes an error *response*.
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        mut input: R,
        mut output: W,
        shutdown: Option<&AtomicBool>,
    ) -> io::Result<ServiceSummary> {
        let mut pending: Vec<PendingItem> = Vec::new();
        let mut cause = ShutdownCause::Eof;
        // Bytes read but not yet consumed as complete lines; `scanned`
        // marks how far the newline search has looked, so a torn line
        // at a chunk boundary is not rescanned per chunk. A line that
        // outgrows [`MAX_LINE_BYTES`] is answered with an error and its
        // remaining bytes are discarded up to the next newline
        // (`discarding`) — the accumulator itself stays bounded.
        let mut acc: Vec<u8> = Vec::new();
        let mut scanned = 0usize;
        let mut discarding = false;
        'serve: loop {
            if shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
                cause = ShutdownCause::Signal;
                break;
            }
            // Process every complete line currently buffered.
            while let Some(nl) = acc[scanned..].iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = acc.drain(..scanned + nl + 1).collect();
                scanned = 0;
                let line = String::from_utf8_lossy(&line);
                if self.handle_line(line.trim(), &mut pending, &mut output)? {
                    cause = ShutdownCause::Requested;
                    break 'serve;
                }
                if shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
                    cause = ShutdownCause::Signal;
                    break 'serve;
                }
            }
            scanned = acc.len();
            if !discarding && acc.len() > MAX_LINE_BYTES {
                // One newline-free flood must not grow the accumulator
                // (and eventually the process) without bound: reject it
                // now, drop what arrived, skip the rest of the line.
                self.flush(&mut pending, &mut output)?;
                self.stats.record(0, false);
                let error = format!("request line exceeds the {MAX_LINE_BYTES}-byte limit");
                writeln!(
                    output,
                    "{}",
                    error_json(&Json::Null, KIND_INVALID_REQUEST, &error).render()
                )?;
                output.flush()?;
                acc.clear();
                scanned = 0;
                discarding = true;
            }
            // About to block for more input: drain the window first so
            // an idle wire never holds responses hostage.
            self.flush(&mut pending, &mut output)?;
            let chunk = match input.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF. A torn final line (no trailing newline) is still
                // a request — answer it before leaving (unless it is
                // the tail of an oversized line already rejected).
                if !acc.is_empty() && !discarding {
                    let line = std::mem::take(&mut acc);
                    let line = String::from_utf8_lossy(&line);
                    if self.handle_line(line.trim(), &mut pending, &mut output)? {
                        cause = ShutdownCause::Requested;
                    }
                }
                break;
            }
            if discarding {
                // Drop flood bytes without buffering; stop at the first
                // newline so the next real line parses normally.
                let keep_from = chunk.iter().position(|&b| b == b'\n').map(|i| i + 1);
                let n = chunk.len();
                if let Some(from) = keep_from {
                    acc.extend_from_slice(&chunk[from..]);
                    discarding = false;
                }
                input.consume(n);
                continue;
            }
            let n = chunk.len();
            acc.extend_from_slice(chunk);
            input.consume(n);
        }
        // Mid-stream EOF (or signal/shutdown): drain what was buffered.
        self.flush(&mut pending, &mut output)?;
        Ok(ServiceSummary {
            stats: self.stats.clone(),
            cache: self.cache.counters(),
            cause,
        })
    }

    /// Handles one input line; `Ok(true)` means an acknowledged
    /// shutdown request.
    fn handle_line<W: Write>(
        &mut self,
        line: &str,
        pending: &mut Vec<PendingItem>,
        output: &mut W,
    ) -> io::Result<bool> {
        if line.is_empty() {
            return Ok(false);
        }
        match self.parse_request(line) {
            Request::Run(mut item) => {
                // An already-dead request is shed before anything else —
                // not even a cache hit resurrects it; the contract is
                // "expired ⇒ `deadline_exceeded`", unconditionally.
                if item.expired(Instant::now()) {
                    self.stats.shed_deadline += 1;
                    pending.push(PendingItem::Resolved {
                        enqueued: item.enqueued,
                        response: deadline_json(&item.id),
                    });
                    self.after_enqueue(pending, output)?;
                    return Ok(false);
                }
                // Cache probe: a previously seen (circuit, config) pair
                // answers immediately — after a flush, so submission
                // order survives. On an all-hits stream the window
                // stays empty and this is the whole hot path. Hits
                // bypass admission: they hold no compile slot.
                if let Some(resp) = self.cached_response(&item, self.engine.config_fingerprint()) {
                    self.flush(pending, output)?;
                    self.stats
                        .record(item.enqueued.elapsed().as_micros() as u64, true);
                    writeln!(output, "{}", resp.render())?;
                    output.flush()?;
                    return Ok(false);
                }
                // Admission: a compile must fit the shared in-flight
                // budget or be shed *now* — queuing it anyway is how a
                // flood turns into unbounded latency for everyone.
                if let Some(admission) = &self.admission {
                    match admission.try_admit(line.len()) {
                        Ok(permit) => item.permit = Some(permit),
                        Err(retry_after_ms) => {
                            self.stats.shed_overloaded += 1;
                            pending.push(PendingItem::Resolved {
                                enqueued: item.enqueued,
                                response: overloaded_json(&item.id, retry_after_ms),
                            });
                            self.after_enqueue(pending, output)?;
                            return Ok(false);
                        }
                    }
                }
                pending.push(PendingItem::Run(*item));
                self.after_enqueue(pending, output)?;
            }
            Request::RunOverride(item, engine) => {
                // Preserve submission order around the one-off run.
                self.flush(pending, output)?;
                if item.expired(Instant::now()) {
                    // Same deadline contract as the windowed path; the
                    // one-off engine is dropped unused.
                    self.stats.shed_deadline += 1;
                    self.stats
                        .record(item.enqueued.elapsed().as_micros() as u64, false);
                    writeln!(output, "{}", deadline_json(&item.id).render())?;
                    output.flush()?;
                    return Ok(false);
                }
                // Overrides key the cache under *their* overlaid
                // config's fingerprint, so distinct override sessions
                // cache independently (and never collide with the
                // default session).
                if let Some(resp) = self.cached_response(&item, engine.config_fingerprint()) {
                    self.stats
                        .record(item.enqueued.elapsed().as_micros() as u64, true);
                    writeln!(output, "{}", resp.render())?;
                } else {
                    let mut item = *item;
                    let circuit = item
                        .circuit
                        .take()
                        .expect("override items carry their circuit");
                    // The same isolation boundary as the batch workers:
                    // a panicking override compile costs its request,
                    // not the loop.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.run(circuit.as_ref())
                    }))
                    .unwrap_or_else(|payload| {
                        Err(TiltError::Internal {
                            message: crate::error::panic_message(payload.as_ref()),
                        })
                    });
                    self.respond(&item, result, output)?;
                }
                output.flush()?;
            }
            Request::RunStream(item) => {
                // Streaming runs bypass the window; drain it first so
                // submission order survives.
                self.flush(pending, output)?;
                if item.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.stats.shed_deadline += 1;
                    self.stats
                        .record(item.enqueued.elapsed().as_micros() as u64, false);
                    writeln!(output, "{}", deadline_json(&item.id).render())?;
                } else {
                    self.run_stream(&item, output)?;
                }
                output.flush()?;
            }
            Request::Configure { id, rebind } => {
                // The window compiled under the old session; drain it
                // before the rebind takes effect.
                self.flush(pending, output)?;
                if let Some(rebind) = rebind {
                    let (proto, engine) = *rebind;
                    self.proto = proto;
                    self.engine = engine;
                }
                let resp = Json::object()
                    .set("id", id)
                    .set("ok", true)
                    .set("configured", true)
                    .set("backend", self.engine.backend().kind().to_string());
                writeln!(output, "{}", resp.render())?;
                output.flush()?;
            }
            Request::Stats => {
                self.flush(pending, output)?;
                let stats = self.stats.to_json(self.window, self.cache.counters());
                let resp = Json::object().set("ok", true).set("stats", stats);
                writeln!(output, "{}", resp.render())?;
                output.flush()?;
            }
            Request::Shutdown => {
                self.flush(pending, output)?;
                let resp = Json::object().set("ok", true).set("shutdown", true);
                writeln!(output, "{}", resp.render())?;
                output.flush()?;
                return Ok(true);
            }
            Request::Bad { id, kind, error } => {
                self.flush(pending, output)?;
                self.stats.record(0, false);
                writeln!(output, "{}", error_json(&id, kind, &error).render())?;
                output.flush()?;
            }
        }
        Ok(false)
    }

    /// Post-enqueue bookkeeping shared by admitted and pre-resolved
    /// entries: track the high-water mark, flush a full window.
    fn after_enqueue<W: Write>(
        &mut self,
        pending: &mut Vec<PendingItem>,
        output: &mut W,
    ) -> io::Result<()> {
        self.stats.max_in_flight = self.stats.max_in_flight.max(pending.len());
        if pending.len() >= self.window {
            self.flush(pending, output)?;
        }
        Ok(())
    }

    /// Runs the buffered window through the shared session and writes
    /// one response line per request, in submission order.
    ///
    /// Duplicate circuits **within** one window are compiled once: the
    /// pre-window cache probe cannot catch them (their leader has not
    /// compiled yet), and without dedup the batch workers would compile
    /// both copies concurrently — wasted work, and nondeterministic
    /// hit counts. Each follower is served from the cache after its
    /// leader's insert lands (a genuine hit), so a duplicate pair
    /// always accounts as exactly one miss plus one hit, regardless of
    /// worker count.
    ///
    /// Pre-resolved entries (shed at enqueue) and runs whose deadline
    /// expired while queued emit their error responses interleaved at
    /// their submission positions — an expired run is shed **here,
    /// before compiling**, and its admission permit is released with
    /// the window.
    fn flush<W: Write>(
        &mut self,
        pending: &mut Vec<PendingItem>,
        output: &mut W,
    ) -> io::Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let mut items = std::mem::take(pending);
        // Per item: either the slot its compile result lives in, or the
        // response it already owns; per slot: the leader item index
        // (the first occurrence of that circuit digest).
        enum Lane {
            Slot(usize),
            Resolved(Json),
        }
        let mut lane: Vec<Lane> = Vec::with_capacity(items.len());
        let mut leader_of_slot: Vec<usize> = Vec::new();
        let mut slot_of_digest: HashMap<Digest, usize> = HashMap::new();
        let mut circuits: Vec<Circuit> = Vec::new();
        let now = Instant::now();
        for (i, entry) in items.iter_mut().enumerate() {
            let item = match entry {
                PendingItem::Resolved { response, .. } => {
                    lane.push(Lane::Resolved(std::mem::replace(response, Json::Null)));
                    continue;
                }
                PendingItem::Run(item) => item,
            };
            if item.expired(now) {
                // Dequeue-time deadline check: the compile never runs.
                self.stats.shed_deadline += 1;
                item.circuit = None;
                item.permit = None;
                lane.push(Lane::Resolved(deadline_json(&item.id)));
                continue;
            }
            let arc = item.circuit.take().expect("each item is flushed once");
            match slot_of_digest.entry(item.digest) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    lane.push(Lane::Slot(*slot.get()));
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(circuits.len());
                    lane.push(Lane::Slot(circuits.len()));
                    leader_of_slot.push(i);
                    // Unshared payloads (memo since cleared) move for
                    // free; shared ones clone only here, on an actual
                    // compile.
                    circuits.push(Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()));
                }
            }
        }
        let mut results: Vec<Option<Result<RunReport, TiltError>>> = Vec::new();
        results.resize_with(circuits.len(), || None);
        let config = self.engine.config_fingerprint();
        let mut io_err: Option<io::Error> = None;
        let mut next = 0usize;
        // Split borrows: the emitter mutates stats and output while the
        // engine fans out the window. Responses stream as they become
        // writable: slot results arrive in submission order, and a
        // follower's leader always precedes it, so the write pointer
        // `next` only ever waits on the slot that just completed — no
        // response is held back for a later compile. Resolved lanes are
        // always writable and interleave at their positions.
        let (engine, stats, cache) = (&self.engine, &mut self.stats, &self.cache);
        let emit_ready = |results: &[Option<Result<RunReport, TiltError>>],
                          next: &mut usize,
                          stats: &mut ServiceStats,
                          output: &mut W,
                          io_err: &mut Option<io::Error>| {
            while *next < items.len() {
                let enqueued;
                let (resp, ok) = match &lane[*next] {
                    Lane::Resolved(resp) => {
                        enqueued = match &items[*next] {
                            PendingItem::Resolved { enqueued, .. } => *enqueued,
                            PendingItem::Run(item) => item.enqueued,
                        };
                        (resp.clone(), false)
                    }
                    Lane::Slot(s) => {
                        let Some(result) = results[*s].as_ref() else {
                            break;
                        };
                        let PendingItem::Run(item) = &items[*next] else {
                            unreachable!("slot lanes always hold run items");
                        };
                        enqueued = item.enqueued;
                        if leader_of_slot[*s] == *next {
                            (
                                run_response(&item.id, result, item.emit_program),
                                result.is_ok(),
                            )
                        } else {
                            // Follower: the leader's insert has landed,
                            // so this is a real cache lookup (and counts
                            // as such); the leader's result backstops an
                            // errored or instantly evicted entry.
                            match cached_wire_response(cache, item, config) {
                                Some(resp) => (resp, true),
                                None => (
                                    run_response(&item.id, result, item.emit_program),
                                    result.is_ok(),
                                ),
                            }
                        }
                    }
                };
                stats.record(enqueued.elapsed().as_micros() as u64, ok);
                if let Err(e) = writeln!(output, "{}", resp.render()) {
                    *io_err = Some(e);
                    return;
                }
                *next += 1;
            }
        };
        if !circuits.is_empty() {
            engine.run_batch_streaming(circuits, |slot, result| {
                results[slot] = Some(result);
                if io_err.is_none() {
                    emit_ready(&results, &mut next, &mut *stats, &mut *output, &mut io_err);
                }
            });
        }
        // Drain the tail: trailing resolved lanes after the last slot
        // (and the whole window when every entry was pre-resolved — the
        // batch never fires its sink for an empty circuit list).
        if io_err.is_none() {
            emit_ready(&results, &mut next, &mut *stats, &mut *output, &mut io_err);
        }
        if let Some(e) = io_err {
            return Err(e);
        }
        debug_assert_eq!(next, items.len(), "every buffered item was answered");
        // `items` drops here, releasing every admission permit the
        // window held — after all its responses are on the wire.
        drop(items);
        output.flush()
    }

    fn respond<W: Write>(
        &mut self,
        item: &RunItem,
        result: Result<RunReport, TiltError>,
        output: &mut W,
    ) -> io::Result<()> {
        let ok = result.is_ok();
        let resp = run_response(&item.id, &result, item.emit_program);
        self.stats
            .record(item.enqueued.elapsed().as_micros() as u64, ok);
        writeln!(output, "{}", resp.render())
    }

    /// Runs one streaming request: increment lines straight to the
    /// wire, then the final report line. The compile cache, parse memo,
    /// and window are all bypassed — there is no whole-circuit digest
    /// to key on and nothing to buffer.
    fn run_stream<W: Write>(&mut self, item: &StreamItem, output: &mut W) -> io::Result<()> {
        // Width gate, same contract as the parsed path: the backends
        // size themselves to the register, so the cap must hold before
        // any allocation. The probe stops at the `qreg` header.
        let mut probe = qasm::QasmStream::new(item.qasm.as_bytes());
        match probe.require_n_qubits() {
            Ok(n) if n > MAX_REQUEST_IONS => {
                let error = format!(
                    "circuit register of {n} qubits exceeds the service cap of {MAX_REQUEST_IONS}"
                );
                self.stats
                    .record(item.enqueued.elapsed().as_micros() as u64, false);
                return writeln!(
                    output,
                    "{}",
                    error_json(&item.id, KIND_INVALID_REQUEST, &error).render()
                );
            }
            Ok(_) => {}
            Err(e) => {
                // A header the stream cannot start from (missing or
                // malformed `qreg`) fails before any compile — same
                // `invalid_request` kind as the monolithic parse path.
                self.stats
                    .record(item.enqueued.elapsed().as_micros() as u64, false);
                return writeln!(
                    output,
                    "{}",
                    error_json(&item.id, KIND_INVALID_REQUEST, &e.to_string()).render()
                );
            }
        }
        let mut io_err: Option<io::Error> = None;
        let mut increment = 0usize;
        let mut sink = |shard: usize, ops: &[TiltOp]| {
            if io_err.is_some() {
                // The wire is dead; let the compile finish and surface
                // the I/O error after (a sink cannot abort the engine).
                return;
            }
            increment += 1;
            let mut line = Json::object()
                .set("id", item.id.clone())
                .set("increment", increment)
                .set("shard", shard)
                .set("ops", ops.len());
            if item.emit_program {
                line = line.set("program", render_ops(ops));
            }
            if let Err(e) = writeln!(output, "{}", line.render()) {
                io_err = Some(e);
            }
        };
        // The same isolation boundary as the batch workers: a panicking
        // streaming compile costs its request, not the loop.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.engine
                .run_streaming_qasm(item.qasm.as_bytes(), item.window, &mut sink)
        }))
        .unwrap_or_else(|payload| {
            Err(TiltError::Internal {
                message: crate::error::panic_message(payload.as_ref()),
            })
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        let ok = result.is_ok();
        let resp = match result {
            Ok(outcome) => stream_response(&item.id, &outcome),
            Err(e) => {
                let kind = match e {
                    // Mid-stream QASM/reader failures are request
                    // defects, like a monolithic parse error.
                    TiltError::Stream { .. } => KIND_INVALID_REQUEST,
                    TiltError::Internal { .. } => KIND_INTERNAL,
                    _ => KIND_COMPILE,
                };
                error_json(&item.id, kind, &e.to_string())
            }
        };
        self.stats
            .record(item.enqueued.elapsed().as_micros() as u64, ok);
        writeln!(output, "{}", resp.render())
    }

    /// The response for `item` if its `(circuit, config)` key is
    /// resident in the cache. Renders through the same [`WireReport`]
    /// path as a fresh compile, so hit and miss responses are
    /// byte-identical.
    fn cached_response(&self, item: &RunItem, config: Digest) -> Option<Json> {
        cached_wire_response(&self.cache, item, config)
    }

    /// Turns one input line into a request, folding every failure into
    /// [`Request::Bad`].
    fn parse_request(&mut self, line: &str) -> Request {
        let enqueued = Instant::now();
        let obj = match Json::parse(line) {
            Ok(j @ Json::Obj(_)) => j,
            Ok(_) => {
                return Request::Bad {
                    id: Json::Null,
                    kind: KIND_INVALID_REQUEST,
                    error: "request must be a JSON object".into(),
                }
            }
            Err(e) => {
                return Request::Bad {
                    id: Json::Null,
                    kind: KIND_INVALID_REQUEST,
                    error: format!("malformed request: {e}"),
                }
            }
        };
        let id = obj.get("id").cloned().unwrap_or(Json::Null);
        let bad = |error: String| Request::Bad {
            id: id.clone(),
            kind: KIND_INVALID_REQUEST,
            error,
        };

        match obj.get("op").and_then(Json::as_str) {
            None | Some("run") => {}
            Some("configure") => {
                let rebind = match self.override_builder(&obj, None) {
                    Ok(None) => None,
                    Ok(Some(builder)) => match builder.clone().build() {
                        Ok(engine) => Some(Box::new((builder, engine))),
                        Err(e) => return bad(e.to_string()),
                    },
                    Err(error) => return bad(error),
                };
                return Request::Configure { id, rebind };
            }
            Some("stats") => return Request::Stats,
            Some("shutdown") => return Request::Shutdown,
            Some(other) => return bad(format!("unknown op `{other}`")),
        }

        let Some(qasm_text) = obj.get("qasm").and_then(Json::as_str) else {
            return bad("run request needs a string `qasm` field".into());
        };
        match obj.get("stream") {
            None | Some(Json::Bool(false)) => {}
            Some(Json::Bool(true)) => {
                // Streaming runs never materialize a Circuit, so every
                // override path (which sizes its machine to the parsed
                // circuit) is off the table by construction.
                if OVERRIDE_KEYS.iter().any(|k| obj.get(k).is_some()) {
                    return bad("streaming requests compile through the shared session and \
                         accept no per-request overrides; send {\"op\":\"configure\"} \
                         first to rebind"
                        .into());
                }
                let window = match obj.get("stream_window") {
                    None => DEFAULT_STREAM_WINDOW,
                    Some(v) => match v.as_f64() {
                        Some(x) if x >= 1.0 && x.fract() == 0.0 => x as usize,
                        _ => return bad("`stream_window` must be a positive integer".into()),
                    },
                };
                let deadline = match self.parse_deadline(&obj, enqueued) {
                    Ok(d) => d,
                    Err(e) => return bad(e),
                };
                return Request::RunStream(Box::new(StreamItem {
                    id,
                    qasm: qasm_text.into(),
                    window,
                    emit_program: matches!(obj.get("emit_program"), Some(Json::Bool(true))),
                    enqueued,
                    deadline,
                }));
            }
            Some(_) => return bad("`stream` must be a boolean".into()),
        }
        // Parse memo: a repeated payload skips its QASM parse (parsing
        // is deterministic, and the hit verified the text matches) and
        // reuses the memoized cache key.
        let text_key = ParseMemo::text_key(qasm_text);
        let (circuit, digest) = match self.parse_memo.get(text_key, qasm_text) {
            Some(hit) => (hit.circuit, hit.key),
            None => {
                let circuit = match qasm::parse_qasm(qasm_text) {
                    Ok(c) => c,
                    Err(e) => return bad(e.to_string()),
                };
                // Width gate *before* any backend sizes itself to the
                // circuit: the scaled partitioner and the QCCD trap
                // array allocate proportionally to the register, so a
                // `qreg q[10^12]` request must die here as a structured
                // error, not as an allocation abort.
                if circuit.n_qubits() > MAX_REQUEST_IONS {
                    return bad(format!(
                        "circuit register of {} qubits exceeds the service cap of {MAX_REQUEST_IONS}",
                        circuit.n_qubits()
                    ));
                }
                let key = self.cache.circuit_key(&circuit);
                let circuit = Arc::new(circuit);
                self.parse_memo.insert(
                    text_key,
                    MemoHit {
                        text: Arc::from(qasm_text),
                        circuit: Arc::clone(&circuit),
                        key,
                    },
                );
                (circuit, key)
            }
        };
        let emit_program = matches!(obj.get("emit_program"), Some(Json::Bool(true)));
        let deadline = match self.parse_deadline(&obj, enqueued) {
            Ok(d) => d,
            Err(e) => return bad(e),
        };
        let engine = match self.override_builder(&obj, Some(circuit.as_ref())) {
            Ok(None) => None,
            Ok(Some(builder)) => match builder.build() {
                Ok(engine) => Some(engine),
                Err(e) => return bad(e.to_string()),
            },
            Err(error) => return bad(error),
        };
        let item = Box::new(RunItem {
            id: id.clone(),
            digest,
            circuit: Some(circuit),
            emit_program,
            enqueued,
            deadline,
            permit: None,
        });
        match engine {
            None => Request::Run(item),
            Some(engine) => Request::RunOverride(item, Box::new(engine)),
        }
    }

    /// Resolves a request's `deadline_ms` field, falling back to the
    /// service default when the request names none.
    fn parse_deadline(&self, obj: &Json, enqueued: Instant) -> Result<Option<Instant>, String> {
        match obj.get("deadline_ms") {
            None => Ok(self.default_deadline.and_then(|d| enqueued.checked_add(d))),
            Some(v) => match v.as_f64() {
                Some(ms) if ms.is_finite() && ms >= 0.0 => {
                    // A deadline past the representable future is no
                    // deadline at all — saturate instead of panicking.
                    let us = (ms * 1000.0).min(u64::MAX as f64) as u64;
                    Ok(enqueued.checked_add(Duration::from_micros(us)))
                }
                _ => Err("`deadline_ms` must be a non-negative number".into()),
            },
        }
    }

    /// Builds the engine prototype a request's override fields (or a
    /// `configure` message's fields) describe; `Ok(None)` when no
    /// override field is present. `circuit` sizes machine defaults for
    /// run requests; a `configure` message (no circuit) sizes them to
    /// the current session instead.
    fn override_builder(
        &self,
        obj: &Json,
        circuit: Option<&Circuit>,
    ) -> Result<Option<EngineBuilder>, String> {
        if !OVERRIDE_KEYS.iter().any(|k| obj.get(k).is_some()) {
            return Ok(None);
        }

        let get_usize = |key: &str| -> Result<Option<usize>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => match v.as_f64() {
                    Some(x) if x >= 0.0 && x.fract() == 0.0 => Ok(Some(x as usize)),
                    _ => Err(format!("`{key}` must be a non-negative integer")),
                },
            }
        };
        // Machine dimensions additionally respect the service cap —
        // unbounded values would turn one request into a process-wide
        // allocation abort.
        let get_dim = |key: &str| -> Result<Option<usize>, String> {
            match get_usize(key)? {
                Some(x) if x > MAX_REQUEST_IONS => Err(format!(
                    "`{key}` of {x} exceeds the service cap of {MAX_REQUEST_IONS}"
                )),
                other => Ok(other),
            }
        };
        let get_f64 = |key: &str| -> Result<Option<f64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("`{key}` must be a number")),
            }
        };

        // Machine sizing when neither the request nor the session
        // provides a dimension: a run request sizes to its circuit, a
        // `configure` message (no circuit) to the session's capacity.
        let sizing = circuit.map(Circuit::n_qubits).unwrap_or_else(|| {
            match self.engine.backend() {
                Backend::Tilt(spec) => spec.n_ions(),
                Backend::Qccd(spec) => spec.usable_slots(),
                // ELU arrays size per circuit; fall back to the serve
                // default tape width.
                Backend::Scaled(_) => 64,
            }
        });
        // Dimension defaults come from the shared session where they
        // exist, so an override of (say) just the router keeps the
        // session's device.
        let (session_ions, session_head) = match self.engine.backend() {
            Backend::Tilt(spec) => (Some(spec.n_ions()), Some(spec.head_size())),
            _ => (None, None),
        };
        let ions = get_dim("ions")?
            .or(session_ions)
            // No session tape to inherit: size to the circuit/session.
            .unwrap_or(sizing.max(2));
        let head = get_dim("head")?.or(session_head).unwrap_or(16).min(ions);

        let mut builder = self.proto.clone();

        // Router / scheduler overrides. Partial LinQ overrides overlay
        // the *session's* router config — naming only `alpha` must not
        // silently drop the session's `max_swap_len` cap (same
        // inheritance rule as the noise overlay below).
        let max_swap_len = get_usize("max_swap_len")?;
        let alpha = get_f64("alpha")?;
        let base_linq = match self.proto.router {
            Some(RouterKind::Linq(cfg)) => cfg,
            _ => LinqConfig::default(),
        };
        let linq_overlay = LinqConfig {
            max_swap_len: max_swap_len.or(base_linq.max_swap_len),
            alpha: alpha.unwrap_or(base_linq.alpha),
            ..base_linq
        };
        match obj.get("router").and_then(Json::as_str) {
            None => {
                if max_swap_len.is_some() || alpha.is_some() {
                    builder = builder.router(RouterKind::Linq(linq_overlay));
                }
            }
            Some("linq") => {
                builder = builder.router(RouterKind::Linq(linq_overlay));
            }
            Some("stochastic") | Some("baseline") => {
                builder = builder.router(RouterKind::Stochastic(StochasticConfig::default()));
            }
            Some(other) => return Err(format!("unknown router `{other}`")),
        }
        match obj.get("scheduler").and_then(Json::as_str) {
            None => {}
            Some("greedy") => builder = builder.scheduler(SchedulerKind::GreedyMaxExecutable),
            Some("naive") => builder = builder.scheduler(SchedulerKind::NaiveNextGate),
            Some(other) => return Err(format!("unknown scheduler `{other}`")),
        }

        // Simulation method: turns on logical-circuit simulation for
        // this request (or, via `configure`, the session).
        if let Some(m) = obj.get("method") {
            let name = m.as_str().ok_or("`method` must be a string")?;
            let method = crate::sim::SimMethod::parse(name).ok_or_else(|| {
                format!("unknown method `{name}` (expected auto, statevec, or stabilizer)")
            })?;
            builder = builder.simulate(method);
        }

        // Verification level: runs the static rule packs on this
        // request's compiled artifacts (or, via `configure`, on every
        // run of the session).
        if let Some(v) = obj.get("verify") {
            let name = v.as_str().ok_or("`verify` must be a string")?;
            let level = crate::verify::VerifyLevel::parse(name).ok_or_else(|| {
                format!("unknown verify level `{name}` (expected off, warn, or strict)")
            })?;
            builder = builder.verify(level);
        }

        // Noise overlay: any subset of the Eq. 4 fields.
        if let Some(n) = obj.get("noise") {
            if !matches!(n, Json::Obj(_)) {
                return Err("`noise` must be an object".into());
            }
            let field = |key: &str, base: f64| -> Result<f64, String> {
                match n.get(key) {
                    None => Ok(base),
                    Some(v) => v
                        .as_f64()
                        .ok_or_else(|| format!("noise field `{key}` must be a number")),
                }
            };
            let base = self.proto.noise;
            builder = builder.noise(NoiseModel {
                gamma_per_us: field("gamma_per_us", base.gamma_per_us)?,
                epsilon: field("epsilon", base.epsilon)?,
                single_qubit_error: field("single_qubit_error", base.single_qubit_error)?,
                measurement_error: field("measurement_error", base.measurement_error)?,
                k_base: field("k_base", base.k_base)?,
                n_ref: field("n_ref", base.n_ref)?,
            });
        }

        let default_backend = match self.engine.backend() {
            Backend::Tilt(_) => "tilt",
            Backend::Qccd(_) => "qccd",
            Backend::Scaled(_) => "scaled",
        };
        let backend = match obj
            .get("backend")
            .map(|b| b.as_str().ok_or("`backend` must be a string"))
            .transpose()?
            .unwrap_or(default_backend)
        {
            "tilt" => {
                let spec = DeviceSpec::new(ions, head).map_err(|e| e.to_string())?;
                Backend::Tilt(spec)
            }
            "qccd" => {
                // Tape dimensions have no QCCD meaning — reject rather
                // than silently compile on a machine the client did
                // not describe.
                for key in ["ions", "head"] {
                    if obj.get(key).is_some() {
                        return Err(format!(
                            "`{key}` does not apply to the qccd backend; use `ions_per_trap`"
                        ));
                    }
                }
                // A QCCD session's own machine is inherited wholesale
                // when the request names no trap dimension; otherwise
                // the array is sized to the circuit under the requested
                // (or inherited) trap capacity.
                let session_spec = match self.engine.backend() {
                    Backend::Qccd(s) => Some(*s),
                    _ => None,
                };
                match (get_dim("ions_per_trap")?, session_spec) {
                    (None, Some(spec)) => Backend::Qccd(spec),
                    (per_trap, session) => {
                        let per_trap = per_trap.or(session.map(|s| s.capacity())).unwrap_or(17);
                        let spec = QccdSpec::for_qubits(sizing.max(1), per_trap)
                            .map_err(|e| e.to_string())?;
                        Backend::Qccd(spec)
                    }
                }
            }
            "scaled" => {
                // The monolithic tape length has no scaled meaning
                // (`head` does: it is each ELU's head).
                if obj.get("ions").is_some() {
                    return Err(
                        "`ions` does not apply to the scaled backend; use `elu_ions`".into(),
                    );
                }
                // Same inheritance rule: no ELU dimensions named ⇒ the
                // session's own ELU template (policies included).
                let session_spec = match self.engine.backend() {
                    Backend::Scaled(s) => Some(*s),
                    _ => None,
                };
                let elu_override = get_dim("elu_ions")?;
                let head_override = get_dim("head")?;
                match (elu_override, head_override, session_spec) {
                    (None, None, Some(spec)) => Backend::Scaled(spec),
                    (elu, head, session) => {
                        let elu = elu.or(session.map(|s| s.ions_per_elu())).unwrap_or(18);
                        let head = head
                            .or(session.map(|s| s.head_size()))
                            .unwrap_or(16)
                            .min(elu);
                        let mut spec = ScaleSpec::new(elu, head).map_err(|e| e.to_string())?;
                        if let Some(s) = session {
                            spec.epr = s.epr;
                            spec.router = s.router;
                            spec.scheduler = s.scheduler;
                            spec.initial_mapping = s.initial_mapping;
                        }
                        Backend::Scaled(spec)
                    }
                }
            }
            other => return Err(format!("unknown backend `{other}`")),
        };

        Ok(Some(builder.backend(backend)))
    }
}

/// Looks up and renders `item`'s cached response (free function so the
/// flush callback can call it under split borrows).
fn cached_wire_response(cache: &CompileCache, item: &RunItem, config: Digest) -> Option<Json> {
    let key = CacheKey {
        circuit: item.digest,
        config,
    };
    let entry = cache.get_wire(key)?;
    // Clone the wire view only when the response must carry program
    // text the entry holds lazily — the common no-program hit renders
    // straight from the shared entry.
    if item.emit_program && entry.wire.program_text.is_none() {
        let mut wire = entry.wire.clone();
        wire.program_text = entry.program_text();
        Some(wire.response(&item.id, true))
    } else {
        Some(entry.wire.response(&item.id, item.emit_program))
    }
}

/// Renders one run result as its response line — through the same
/// [`WireReport`] projection the cache serves hits from, so fresh and
/// cached responses are byte-identical by construction.
fn run_response(id: &Json, result: &Result<RunReport, TiltError>, emit_program: bool) -> Json {
    match result {
        Err(e) => {
            let kind = match e {
                TiltError::Internal { .. } => KIND_INTERNAL,
                TiltError::NonClifford { .. } => KIND_NON_CLIFFORD,
                TiltError::Verify { .. } => KIND_VERIFY_FAILED,
                _ => KIND_COMPILE,
            };
            error_json(id, kind, &e.to_string())
        }
        Ok(report) => {
            let mut wire = WireReport::of(report);
            if emit_program {
                wire.program_text = report.tilt_program().map(std::string::ToString::to_string);
            }
            wire.response(id, emit_program)
        }
    }
}

/// Renders a streaming increment's ops in the per-op format of
/// [`TiltProgram`](tilt_compiler::TiltProgram)'s `Display` body, so
/// concatenating every increment of one shard reproduces the monolithic
/// `emit_program` text minus its header line.
fn render_ops(ops: &[TiltOp]) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for op in ops {
        let _ = match op {
            TiltOp::Move { to } => writeln!(text, "  move -> {to}"),
            TiltOp::Gate { gate, head_pos } => writeln!(text, "  [{head_pos:>3}] {gate}"),
        };
    }
    text
}

/// The final response line of a streaming run: the monolithic wire
/// fields (bit-identical numbers — the streaming pipeline is
/// decision-identical) plus the streaming markers.
fn stream_response(id: &Json, outcome: &StreamOutcome) -> Json {
    let c = &outcome.compile;
    Json::object()
        .set("id", id.clone())
        .set("ok", true)
        .set("streamed", true)
        .set("backend", outcome.backend.to_string())
        .set("swaps", c.swap_count)
        .set("opposing_swaps", c.opposing_swap_count)
        .set("moves", c.move_count)
        .set("move_distance", c.move_distance)
        .set("native_gates", c.native_gate_count)
        .set("native_two_qubit", c.native_two_qubit_count)
        .set("epr_pairs", c.epr_pairs)
        .set("ln_success", outcome.ln_success)
        .set("success", outcome.success)
        .set("exec_time_us", outcome.exec_time_us)
        .set("increments", outcome.increments)
        .set("input_gates", outcome.input_gate_count)
}

/// The structured error object every failure line carries:
/// `{"id":...,"ok":false,"error":{"kind":...,"message":...}}`.
fn error_json(id: &Json, kind: &str, message: &str) -> Json {
    Json::object().set("id", id.clone()).set("ok", false).set(
        "error",
        Json::object().set("kind", kind).set("message", message),
    )
}

/// The load-shed response: `overloaded` plus the backoff hint clients
/// should sleep (with jitter) before retrying.
fn overloaded_json(id: &Json, retry_after_ms: u64) -> Json {
    Json::object().set("id", id.clone()).set("ok", false).set(
        "error",
        Json::object()
            .set("kind", KIND_OVERLOADED)
            .set("message", "shed by admission control; back off and retry")
            .set("retry_after_ms", retry_after_ms),
    )
}

/// The deadline-shed response: the request expired before compiling.
fn deadline_json(id: &Json) -> Json {
    error_json(id, KIND_DEADLINE, "deadline expired before compilation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tilt_service(ions: usize, head: usize) -> Service {
        Service::new(Engine::builder().backend(Backend::Tilt(DeviceSpec::new(ions, head).unwrap())))
            .unwrap()
    }

    fn drive(service: &mut Service, input: &str) -> (Vec<Json>, ServiceSummary) {
        let mut out = Vec::new();
        let summary = service
            .serve(Cursor::new(input.to_string()), &mut out, None)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines = text
            .lines()
            .map(|l| Json::parse(l).expect("every response line is valid JSON"))
            .collect();
        (lines, summary)
    }

    fn ok(resp: &Json) -> bool {
        resp.get("ok") == Some(&Json::Bool(true))
    }

    fn err_kind(resp: &Json) -> &str {
        resp.get("error")
            .expect("error responses carry an error object")
            .get("kind")
            .expect("error objects carry a kind")
            .as_str()
            .unwrap()
    }

    fn err_msg(resp: &Json) -> &str {
        resp.get("error")
            .expect("error responses carry an error object")
            .get("message")
            .expect("error objects carry a message")
            .as_str()
            .unwrap()
    }

    #[test]
    fn run_request_round_trips() {
        let mut s = tilt_service(8, 4);
        let (resps, summary) = drive(
            &mut s,
            "{\"id\":7,\"qasm\":\"qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\n\"}\n",
        );
        assert_eq!(resps.len(), 1);
        assert!(ok(&resps[0]), "{:?}", resps[0]);
        assert_eq!(resps[0].get("id").unwrap().as_f64(), Some(7.0));
        assert_eq!(resps[0].get("backend").unwrap().as_str(), Some("tilt"));
        assert!(resps[0].get("ln_success").unwrap().as_f64().unwrap() < 0.0);
        assert_eq!(summary.cause, ShutdownCause::Eof);
        assert_eq!(summary.stats.served, 1);
        assert_eq!(summary.stats.ok, 1);
    }

    #[test]
    fn malformed_json_yields_error_response_and_loop_survives() {
        let mut s = tilt_service(8, 4);
        let input = "this is not json\n{\"id\":2,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n";
        let (resps, summary) = drive(&mut s, input);
        assert_eq!(resps.len(), 2);
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert!(err_msg(&resps[0]).contains("malformed request"));
        assert!(ok(&resps[1]), "the loop must survive a bad line");
        assert_eq!(summary.stats.errors, 1);
    }

    #[test]
    fn qasm_parse_failure_is_isolated() {
        let mut s = tilt_service(8, 4);
        let (resps, _) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[2];\\nwat q[0];\\n\"}\n{\"id\":2,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\"}\n",
        );
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert!(err_msg(&resps[0]).contains("wat"));
        assert!(ok(&resps[1]));
    }

    #[test]
    fn too_wide_circuit_is_isolated() {
        let mut s = tilt_service(8, 4);
        let (resps, _) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[40];\\ncx q[0], q[39];\\n\"}\n{\"id\":2,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n",
        );
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "compile");
        assert!(err_msg(&resps[0]).contains("needs 40 qubits"));
        assert!(ok(&resps[1]));
    }

    #[test]
    fn unknown_backend_name_is_rejected_per_request() {
        let mut s = tilt_service(8, 4);
        let (resps, _) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\",\"backend\":\"qpu9000\"}\n",
        );
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert!(err_msg(&resps[0]).contains("unknown backend `qpu9000`"));
    }

    #[test]
    fn method_override_simulates_and_reports_the_simulator() {
        let mut s = tilt_service(8, 4);
        let (resps, _) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[2];\\nh q[0];\\ncx q[0], q[1];\\nmeasure q[0];\\nmeasure q[1];\\n\",\"method\":\"auto\"}\n",
        );
        assert!(ok(&resps[0]), "{:?}", resps[0]);
        let sim = resps[0].get("sim").expect("method override attaches sim");
        assert_eq!(sim.get("simulator").unwrap().as_str(), Some("stabilizer"));
        assert_eq!(sim.get("measurements").unwrap().as_f64(), Some(2.0));
        let bits = sim.get("bitstring").unwrap().as_str().unwrap();
        assert!(bits == "00" || bits == "11", "Bell bits correlate: {bits}");
    }

    #[test]
    fn non_clifford_under_stabilizer_method_is_a_clean_wire_error() {
        let mut s = tilt_service(8, 4);
        let input = "{\"id\":1,\"qasm\":\"qreg q[2];\\nh q[0];\\nt q[1];\\n\",\"method\":\"stabilizer\"}\n{\"id\":2,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\"}\n";
        let (resps, summary) = drive(&mut s, input);
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "non_clifford");
        assert!(err_msg(&resps[0]).contains("index 1"), "{:?}", resps[0]);
        assert!(ok(&resps[1]), "the loop survives a non-Clifford request");
        assert_eq!(summary.stats.errors, 1);
    }

    #[test]
    fn unknown_method_is_rejected_per_request() {
        let mut s = tilt_service(8, 4);
        let (resps, _) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\",\"method\":\"magic\"}\n",
        );
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert!(err_msg(&resps[0]).contains("unknown method `magic`"));
    }

    #[test]
    fn verify_override_accepts_levels_and_rejects_unknowns() {
        let mut s = tilt_service(8, 4);
        let input = "{\"id\":1,\"qasm\":\"qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\n\",\"verify\":\"strict\"}\n{\"id\":2,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\",\"verify\":\"pedantic\"}\n";
        let (resps, _) = drive(&mut s, input);
        assert!(ok(&resps[0]), "clean compile passes strict: {:?}", resps[0]);
        assert!(!ok(&resps[1]));
        assert_eq!(err_kind(&resps[1]), "invalid_request");
        assert!(err_msg(&resps[1]).contains("unknown verify level `pedantic`"));
    }

    #[test]
    fn verify_failure_maps_to_its_wire_kind() {
        // The engine only produces `TiltError::Verify` for corrupted
        // artifacts, which a live compile never yields — pin the
        // response mapping directly.
        let resp = run_response(
            &Json::from(9.0),
            &Err(TiltError::Verify {
                count: 3,
                first: "error[tilt/head-span] op 0: example".into(),
            }),
            false,
        );
        assert!(!ok(&resp));
        assert_eq!(err_kind(&resp), "verify_failed");
        assert!(err_msg(&resp).contains("3 diagnostic(s)"));
    }

    #[test]
    fn stats_and_shutdown_round_trip() {
        let mut s = tilt_service(8, 4);
        let input = "{\"id\":1,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n{\"id\":99,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\"}\n";
        let (resps, summary) = drive(&mut s, input);
        // Run, stats, shutdown ack — the post-shutdown line is unread.
        assert_eq!(resps.len(), 3);
        assert!(ok(&resps[0]));
        let stats = resps[1].get("stats").unwrap();
        assert_eq!(stats.get("served").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("ok").unwrap().as_f64(), Some(1.0));
        assert!(stats.get("p50_latency_us").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(resps[2].get("shutdown"), Some(&Json::Bool(true)));
        assert_eq!(summary.cause, ShutdownCause::Requested);
    }

    #[test]
    fn backend_override_reaches_qccd_and_scaled() {
        let mut s = tilt_service(16, 4);
        let qasm = "qreg q[16];\\nh q[0];\\ncx q[0], q[15];\\n";
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\",\"backend\":\"qccd\",\"ions_per_trap\":5}}\n{{\"id\":2,\"qasm\":\"{qasm}\",\"backend\":\"scaled\",\"elu_ions\":10,\"head\":4}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        assert!(ok(&resps[0]), "{:?}", resps[0]);
        assert_eq!(resps[0].get("backend").unwrap().as_str(), Some("qccd"));
        assert!(ok(&resps[1]), "{:?}", resps[1]);
        assert_eq!(resps[1].get("backend").unwrap().as_str(), Some("scaled"));
        assert!(resps[1].get("epr_pairs").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn absurd_dimension_requests_are_rejected_not_fatal() {
        // An uncapped `ions` override used to abort the process on
        // allocation failure — one request must never kill the loop.
        let mut s = tilt_service(8, 4);
        let input = concat!(
            "{\"id\":1,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\",\"ions\":200000000000}\n",
            "{\"id\":2,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\",\"elu_ions\":99999999,\"backend\":\"scaled\"}\n",
            "{\"id\":3,\"qasm\":\"qreg q[1000000000];\\n\",\"backend\":\"scaled\",\"elu_ions\":10}\n",
            "{\"id\":4,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n",
        );
        let (resps, summary) = drive(&mut s, input);
        assert_eq!(resps.len(), 4);
        for resp in &resps[..3] {
            assert!(!ok(resp), "{resp:?}");
            assert!(
                err_msg(resp).contains("exceeds the service cap"),
                "{resp:?}"
            );
        }
        assert!(ok(&resps[3]), "the loop survives: {:?}", resps[3]);
        assert_eq!(summary.stats.errors, 3);
    }

    #[test]
    fn overrides_inherit_the_session_machine_per_backend() {
        // A noise-only override on a scaled session must keep the
        // session's ELU template (and its policies), not fall back to
        // the global defaults.
        let spec = ScaleSpec::new(10, 4).unwrap();
        let mut s = Service::new(Engine::builder().backend(Backend::Scaled(spec))).unwrap();
        let qasm = "qreg q[16];\\ncx q[7], q[8];\\ncx q[0], q[1];\\n";
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\"}}\n{{\"id\":2,\"qasm\":\"{qasm}\",\"noise\":{{\"epsilon\":0.0012}}}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        assert!(ok(&resps[0]) && ok(&resps[1]), "{resps:?}");
        // Same machine ⇒ same compiled shape (EPR pairs, swaps, moves);
        // only the noise-driven success differs.
        for key in ["epr_pairs", "swaps", "moves", "native_gates"] {
            assert_eq!(
                resps[0].get(key).unwrap().as_f64(),
                resps[1].get(key).unwrap().as_f64(),
                "{key} must come from the session's ELU template"
            );
        }
        assert!(
            resps[1].get("success").unwrap().as_f64().unwrap()
                < resps[0].get("success").unwrap().as_f64().unwrap(),
            "the noisier override must lower success"
        );

        // Same rule for a QCCD session: no trap dimension named ⇒ the
        // session's own array.
        let qspec = QccdSpec::for_qubits(16, 5).unwrap();
        let mut s = Service::new(Engine::builder().backend(Backend::Qccd(qspec))).unwrap();
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\"}}\n{{\"id\":2,\"qasm\":\"{qasm}\",\"noise\":{{\"epsilon\":0.0012}}}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        assert!(ok(&resps[0]) && ok(&resps[1]), "{resps:?}");
        assert_eq!(
            resps[0].get("moves").unwrap().as_f64(),
            resps[1].get("moves").unwrap().as_f64(),
            "transport count must come from the session's trap array"
        );
    }

    #[test]
    fn partial_linq_override_overlays_the_session_router() {
        // Naming only `alpha` must keep the session's max_swap_len cap
        // (the same inheritance rule as the noise overlay).
        let session_router = RouterKind::Linq(LinqConfig {
            max_swap_len: Some(2),
            alpha: 0.5,
            ..LinqConfig::default()
        });
        let builder = || {
            Engine::builder()
                .backend(Backend::Tilt(DeviceSpec::new(8, 4).unwrap()))
                .router(session_router)
        };
        let mut s = Service::new(builder()).unwrap();
        let qasm_text = "qreg q[8];\nh q[0];\ncx q[0], q[7];\ncx q[1], q[6];\n";
        let wire = qasm_text.replace('\n', "\\n");
        let (resps, _) = drive(
            &mut s,
            &format!("{{\"id\":1,\"qasm\":\"{wire}\",\"alpha\":0.9}}\n"),
        );
        assert!(ok(&resps[0]), "{:?}", resps[0]);

        let circuit = tilt_circuit::qasm::parse_qasm(qasm_text).unwrap();
        let expected = builder()
            .router(RouterKind::Linq(LinqConfig {
                max_swap_len: Some(2),
                alpha: 0.9,
                ..LinqConfig::default()
            }))
            .build()
            .unwrap()
            .run(&circuit)
            .unwrap();
        assert_eq!(
            resps[0].get("ln_success").unwrap().as_f64(),
            Some(expected.ln_success),
            "the override engine must keep the session's swap-span cap"
        );
        assert_eq!(
            resps[0].get("swaps").unwrap().as_f64(),
            Some(expected.compile.swap_count as f64)
        );
    }

    #[test]
    fn inapplicable_dimension_overrides_are_rejected() {
        // `ions` means nothing on qccd/scaled; silently compiling on a
        // different machine than the client described is worse than an
        // error.
        let mut s = tilt_service(8, 4);
        let qasm = "qreg q[4];\\ncx q[0], q[3];\\n";
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\",\"backend\":\"qccd\",\"ions\":32}}\n{{\"id\":2,\"qasm\":\"{qasm}\",\"backend\":\"scaled\",\"ions\":32}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        for resp in &resps {
            assert!(!ok(resp), "{resp:?}");
            assert!(err_msg(resp).contains("does not apply"), "{resp:?}");
        }
    }

    #[test]
    fn newline_free_flood_is_rejected_with_bounded_memory() {
        // One line larger than MAX_LINE_BYTES must produce a single
        // structured error and not poison the next (normal) line.
        let mut s = tilt_service(8, 4);
        // Overshoot by many read-chunks: the limit check runs between
        // chunks, so a line must exceed the cap by more than one chunk
        // before its newline arrives for the rejection to be observable.
        let mut input = vec![b'x'; super::MAX_LINE_BYTES + 256 * 1024];
        input.push(b'\n');
        input.extend_from_slice(b"{\"id\":2,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n");
        let mut out = Vec::new();
        // A small-capacity BufReader models the wire: the flood arrives
        // in bounded chunks, never as one complete buffered line.
        let reader = std::io::BufReader::with_capacity(8 * 1024, Cursor::new(input));
        let summary = s.serve(reader, &mut out, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        let resps: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(resps.len(), 2, "{text}");
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert!(err_msg(&resps[0]).contains("byte limit"));
        assert!(ok(&resps[1]), "{:?}", resps[1]);
        assert_eq!(summary.stats.errors, 1);
    }

    #[test]
    fn duplicate_requests_are_served_from_cache_byte_identically() {
        let mut s = tilt_service(8, 4);
        let qasm = "qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\n";
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\",\"emit_program\":true}}\n{{\"id\":1,\"qasm\":\"{qasm}\",\"emit_program\":true}}\n{{\"op\":\"stats\"}}\n"
        );
        let (resps, summary) = drive(&mut s, &input);
        assert_eq!(resps.len(), 3);
        assert!(ok(&resps[0]) && ok(&resps[1]), "{resps:?}");
        assert_eq!(
            resps[0].render(),
            resps[1].render(),
            "a cache hit must be byte-identical to the fresh compile"
        );
        assert!(resps[0].get("program").is_some());
        let cache = resps[2].get("stats").unwrap().get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache.get("entries").unwrap().as_f64(), Some(1.0));
        assert_eq!(summary.cache.hits, 1);
        assert_eq!(summary.stats.served, 2, "hits still count as served");
    }

    #[test]
    fn override_requests_cache_under_their_own_config() {
        let mut s = tilt_service(8, 4);
        let qasm = "qreg q[8];\\ncx q[0], q[7];\\n";
        // Same circuit: default session, then twice under an override.
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\"}}\n{{\"id\":2,\"qasm\":\"{qasm}\",\"scheduler\":\"naive\"}}\n{{\"id\":3,\"qasm\":\"{qasm}\",\"scheduler\":\"naive\"}}\n{{\"op\":\"stats\"}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        assert!(resps[..3].iter().all(ok), "{resps:?}");
        let cache = resps[3].get("stats").unwrap().get("cache").unwrap();
        // The override keys a distinct config: ids 1 and 2 miss, id 3
        // hits id 2's entry.
        assert_eq!(cache.get("misses").unwrap().as_f64(), Some(2.0));
        assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache.get("entries").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn configure_rebinds_the_default_session() {
        let mut s = tilt_service(16, 4);
        let qasm = "qreg q[16];\\nh q[0];\\ncx q[0], q[15];\\ncx q[1], q[14];\\n";
        let input = format!(
            "{{\"id\":0,\"op\":\"configure\",\"scheduler\":\"naive\"}}\n{{\"id\":1,\"qasm\":\"{qasm}\"}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        assert_eq!(resps[0].get("configured"), Some(&Json::Bool(true)));
        assert_eq!(resps[0].get("backend").unwrap().as_str(), Some("tilt"));
        assert!(ok(&resps[1]), "{:?}", resps[1]);

        // The default-session request must now compile under the
        // reconfigured policies — identical to an explicitly built
        // naive-scheduler engine.
        let circuit = tilt_circuit::qasm::parse_qasm(&qasm.replace("\\n", "\n")).unwrap();
        let expected = Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(16, 4).unwrap()))
            .scheduler(SchedulerKind::NaiveNextGate)
            .build()
            .unwrap()
            .run(&circuit)
            .unwrap();
        assert_eq!(
            resps[1].get("moves").unwrap().as_f64(),
            Some(expected.compile.move_count as f64)
        );
        assert_eq!(
            resps[1].get("ln_success").unwrap().as_f64(),
            Some(expected.ln_success)
        );
    }

    #[test]
    fn bad_configure_is_rejected_and_session_survives() {
        let mut s = tilt_service(8, 4);
        let qasm = "qreg q[4];\\ncx q[0], q[3];\\n";
        let input = format!(
            "{{\"id\":0,\"op\":\"configure\",\"router\":\"warp\"}}\n{{\"id\":1,\"op\":\"configure\",\"max_swap_len\":99}}\n{{\"id\":2,\"qasm\":\"{qasm}\"}}\n"
        );
        let (resps, summary) = drive(&mut s, &input);
        assert!(!ok(&resps[0]), "{:?}", resps[0]);
        assert!(!ok(&resps[1]), "invalid router config must be rejected");
        assert!(
            ok(&resps[2]),
            "the old session still serves: {:?}",
            resps[2]
        );
        assert_eq!(summary.stats.errors, 2);
    }

    #[test]
    fn configure_without_fields_is_an_acknowledged_noop() {
        let mut s = tilt_service(8, 4);
        let (resps, _) = drive(&mut s, "{\"op\":\"configure\"}\n");
        assert_eq!(resps[0].get("configured"), Some(&Json::Bool(true)));
        assert!(ok(&resps[0]));
    }

    #[test]
    fn parse_memo_verifies_text_before_serving() {
        // A digest collision between two different payloads (FNV is
        // not collision-resistant) must degrade to a miss, never serve
        // the other payload's circuit.
        let mut memo = ParseMemo::default();
        let key = ParseMemo::text_key("qreg q[2];\ncx q[0], q[1];\n");
        memo.insert(
            key,
            MemoHit {
                text: Arc::from("qreg q[2];\ncx q[0], q[1];\n"),
                circuit: Arc::new(Circuit::new(2)),
                key: Digest(7),
            },
        );
        assert!(memo.get(key, "qreg q[2];\ncx q[0], q[1];\n").is_some());
        assert!(
            memo.get(key, "some colliding other text").is_none(),
            "a hit requires the exact original text"
        );
    }

    #[test]
    fn expired_deadline_is_shed_before_compiling() {
        let mut s = tilt_service(8, 4);
        let input = concat!(
            "{\"id\":1,\"qasm\":\"qreg q[8];\\ncx q[0], q[7];\\n\",\"deadline_ms\":0}\n",
            "{\"id\":2,\"qasm\":\"qreg q[8];\\ncx q[0], q[7];\\n\"}\n",
        );
        let (resps, summary) = drive(&mut s, input);
        assert_eq!(resps.len(), 2);
        assert!(!ok(&resps[0]));
        assert_eq!(err_kind(&resps[0]), "deadline_exceeded");
        assert!(ok(&resps[1]), "{:?}", resps[1]);
        assert_eq!(summary.stats.shed_deadline, 1);
        // The shed request never touched the cache, let alone compiled:
        // the same circuit still cost exactly one (later) miss.
        assert_eq!(summary.cache.misses, 1);
        assert_eq!(summary.cache.entries, 1);
    }

    #[test]
    fn default_deadline_applies_when_request_names_none() {
        let mut s = tilt_service(8, 4).with_default_deadline(Some(Duration::ZERO));
        let (resps, summary) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n",
        );
        assert_eq!(err_kind(&resps[0]), "deadline_exceeded");
        assert_eq!(summary.stats.shed_deadline, 1);
        // An explicit generous deadline overrides the default.
        let mut s = tilt_service(8, 4).with_default_deadline(Some(Duration::ZERO));
        let (resps, _) = drive(
            &mut s,
            "{\"id\":1,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\",\"deadline_ms\":60000}\n",
        );
        assert!(ok(&resps[0]), "{:?}", resps[0]);
    }

    #[test]
    fn invalid_deadline_is_rejected_as_invalid_request() {
        let mut s = tilt_service(8, 4);
        let input = concat!(
            "{\"id\":1,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\",\"deadline_ms\":-5}\n",
            "{\"id\":2,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\",\"deadline_ms\":\"soon\"}\n",
        );
        let (resps, _) = drive(&mut s, input);
        for resp in &resps {
            assert_eq!(err_kind(resp), "invalid_request");
            assert!(err_msg(resp).contains("deadline_ms"), "{resp:?}");
        }
    }

    #[test]
    fn flood_past_admission_budget_sheds_with_retry_hint() {
        let admission = Arc::new(AdmissionControl::new(2, usize::MAX));
        let mut s = tilt_service(8, 4).with_admission(Arc::clone(&admission));
        // Six distinct circuits arrive before any response is due: the
        // first two are admitted, the rest shed — in submission order.
        let input: String = (1..=6)
            .map(|k| format!("{{\"id\":{k},\"qasm\":\"qreg q[8];\\ncx q[0], q[{k}];\\n\"}}\n"))
            .collect::<String>()
            + "{\"op\":\"stats\"}\n";
        let (resps, summary) = drive(&mut s, &input);
        assert_eq!(resps.len(), 7);
        assert!(ok(&resps[0]) && ok(&resps[1]), "{resps:?}");
        for resp in &resps[2..6] {
            assert!(!ok(resp), "{resp:?}");
            assert_eq!(err_kind(resp), "overloaded");
            let retry = resp
                .get("error")
                .unwrap()
                .get("retry_after_ms")
                .expect("overloaded responses carry a backoff hint")
                .as_f64()
                .unwrap();
            assert!(retry >= 1.0, "{resp:?}");
        }
        assert_eq!(summary.stats.shed_overloaded, 4);
        let shed = resps[6].get("stats").unwrap().get("shed").unwrap();
        assert_eq!(shed.get("overloaded").unwrap().as_f64(), Some(4.0));
        assert_eq!(shed.get("deadline").unwrap().as_f64(), Some(0.0));
        // Every permit was released with its window.
        assert_eq!(admission.counters().in_flight, 0);
        assert_eq!(admission.counters().in_flight_bytes, 0);
    }

    #[test]
    fn cache_hits_bypass_admission() {
        // A saturated budget must not shed requests the cache can
        // answer without compiling.
        let admission = Arc::new(AdmissionControl::new(1, usize::MAX));
        let mut s = tilt_service(8, 4).with_admission(Arc::clone(&admission));
        let qasm = "qreg q[8];\\ncx q[0], q[7];\\n";
        // The stats line forces a flush, so the repeat is a genuine
        // cache hit rather than a same-window duplicate.
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\"}}\n{{\"op\":\"stats\"}}\n{{\"id\":2,\"qasm\":\"{qasm}\"}}\n"
        );
        let (resps, summary) = drive(&mut s, &input);
        assert!(ok(&resps[0]) && ok(&resps[2]), "{resps:?}");
        assert_eq!(summary.stats.shed_overloaded, 0);
        assert_eq!(summary.cache.hits, 1);
    }

    #[test]
    fn streaming_request_matches_monolithic_numbers() {
        let mut s = tilt_service(8, 4);
        let qasm = "qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\ncx q[1], q[6];\\ncx q[2], q[5];\\n";
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\"}}\n{{\"id\":2,\"stream\":true,\"stream_window\":2,\"qasm\":\"{qasm}\"}}\n"
        );
        let (resps, summary) = drive(&mut s, &input);
        let mono = &resps[0];
        assert!(ok(mono), "{mono:?}");
        let last = resps.last().unwrap();
        assert!(ok(last), "{last:?}");
        assert_eq!(last.get("streamed"), Some(&Json::Bool(true)));
        for key in [
            "backend",
            "swaps",
            "opposing_swaps",
            "moves",
            "move_distance",
            "native_gates",
            "native_two_qubit",
            "epr_pairs",
            "ln_success",
            "success",
            "exec_time_us",
        ] {
            assert_eq!(mono.get(key), last.get(key), "field `{key}` must match");
        }
        assert_eq!(last.get("input_gates").unwrap().as_f64(), Some(4.0));
        let increments = last.get("increments").unwrap().as_f64().unwrap() as usize;
        let inc_lines = &resps[1..resps.len() - 1];
        assert_eq!(inc_lines.len(), increments);
        assert!(increments >= 1);
        for (i, line) in inc_lines.iter().enumerate() {
            assert_eq!(line.get("id").unwrap().as_f64(), Some(2.0));
            assert_eq!(
                line.get("increment").unwrap().as_f64(),
                Some((i + 1) as f64)
            );
            assert_eq!(line.get("shard").unwrap().as_f64(), Some(0.0));
            assert!(line.get("ops").unwrap().as_f64().unwrap() >= 1.0);
        }
        assert_eq!(summary.stats.ok, 2);
    }

    #[test]
    fn streaming_emit_program_reconstructs_the_monolithic_program() {
        let mut s = tilt_service(8, 4);
        let qasm = "qreg q[8];\\nh q[3];\\ncx q[0], q[7];\\ncx q[3], q[4];\\n";
        let input = format!(
            "{{\"id\":1,\"qasm\":\"{qasm}\",\"emit_program\":true}}\n{{\"id\":2,\"stream\":true,\"stream_window\":1,\"qasm\":\"{qasm}\",\"emit_program\":true}}\n"
        );
        let (resps, _) = drive(&mut s, &input);
        let mono_program = resps[0].get("program").unwrap().as_str().unwrap();
        // The monolithic text is one header line plus the op body; the
        // increments carry only op lines.
        let body = mono_program.split_once('\n').unwrap().1;
        let streamed: String = resps[1..resps.len() - 1]
            .iter()
            .map(|line| line.get("program").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(streamed, body);
    }

    #[test]
    fn streaming_on_the_scaled_backend_emits_per_shard_increments() {
        let mut s = Service::new(
            Engine::builder().backend(Backend::Scaled(ScaleSpec::new(10, 4).unwrap())),
        )
        .unwrap();
        let qasm = "qreg q[16];\\nh q[0];\\ncx q[0], q[15];\\ncx q[3], q[12];\\n";
        let input = format!("{{\"id\":1,\"stream\":true,\"qasm\":\"{qasm}\"}}\n");
        let (resps, _) = drive(&mut s, &input);
        let last = resps.last().unwrap();
        assert!(ok(last), "{last:?}");
        assert_eq!(last.get("backend").unwrap().as_str(), Some("scaled"));
        assert!(last.get("epr_pairs").unwrap().as_f64().unwrap() >= 2.0);
        let shards: std::collections::BTreeSet<u64> = resps[..resps.len() - 1]
            .iter()
            .map(|l| l.get("shard").unwrap().as_f64().unwrap() as u64)
            .collect();
        assert!(shards.len() >= 2, "both ELUs emit increments: {shards:?}");
    }

    #[test]
    fn streaming_rejects_overrides_and_bad_flags() {
        let mut s = tilt_service(8, 4);
        let input = concat!(
            "{\"id\":1,\"stream\":true,\"router\":\"linq\",\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\"}\n",
            "{\"id\":2,\"stream\":true,\"stream_window\":0,\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\"}\n",
            "{\"id\":3,\"stream\":\"yes\",\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\"}\n",
        );
        let (resps, _) = drive(&mut s, input);
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert!(err_msg(&resps[0]).contains("overrides"), "{:?}", resps[0]);
        assert_eq!(err_kind(&resps[1]), "invalid_request");
        assert!(err_msg(&resps[1]).contains("stream_window"));
        assert_eq!(err_kind(&resps[2]), "invalid_request");
        assert!(err_msg(&resps[2]).contains("`stream`"));
    }

    #[test]
    fn streaming_failures_are_isolated_per_request() {
        let mut s = tilt_service(8, 4);
        let input = concat!(
            // No qreg header: the stream cannot size the machine.
            "{\"id\":1,\"stream\":true,\"qasm\":\"h q[0];\\n\"}\n",
            // Register past the service-wide width cap.
            "{\"id\":2,\"stream\":true,\"qasm\":\"qreg q[5000];\\ncx q[0], q[1];\\n\"}\n",
            // Wider than the session tape: a backend compile error.
            "{\"id\":3,\"stream\":true,\"qasm\":\"qreg q[40];\\ncx q[0], q[39];\\n\"}\n",
            // The loop survives all of the above.
            "{\"id\":4,\"stream\":true,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n",
        );
        let (resps, summary) = drive(&mut s, input);
        assert_eq!(err_kind(&resps[0]), "invalid_request");
        assert_eq!(err_kind(&resps[1]), "invalid_request");
        assert!(err_msg(&resps[1]).contains("service cap"));
        assert_eq!(err_kind(&resps[2]), "compile");
        let last = resps.last().unwrap();
        assert!(ok(last), "the loop survives streaming failures: {last:?}");
        assert_eq!(summary.stats.errors, 3);
        assert_eq!(summary.stats.ok, 1);
    }

    #[test]
    fn streaming_deadline_zero_is_shed_without_compiling() {
        let mut s = tilt_service(8, 4);
        let (resps, summary) = drive(
            &mut s,
            "{\"id\":1,\"stream\":true,\"deadline_ms\":0,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n",
        );
        assert_eq!(err_kind(&resps[0]), "deadline_exceeded");
        assert_eq!(summary.stats.shed_deadline, 1);
    }

    #[test]
    fn latency_histogram_quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 10, 100, 1000, 10_000] {
            h.record_us(us);
        }
        assert!(h.quantile_us(0.5) <= h.quantile_us(0.99));
        assert!(h.quantile_us(0.99) >= 8192);
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0);
    }
}
