//! Fault injection for the chaos tests and the CI chaos smoke.
//!
//! A [`FaultPlan`] arms process-global failure seams threaded through
//! the engine behind `#[cfg(any(test, feature = "faults"))]`: compile
//! panics keyed by circuit width or compile index, artificial compile
//! latency, snapshot write errors / partial writes, and snapshot line
//! corruption. Production builds (no `faults` feature, not `cfg(test)`)
//! do not compile this module or any call into it.
//!
//! Plans are installed with [`install`], which also serializes fault
//! tests: the returned [`FaultGuard`] holds a process-wide lock so two
//! concurrent `#[test]`s can never see each other's plan, and dropping
//! it disarms every seam. The CLI (built with `--features faults`)
//! installs a plan from the `TILT_FAULT_PLAN` environment variable and
//! leaks the guard for the life of the process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Which faults to inject; every field defaults to "off".
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Panic inside the compile path for any circuit with exactly this
    /// register width. Width-keyed injection is deterministic under the
    /// batch pool's work stealing, unlike a compile counter.
    pub panic_on_width: Option<usize>,
    /// Panic inside the compile path on the `n`-th compile (0-based,
    /// counted across the process since [`install`]).
    pub panic_at_compile: Option<u64>,
    /// Sleep this long inside every compile.
    pub compile_delay_us: u64,
    /// Fail [`CompileCache::save`](crate::CompileCache::save) before it
    /// writes anything.
    pub snapshot_write_error: bool,
    /// Make `save` write only the first `n` bytes of the snapshot to
    /// the temporary file, then fail — a simulated crash mid-write.
    pub snapshot_truncate_bytes: Option<usize>,
    /// Corrupt (bit-flip) this 0-based line of the snapshot text as it
    /// is saved.
    pub snapshot_corrupt_line: Option<usize>,
    /// Panic once inside the cache's locked critical section, genuinely
    /// poisoning its mutex.
    pub cache_insert_panic: bool,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static TEST_SERIAL: Mutex<()> = Mutex::new(());
static COMPILES: AtomicU64 = AtomicU64::new(0);
static CACHE_PANICS: AtomicU64 = AtomicU64::new(0);

fn plan_lock() -> MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `plan` for the whole process until the guard drops. Tests using
/// faults are serialized through the guard's lock (a panicking fault
/// test poisons nothing: poisoned guards are recovered).
pub fn install(plan: FaultPlan) -> FaultGuard {
    let serial = TEST_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    COMPILES.store(0, Ordering::SeqCst);
    CACHE_PANICS.store(0, Ordering::SeqCst);
    *plan_lock() = Some(plan);
    FaultGuard { _serial: serial }
}

/// Parses a `TILT_FAULT_PLAN`-style spec: comma-separated `key=value`
/// pairs over the [`FaultPlan`] fields, e.g.
/// `panic_on_width=3,compile_delay_us=2000,snapshot_write_error=1`.
pub fn parse_plan(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("fault spec `{pair}` is not key=value"))?;
        let n: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("fault value `{value}` is not an integer"))?;
        match key.trim() {
            "panic_on_width" => plan.panic_on_width = Some(n as usize),
            "panic_at_compile" => plan.panic_at_compile = Some(n),
            "compile_delay_us" => plan.compile_delay_us = n,
            "snapshot_write_error" => plan.snapshot_write_error = n != 0,
            "snapshot_truncate_bytes" => plan.snapshot_truncate_bytes = Some(n as usize),
            "snapshot_corrupt_line" => plan.snapshot_corrupt_line = Some(n as usize),
            "cache_insert_panic" => plan.cache_insert_panic = n != 0,
            other => return Err(format!("unknown fault key `{other}`")),
        }
    }
    Ok(plan)
}

/// Disarms the plan on drop; holding it serializes fault-using tests.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *plan_lock() = None;
    }
}

/// The compile-path seam: called once per uncached compile with the
/// circuit's register width. Applies latency, then panics when armed
/// for this width or this compile index.
pub(crate) fn before_compile(width: usize) {
    let Some(plan) = plan_lock().clone() else {
        return;
    };
    if plan.compile_delay_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(plan.compile_delay_us));
    }
    let index = COMPILES.fetch_add(1, Ordering::SeqCst);
    if plan.panic_on_width == Some(width) {
        panic!("injected fault: compile panic on width {width}");
    }
    if plan.panic_at_compile == Some(index) {
        panic!("injected fault: compile panic at index {index}");
    }
}

/// The cache critical-section seam: called while the cache mutex is
/// held, so the armed panic genuinely poisons it. Fires once per
/// installed plan.
pub(crate) fn cache_insert_seam() {
    let armed = plan_lock().as_ref().is_some_and(|p| p.cache_insert_panic);
    if armed && CACHE_PANICS.fetch_add(1, Ordering::SeqCst) == 0 {
        panic!("injected fault: panic inside the cache critical section");
    }
}

/// The snapshot-save seam: may corrupt the rendered text in place,
/// simulate a crash mid-write by writing a truncated temporary file and
/// failing, or fail outright before writing anything.
pub(crate) fn snapshot_save_seam(tmp: &std::path::Path, text: &mut String) -> std::io::Result<()> {
    let Some(plan) = plan_lock().clone() else {
        return Ok(());
    };
    if plan.snapshot_write_error {
        return Err(std::io::Error::other(
            "injected fault: snapshot write error",
        ));
    }
    if let Some(line) = plan.snapshot_corrupt_line {
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        if let Some(l) = lines.get_mut(line) {
            // Flip a byte in the middle of the line; the per-line check
            // digest must catch it on reload.
            let mid = l.len() / 2;
            let mut bytes = l.clone().into_bytes();
            bytes[mid] ^= 0x01;
            *l = String::from_utf8_lossy(&bytes).into_owned();
            *text = lines.join("\n");
            text.push('\n');
        }
    }
    if let Some(n) = plan.snapshot_truncate_bytes {
        let cut = n.min(text.len());
        std::fs::write(tmp, &text.as_bytes()[..cut])?;
        return Err(std::io::Error::other(
            "injected fault: crash after partial snapshot write",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_spec_round_trips_and_rejects_garbage() {
        let plan =
            parse_plan("panic_on_width=3, compile_delay_us=250,snapshot_write_error=1").unwrap();
        assert_eq!(plan.panic_on_width, Some(3));
        assert_eq!(plan.compile_delay_us, 250);
        assert!(plan.snapshot_write_error);
        assert!(plan.panic_at_compile.is_none());
        assert!(parse_plan("wat=1").is_err());
        assert!(parse_plan("panic_on_width").is_err());
        assert!(parse_plan("compile_delay_us=soon").is_err());
        assert!(parse_plan("").unwrap().panic_on_width.is_none());
    }

    #[test]
    fn seams_are_inert_without_a_plan() {
        before_compile(4);
        cache_insert_seam();
        let mut text = String::from("line\n");
        snapshot_save_seam(std::path::Path::new("/nonexistent/tmp"), &mut text).unwrap();
        assert_eq!(text, "line\n");
    }

    #[test]
    fn width_keyed_panic_fires_only_for_its_width() {
        let _guard = install(FaultPlan {
            panic_on_width: Some(37),
            ..FaultPlan::default()
        });
        before_compile(4);
        let caught = std::panic::catch_unwind(|| before_compile(37));
        assert!(caught.is_err(), "width 37 must panic");
        before_compile(6);
    }
}
