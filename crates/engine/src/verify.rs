//! Post-compile static verification riding along with every run.
//!
//! A session can ask the engine to re-check each compiled artifact
//! against the program invariants its backend promises — operands
//! inside the head span, swap chains under the router's cap, shuttle
//! routes that actually connect, comm ions reset between
//! teleportations. The rule packs themselves live next to the compilers
//! they audit ([`tilt_compiler::verify`], `tilt_qccd::verify`,
//! [`tilt_scale::verify_scaled`]); this module selects the pack for the
//! session's backend and decides what a finding *means*:
//!
//! * [`VerifyLevel::Off`] (default) — no checking; report shapes stay
//!   bit-identical to pre-verifier sessions.
//! * [`VerifyLevel::Warn`] — run the pack, attach every finding to
//!   [`RunReport::diagnostics`](crate::RunReport::diagnostics), succeed
//!   anyway.
//! * [`VerifyLevel::Strict`] — like `Warn`, but any error-severity
//!   finding fails the run with [`TiltError::Verify`](crate::TiltError).
//!
//! The level is folded into the session's config fingerprint (when not
//! `Off`), so cached reports carry the diagnostics their key promised.

use crate::report::{RunDetail, RunReport};
use tilt_compiler::verify::{verify_tilt, Diagnostic};
use tilt_compiler::RouterKind;

/// How much the session cares about verifier findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VerifyLevel {
    /// Skip verification entirely (the default).
    #[default]
    Off,
    /// Verify and attach diagnostics, but never fail a run over them.
    Warn,
    /// Verify and fail the run on any error-severity diagnostic.
    Strict,
}

impl VerifyLevel {
    /// Parses the wire/CLI spelling.
    pub fn parse(name: &str) -> Option<VerifyLevel> {
        match name {
            "off" => Some(VerifyLevel::Off),
            "warn" => Some(VerifyLevel::Warn),
            "strict" => Some(VerifyLevel::Strict),
            _ => None,
        }
    }

    /// Stable tag for config fingerprinting.
    pub(crate) fn tag(self) -> u8 {
        match self {
            VerifyLevel::Off => 0,
            VerifyLevel::Warn => 1,
            VerifyLevel::Strict => 2,
        }
    }
}

impl std::fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Warn => "warn",
            VerifyLevel::Strict => "strict",
        })
    }
}

/// Runs the backend-appropriate rule pack over a finished run's
/// artifacts. `router` is the session's resolved routing policy — it
/// bounds the swap-chain rule on the TILT backend (the scaled pack
/// reads the cap off its own spec).
pub(crate) fn check(report: &RunReport, router: RouterKind) -> Vec<Diagnostic> {
    match &report.detail {
        RunDetail::Tilt { output, .. } => {
            verify_tilt(output, router.max_swap_span(*output.program.spec()))
        }
        RunDetail::Qccd { program, .. } => tilt_qccd::verify::verify_qccd(program),
        RunDetail::Scaled { program, .. } => tilt_scale::verify_scaled(program),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_spellings_round_trip() {
        for l in [VerifyLevel::Off, VerifyLevel::Warn, VerifyLevel::Strict] {
            assert_eq!(VerifyLevel::parse(&l.to_string()), Some(l));
        }
        assert_eq!(VerifyLevel::parse("pedantic"), None);
    }

    #[test]
    fn tags_are_distinct() {
        assert_ne!(VerifyLevel::Off.tag(), VerifyLevel::Warn.tag());
        assert_ne!(VerifyLevel::Warn.tag(), VerifyLevel::Strict.tag());
    }
}
