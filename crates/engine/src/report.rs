//! The unified run report: one shape for every backend.
//!
//! A [`RunReport`] carries the cross-architecture comparables — compile
//! statistics, success probability, execution time — in one flat
//! structure tagged by [`BackendKind`], plus the full backend-specific
//! artifacts (program, per-backend report) in [`RunDetail`] for callers
//! that need to drill down (visualization, semantic verification,
//! re-estimation under other models).

use crate::sim::SimReport;
use std::time::Duration;
use tilt_compiler::verify::Diagnostic;
use tilt_compiler::{CompileOutput, TiltProgram};
use tilt_qccd::{QccdProgram, QccdReport};
use tilt_scale::{ScaleReport, ScaledProgram};
use tilt_sim::CooledSuccessReport;

/// Which backend produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Monolithic TILT tape (the paper's architecture).
    Tilt,
    /// QCCD trap-array comparator (§VI-B).
    Qccd,
    /// MUSIQC-style ELU array of TILT modules (§VII).
    Scaled,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Tilt => "tilt",
            BackendKind::Qccd => "qccd",
            BackendKind::Scaled => "scaled",
        })
    }
}

/// Compile statistics normalized across backends.
///
/// Fields keep their TILT meaning where one exists; the per-backend
/// mapping for the communication columns is documented on each field.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Inserted SWAP gates (TILT routing; summed over ELUs when scaled;
    /// 0 on QCCD, which shuttles ions instead of swapping them).
    pub swap_count: usize,
    /// Swaps classified as opposing (Fig. 2c; TILT only).
    pub opposing_swap_count: usize,
    /// Communication events: tape moves (TILT, summed over ELUs when
    /// scaled) or ion transports (QCCD).
    pub move_count: usize,
    /// Communication distance: tape travel in ion spacings (TILT) or
    /// shuttle segments traversed (QCCD).
    pub move_distance: usize,
    /// Gates in the compiled program(s), measurements included.
    pub native_gate_count: usize,
    /// Two-qubit gates in the compiled program(s).
    pub native_two_qubit_count: usize,
    /// EPR pairs consumed by remote gates (scaled backend only).
    pub epr_pairs: usize,
    /// Wall-clock time of native-gate decomposition.
    pub t_decompose: Duration,
    /// Wall-clock time of mapping/routing (`t_swap` of Table III).
    pub t_swap: Duration,
    /// Wall-clock time of scheduling (`t_move` of Table III).
    pub t_move: Duration,
}

/// Backend-specific artifacts of a run.
///
/// Variants deliberately carry the full owned artifacts (programs are
/// the payload here, not an error path), so the size skew between
/// backends is expected.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RunDetail {
    /// TILT: the full LinQ output and the (possibly cooled) success
    /// estimate.
    Tilt {
        /// Program, routing outcome, and per-pass statistics.
        output: CompileOutput,
        /// Success estimate; `cooling_rounds` is 0 under
        /// [`tilt_sim::CoolingPolicy::never`].
        success: CooledSuccessReport,
    },
    /// QCCD: the primitive trace and its estimate.
    Qccd {
        /// The compiled split/shuttle/merge/gate trace.
        program: QccdProgram,
        /// The walk of that trace under the noise model.
        report: QccdReport,
    },
    /// ELU array: the partitioned compilation and its estimate.
    Scaled {
        /// Per-ELU LinQ outputs plus the partition and EPR count.
        program: ScaledProgram,
        /// The aggregate estimate.
        report: ScaleReport,
    },
}

/// Everything one engine run produces, in one backend-tagged shape.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Which backend ran.
    pub backend: BackendKind,
    /// Normalized compile statistics.
    pub compile: CompileStats,
    /// Natural log of the success probability.
    pub ln_success: f64,
    /// Success probability (may underflow to 0 for deep circuits; use
    /// [`RunReport::log10_success`] for plotting).
    pub success: f64,
    /// Execution-time estimate in µs (Eq. 5 for TILT, including cooling
    /// time when a cooling policy is active; serial trace time for
    /// QCCD; makespan for ELU arrays).
    pub exec_time_us: f64,
    /// Outcome of simulating the logical circuit, when the session has
    /// a [`crate::SimMethod`] configured (`None` when simulation is
    /// off, the default).
    pub sim: Option<SimReport>,
    /// Static-verifier findings over the compiled artifacts. Empty
    /// unless the session enables verification
    /// ([`crate::VerifyLevel::Warn`] attaches findings here;
    /// [`crate::VerifyLevel::Strict`] additionally fails the run on
    /// error-severity ones, so strict reports are always clean).
    pub diagnostics: Vec<Diagnostic>,
    /// The backend-specific artifacts.
    pub detail: RunDetail,
}

impl RunReport {
    /// Base-10 log of the success probability.
    pub fn log10_success(&self) -> f64 {
        self.ln_success / std::f64::consts::LN_10
    }

    /// The LinQ output, when this was a TILT run.
    pub fn tilt_output(&self) -> Option<&CompileOutput> {
        match &self.detail {
            RunDetail::Tilt { output, .. } => Some(output),
            _ => None,
        }
    }

    /// The scheduled TILT program, when this was a TILT run.
    pub fn tilt_program(&self) -> Option<&TiltProgram> {
        self.tilt_output().map(|o| &o.program)
    }

    /// The TILT success estimate, when this was a TILT run.
    pub fn tilt_success(&self) -> Option<&CooledSuccessReport> {
        match &self.detail {
            RunDetail::Tilt { success, .. } => Some(success),
            _ => None,
        }
    }

    /// The QCCD trace estimate, when this was a QCCD run.
    pub fn qccd_report(&self) -> Option<&QccdReport> {
        match &self.detail {
            RunDetail::Qccd { report, .. } => Some(report),
            _ => None,
        }
    }

    /// The ELU-array estimate, when this was a scaled run.
    pub fn scale_report(&self) -> Option<&ScaleReport> {
        match &self.detail {
            RunDetail::Scaled { report, .. } => Some(report),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_renders_lowercase() {
        assert_eq!(BackendKind::Tilt.to_string(), "tilt");
        assert_eq!(BackendKind::Qccd.to_string(), "qccd");
        assert_eq!(BackendKind::Scaled.to_string(), "scaled");
    }
}
