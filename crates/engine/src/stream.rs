//! Bounded-memory streaming runs: compile and estimate a gate stream
//! without ever materializing the circuit or the compiled program.
//!
//! [`Engine::run`] holds the whole input circuit, the routed native
//! circuit, and the full scheduled [`TiltProgram`](tilt_compiler::TiltProgram)
//! in memory at once — O(circuit) three times over, which walls off
//! million-gate workloads. [`Engine::run_streaming`] instead pulls gates
//! from an iterator, pushes them through the windowed
//! [`StreamingCompiler`](tilt_compiler::StreamingCompiler) (sharded
//! per-ELU on the scaled backend), folds every emitted op straight into
//! the streaming estimators, and hands scheduled-op increments to a
//! [`StreamSink`]. Peak memory is O(window) + the scheduler horizon;
//! the resulting op stream, `ln_success`, and `exec_time_us` are
//! **bit-identical** to the monolithic run.
//!
//! Restrictions (each returns [`TiltError::Config`], see the respective
//! feature for why it is whole-circuit by nature):
//!
//! * logical-circuit simulation (`.simulate(..)`) replays the *input*
//!   circuit, which a stream does not retain;
//! * post-compile verification (`.verify(..)`) checks the complete
//!   compiled artifacts (`tilt lint --stream` covers the
//!   window-applicable rules instead);
//! * sympathetic cooling re-walks the schedule to splice cooling
//!   rounds in;
//! * the `InteractionChain` initial mapping scans the whole circuit's
//!   interaction graph (rejected by the compiler as
//!   `StreamingUnsupported`).
//!
//! The compile cache is bypassed: its key is the digest of a complete
//! circuit. The QCCD backend has no streaming compiler — it falls back
//! to buffering the stream into a circuit and running the monolithic
//! path (documented O(circuit) memory), so cross-backend comparisons
//! can still share one entry point.

use crate::error::TiltError;
use crate::report::{BackendKind, CompileStats};
use crate::verify::VerifyLevel;
use crate::{Backend, Engine};
use std::io::BufRead;
use tilt_circuit::qasm::QasmStream;
use tilt_circuit::{Circuit, Gate};
use tilt_compiler::{StreamingCompiler, TiltOp};
use tilt_scale::ScaledStreamingCompiler;
use tilt_sim::cooling::CoolingTrigger;
use tilt_sim::streaming::{ExecTimeAccumulator, SuccessAccumulator};

/// Default streaming window (input gates buffered per flush): large
/// enough that per-window overhead vanishes, small enough that peak
/// memory stays tens of megabytes below any million-gate circuit.
pub const DEFAULT_STREAM_WINDOW: usize = 65_536;

/// Receives scheduled-op increments as streaming windows complete.
///
/// `shard` is the ELU index on the scaled backend and always 0 on the
/// monolithic TILT backend. Concatenating every increment of one shard
/// reproduces that shard's monolithic program exactly.
pub trait StreamSink {
    /// Delivers one non-empty increment of shard `shard`'s op stream.
    fn emit(&mut self, shard: usize, ops: &[TiltOp]);
}

impl<F: FnMut(usize, &[TiltOp])> StreamSink for F {
    fn emit(&mut self, shard: usize, ops: &[TiltOp]) {
        self(shard, ops);
    }
}

/// A sink that discards the op stream — for callers that only want the
/// final [`StreamOutcome`] statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl StreamSink for NullSink {
    fn emit(&mut self, _shard: usize, _ops: &[TiltOp]) {}
}

/// What a streaming run produced: the [`RunReport`](crate::RunReport)
/// scalars, without the backend artifacts a stream never materializes.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// Which backend ran.
    pub backend: BackendKind,
    /// Normalized compile statistics — field-identical to the
    /// monolithic run's [`CompileStats`] (timings excepted).
    pub compile: CompileStats,
    /// Natural log of the success probability (bit-identical to the
    /// monolithic estimate).
    pub ln_success: f64,
    /// Success probability.
    pub success: f64,
    /// Execution-time estimate in µs (bit-identical to the monolithic
    /// estimate).
    pub exec_time_us: f64,
    /// Non-empty increments delivered to the sink.
    pub increments: usize,
    /// Program gates consumed from the input stream.
    pub input_gate_count: usize,
}

impl StreamOutcome {
    /// Base-10 log of the success probability.
    pub fn log10_success(&self) -> f64 {
        self.ln_success / std::f64::consts::LN_10
    }
}

impl Engine {
    /// Rejects session features that require the whole circuit or the
    /// whole compiled program.
    fn check_streamable(&self) -> Result<(), TiltError> {
        if self.sim.is_some() {
            return Err(TiltError::Config {
                reason: "streaming runs cannot simulate the logical circuit \
                         (the simulator replays the whole input); drop .simulate(..)"
                    .into(),
            });
        }
        if self.verify != VerifyLevel::Off {
            return Err(TiltError::Config {
                reason: "streaming runs cannot post-verify the compiled artifacts \
                         (the verifier needs the whole program); drop .verify(..) \
                         or use `tilt lint --stream` for the windowed rules"
                    .into(),
            });
        }
        if !matches!(self.cooling.trigger, CoolingTrigger::Never) {
            return Err(TiltError::Config {
                reason: "streaming runs cannot schedule sympathetic cooling \
                         (cooling insertion re-walks the schedule); drop .cooling(..)"
                    .into(),
            });
        }
        Ok(())
    }

    /// Compiles and estimates a gate stream in O(window) memory,
    /// delivering scheduled-op increments to `sink`.
    ///
    /// Decision-identical to [`Engine::run`] on the same gates: the
    /// concatenated increments, `ln_success`, and `exec_time_us` match
    /// the monolithic run bit for bit, at every window size.
    ///
    /// # Errors
    ///
    /// Backend compile errors; [`TiltError::Config`] for session
    /// features that are whole-circuit by nature (see the module docs).
    ///
    /// # Example
    ///
    /// ```
    /// use tilt_circuit::{Circuit, Qubit};
    /// use tilt_compiler::DeviceSpec;
    /// use tilt_engine::stream::NullSink;
    /// use tilt_engine::Engine;
    ///
    /// let mut c = Circuit::new(16);
    /// c.h(Qubit(0));
    /// for i in 1..16 {
    ///     c.cnot(Qubit(i - 1), Qubit(i));
    /// }
    /// let engine = Engine::tilt(DeviceSpec::new(16, 8)?);
    /// let outcome =
    ///     engine.run_streaming(16, c.gates().iter().copied(), 64, &mut NullSink)?;
    /// assert_eq!(outcome.ln_success, engine.run(&c)?.ln_success);
    /// # Ok::<(), tilt_engine::TiltError>(())
    /// ```
    pub fn run_streaming<I: IntoIterator<Item = Gate>>(
        &self,
        n_qubits: usize,
        gates: I,
        window: usize,
        sink: &mut dyn StreamSink,
    ) -> Result<StreamOutcome, TiltError> {
        self.stream_results(n_qubits, gates.into_iter().map(Ok), window, sink)
    }

    /// [`Engine::run_streaming`] over an OpenQASM 2.0 source, pulling
    /// statements through [`QasmStream`] so the text is never held in
    /// memory either. The `qreg` declaration must precede the first
    /// gate.
    ///
    /// # Errors
    ///
    /// [`TiltError::Stream`] for QASM parse or reader I/O failures, plus
    /// everything [`Engine::run_streaming`] can return.
    pub fn run_streaming_qasm<R: BufRead>(
        &self,
        reader: R,
        window: usize,
        sink: &mut dyn StreamSink,
    ) -> Result<StreamOutcome, TiltError> {
        let mut qasm = QasmStream::new(reader);
        let n_qubits = qasm.require_n_qubits().map_err(|e| TiltError::Stream {
            reason: e.to_string(),
        })?;
        self.stream_results(
            n_qubits,
            qasm.map(|r| {
                r.map_err(|e| TiltError::Stream {
                    reason: e.to_string(),
                })
            }),
            window,
            sink,
        )
    }

    fn stream_results(
        &self,
        n_qubits: usize,
        gates: impl Iterator<Item = Result<Gate, TiltError>>,
        window: usize,
        sink: &mut dyn StreamSink,
    ) -> Result<StreamOutcome, TiltError> {
        self.check_streamable()?;
        #[cfg(any(test, feature = "faults"))]
        crate::faults::before_compile(n_qubits);
        match &self.backend {
            Backend::Tilt(spec) => self.stream_tilt(spec.n_ions(), n_qubits, gates, window, sink),
            Backend::Scaled(spec) => self.stream_scaled(*spec, n_qubits, gates, window, sink),
            Backend::Qccd(_) => self.stream_qccd_buffered(n_qubits, gates),
        }
    }

    fn stream_tilt(
        &self,
        n_ions: usize,
        n_qubits: usize,
        gates: impl Iterator<Item = Result<Gate, TiltError>>,
        window: usize,
        sink: &mut dyn StreamSink,
    ) -> Result<StreamOutcome, TiltError> {
        let compiler = self
            .compiler
            .as_ref()
            .expect("Tilt backend always carries a compiler");
        let mut streaming = StreamingCompiler::new(compiler, n_qubits, window)?;
        let mut success = SuccessAccumulator::new(n_ions, &self.noise, &self.gate_times);
        let mut exec = ExecTimeAccumulator::new(n_ions, &self.gate_times, &self.exec_time);
        let summary = {
            let mut adapter = |ops: &[TiltOp]| {
                for op in ops {
                    success.push(op);
                    exec.push(op);
                }
                sink.emit(0, ops);
            };
            for g in gates {
                streaming.push(g?, &mut adapter)?;
            }
            streaming.finish(&mut adapter)
        };
        let s = success.finish();
        let r = &summary.report;
        Ok(StreamOutcome {
            backend: BackendKind::Tilt,
            compile: CompileStats {
                swap_count: r.swap_count,
                opposing_swap_count: r.opposing_swap_count,
                move_count: r.move_count,
                move_distance: r.move_distance_ions,
                native_gate_count: r.native_gate_count,
                native_two_qubit_count: r.native_two_qubit_count,
                epr_pairs: 0,
                t_decompose: r.t_decompose,
                t_swap: r.t_swap,
                t_move: r.t_move,
            },
            ln_success: s.ln_success,
            success: s.success,
            exec_time_us: exec.finish(),
            increments: summary.increments,
            input_gate_count: summary.input_gate_count,
        })
    }

    fn stream_scaled(
        &self,
        spec: tilt_scale::ScaleSpec,
        n_qubits: usize,
        gates: impl Iterator<Item = Result<Gate, TiltError>>,
        window: usize,
        sink: &mut dyn StreamSink,
    ) -> Result<StreamOutcome, TiltError> {
        let mut session =
            ScaledStreamingCompiler::new(&spec, n_qubits, window, &self.noise, &self.gate_times)?;
        let summary = {
            let mut adapter = |elu: usize, ops: &[TiltOp]| sink.emit(elu, ops);
            for g in gates {
                session.push(g?, &mut adapter)?;
            }
            session.finish(&mut adapter)?
        };
        // The monolithic `run_scaled` aggregation over per-ELU reports.
        let mut compile = CompileStats {
            swap_count: summary.report.total_swaps,
            move_count: summary.report.total_moves,
            epr_pairs: summary.epr_pairs,
            ..CompileStats::default()
        };
        for elu in &summary.elu_summaries {
            compile.opposing_swap_count += elu.report.opposing_swap_count;
            compile.move_distance += elu.report.move_distance_ions;
            compile.native_gate_count += elu.report.native_gate_count;
            compile.native_two_qubit_count += elu.report.native_two_qubit_count;
            compile.t_decompose += elu.report.t_decompose;
            compile.t_swap += elu.report.t_swap;
            compile.t_move += elu.report.t_move;
        }
        Ok(StreamOutcome {
            backend: BackendKind::Scaled,
            compile,
            ln_success: summary.report.ln_success,
            success: summary.report.success,
            exec_time_us: summary.report.exec_time_us,
            increments: summary.increments,
            input_gate_count: summary.input_gate_count,
        })
    }

    /// QCCD has no streaming compiler: buffer the stream back into a
    /// circuit and run the monolithic path. Memory is O(circuit) here —
    /// the fallback exists so one entry point serves all backends, not
    /// to bound QCCD memory.
    fn stream_qccd_buffered(
        &self,
        n_qubits: usize,
        gates: impl Iterator<Item = Result<Gate, TiltError>>,
    ) -> Result<StreamOutcome, TiltError> {
        let mut circuit = Circuit::new(n_qubits);
        for g in gates {
            circuit.push(g?);
        }
        let input_gate_count = circuit.len();
        let report = self.run(&circuit)?;
        Ok(StreamOutcome {
            backend: report.backend,
            compile: report.compile,
            ln_success: report.ln_success,
            success: report.success,
            exec_time_us: report.exec_time_us,
            increments: 0,
            input_gate_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimMethod;
    use tilt_circuit::Qubit;
    use tilt_compiler::DeviceSpec;
    use tilt_qccd::QccdSpec;
    use tilt_scale::ScaleSpec;
    use tilt_sim::CoolingPolicy;

    fn workload(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..gates {
            let a = Qubit((rng() as usize) % n);
            let b = Qubit((rng() as usize) % n);
            match rng() % 12 {
                0 => {
                    c.barrier();
                }
                1 => {
                    c.measure(a);
                }
                2 | 3 => {
                    c.h(a);
                }
                4 => {
                    c.t(a);
                }
                _ if a != b => {
                    c.cnot(a, b);
                }
                _ => {
                    c.rz(a, 0.37);
                }
            }
        }
        c
    }

    #[test]
    fn tilt_streaming_matches_monolithic_run() {
        let engine = Engine::tilt(DeviceSpec::new(16, 4).unwrap());
        let c = workload(16, 600, 9);
        let mono = engine.run(&c).unwrap();
        for window in [1usize, 64, 1024, usize::MAX] {
            let mut ops = Vec::new();
            let mut sink = |shard: usize, inc: &[TiltOp]| {
                assert_eq!(shard, 0);
                ops.extend_from_slice(inc);
            };
            let out = engine
                .run_streaming(16, c.gates().iter().copied(), window, &mut sink)
                .unwrap();
            assert_eq!(ops, mono.tilt_program().unwrap().ops(), "window {window}");
            assert_eq!(out.ln_success, mono.ln_success);
            assert_eq!(out.success, mono.success);
            assert_eq!(out.exec_time_us, mono.exec_time_us);
            assert_eq!(out.compile.swap_count, mono.compile.swap_count);
            assert_eq!(out.compile.move_count, mono.compile.move_count);
            assert_eq!(out.compile.move_distance, mono.compile.move_distance);
            assert_eq!(
                out.compile.native_gate_count,
                mono.compile.native_gate_count
            );
            assert!(out.increments >= 1);
            assert_eq!(out.input_gate_count, c.len());
        }
    }

    #[test]
    fn scaled_streaming_matches_monolithic_run() {
        let engine = Engine::scaled(ScaleSpec::new(10, 4).unwrap());
        let c = workload(24, 500, 21);
        let mono = engine.run(&c).unwrap();
        for window in [64usize, usize::MAX] {
            let out = engine
                .run_streaming(24, c.gates().iter().copied(), window, &mut NullSink)
                .unwrap();
            assert_eq!(out.ln_success, mono.ln_success, "window {window}");
            assert_eq!(out.exec_time_us, mono.exec_time_us);
            assert_eq!(
                out.compile,
                CompileStats {
                    t_decompose: out.compile.t_decompose,
                    t_swap: out.compile.t_swap,
                    t_move: out.compile.t_move,
                    ..mono.compile
                }
            );
        }
    }

    #[test]
    fn qccd_streaming_falls_back_to_buffered_run() {
        let engine = Engine::qccd(QccdSpec::for_qubits(16, 5).unwrap());
        let c = workload(16, 200, 5);
        let mono = engine.run(&c).unwrap();
        let out = engine
            .run_streaming(16, c.gates().iter().copied(), 64, &mut NullSink)
            .unwrap();
        assert_eq!(out.ln_success, mono.ln_success);
        assert_eq!(out.exec_time_us, mono.exec_time_us);
        assert_eq!(out.increments, 0, "QCCD emits no TILT ops");
    }

    #[test]
    fn qasm_streaming_matches_gate_streaming() {
        let engine = Engine::tilt(DeviceSpec::new(12, 4).unwrap());
        let c = workload(12, 300, 13);
        let text = tilt_circuit::qasm::to_qasm(&c);
        let mut ops_qasm = Vec::new();
        let out_qasm = engine
            .run_streaming_qasm(text.as_bytes(), 128, &mut |_: usize, inc: &[TiltOp]| {
                ops_qasm.extend_from_slice(inc);
            })
            .unwrap();
        let mut ops_gates = Vec::new();
        let parsed = tilt_circuit::qasm::parse_qasm(&text).unwrap();
        let out_gates = engine
            .run_streaming(
                parsed.n_qubits(),
                parsed.gates().iter().copied(),
                128,
                &mut |_: usize, inc: &[TiltOp]| ops_gates.extend_from_slice(inc),
            )
            .unwrap();
        assert_eq!(ops_qasm, ops_gates);
        assert_eq!(out_qasm.ln_success, out_gates.ln_success);
        assert_eq!(out_qasm.input_gate_count, out_gates.input_gate_count);
    }

    #[test]
    fn qasm_parse_errors_surface_as_stream_errors() {
        let engine = Engine::tilt(DeviceSpec::new(8, 4).unwrap());
        let err = engine
            .run_streaming_qasm(
                "qreg q[8];\nh q[0];\nfrobnicate q[1];\n".as_bytes(),
                64,
                &mut NullSink,
            )
            .unwrap_err();
        assert!(matches!(err, TiltError::Stream { .. }), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn whole_circuit_features_are_rejected() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let gates = [Gate::H(Qubit(0))];
        let sim = Engine::builder()
            .backend(Backend::Tilt(spec))
            .simulate(SimMethod::Auto)
            .build()
            .unwrap();
        let verify = Engine::builder()
            .backend(Backend::Tilt(spec))
            .verify(VerifyLevel::Warn)
            .build()
            .unwrap();
        let cooled = Engine::builder()
            .backend(Backend::Tilt(spec))
            .cooling(CoolingPolicy::threshold(2.0))
            .build()
            .unwrap();
        for (engine, what) in [(sim, "simulate"), (verify, "lint"), (cooled, "cooling")] {
            let err = engine
                .run_streaming(8, gates.iter().copied(), 64, &mut NullSink)
                .unwrap_err();
            assert!(matches!(err, TiltError::Config { .. }), "{what}: {err}");
        }
    }
}
