//! Aligned ASCII tables and CSV/JSON emission.
//!
//! JSON is hand-rolled (see [`Table::to_json`]): the build environment
//! vendors no serde, and a row-of-strings table needs only string
//! escaping.

/// A simple column-aligned table.
///
/// Rows are strings; numeric formatting is the caller's concern (see
/// [`crate::fmt_success`]). Rendering pads each column to its widest cell.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned ASCII table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON array of objects keyed by the header.
    pub fn to_json(&self) -> String {
        let rows: Vec<crate::Json> = self
            .rows
            .iter()
            .map(|row| {
                self.header
                    .iter()
                    .zip(row)
                    .fold(crate::Json::object(), |obj, (k, v)| obj.set(k, v.as_str()))
            })
            .collect();
        crate::Json::from(rows).render()
    }

    /// Renders RFC-4180-style CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let joined: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.header);
        for row in &self.rows {
            line(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["xxxxx", "y"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a      bbbb");
        assert_eq!(lines[2], "xxxxx  y");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["name", "note"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn json_keys_rows_by_header() {
        let mut t = Table::new(["app", "swaps"]);
        t.row(["BV", "7"]).row(["say \"hi\"", "161"]);
        assert_eq!(
            t.to_json(),
            r#"[{"app":"BV","swaps":"7"},{"app":"say \"hi\"","swaps":"161"}]"#
        );
        assert_eq!(Table::new(["a"]).to_json(), "[]");
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
    }
}
