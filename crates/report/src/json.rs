//! A tiny hand-rolled JSON writer and reader.
//!
//! The workspace builds offline with no serde; the harness binaries
//! emit flat JSON (benchmark records, table dumps), and the
//! bench-regression gate reads the previous CI run's records back.
//! [`Json::parse`] is a minimal recursive-descent reader covering
//! exactly the JSON this module writes (objects, arrays, strings with
//! the standard escapes, finite numbers, booleans, null).

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Finite numbers render via `f64` shortest round-trip; non-finite
    /// values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Starts an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds or replaces `key` on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on a non-object");
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => entries.push((key.to_string(), value.into())),
        }
        self
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] (with a byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The value under `key`, when `self` is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks nested objects by a `.`-separated path (`"permutation.parallel_gates_per_sec"`).
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The numeric value, when `self` is a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse failure: a message plus the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting the parser accepts. The recursive-descent
/// `value()` recurses once per `{`/`[` level, so an adversarial line of
/// bare brackets could otherwise overflow the stack; no legitimate
/// protocol document nests anywhere near this deep.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            at: self.at,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.error("document nests deeper than 128 levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogates (from writers other than ours)
                            // are replaced rather than rejected.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.at;
        while matches!(
            self.bytes.get(self.at),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .set("name", "qft20")
            .set("gates_per_sec", 1.5e6)
            .set("ok", true)
            .set("samples", vec![1.0, 2.5]);
        assert_eq!(
            j.render(),
            r#"{"name":"qft20","gates_per_sec":1500000,"ok":true,"samples":[1,2.5]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn set_replaces_existing_key() {
        let j = Json::object().set("k", 1.0).set("k", 2.0);
        assert_eq!(j.render(), r#"{"k":2}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::object()
            .set("name", "qft20")
            .set("rate", 1.5e6)
            .set("ok", true)
            .set("missing", Json::Null)
            .set("samples", vec![1.0, 2.5, -3.25])
            .set(
                "nested",
                Json::object().set("k", "va\"l\nue").set("n", -0.125),
            );
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , \"x\\u0041\\t\" ] , \"b\" : null } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            j.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("xA\t")
        );
        assert_eq!(j.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("[1,,2]").is_err());
        let err = Json::parse("nul").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // One past the cap fails with a structured error…
        let over = "[".repeat(MAX_PARSE_DEPTH + 1);
        let err = Json::parse(&over).unwrap_err();
        assert!(err.to_string().contains("nests deeper"), "{err}");
        // …and a pathologically deep line (the adversarial case the cap
        // exists for) fails the same way instead of overflowing.
        let hostile = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        assert!(Json::parse(&hostile).is_err());
        // At the cap, documents still parse; siblings do not accumulate
        // depth.
        let at_cap = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&at_cap).is_ok());
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn get_path_walks_nested_objects() {
        let j = Json::object().set("outer", Json::object().set("inner", 7.0));
        assert_eq!(j.get_path("outer.inner").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get_path("outer.missing"), None);
        assert_eq!(j.get_path("missing.inner"), None);
    }
}
