//! A tiny hand-rolled JSON writer.
//!
//! The workspace builds offline with no serde; the harness binaries only
//! ever *emit* flat JSON (benchmark records, table dumps), which this
//! module covers in a few dozen lines. There is deliberately no parser.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Finite numbers render via `f64` shortest round-trip; non-finite
    /// values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Starts an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds or replaces `key` on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on a non-object");
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => entries.push((key.to_string(), value.into())),
        }
        self
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .set("name", "qft20")
            .set("gates_per_sec", 1.5e6)
            .set("ok", true)
            .set("samples", vec![1.0, 2.5]);
        assert_eq!(
            j.render(),
            r#"{"name":"qft20","gates_per_sec":1500000,"ok":true,"samples":[1,2.5]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn set_replaces_existing_key() {
        let j = Json::object().set("k", 1.0).set("k", 2.0);
        assert_eq!(j.render(), r#"{"k":2}"#);
    }
}
