//! Reporting helpers shared by the experiment harnesses.
//!
//! Every `bench` binary prints its results both as an aligned ASCII table
//! (for eyeballing against the paper) and optionally as CSV (for
//! re-plotting). [`Table`] accumulates rows and renders both.
//!
//! # Example
//!
//! ```
//! use tilt_report::Table;
//!
//! let mut t = Table::new(["app", "swaps", "success"]);
//! t.row(["BV", "7", "8.9e-1"]);
//! t.row(["QFT", "161", "1.1e-14"]);
//! let text = t.render();
//! assert!(text.contains("BV"));
//! assert!(t.to_csv().starts_with("app,swaps,success\n"));
//! ```

pub mod json;
pub mod table;

pub use json::{Json, JsonParseError};
pub use table::Table;

/// Formats a probability for display: fixed-point when readable, powers of
/// ten when tiny (matching the paper's mixed linear/log axes).
///
/// # Example
///
/// ```
/// assert_eq!(tilt_report::fmt_success(0.8911), "0.8911");
/// assert_eq!(tilt_report::fmt_success(1.077e-14), "1.08e-14");
/// assert_eq!(tilt_report::fmt_success(0.0), "0");
/// ```
pub fn fmt_success(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p >= 1e-3 {
        format!("{p:.4}")
    } else {
        format!("{p:.2e}")
    }
}

/// Formats a duration in seconds with millisecond resolution.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// assert_eq!(tilt_report::fmt_secs(Duration::from_millis(1234)), "1.234");
/// ```
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_formatting_switches_regimes() {
        assert_eq!(fmt_success(1.0), "1.0000");
        assert_eq!(fmt_success(0.0015), "0.0015");
        assert!(fmt_success(9.9e-4).contains('e'));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(std::time::Duration::ZERO), "0.000");
    }
}
