//! NISQ benchmark circuit generators — the Table II suite of the TILT paper.
//!
//! Six applications with deliberately different communication patterns:
//!
//! | Benchmark | Qubits | Communication |
//! |-----------|--------|---------------|
//! | [`adder`]  | 64 | short-distance gates |
//! | [`bv`]     | 64 | long-distance gates |
//! | [`qaoa`]   | 64 | nearest-neighbor gates |
//! | [`rcs`]    | 64 | nearest-neighbor gates (2D grid on a line) |
//! | [`qft`]    | 64 | long-distance gates |
//! | [`sqrt`]   | 78 | long-distance gates |
//!
//! Generators emit circuits at the CNOT level (Toffolis and controlled
//! phases already lowered to two-qubit gates), matching how the paper's
//! Table II counts "2Q Gates". The [`suite`] module bundles the exact
//! paper configurations.
//!
//! Beyond the Table II suite, the [`qec`] module generates QEC-scale
//! pure-Clifford syndrome-extraction workloads (repetition-code and
//! surface-style memory experiments, hundreds of qubits) for the
//! stabilizer simulation backend, and the [`stream`] module provides
//! lazy gate-stream versions of the scalable generators (bit-identical
//! to their `Circuit` counterparts) for the bounded-memory streaming
//! compile pipeline.
//!
//! # Example
//!
//! ```
//! use tilt_benchmarks::qft::qft;
//!
//! let c = qft(64);
//! assert_eq!(c.n_qubits(), 64);
//! assert_eq!(c.two_qubit_count(), 4032); // Table II
//! ```

pub mod adder;
pub mod bv;
pub mod extended;
pub mod qaoa;
pub mod qec;
pub mod qft;
pub mod rcs;
pub mod sqrt;
pub mod stream;
pub mod suite;
pub mod util;

pub use suite::{paper_suite, Benchmark, CommunicationPattern};
