//! QAOA hardware-efficient ansatz for MaxCut (Farhi et al., arXiv:1411.4028;
//! Moll et al., QST 3 030503).
//!
//! The QAOA row of Table II: 64 qubits, 20 ansatz layers over a linear
//! nearest-neighbour interaction graph, 63 ZZ couplings per layer →
//! 1260 two-qubit gates. Every coupling is nearest-neighbour, which is the
//! communication pattern where TILT's wide execution zone pays off most
//! (Fig. 8).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::{Circuit, Qubit};

/// Builds a `layers`-deep hardware-efficient QAOA MaxCut ansatz on
/// `n_qubits` qubits arranged in a line.
///
/// Each layer applies `ZZ(γ_l)` to every adjacent pair followed by an
/// `Rx(β_l)` mixer on every qubit. Angles are drawn deterministically from
/// `seed`, standing in for the classical optimiser's parameter choices
/// (gate *counts and structure*, which are what the compiler sees, do not
/// depend on the angle values).
///
/// # Panics
///
/// Panics if `n_qubits < 2`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::qaoa::qaoa_maxcut;
///
/// let c = qaoa_maxcut(64, 20, 7);
/// assert_eq!(c.two_qubit_count(), 1260); // Table II
/// ```
pub fn qaoa_maxcut(n_qubits: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n_qubits >= 2, "QAOA needs at least two qubits");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_qubits);

    for i in 0..n_qubits {
        c.h(Qubit(i));
    }
    for _ in 0..layers {
        let gamma: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let beta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        for i in 0..n_qubits - 1 {
            c.zz(Qubit(i), Qubit(i + 1), gamma);
        }
        for i in 0..n_qubits {
            c.rx(Qubit(i), beta);
        }
    }
    c
}

/// The Table II QAOA benchmark: 64 qubits × 20 layers (1260 ZZ gates).
pub fn qaoa64() -> Circuit {
    qaoa_maxcut(64, 20, 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn table2_counts() {
        let c = qaoa64();
        assert_eq!(c.n_qubits(), 64);
        assert_eq!(c.two_qubit_count(), 1260);
    }

    #[test]
    fn all_couplings_are_nearest_neighbour() {
        let c = qaoa64();
        for g in c.iter().filter(|g| g.is_two_qubit()) {
            assert_eq!(g.span(), Some(1));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(qaoa_maxcut(16, 3, 42), qaoa_maxcut(16, 3, 42));
    }

    #[test]
    fn different_seeds_differ_in_angles_not_structure() {
        let a = qaoa_maxcut(16, 3, 1);
        let b = qaoa_maxcut(16, 3, 2);
        assert_ne!(a, b);
        assert_eq!(a.two_qubit_count(), b.two_qubit_count());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn layer_scaling() {
        for p in 1..5 {
            let c = qaoa_maxcut(10, p, 0);
            assert_eq!(c.two_qubit_count(), 9 * p);
        }
    }

    #[test]
    fn circuit_is_valid() {
        assert!(validate(&qaoa64()).is_ok());
    }
}
