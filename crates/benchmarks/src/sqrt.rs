//! SQRT: Grover search for an integer square root (Grover,
//! quant-ph/9605043; JavadiAbhari et al., ScaffCC).
//!
//! The SQRT row of Table II: a 78-qubit Grover circuit that finds the
//! square root of a constant. The paper's instance comes from ScaffCC;
//! its compiled form is Grover iterations whose oracle reduces to
//! ancilla-ladder multi-controlled phase logic. We reproduce that compiled
//! structure directly: the oracle phase-flips the (classically known)
//! root via X-conjugated multi-controlled Z over the 40-qubit search
//! register, using the 38-qubit V-chain ancilla ladder — 78 qubits total.
//! This preserves the communication signature (long-distance,
//! ancilla-mediated two-qubit chains) and the gate-count scale; the
//! substitution is documented in DESIGN.md §3.

use crate::util::mcz_vchain;
use tilt_circuit::{Circuit, Qubit};

/// Builds a Grover-search circuit over a `bits`-wide register that marks
/// the integer square root of `square`, running `iterations` Grover
/// iterations.
///
/// Register layout: `bits` search qubits followed by `bits - 2` V-chain
/// ancillas, `2·bits - 2` qubits total.
///
/// # Panics
///
/// Panics if `bits < 3` or if `square` has no exact integer square root
/// representable in `bits` bits.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::sqrt::grover_sqrt;
///
/// let c = grover_sqrt(40, 36, 1); // isqrt(36) = 6
/// assert_eq!(c.n_qubits(), 78);
/// ```
pub fn grover_sqrt(bits: usize, square: u64, iterations: usize) -> Circuit {
    assert!(bits >= 3, "need at least 3 search bits for the V-chain");
    let root = integer_sqrt(square).unwrap_or_else(|| panic!("{square} is not a perfect square"));
    assert!(
        bits == 64 || root < (1u64 << bits),
        "root {root} does not fit in {bits} bits"
    );

    let n = 2 * bits - 2;
    let search: Vec<Qubit> = (0..bits).map(Qubit).collect();
    let ancillas: Vec<Qubit> = (bits..n).map(Qubit).collect();
    let mut c = Circuit::new(n);

    // Uniform superposition over the search register.
    for &q in &search {
        c.h(q);
    }

    for _ in 0..iterations {
        // Oracle: phase-flip |root⟩. X-conjugate the zero bits so the
        // multi-controlled Z fires exactly on the root pattern.
        for (i, &q) in search.iter().enumerate() {
            if (root >> i) & 1 == 0 {
                c.x(q);
            }
        }
        mcz_vchain(&mut c, &search, &ancillas);
        for (i, &q) in search.iter().enumerate() {
            if (root >> i) & 1 == 0 {
                c.x(q);
            }
        }

        // Diffusion: reflect about the mean.
        for &q in &search {
            c.h(q);
        }
        for &q in &search {
            c.x(q);
        }
        mcz_vchain(&mut c, &search, &ancillas);
        for &q in &search {
            c.x(q);
        }
        for &q in &search {
            c.h(q);
        }
    }
    c
}

/// Integer square root, `None` when `n` is not a perfect square.
fn integer_sqrt(n: u64) -> Option<u64> {
    let r = (n as f64).sqrt().round() as u64;
    (r.saturating_sub(1)..=r + 1).find(|&cand| cand.checked_mul(cand) == Some(n))
}

/// The Table II SQRT benchmark: 78 qubits (40-bit search register),
/// one Grover iteration, searching for `isqrt(1_048_576) = 1024`.
pub fn sqrt78() -> Circuit {
    grover_sqrt(40, 1 << 20, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn table2_qubit_count() {
        assert_eq!(sqrt78().n_qubits(), 78);
    }

    #[test]
    fn table2_two_qubit_gates_in_range() {
        // Two MCZ-over-40 per iteration: 2·(12·38 + 1) = 914 two-qubit
        // gates vs the paper's 1028 (ScaffCC's oracle lowering differs
        // slightly); within 12%, documented in EXPERIMENTS.md.
        let count = sqrt78().two_qubit_count();
        assert_eq!(count, 914);
        assert!((count as f64 - 1028.0).abs() / 1028.0 < 0.12);
    }

    #[test]
    fn iteration_scaling() {
        let one = grover_sqrt(8, 25, 1).two_qubit_count();
        let two = grover_sqrt(8, 25, 2).two_qubit_count();
        assert_eq!(two, 2 * one);
    }

    #[test]
    fn integer_sqrt_detects_squares() {
        assert_eq!(integer_sqrt(0), Some(0));
        assert_eq!(integer_sqrt(36), Some(6));
        assert_eq!(integer_sqrt(1 << 20), Some(1024));
        assert_eq!(integer_sqrt(35), None);
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn non_square_panics() {
        grover_sqrt(8, 26, 1);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_register_panics() {
        grover_sqrt(2, 4, 1);
    }

    #[test]
    fn circuit_is_valid() {
        assert!(validate(&sqrt78()).is_ok());
        assert!(validate(&grover_sqrt(5, 16, 3)).is_ok());
    }

    #[test]
    fn oracle_wraps_zero_bits_in_x() {
        // root = 2 = 0b10 in 3 bits → bits 0 and 2 are zero → X gates
        // appear in pairs around the oracle MCZ.
        let c = grover_sqrt(3, 4, 1);
        let x_count = c.iter().filter(|g| g.name() == "x").count();
        // Oracle wrap: 2 zero bits × 2 sides = 4; diffusion X-wrap: 3 × 2 = 6.
        assert_eq!(x_count, 10);
    }
}
