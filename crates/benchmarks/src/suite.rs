//! The paper's benchmark registry (Table II).

use crate::{adder, bv, qaoa, qft, rcs, sqrt};
use std::fmt;
use tilt_circuit::Circuit;

/// Communication pattern classes from Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommunicationPattern {
    /// Two-qubit gates between close-by tape positions (ADDER).
    ShortDistance,
    /// Two-qubit gates spanning most of the tape (BV, QFT, SQRT).
    LongDistance,
    /// Strictly adjacent interactions, possibly via a 2D-grid embedding
    /// (QAOA, RCS).
    NearestNeighbor,
}

impl fmt::Display for CommunicationPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommunicationPattern::ShortDistance => "Short-distance gates",
            CommunicationPattern::LongDistance => "Long-distance gates",
            CommunicationPattern::NearestNeighbor => "Nearest-neighbor gates",
        };
        f.write_str(s)
    }
}

/// One Table II row: a named benchmark circuit plus the numbers the paper
/// reports for it.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Table II application name.
    pub name: &'static str,
    /// The generated circuit (CNOT level).
    pub circuit: Circuit,
    /// Communication class from Table II.
    pub communication: CommunicationPattern,
    /// The "2Q Gates" count printed in Table II (our generators may differ
    /// slightly; see EXPERIMENTS.md).
    pub paper_two_qubit_gates: usize,
}

impl Benchmark {
    /// True when the benchmark requires swap insertion on a head of size
    /// `head_size` (i.e. it contains a gate spanning at least the head).
    pub fn needs_swaps(&self, head_size: usize) -> bool {
        self.circuit
            .iter()
            .filter_map(tilt_circuit::Gate::span)
            .any(|d| d >= head_size)
    }
}

/// Builds all six Table II benchmarks in paper order:
/// ADDER, BV, QAOA, RCS, QFT, SQRT.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::paper_suite;
///
/// let suite = paper_suite();
/// assert_eq!(suite.len(), 6);
/// assert_eq!(suite[0].name, "ADDER");
/// assert_eq!(suite[4].circuit.n_qubits(), 64);
/// ```
pub fn paper_suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "ADDER",
            circuit: adder::adder64(),
            communication: CommunicationPattern::ShortDistance,
            paper_two_qubit_gates: 545,
        },
        Benchmark {
            name: "BV",
            circuit: bv::bv64(),
            communication: CommunicationPattern::LongDistance,
            paper_two_qubit_gates: 64,
        },
        Benchmark {
            name: "QAOA",
            circuit: qaoa::qaoa64(),
            communication: CommunicationPattern::NearestNeighbor,
            paper_two_qubit_gates: 1260,
        },
        Benchmark {
            name: "RCS",
            circuit: rcs::rcs64(),
            communication: CommunicationPattern::NearestNeighbor,
            paper_two_qubit_gates: 560,
        },
        Benchmark {
            name: "QFT",
            circuit: qft::qft64(),
            communication: CommunicationPattern::LongDistance,
            paper_two_qubit_gates: 4032,
        },
        Benchmark {
            name: "SQRT",
            circuit: sqrt::sqrt78(),
            communication: CommunicationPattern::LongDistance,
            paper_two_qubit_gates: 1028,
        },
    ]
}

/// Returns the subset of the suite with long-distance communication —
/// the benchmarks used for the swap-insertion studies (Figs. 6 and 7).
pub fn long_distance_suite() -> Vec<Benchmark> {
    paper_suite()
        .into_iter()
        .filter(|b| b.communication == CommunicationPattern::LongDistance)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn suite_has_paper_rows_in_order() {
        let names: Vec<_> = paper_suite().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["ADDER", "BV", "QAOA", "RCS", "QFT", "SQRT"]);
    }

    #[test]
    fn qubit_counts_match_table2() {
        let expected = [64, 64, 64, 64, 64, 78];
        for (b, &n) in paper_suite().iter().zip(&expected) {
            assert_eq!(b.circuit.n_qubits(), n, "{}", b.name);
        }
    }

    #[test]
    fn two_qubit_counts_close_to_table2() {
        for b in paper_suite() {
            let ours = b.circuit.two_qubit_count() as f64;
            let paper = b.paper_two_qubit_gates as f64;
            let rel = (ours - paper).abs() / paper;
            assert!(rel < 0.12, "{}: ours {ours} vs paper {paper}", b.name);
        }
    }

    #[test]
    fn all_circuits_validate() {
        for b in paper_suite() {
            assert!(validate(&b.circuit).is_ok(), "{}", b.name);
        }
    }

    #[test]
    fn long_distance_suite_is_bv_qft_sqrt() {
        let names: Vec<_> = long_distance_suite().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["BV", "QFT", "SQRT"]);
    }

    #[test]
    fn needs_swaps_matches_communication_class() {
        for b in paper_suite() {
            let needs = b.needs_swaps(16);
            match b.communication {
                CommunicationPattern::LongDistance => assert!(needs, "{}", b.name),
                _ => assert!(!needs, "{}", b.name),
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = paper_suite();
        let b = paper_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit, y.circuit, "{}", x.name);
        }
    }
}
