//! Shared circuit-construction helpers.
//!
//! The generators emit circuits at the CNOT level, so multi-controlled
//! operations are lowered here with the textbook constructions: the 6-CNOT /
//! 7-T Toffoli and the V-chain multi-controlled X.

use tilt_circuit::{Circuit, Qubit};

/// Appends the standard 6-CNOT, 7-T decomposition of a Toffoli gate with
/// controls `c0`, `c1` and target `t`.
///
/// This is the decomposition ScaffCC-style toolchains use when lowering
/// arithmetic benchmarks to two-qubit gates, so circuits built from it have
/// Table II-comparable 2Q-gate counts.
pub fn toffoli_cnot(c: &mut Circuit, c0: Qubit, c1: Qubit, t: Qubit) {
    c.h(t);
    c.cnot(c1, t);
    c.tdg(t);
    c.cnot(c0, t);
    c.t(t);
    c.cnot(c1, t);
    c.tdg(t);
    c.cnot(c0, t);
    c.t(c1);
    c.t(t);
    c.cnot(c0, c1);
    c.h(t);
    c.t(c0);
    c.tdg(c1);
    c.cnot(c0, c1);
}

/// Appends a controlled-phase rotation `cu1(λ)` lowered to two CNOTs and
/// three Rz rotations.
///
/// `cu1(λ) = Rz(λ/2)_a · CX_{ab} · Rz(-λ/2)_b · CX_{ab} · Rz(λ/2)_b`
/// up to global phase. QFT built from this helper counts two 2Q gates per
/// controlled rotation, which is exactly how Table II reaches 4032 for the
/// 64-qubit QFT (64·63/2 rotations × 2).
pub fn cphase_cnot(c: &mut Circuit, a: Qubit, b: Qubit, lambda: f64) {
    c.rz(a, lambda / 2.0);
    c.cnot(a, b);
    c.rz(b, -lambda / 2.0);
    c.cnot(a, b);
    c.rz(b, lambda / 2.0);
}

/// Appends a multi-controlled X over `controls` onto `target` using the
/// V-chain construction with clean ancillas.
///
/// Requires `controls.len() - 1` ancillas when `controls.len() >= 3`
/// (the chain ANDs controls pairwise into the ancillas, applies a final
/// CNOT, then uncomputes). Smaller cases degenerate to CNOT / Toffoli.
///
/// # Panics
///
/// Panics if fewer ancillas are supplied than required, or if `controls`
/// is empty.
pub fn mcx_vchain(c: &mut Circuit, controls: &[Qubit], ancillas: &[Qubit], target: Qubit) {
    match controls.len() {
        0 => panic!("multi-controlled X requires at least one control"),
        1 => {
            c.cnot(controls[0], target);
        }
        2 => {
            toffoli_cnot(c, controls[0], controls[1], target);
        }
        k => {
            assert!(
                ancillas.len() >= k - 1,
                "V-chain over {k} controls needs {} ancillas, got {}",
                k - 1,
                ancillas.len()
            );
            // Compute: a0 = c0 AND c1, a_i = c_{i+1} AND a_{i-1}.
            toffoli_cnot(c, controls[0], controls[1], ancillas[0]);
            for i in 2..k {
                toffoli_cnot(c, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            c.cnot(ancillas[k - 2], target);
            // Uncompute in reverse.
            for i in (2..k).rev() {
                toffoli_cnot(c, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            toffoli_cnot(c, controls[0], controls[1], ancillas[0]);
        }
    }
}

/// Appends a multi-controlled Z over `qubits[..n-1]` onto `qubits[n-1]`,
/// lowered through [`mcx_vchain`] (`Z = H·X·H` on the target).
pub fn mcz_vchain(c: &mut Circuit, qubits: &[Qubit], ancillas: &[Qubit]) {
    let (controls, target) = qubits.split_at(qubits.len() - 1);
    let target = target[0];
    c.h(target);
    mcx_vchain(c, controls, ancillas, target);
    c.h(target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn toffoli_cnot_uses_six_cnots() {
        let mut c = Circuit::new(3);
        toffoli_cnot(&mut c, Qubit(0), Qubit(1), Qubit(2));
        assert_eq!(c.two_qubit_count(), 6);
        assert!(validate(&c).is_ok());
    }

    #[test]
    fn cphase_cnot_uses_two_cnots() {
        let mut c = Circuit::new(2);
        cphase_cnot(&mut c, Qubit(0), Qubit(1), 0.5);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.single_qubit_count(), 3);
    }

    #[test]
    fn mcx_degenerates_to_cnot_and_toffoli() {
        let mut c1 = Circuit::new(2);
        mcx_vchain(&mut c1, &[Qubit(0)], &[], Qubit(1));
        assert_eq!(c1.two_qubit_count(), 1);

        let mut c2 = Circuit::new(3);
        mcx_vchain(&mut c2, &[Qubit(0), Qubit(1)], &[], Qubit(2));
        assert_eq!(c2.two_qubit_count(), 6);
    }

    #[test]
    fn mcx_vchain_counts() {
        // k controls: 2(k-1) Toffolis + 1 CNOT = 12(k-1)+1 two-qubit gates.
        for k in 3..8 {
            let n = 2 * k; // controls + ancillas + target
            let mut c = Circuit::new(n);
            let controls: Vec<Qubit> = (0..k).map(Qubit).collect();
            let ancillas: Vec<Qubit> = (k..2 * k - 1).map(Qubit).collect();
            mcx_vchain(&mut c, &controls, &ancillas, Qubit(n - 1));
            assert_eq!(c.two_qubit_count(), 12 * (k - 1) + 1, "k={k}");
            assert!(validate(&c).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn mcx_vchain_panics_without_ancillas() {
        let mut c = Circuit::new(4);
        mcx_vchain(&mut c, &[Qubit(0), Qubit(1), Qubit(2)], &[], Qubit(3));
    }

    #[test]
    fn mcz_wraps_target_in_hadamards() {
        let mut c = Circuit::new(5);
        let qs: Vec<Qubit> = (0..3).map(Qubit).collect();
        mcz_vchain(&mut c, &qs, &[Qubit(3), Qubit(4)]);
        assert!(matches!(c.gates()[0], tilt_circuit::Gate::H(q) if q == Qubit(2)));
        assert!(validate(&c).is_ok());
    }
}
