//! QEC-scale syndrome-extraction workloads for the stabilizer backend.
//!
//! The Table II NISQ suite tops out at 78 qubits — comfortable dense-
//! simulator territory once circuits are narrow, and far below where
//! error-corrected machines operate. These generators produce the
//! opposite regime: pure-Clifford memory experiments with hundreds of
//! qubits and repeated mid-circuit measurement, exactly the shape the
//! `tilt-stabilizer` tableau handles and the dense state vector cannot
//! represent (a 500-qubit state would need 2^500 amplitudes).
//!
//! Two codes, both emitting one measurement per ancilla per round and a
//! final transversal data readout:
//!
//! * [`repetition_code`] — the distance-`d` bit-flip repetition code on
//!   a line, `2d - 1` qubits. Data and ancilla qubits interleave
//!   (`d0 a0 d1 a1 …`) so every syndrome CNOT is distance-1 on a tape.
//! * [`surface_syndrome`] — a rotated-surface-style checkerboard of
//!   4-body plaquette checks over a `d × d` data grid, `d² + (d-1)²`
//!   qubits. X- and Z-type plaquettes alternate by parity; boundary
//!   2-body checks are omitted, so this is a surface-*like* syndrome
//!   workload, not a full distance-`d` code.

use tilt_circuit::{Circuit, Qubit};

/// Distance-`d` repetition-code memory experiment: `rounds` rounds of
/// syndrome extraction, then transversal data readout.
///
/// Layout interleaves data and ancilla qubits on the line —
/// data `i` at index `2i`, ancilla `j` at `2j + 1` — so both CNOTs of
/// every parity check touch nearest neighbours (span 1), the friendly
/// case for tape routing. Each round measures every ancilla and resets
/// it for the next round. Total: `2d - 1` qubits,
/// `rounds · (d - 1) + d` measurements.
///
/// On the all-zero initial state every syndrome is deterministically 0,
/// which makes the circuit a self-checking stabilizer workload.
///
/// # Panics
///
/// Panics if `distance < 2` or `rounds == 0`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::qec::repetition_code;
///
/// let c = repetition_code(3, 2);
/// assert_eq!(c.n_qubits(), 5);
/// assert!(c.is_clifford());
/// assert_eq!(c.stats().measurements, 2 * 2 + 3);
/// ```
pub fn repetition_code(distance: usize, rounds: usize) -> Circuit {
    assert!(distance >= 2, "a repetition code needs distance >= 2");
    assert!(rounds >= 1, "a memory experiment needs at least one round");
    let data = |i: usize| Qubit(2 * i);
    let ancilla = |j: usize| Qubit(2 * j + 1);
    let mut c = Circuit::new(2 * distance - 1);
    for _ in 0..rounds {
        // Z⊗Z parity of each adjacent data pair, accumulated onto the
        // ancilla between them.
        for j in 0..distance - 1 {
            c.cnot(data(j), ancilla(j));
            c.cnot(data(j + 1), ancilla(j));
        }
        for j in 0..distance - 1 {
            c.measure(ancilla(j));
            c.reset_qubit(ancilla(j));
        }
        c.barrier();
    }
    for i in 0..distance {
        c.measure(data(i));
    }
    c
}

/// A rotated-surface-style syndrome-extraction workload: `rounds`
/// rounds of 4-body plaquette checks over a `d × d` data grid, then
/// transversal data readout.
///
/// Data qubit `(r, c)` sits at index `r·d + c`; the `(d-1)²` plaquette
/// ancillas follow, one per cell of the dual grid. Plaquettes alternate
/// X-type and Z-type in checkerboard fashion (by `r + c` parity): a
/// Z-plaquette accumulates the four corner data qubits onto its ancilla
/// with data→ancilla CNOTs; an X-plaquette conjugates the same pattern
/// by Hadamards on the ancilla. Boundary (2-body) stabilizers are
/// omitted — this is a surface-*like* Clifford workload with the right
/// connectivity and measurement density, not a complete code.
///
/// Total: `d² + (d-1)²` qubits, `rounds · (d-1)² + d²` measurements.
///
/// # Panics
///
/// Panics if `distance < 2` or `rounds == 0`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::qec::surface_syndrome;
///
/// let c = surface_syndrome(3, 1);
/// assert_eq!(c.n_qubits(), 9 + 4);
/// assert!(c.is_clifford());
/// ```
pub fn surface_syndrome(distance: usize, rounds: usize) -> Circuit {
    assert!(distance >= 2, "a surface patch needs distance >= 2");
    assert!(rounds >= 1, "a memory experiment needs at least one round");
    let d = distance;
    let n_data = d * d;
    let n_anc = (d - 1) * (d - 1);
    let data = |r: usize, c: usize| Qubit(r * d + c);
    let ancilla = |r: usize, c: usize| Qubit(n_data + r * (d - 1) + c);
    let mut circuit = Circuit::new(n_data + n_anc);
    for _ in 0..rounds {
        for r in 0..d - 1 {
            for c in 0..d - 1 {
                let a = ancilla(r, c);
                let corners = [
                    data(r, c),
                    data(r, c + 1),
                    data(r + 1, c),
                    data(r + 1, c + 1),
                ];
                if (r + c) % 2 == 0 {
                    // Z-plaquette: parity of the corners in the Z basis.
                    for q in corners {
                        circuit.cnot(q, a);
                    }
                } else {
                    // X-plaquette: the same check conjugated into the X
                    // basis (H on the ancilla, ancilla-controlled CNOTs).
                    circuit.h(a);
                    for q in corners {
                        circuit.cnot(a, q);
                    }
                    circuit.h(a);
                }
            }
        }
        for r in 0..d - 1 {
            for c in 0..d - 1 {
                circuit.measure(ancilla(r, c));
                circuit.reset_qubit(ancilla(r, c));
            }
        }
        circuit.barrier();
    }
    for r in 0..d {
        for c in 0..d {
            circuit.measure(data(r, c));
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn repetition_code_shape() {
        let c = repetition_code(5, 3);
        assert_eq!(c.n_qubits(), 9);
        assert!(validate(&c).is_ok());
        assert!(c.is_clifford());
        assert_eq!(c.stats().measurements, 3 * 4 + 5);
    }

    #[test]
    fn repetition_code_cnots_are_nearest_neighbour() {
        let c = repetition_code(7, 2);
        let max_span = c.iter().filter_map(tilt_circuit::Gate::span).max().unwrap();
        assert_eq!(max_span, 1, "interleaved layout keeps every check local");
    }

    #[test]
    fn repetition_code_scales_past_dense_reach() {
        // d = 251 → 501 qubits: representable only on the tableau.
        let c = repetition_code(251, 10);
        assert_eq!(c.n_qubits(), 501);
        assert!(c.is_clifford());
    }

    #[test]
    fn surface_syndrome_shape() {
        let c = surface_syndrome(4, 2);
        assert_eq!(c.n_qubits(), 16 + 9);
        assert!(validate(&c).is_ok());
        assert!(c.is_clifford());
        assert_eq!(c.stats().measurements, 2 * 9 + 16);
    }

    #[test]
    #[should_panic(expected = "distance >= 2")]
    fn repetition_code_rejects_trivial_distance() {
        repetition_code(1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn surface_syndrome_rejects_zero_rounds() {
        surface_syndrome(3, 0);
    }
}
