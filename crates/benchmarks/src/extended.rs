//! Extended benchmark suite — the application classes §III-C of the paper
//! names as TILT's target workloads but does not include in Table II:
//! VQE (Kandala et al.), the Ising-model solver (Barends et al.), surface-
//! code syndrome extraction (Fowler et al.), and GHZ state preparation.
//!
//! All generators emit CNOT-level circuits like the Table II suite, so
//! they drop straight into every harness.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::{Circuit, Qubit};

/// GHZ state preparation: one Hadamard plus a CNOT ladder — the minimal
/// nearest-neighbour benchmark.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::extended::ghz;
///
/// let c = ghz(64);
/// assert_eq!(c.two_qubit_count(), 63);
/// ```
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(Qubit(0));
    for i in 1..n {
        c.cnot(Qubit(i - 1), Qubit(i));
    }
    c
}

/// Hardware-efficient VQE ansatz (Kandala et al., Nature 549): layers of
/// single-qubit Euler rotations followed by a ladder of entanglers, as
/// used for molecular ground-state preparation. Angles are seeded stand-ins
/// for the classical optimizer's parameters.
///
/// # Panics
///
/// Panics if `n_qubits < 2`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::extended::vqe_ansatz;
///
/// let c = vqe_ansatz(16, 4, 3);
/// assert_eq!(c.two_qubit_count(), 4 * 15);
/// ```
pub fn vqe_ansatz(n_qubits: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n_qubits >= 2, "VQE ansatz needs at least two qubits");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_qubits);
    let mut euler = |c: &mut Circuit, q: Qubit| {
        c.rz(
            q,
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        );
        c.rx(
            q,
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        );
        c.rz(
            q,
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        );
    };
    for _ in 0..layers {
        for q in 0..n_qubits {
            euler(&mut c, Qubit(q));
        }
        for q in 0..n_qubits - 1 {
            c.cnot(Qubit(q), Qubit(q + 1));
        }
    }
    for q in 0..n_qubits {
        euler(&mut c, Qubit(q));
    }
    c
}

/// Digitized-adiabatic transverse-field Ising solver (Barends et al.,
/// Nature 534): Trotter steps alternating nearest-neighbour `ZZ` coupling
/// layers with transverse `Rx` layers, ramping the field down.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::extended::ising_solver;
///
/// let c = ising_solver(16, 5);
/// assert_eq!(c.two_qubit_count(), 5 * 15);
/// ```
pub fn ising_solver(n_qubits: usize, trotter_steps: usize) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for q in 0..n_qubits {
        c.h(Qubit(q));
    }
    for step in 0..trotter_steps {
        let s = (step + 1) as f64 / trotter_steps as f64;
        let zz_angle = 2.0 * 0.2 * s; // coupling ramps up
        let field = 2.0 * 0.8 * (1.0 - s); // transverse field ramps down
        for q in 0..n_qubits - 1 {
            c.zz(Qubit(q), Qubit(q + 1), zz_angle);
        }
        for q in 0..n_qubits {
            c.rx(Qubit(q), field);
        }
    }
    c
}

/// One round of distance-`d` surface-code syndrome extraction (Fowler et
/// al., PRA 86) on the 1-D layout trapped-ion QEC studies use (Trout et
/// al.): data and ancilla qubits interleaved along the chain, each
/// stabilizer measured by a four-CNOT cycle with its neighbouring data
/// qubits.
///
/// The returned circuit interleaves `d²` data qubits with `d² − 1`
/// syndrome ancillas (`2d² − 1` total), alternating X- and Z-type
/// stabilizers. Communication is short-distance — the class of workload
/// §III-C argues favours TILT.
///
/// # Panics
///
/// Panics if `distance < 2`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::extended::surface_code_round;
///
/// let c = surface_code_round(3);
/// assert_eq!(c.n_qubits(), 17); // 9 data + 8 ancilla
/// ```
pub fn surface_code_round(distance: usize) -> Circuit {
    assert!(distance >= 2, "surface code needs distance at least 2");
    let n_data = distance * distance;
    let n_anc = n_data - 1;
    let n = n_data + n_anc;
    // Layout: data at even positions, ancillas at odd positions.
    let data = |i: usize| Qubit(2 * i);
    let anc = |i: usize| Qubit(2 * i + 1);
    let mut c = Circuit::new(n);

    for a in 0..n_anc {
        let x_type = a % 2 == 0;
        let left = data(a);
        let right = data(a + 1);
        if x_type {
            // X stabilizer: H on ancilla, CNOTs ancilla→data, H, measure.
            c.h(anc(a));
            c.cnot(anc(a), left);
            c.cnot(anc(a), right);
            // Weight-4 plaquettes couple to the row neighbours where they
            // exist (1-D folded layout).
            if a + distance < n_data {
                c.cnot(anc(a), data(a + distance));
            }
            c.h(anc(a));
        } else {
            // Z stabilizer: CNOTs data→ancilla.
            c.cnot(left, anc(a));
            c.cnot(right, anc(a));
            if a + distance < n_data {
                c.cnot(data(a + distance), anc(a));
            }
        }
        c.measure(anc(a));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn ghz_counts() {
        let c = ghz(64);
        assert_eq!(c.n_qubits(), 64);
        assert_eq!(c.two_qubit_count(), 63);
        assert_eq!(c.depth(), 64);
    }

    #[test]
    fn vqe_gate_counts_scale_with_layers() {
        for layers in 1..4 {
            let c = vqe_ansatz(8, layers, 1);
            assert_eq!(c.two_qubit_count(), layers * 7);
            // Euler rotations: (layers + 1) × 3 per qubit.
            assert_eq!(c.single_qubit_count(), (layers + 1) * 3 * 8);
        }
    }

    #[test]
    fn vqe_is_seed_deterministic() {
        assert_eq!(vqe_ansatz(8, 2, 9), vqe_ansatz(8, 2, 9));
        assert_ne!(vqe_ansatz(8, 2, 9), vqe_ansatz(8, 2, 10));
    }

    #[test]
    fn ising_ramp_is_nearest_neighbour() {
        let c = ising_solver(12, 4);
        for g in c.iter().filter(|g| g.is_two_qubit()) {
            assert_eq!(g.span(), Some(1));
        }
        assert_eq!(c.two_qubit_count(), 4 * 11);
    }

    #[test]
    fn surface_code_layout_is_short_distance() {
        let c = surface_code_round(3);
        assert_eq!(c.n_qubits(), 17);
        // The folded 1-D layout keeps stabilizer CNOTs within 2·distance.
        let max_span = c.iter().filter_map(tilt_circuit::Gate::span).max().unwrap();
        assert!(max_span <= 2 * 3, "span {max_span}");
        assert_eq!(c.stats().measurements, 8);
    }

    #[test]
    fn surface_code_distance_scaling() {
        for d in 2..5 {
            let c = surface_code_round(d);
            assert_eq!(c.n_qubits(), 2 * d * d - 1);
            assert!(validate(&c).is_ok());
        }
    }

    #[test]
    fn all_extended_benchmarks_validate() {
        assert!(validate(&ghz(64)).is_ok());
        assert!(validate(&vqe_ansatz(64, 4, 3)).is_ok());
        assert!(validate(&ising_solver(64, 10)).is_ok());
        assert!(validate(&surface_code_round(5)).is_ok());
    }
}
