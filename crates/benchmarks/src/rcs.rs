//! Random Circuit Sampling (Boixo et al., Nat. Phys. 14; Arute et al.,
//! Nature 574).
//!
//! The RCS row of Table II: a Google-style supremacy circuit on an 8×8
//! qubit grid, 20 entangling cycles alternating four CZ patterns
//! (32+24+32+24 = 112 CZs per four cycles → 560 total), with random
//! single-qubit gates from `{√X, √Y, T}` between cycles. Mapped row-major
//! onto the tape, gates are nearest-neighbour (distance 1 or `cols`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::{Circuit, Gate, Qubit};

/// The four entangling patterns of the supremacy-style cycle.
///
/// Horizontal patterns pair `(r, c)–(r, c+1)`; vertical patterns pair
/// `(r, c)–(r+1, c)`; `Even`/`Odd` selects the parity of the free
/// coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pattern {
    HorizontalEven,
    HorizontalOdd,
    VerticalEven,
    VerticalOdd,
}

const CYCLE_ORDER: [Pattern; 4] = [
    Pattern::HorizontalEven,
    Pattern::HorizontalOdd,
    Pattern::VerticalEven,
    Pattern::VerticalOdd,
];

/// Pairs activated by `pattern` on a `rows × cols` grid, as row-major
/// qubit indices.
fn pattern_pairs(rows: usize, cols: usize, pattern: Pattern) -> Vec<(usize, usize)> {
    let at = |r: usize, c: usize| r * cols + c;
    let mut pairs = Vec::new();
    match pattern {
        Pattern::HorizontalEven | Pattern::HorizontalOdd => {
            let start = if pattern == Pattern::HorizontalEven {
                0
            } else {
                1
            };
            for r in 0..rows {
                for c in (start..cols.saturating_sub(1)).step_by(2) {
                    pairs.push((at(r, c), at(r, c + 1)));
                }
            }
        }
        Pattern::VerticalEven | Pattern::VerticalOdd => {
            let start = if pattern == Pattern::VerticalEven {
                0
            } else {
                1
            };
            for r in (start..rows.saturating_sub(1)).step_by(2) {
                for c in 0..cols {
                    pairs.push((at(r, c), at(r + 1, c)));
                }
            }
        }
    }
    pairs
}

/// The CZ pairs of entangling cycle `cycle` (patterns rotate with
/// period 4) — shared with the lazy generator in [`crate::stream`] so
/// the two emit identical entangling layers.
pub(crate) fn rcs_cycle_order(rows: usize, cols: usize, cycle: usize) -> Vec<(usize, usize)> {
    pattern_pairs(rows, cols, CYCLE_ORDER[cycle % 4])
}

/// Builds a random-circuit-sampling benchmark on a `rows × cols` grid with
/// `cycles` entangling cycles, seeded deterministically.
///
/// Each cycle applies a random gate from `{√X, √Y, T}` to every qubit
/// (never repeating the previous choice on the same qubit, per the Google
/// protocol) followed by the CZs of the cycle's pattern. An initial
/// Hadamard layer puts the register in superposition.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::rcs::random_circuit_sampling;
///
/// let c = random_circuit_sampling(8, 8, 20, 11);
/// assert_eq!(c.n_qubits(), 64);
/// assert_eq!(c.two_qubit_count(), 560); // Table II
/// ```
pub fn random_circuit_sampling(rows: usize, cols: usize, cycles: usize, seed: u64) -> Circuit {
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);

    for i in 0..n {
        c.h(Qubit(i));
    }
    // Previous single-qubit gate choice per qubit (0 = √X, 1 = √Y, 2 = T).
    let mut prev: Vec<Option<u8>> = vec![None; n];
    for cycle in 0..cycles {
        for (q, prev_q) in prev.iter_mut().enumerate() {
            let mut choice = rng.gen_range(0..3u8);
            while Some(choice) == *prev_q {
                choice = rng.gen_range(0..3u8);
            }
            *prev_q = Some(choice);
            let gate = match choice {
                0 => Gate::SqrtX(Qubit(q)),
                1 => Gate::SqrtY(Qubit(q)),
                _ => Gate::T(Qubit(q)),
            };
            c.push(gate);
        }
        for (a, b) in pattern_pairs(rows, cols, CYCLE_ORDER[cycle % 4]) {
            c.cz(Qubit(a), Qubit(b));
        }
    }
    c
}

/// The Table II RCS benchmark: 8×8 grid, 20 cycles, 560 CZ gates.
pub fn rcs64() -> Circuit {
    random_circuit_sampling(8, 8, 20, 11)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn table2_counts() {
        let c = rcs64();
        assert_eq!(c.n_qubits(), 64);
        assert_eq!(c.two_qubit_count(), 560);
    }

    #[test]
    fn pattern_sizes_on_8x8() {
        assert_eq!(pattern_pairs(8, 8, Pattern::HorizontalEven).len(), 32);
        assert_eq!(pattern_pairs(8, 8, Pattern::HorizontalOdd).len(), 24);
        assert_eq!(pattern_pairs(8, 8, Pattern::VerticalEven).len(), 32);
        assert_eq!(pattern_pairs(8, 8, Pattern::VerticalOdd).len(), 24);
    }

    #[test]
    fn pattern_pairs_are_disjoint_within_a_cycle() {
        for p in CYCLE_ORDER {
            let pairs = pattern_pairs(8, 8, p);
            let mut seen = std::collections::HashSet::new();
            for (a, b) in pairs {
                assert!(seen.insert(a), "{p:?} reuses qubit {a}");
                assert!(seen.insert(b), "{p:?} reuses qubit {b}");
            }
        }
    }

    #[test]
    fn row_major_spans_are_one_or_cols() {
        let c = rcs64();
        for g in c.iter().filter(|g| g.is_two_qubit()) {
            let s = g.span().unwrap();
            assert!(s == 1 || s == 8, "span {s}");
        }
    }

    #[test]
    fn single_qubit_layer_never_repeats_choice() {
        let c = random_circuit_sampling(2, 2, 10, 3);
        let mut prev: Vec<Option<&str>> = vec![None; 4];
        for g in &c {
            if g.is_single_qubit_unitary() && g.name() != "h" {
                let q = g.qubits()[0].index();
                assert_ne!(prev[q], Some(g.name()));
                prev[q] = Some(g.name());
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(
            random_circuit_sampling(4, 4, 8, 5),
            random_circuit_sampling(4, 4, 8, 5)
        );
    }

    #[test]
    fn circuit_is_valid() {
        assert!(validate(&rcs64()).is_ok());
    }
}
