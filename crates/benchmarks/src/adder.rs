//! Cuccaro ripple-carry adder (quant-ph/0410184).
//!
//! The ADDER row of Table II: a 64-qubit instance is the `n = 31`-bit
//! adder (carry-in + 31 `a` bits + 31 `b` bits + carry-out = 64 qubits).
//! With the interleaved register layout used here every MAJ/UMA block
//! touches three *adjacent* tape positions, which is why the paper
//! classifies ADDER as "short-distance gates".

use crate::util::toffoli_cnot;
use tilt_circuit::{Circuit, Qubit};

/// Qubit layout of [`cuccaro_adder`]: `c, b0, a0, b1, a1, …, b_{n-1},
/// a_{n-1}, z` so that every MAJ/UMA acts on three neighbours.
///
/// Returns `(carry_in, b, a, carry_out)` index helpers for an `n`-bit adder.
fn layout(n: usize) -> (Qubit, Vec<Qubit>, Vec<Qubit>, Qubit) {
    let carry_in = Qubit(0);
    let b: Vec<Qubit> = (0..n).map(|i| Qubit(2 * i + 1)).collect();
    let a: Vec<Qubit> = (0..n).map(|i| Qubit(2 * i + 2)).collect();
    let carry_out = Qubit(2 * n + 1);
    (carry_in, b, a, carry_out)
}

/// MAJ block: computes the carry majority in place.
fn maj(c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit) {
    c.cnot(z, y);
    c.cnot(z, x);
    toffoli_cnot(c, x, y, z);
}

/// UMA block (2-CNOT variant): undoes MAJ and writes the sum bit.
fn uma(c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit) {
    toffoli_cnot(c, x, y, z);
    c.cnot(z, x);
    c.cnot(x, y);
}

/// Builds the `n`-bit Cuccaro ripple-carry adder `b ← a + b` on `2n + 2`
/// qubits, lowered to the CNOT level.
///
/// The 64-qubit Table II instance is [`adder64`] (`n = 31`).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::adder::cuccaro_adder;
///
/// let c = cuccaro_adder(31);
/// assert_eq!(c.n_qubits(), 64);
/// ```
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let (carry_in, b, a, carry_out) = layout(n);
    let mut c = Circuit::new(2 * n + 2);

    // Forward MAJ ladder.
    maj(&mut c, carry_in, b[0], a[0]);
    for i in 1..n {
        maj(&mut c, a[i - 1], b[i], a[i]);
    }
    // Carry out.
    c.cnot(a[n - 1], carry_out);
    // Reverse UMA ladder.
    for i in (1..n).rev() {
        uma(&mut c, a[i - 1], b[i], a[i]);
    }
    uma(&mut c, carry_in, b[0], a[0]);
    c
}

/// The Table II ADDER benchmark: the 64-qubit (31-bit) Cuccaro adder.
pub fn adder64() -> Circuit {
    cuccaro_adder(31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn table2_qubit_count() {
        assert_eq!(adder64().n_qubits(), 64);
    }

    #[test]
    fn table2_two_qubit_gates_in_range() {
        // Paper reports 545 2Q gates; the textbook Cuccaro construction with
        // 6-CNOT Toffolis gives 2n·8 + 1 = 497 for n = 31. The delta comes
        // from ScaffCC's slightly different Toffoli lowering; we accept the
        // textbook count and document the difference in EXPERIMENTS.md.
        let count = adder64().two_qubit_count();
        assert_eq!(count, 497);
        assert!((count as f64 - 545.0).abs() / 545.0 < 0.10);
    }

    #[test]
    fn gates_are_local_in_interleaved_layout() {
        let c = adder64();
        // Every 2Q gate in the Cuccaro layout spans at most 2 positions.
        let max_span = c.iter().filter_map(tilt_circuit::Gate::span).max().unwrap();
        assert!(max_span <= 2, "max span {max_span}");
    }

    #[test]
    fn adder_is_valid_and_deterministic() {
        let a = cuccaro_adder(8);
        let b = cuccaro_adder(8);
        assert!(validate(&a).is_ok());
        assert_eq!(a, b);
    }

    #[test]
    fn small_adder_counts_scale_linearly() {
        // 2Q gates: n MAJ blocks (8 each) + n UMA blocks (8 each) + 1 carry.
        for n in 1..6 {
            let c = cuccaro_adder(n);
            assert_eq!(c.two_qubit_count(), 16 * n + 1);
            assert_eq!(c.n_qubits(), 2 * n + 2);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        cuccaro_adder(0);
    }
}
