//! Lazy gate-stream versions of the scalable generators.
//!
//! The streaming compile pipeline takes `IntoIterator<Item = Gate>`, so
//! million-gate benchmark inputs should never exist as a materialized
//! [`Circuit`] — that would reintroduce the O(gates) footprint the
//! pipeline exists to avoid. The generators here yield the exact gate
//! sequence of their `Circuit`-building counterparts ([`qft::qft`] and
//! [`rcs::random_circuit_sampling`]), one gate at a time, holding only
//! O(qubits) state: the same helpers produce each local chunk (so the
//! decompositions cannot drift), and the RCS stream drives its RNG in
//! the same order as the circuit builder (so the random choices are
//! bit-identical).
//!
//! [`qft::qft`]: crate::qft::qft
//! [`rcs::random_circuit_sampling`]: crate::rcs::random_circuit_sampling
//!
//! # Example
//!
//! ```
//! use tilt_benchmarks::qft::qft;
//! use tilt_benchmarks::stream::qft_stream;
//!
//! let streamed: Vec<_> = qft_stream(6).collect();
//! assert_eq!(streamed, qft(6).gates().to_vec());
//! ```

use crate::rcs::rcs_cycle_order;
use crate::util::cphase_cnot;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use tilt_circuit::{Circuit, Gate, Qubit};

/// The `n`-qubit QFT of [`crate::qft::qft`] as a lazy gate stream.
///
/// Yields exactly `qft(n).gates()`, never holding more than one
/// controlled-phase expansion in memory.
pub fn qft_stream(n: usize) -> QftStream {
    QftStream {
        n,
        i: 0,
        j: 0,
        buf: VecDeque::new(),
        scratch: Circuit::new(n),
    }
}

/// Iterator behind [`qft_stream`].
#[derive(Clone, Debug)]
pub struct QftStream {
    n: usize,
    /// Target qubit of the current QFT block.
    i: usize,
    /// Next control within the block; `j == i` means the block's
    /// Hadamard is still pending.
    j: usize,
    buf: VecDeque<Gate>,
    /// Reused per-chunk circuit so every refill goes through the same
    /// [`cphase_cnot`] helper as the monolithic builder.
    scratch: Circuit,
}

impl Iterator for QftStream {
    type Item = Gate;

    fn next(&mut self) -> Option<Gate> {
        loop {
            if let Some(g) = self.buf.pop_front() {
                return Some(g);
            }
            if self.i >= self.n {
                return None;
            }
            if self.j == self.i {
                self.buf.push_back(Gate::H(Qubit(self.i)));
            } else {
                let (i, j) = (self.i, self.j);
                let angle = std::f64::consts::PI / f64::powi(2.0, (j - i) as i32);
                self.scratch.reset(self.n);
                cphase_cnot(&mut self.scratch, Qubit(j), Qubit(i), angle);
                self.buf.extend(self.scratch.iter().copied());
            }
            self.j += 1;
            if self.j >= self.n {
                self.i += 1;
                self.j = self.i;
            }
        }
    }
}

/// The RCS benchmark of [`crate::rcs::random_circuit_sampling`] as a
/// lazy gate stream: same grid, same cycle patterns, same seeded RNG
/// consumed in the same order — the yielded sequence is bit-identical
/// to the circuit builder's gate list.
///
/// Holds O(`rows·cols`) state (the per-qubit previous-choice table and
/// one cycle's gates), independent of `cycles` — crank `cycles` up for
/// million-gate streaming inputs.
pub fn rcs_stream(rows: usize, cols: usize, cycles: usize, seed: u64) -> RcsStream {
    RcsStream {
        rows,
        cols,
        cycles,
        rng: SmallRng::seed_from_u64(seed),
        prev: vec![None; rows * cols],
        cycle: 0,
        emitted_h: false,
        buf: VecDeque::new(),
    }
}

/// Iterator behind [`rcs_stream`].
#[derive(Clone, Debug)]
pub struct RcsStream {
    rows: usize,
    cols: usize,
    cycles: usize,
    rng: SmallRng,
    /// Previous single-qubit gate choice per qubit (0 = √X, 1 = √Y,
    /// 2 = T), mirroring the circuit builder's no-repeat rule.
    prev: Vec<Option<u8>>,
    cycle: usize,
    emitted_h: bool,
    buf: VecDeque<Gate>,
}

impl Iterator for RcsStream {
    type Item = Gate;

    fn next(&mut self) -> Option<Gate> {
        loop {
            if let Some(g) = self.buf.pop_front() {
                return Some(g);
            }
            let n = self.rows * self.cols;
            if !self.emitted_h {
                self.emitted_h = true;
                self.buf.extend((0..n).map(|i| Gate::H(Qubit(i))));
                continue;
            }
            if self.cycle >= self.cycles {
                return None;
            }
            let cycle = self.cycle;
            self.cycle += 1;
            for (q, prev_q) in self.prev.iter_mut().enumerate() {
                let mut choice = self.rng.gen_range(0..3u8);
                while Some(choice) == *prev_q {
                    choice = self.rng.gen_range(0..3u8);
                }
                *prev_q = Some(choice);
                self.buf.push_back(match choice {
                    0 => Gate::SqrtX(Qubit(q)),
                    1 => Gate::SqrtY(Qubit(q)),
                    _ => Gate::T(Qubit(q)),
                });
            }
            for (a, b) in rcs_cycle_order(self.rows, self.cols, cycle) {
                self.buf.push_back(Gate::Cz(Qubit(a), Qubit(b)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qft::qft;
    use crate::rcs::random_circuit_sampling;

    #[test]
    fn qft_stream_is_bit_identical_to_the_circuit_builder() {
        for n in [0, 1, 2, 5, 16] {
            let streamed: Vec<Gate> = qft_stream(n).collect();
            assert_eq!(streamed, qft(n).gates().to_vec(), "n = {n}");
        }
    }

    #[test]
    fn rcs_stream_is_bit_identical_to_the_circuit_builder() {
        for (rows, cols, cycles, seed) in
            [(2, 2, 0, 7), (2, 3, 5, 1), (4, 4, 9, 11), (8, 8, 20, 11)]
        {
            let streamed: Vec<Gate> = rcs_stream(rows, cols, cycles, seed).collect();
            assert_eq!(
                streamed,
                random_circuit_sampling(rows, cols, cycles, seed)
                    .gates()
                    .to_vec(),
                "{rows}x{cols} cycles {cycles} seed {seed}"
            );
        }
    }

    #[test]
    fn rcs_stream_scales_cycles_without_scaling_state() {
        // A deep stream yields the shallow stream as a prefix: the state
        // machine is per-cycle, so depth only extends the tail.
        let shallow: Vec<Gate> = rcs_stream(2, 2, 3, 5).collect();
        let deep: Vec<Gate> = rcs_stream(2, 2, 50, 5).take(shallow.len()).collect();
        assert_eq!(shallow, deep);
    }

    #[test]
    fn streams_are_lazy_enough_for_million_gate_counts() {
        // Count without collecting: ~1.0M gates from a deep RCS stream.
        let count = rcs_stream(8, 8, 11_000, 11).count();
        assert!(count > 1_000_000, "{count}");
        let q = qft_stream(640).count();
        assert!(q > 1_000_000, "{q}");
    }
}
