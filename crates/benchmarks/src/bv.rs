//! Bernstein–Vazirani (SIAM J. Comput. 26(5), 1997).
//!
//! The BV row of Table II: one oracle query recovers a secret bit string.
//! Every oracle CNOT targets the single ancilla at the end of the register,
//! so on a linear tape the circuit is dominated by *long-distance* gates —
//! the stress case for swap insertion (and the one benchmark where the
//! paper's LinQ finds no opposing swaps, Fig. 6a).

use tilt_circuit::{Circuit, Qubit};

/// Builds the Bernstein–Vazirani circuit over `n_qubits` total qubits:
/// `n_qubits - 1` data qubits plus one ancilla (the last qubit).
///
/// `secret` selects which data qubits carry a CNOT into the ancilla; it
/// must have length `n_qubits - 1`.
///
/// # Panics
///
/// Panics if `n_qubits < 2` or `secret.len() != n_qubits - 1`.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::bv::bernstein_vazirani;
///
/// let c = bernstein_vazirani(5, &[true, false, true, true]);
/// assert_eq!(c.two_qubit_count(), 3);
/// ```
pub fn bernstein_vazirani(n_qubits: usize, secret: &[bool]) -> Circuit {
    assert!(
        n_qubits >= 2,
        "BV needs at least one data qubit plus ancilla"
    );
    assert_eq!(
        secret.len(),
        n_qubits - 1,
        "secret must cover every data qubit"
    );
    let mut c = Circuit::new(n_qubits);
    let ancilla = Qubit(n_qubits - 1);

    // Prepare |-> on the ancilla and |+> on the data register.
    c.x(ancilla);
    for i in 0..n_qubits {
        c.h(Qubit(i));
    }
    // Oracle: f(x) = s·x via phase kickback.
    for (i, &bit) in secret.iter().enumerate() {
        if bit {
            c.cnot(Qubit(i), ancilla);
        }
    }
    // Undo the data-register Hadamards; the data register now holds `s`.
    for i in 0..n_qubits - 1 {
        c.h(Qubit(i));
    }
    c
}

/// The Table II BV benchmark: 64 qubits with the all-ones secret.
///
/// The all-ones secret maximises oracle CNOTs (63 of them — the paper
/// rounds this row to 64) and therefore communication pressure.
pub fn bv64() -> Circuit {
    bernstein_vazirani(64, &[true; 63])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn table2_qubit_count() {
        assert_eq!(bv64().n_qubits(), 64);
    }

    #[test]
    fn table2_two_qubit_gates() {
        // 63 oracle CNOTs; the paper's Table II rounds to 64.
        assert_eq!(bv64().two_qubit_count(), 63);
    }

    #[test]
    fn all_gates_target_the_ancilla() {
        let c = bv64();
        for g in c.iter().filter(|g| g.is_two_qubit()) {
            assert_eq!(g.qubits()[1], Qubit(63));
        }
    }

    #[test]
    fn zero_secret_has_no_two_qubit_gates() {
        let c = bernstein_vazirani(8, &[false; 7]);
        assert_eq!(c.two_qubit_count(), 0);
        assert!(validate(&c).is_ok());
    }

    #[test]
    fn secret_weight_equals_cnot_count() {
        let secret = [true, false, true, false, true];
        let c = bernstein_vazirani(6, &secret);
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    #[should_panic(expected = "secret must cover")]
    fn mismatched_secret_length_panics() {
        bernstein_vazirani(4, &[true]);
    }

    #[test]
    fn spans_are_long_distance() {
        let c = bv64();
        let min_span = c.iter().filter_map(tilt_circuit::Gate::span).min().unwrap();
        let max_span = c.iter().filter_map(tilt_circuit::Gate::span).max().unwrap();
        assert_eq!(min_span, 1);
        assert_eq!(max_span, 63);
    }
}
