//! Quantum Fourier Transform.
//!
//! The QFT row of Table II: the 64-qubit QFT has `64·63/2 = 2016`
//! controlled-phase rotations; lowered to the CNOT level (two CNOTs per
//! rotation, see [`crate::util::cphase_cnot`]) that is exactly the 4032
//! two-qubit gates the paper reports. Rotations couple every qubit pair,
//! so the circuit is dominated by long-distance gates — the worst case for
//! TILT (Fig. 8b).
//!
//! The trailing qubit-reversal swap network is omitted, as is conventional
//! for compiled QFT kernels (the reversal is classical re-indexing).

use crate::util::cphase_cnot;
use tilt_circuit::{Circuit, Qubit};

/// Builds the `n`-qubit QFT at the CNOT level.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::qft::qft;
///
/// let c = qft(4);
/// assert_eq!(c.two_qubit_count(), 2 * (4 * 3) / 2);
/// ```
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(Qubit(i));
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / f64::powi(2.0, (j - i) as i32);
            cphase_cnot(&mut c, Qubit(j), Qubit(i), angle);
        }
    }
    c
}

/// The Table II QFT benchmark: 64 qubits, 4032 two-qubit gates.
pub fn qft64() -> Circuit {
    qft(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::validate;

    #[test]
    fn table2_counts() {
        let c = qft64();
        assert_eq!(c.n_qubits(), 64);
        assert_eq!(c.two_qubit_count(), 4032);
    }

    #[test]
    fn two_qubit_count_formula() {
        for n in 2..10 {
            assert_eq!(qft(n).two_qubit_count(), n * (n - 1));
        }
    }

    #[test]
    fn has_long_distance_gates() {
        let c = qft64();
        let max_span = c.iter().filter_map(tilt_circuit::Gate::span).max().unwrap();
        assert_eq!(max_span, 63);
    }

    #[test]
    fn one_hadamard_per_qubit() {
        let c = qft(16);
        let h_count = c.iter().filter(|g| g.name() == "h").count();
        assert_eq!(h_count, 16);
    }

    #[test]
    fn rotation_angles_halve() {
        // The controlled rotation between qubits i and j has angle π/2^(j-i).
        let c = qft(3);
        let angles: Vec<f64> = c
            .iter()
            .filter_map(|g| match *g {
                tilt_circuit::Gate::Rz(_, a) => Some(a),
                _ => None,
            })
            .collect();
        // First rotation of the first cphase is π/4 (= λ/2, λ = π/2).
        assert!((angles[0] - std::f64::consts::PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn qft_is_valid_and_deterministic() {
        assert!(validate(&qft64()).is_ok());
        assert_eq!(qft(8), qft(8));
    }
}
