//! Writes a benchmark gate stream as OpenQASM 2.0 to stdout without
//! ever materializing the circuit — the generator half of the
//! bounded-memory pipeline, used by the CI streaming smoke step to
//! produce million-gate inputs.
//!
//! ```text
//! cargo run --release -p tilt-benchmarks --example stream_qasm -- qft 640
//! cargo run --release -p tilt-benchmarks --example stream_qasm -- rcs 8 8 11000 11
//! ```

use std::io::{BufWriter, Write};
use tilt_benchmarks::stream::{qft_stream, rcs_stream};
use tilt_circuit::qasm::write_qasm_stream;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse = |s: &String| s.parse::<usize>().expect("numeric argument");
    let stdout = std::io::stdout();
    let mut w = BufWriter::new(stdout.lock());
    let result = match args.first().map(String::as_str) {
        Some("qft") if args.len() == 2 => {
            let n = parse(&args[1]);
            write_qasm_stream(n, qft_stream(n), &mut w)
        }
        Some("rcs") if args.len() == 5 => {
            let (rows, cols) = (parse(&args[1]), parse(&args[2]));
            let (cycles, seed) = (parse(&args[3]), parse(&args[4]) as u64);
            write_qasm_stream(rows * cols, rcs_stream(rows, cols, cycles, seed), &mut w)
        }
        _ => {
            eprintln!("usage: stream_qasm qft <n> | rcs <rows> <cols> <cycles> <seed>");
            std::process::exit(2);
        }
    };
    result.and_then(|()| w.flush()).expect("write to stdout");
}
