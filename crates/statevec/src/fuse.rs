//! Gate fusion: collapsing adjacent gates into wider matrix blocks.
//!
//! Two levels of fusion happen in one pass over the circuit:
//!
//! 1. **Single-qubit runs** — consecutive single-qubit gates on the same
//!    qubit multiply into one 2×2 matrix, turning `k` passes over the
//!    amplitude pairs into one. Because single-qubit gates on different
//!    qubits commute, a pending matrix only flushes when a multi-qubit
//!    gate touches its qubit, so single-qubit gates also commute past
//!    unrelated two-qubit gates.
//! 2. **Two-qubit blocks** — a two-qubit gate absorbs the pending
//!    single-qubit blocks on its operands, and subsequent gates confined
//!    to the same qubit pair keep multiplying into one 4×4 matrix. This
//!    is what collapses the ubiquitous `Rz·CX·Rz·CX·Rz` controlled-phase
//!    pattern (two CNOT passes + three Rz sweeps) into a *single*
//!    diagonal 4×4 — which the kernels then apply as one masked phase
//!    sweep over `2^(n-2)` amplitudes.
//!
//! [`Gate::Barrier`] is the identity on a pure state and is dropped.
//! Blocks have pairwise-disjoint supports by construction, so pending
//! blocks commute and flush order between them is irrelevant.
//!
//! Fusion widens the work handed to each kernel call (one dense 2×2 /
//! 4×4 sweep instead of several sparse ones), which is exactly the
//! shape the [`crate::simd`] tier vectorizes best — fused blocks and
//! diagonal runs flow through the same tier dispatch as unfused gates.

use crate::complex::Complex;
use tilt_circuit::{Circuit, Gate};

/// A 2×2 complex matrix (row-major).
pub type Mat2 = [[Complex; 2]; 2];

/// A 4×4 complex matrix (row-major) over the two-qubit basis
/// `|b1 b0⟩` with `v = b0 + 2·b1` — `b0` is the block's first qubit.
pub type Mat4 = [[Complex; 4]; 4];

/// One operation after fusion.
#[derive(Clone, Copy, Debug)]
pub enum FusedOp {
    /// A fused single-qubit unitary on `q`.
    OneQ {
        /// Target qubit.
        q: usize,
        /// The accumulated 2×2 matrix.
        m: Mat2,
    },
    /// A fused two-qubit unitary on the pair `(a, b)`, with `a` the
    /// low bit of the [`Mat4`] index.
    TwoQ {
        /// Low-bit qubit of the matrix convention.
        a: usize,
        /// High-bit qubit of the matrix convention.
        b: usize,
        /// The accumulated 4×4 matrix.
        m: Mat4,
    },
    /// A gate passed through unfused (wider than two qubits, or a
    /// measurement).
    Passthrough(Gate),
}

/// The 2×2 matrix of a single-qubit gate, or `None` for anything else.
pub(crate) fn matrix_1q(gate: &Gate) -> Option<(usize, Mat2)> {
    use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};
    let c = Complex::new;
    let m = match *gate {
        Gate::H(q) => (
            q.index(),
            [
                [c(FRAC_1_SQRT_2, 0.0), c(FRAC_1_SQRT_2, 0.0)],
                [c(FRAC_1_SQRT_2, 0.0), c(-FRAC_1_SQRT_2, 0.0)],
            ],
        ),
        Gate::X(q) => (
            q.index(),
            [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
        ),
        Gate::Y(q) => (
            q.index(),
            [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]],
        ),
        Gate::Z(q) => (q.index(), diag2(Complex::ONE, c(-1.0, 0.0))),
        Gate::S(q) => (q.index(), diag2(Complex::ONE, Complex::I)),
        Gate::Sdg(q) => (q.index(), diag2(Complex::ONE, -Complex::I)),
        Gate::T(q) => (q.index(), diag2(Complex::ONE, Complex::cis(FRAC_PI_4))),
        Gate::Tdg(q) => (q.index(), diag2(Complex::ONE, Complex::cis(-FRAC_PI_4))),
        Gate::SqrtX(q) => {
            let p = c(0.5, 0.5);
            let m = c(0.5, -0.5);
            (q.index(), [[p, m], [m, p]])
        }
        Gate::SqrtY(q) => {
            let p = c(0.5, 0.5);
            (q.index(), [[p, -p], [p, p]])
        }
        Gate::Rx(q, t) => {
            let (co, si) = ((t / 2.0).cos(), (t / 2.0).sin());
            (
                q.index(),
                [[c(co, 0.0), c(0.0, -si)], [c(0.0, -si), c(co, 0.0)]],
            )
        }
        Gate::Ry(q, t) => {
            let (co, si) = ((t / 2.0).cos(), (t / 2.0).sin());
            (
                q.index(),
                [[c(co, 0.0), c(-si, 0.0)], [c(si, 0.0), c(co, 0.0)]],
            )
        }
        Gate::Rz(q, t) => (
            q.index(),
            diag2(Complex::cis(-t / 2.0), Complex::cis(t / 2.0)),
        ),
        _ => return None,
    };
    Some(m)
}

/// The 4×4 matrix of a two-qubit gate in the `(a = low bit, b = high
/// bit)` convention, or `None` for anything else.
pub(crate) fn matrix_2q(gate: &Gate) -> Option<(usize, usize, Mat4)> {
    let (a, b, m) = match *gate {
        Gate::Cnot(c, t) => {
            // Control is the low bit: v = b_c + 2·b_t; flip t when c set.
            (c.index(), t.index(), perm4([0, 3, 2, 1]))
        }
        Gate::Cz(x, y) => (
            x.index(),
            y.index(),
            diag4([
                Complex::ONE,
                Complex::ONE,
                Complex::ONE,
                Complex::new(-1.0, 0.0),
            ]),
        ),
        Gate::Cphase(x, y, lambda) => (
            x.index(),
            y.index(),
            diag4([
                Complex::ONE,
                Complex::ONE,
                Complex::ONE,
                Complex::cis(lambda),
            ]),
        ),
        Gate::Zz(x, y, t) => {
            let same = Complex::cis(-t / 2.0);
            let diff = Complex::cis(t / 2.0);
            (x.index(), y.index(), diag4([same, diff, diff, same]))
        }
        Gate::Xx(x, y, t) => {
            let cos = Complex::new((t / 2.0).cos(), 0.0);
            let isin = Complex::new(0.0, -(t / 2.0).sin());
            let z = Complex::ZERO;
            (
                x.index(),
                y.index(),
                [
                    [cos, z, z, isin],
                    [z, cos, isin, z],
                    [z, isin, cos, z],
                    [isin, z, z, cos],
                ],
            )
        }
        Gate::Swap(x, y) => (x.index(), y.index(), perm4([0, 2, 1, 3])),
        _ => return None,
    };
    // Degenerate same-operand gates (`cx q, q` — QASM only range-checks)
    // have no valid 4×4 embedding; let them pass through to the
    // naive-semantics fallback in gate dispatch.
    if a == b {
        return None;
    }
    Some((a, b, m))
}

#[inline]
fn diag2(p0: Complex, p1: Complex) -> Mat2 {
    [[p0, Complex::ZERO], [Complex::ZERO, p1]]
}

#[inline]
fn diag4(d: [Complex; 4]) -> Mat4 {
    let mut m = [[Complex::ZERO; 4]; 4];
    for (i, &di) in d.iter().enumerate() {
        m[i][i] = di;
    }
    m
}

/// The permutation matrix sending basis state `v` to `p[v]`.
#[inline]
fn perm4(p: [usize; 4]) -> Mat4 {
    let mut m = [[Complex::ZERO; 4]; 4];
    for (v, &pv) in p.iter().enumerate() {
        m[pv][v] = Complex::ONE;
    }
    m
}

/// `b · a` — apply `a` first, then `b`.
#[inline]
pub(crate) fn matmul2(b: Mat2, a: Mat2) -> Mat2 {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = b[i][0] * a[0][j] + b[i][1] * a[1][j];
        }
    }
    out
}

/// `b · a` for 4×4 matrices — apply `a` first, then `b`.
#[inline]
pub(crate) fn matmul4(b: Mat4, a: Mat4) -> Mat4 {
    let mut out = [[Complex::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for k in 0..4 {
                acc += b[i][k] * a[k][j];
            }
            *cell = acc;
        }
    }
    out
}

/// Embeds a 2×2 matrix acting on bit `pos` (0 = low, 1 = high) of the
/// two-qubit index into a 4×4.
#[inline]
fn embed2(m: Mat2, pos: usize) -> Mat4 {
    let mut out = [[Complex::ZERO; 4]; 4];
    for (vout, row) in out.iter_mut().enumerate() {
        for (vin, cell) in row.iter_mut().enumerate() {
            let (bo, bi, spectator_match) = if pos == 0 {
                (vout & 1, vin & 1, vout >> 1 == vin >> 1)
            } else {
                (vout >> 1, vin >> 1, vout & 1 == vin & 1)
            };
            if spectator_match {
                *cell = m[bo][bi];
            }
        }
    }
    out
}

/// Reverses the qubit convention of a 4×4 (swaps the index bits).
#[inline]
pub(crate) fn transpose_qubits(m: Mat4) -> Mat4 {
    let p = |v: usize| ((v & 1) << 1) | (v >> 1);
    let mut out = [[Complex::ZERO; 4]; 4];
    for (vout, row) in out.iter_mut().enumerate() {
        for (vin, cell) in row.iter_mut().enumerate() {
            *cell = m[p(vout)][p(vin)];
        }
    }
    out
}

/// True when `m` is diagonal (kernel dispatch can use a phase sweep).
#[inline]
pub(crate) fn is_diagonal2(m: &Mat2) -> bool {
    m[0][1] == Complex::ZERO && m[1][0] == Complex::ZERO
}

/// True when every off-diagonal entry of `m` is exactly zero.
///
/// Structural zeros survive fusion exactly (products of exact zeros),
/// so diagonality detection needs no tolerance.
#[inline]
pub(crate) fn is_diagonal4(m: &Mat4) -> bool {
    for (i, row) in m.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if i != j && *cell != Complex::ZERO {
                return false;
            }
        }
    }
    true
}

/// True when `m` is *monomial*: exactly one nonzero entry per column —
/// a basis permutation dressed with phases (`M = P·D`). These blocks
/// have cheap kernels (a masked phase sweep plus the contiguous-run
/// swap kernels), so the collector's cost model keeps them from being
/// densified by non-diagonal single-qubit absorption. Diagonal and
/// pure-permutation matrices are special cases. As with
/// [`is_diagonal4`], structural zeros survive fusion exactly, so no
/// tolerance is needed.
#[inline]
pub fn is_monomial4(m: &Mat4) -> bool {
    for v in 0..4 {
        let nonzeros = m.iter().filter(|row| row[v] != Complex::ZERO).count();
        if nonzeros != 1 {
            return false;
        }
    }
    true
}

/// One pending fusion block.
enum Block {
    One(usize, Mat2),
    Two(usize, usize, Mat4),
}

/// Incremental block collector (shared by [`fuse`] and streaming users).
struct Collector {
    /// `qubit → index into blocks` for live blocks.
    owner: Vec<Option<usize>>,
    /// Live and tombstoned blocks; emission happens on flush.
    blocks: Vec<Option<Block>>,
    out: Vec<FusedOp>,
}

impl Collector {
    fn new(n_qubits: usize, capacity: usize) -> Self {
        Collector {
            owner: vec![None; n_qubits],
            blocks: Vec::new(),
            out: Vec::with_capacity(capacity),
        }
    }

    fn flush_qubit(&mut self, q: usize) {
        let Some(idx) = self.owner[q] else { return };
        let block = self.blocks[idx].take().expect("owner points at live block");
        match block {
            Block::One(q0, m) => {
                self.owner[q0] = None;
                self.out.push(FusedOp::OneQ { q: q0, m });
            }
            Block::Two(a, b, m) => {
                self.owner[a] = None;
                self.owner[b] = None;
                self.out.push(FusedOp::TwoQ { a, b, m });
            }
        }
    }

    fn push_1q(&mut self, q: usize, m: Mat2) {
        // Cost model: embedding a non-diagonal matrix (H, Rx, …) into a
        // monomial 2q block would densify it — one dense 4×4 pass costs
        // about twice the block's cheap permutation + phase kernels
        // (the Clifford+T-dressed CNOTs of the lowered Cuccaro adder
        // are exactly this shape). Flush the cheap block and let the
        // rotation start its own 1q run instead.
        if let Some(idx) = self.owner[q] {
            let densifies = matches!(
                self.blocks[idx].as_ref().expect("live block"),
                Block::Two(_, _, acc) if !is_diagonal2(&m) && is_monomial4(acc)
            );
            if densifies {
                self.flush_qubit(q);
            }
        }
        match self.owner[q] {
            None => {
                self.owner[q] = Some(self.blocks.len());
                self.blocks.push(Some(Block::One(q, m)));
            }
            Some(idx) => match self.blocks[idx].as_mut().expect("live block") {
                Block::One(_, acc) => *acc = matmul2(m, *acc),
                Block::Two(a, _, acc) => {
                    let pos = if *a == q { 0 } else { 1 };
                    *acc = matmul4(embed2(m, pos), *acc);
                }
            },
        }
    }

    fn push_2q(&mut self, a: usize, b: usize, m: Mat4) {
        // A live block on exactly this pair extends in place.
        if let (Some(ia), Some(ib)) = (self.owner[a], self.owner[b]) {
            if ia == ib {
                let Some(Block::Two(ba, _, acc)) = self.blocks[ia].as_mut() else {
                    unreachable!("two owners share a block only when it is 2q");
                };
                let aligned = if *ba == a { m } else { transpose_qubits(m) };
                *acc = matmul4(aligned, *acc);
                return;
            }
        }
        // Otherwise: flush 2q blocks that would overflow the pair, then
        // absorb any remaining 1q operand blocks into a fresh block.
        for q in [a, b] {
            if let Some(idx) = self.owner[q] {
                if matches!(self.blocks[idx], Some(Block::Two(..))) {
                    self.flush_qubit(q);
                }
            }
        }
        // Same cost model as `push_1q`: a monomial 2q gate (CNOT, SWAP,
        // and every diagonal) absorbing a pending non-diagonal rotation
        // would densify; flush the rotation and keep the block cheap.
        // Pending *diagonal* blocks still merge in — that absorption is
        // what collapses `Rz·CX·Rz·CX·Rz` into one diagonal.
        if is_monomial4(&m) {
            for q in [a, b] {
                if let Some(idx) = self.owner[q] {
                    let nondiag = matches!(
                        self.blocks[idx].as_ref().expect("live block"),
                        Block::One(_, m1) if !is_diagonal2(m1)
                    );
                    if nondiag {
                        self.flush_qubit(q);
                    }
                }
            }
        }
        let mut acc = m;
        for (q, pos) in [(a, 0usize), (b, 1usize)] {
            if let Some(idx) = self.owner[q] {
                let Some(Block::One(_, m1)) = self.blocks[idx].take() else {
                    unreachable!("2q blocks were flushed above");
                };
                acc = matmul4(acc, embed2(m1, pos));
            }
        }
        let idx = self.blocks.len();
        self.owner[a] = Some(idx);
        self.owner[b] = Some(idx);
        self.blocks.push(Some(Block::Two(a, b, acc)));
    }

    fn finish(mut self, n_qubits: usize) -> Vec<FusedOp> {
        for q in 0..n_qubits {
            self.flush_qubit(q);
        }
        self.out
    }
}

/// Fuses `circuit` into an op stream with single-qubit runs and
/// two-qubit blocks collapsed.
pub fn fuse(circuit: &Circuit) -> Vec<FusedOp> {
    let mut col = Collector::new(circuit.n_qubits(), circuit.len());
    for gate in circuit {
        if matches!(gate, Gate::Barrier) {
            continue; // identity on a pure state
        }
        if let Some((q, m)) = matrix_1q(gate) {
            col.push_1q(q, m);
            continue;
        }
        if let Some((a, b, m)) = matrix_2q(gate) {
            col.push_2q(a, b, m);
            continue;
        }
        // Toffoli / Measure: flush operands and pass through.
        for q in gate.qubits() {
            col.flush_qubit(q.index());
        }
        col.out.push(FusedOp::Passthrough(*gate));
    }
    col.finish(circuit.n_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;

    #[test]
    fn collapses_same_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).t(Qubit(0)).s(Qubit(0)).x(Qubit(1));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 2);
        assert!(ops
            .iter()
            .all(|o| matches!(o, FusedOp::OneQ { q: 0, .. } | FusedOp::OneQ { q: 1, .. })));
    }

    #[test]
    fn cnot_sandwich_becomes_one_diagonal_block() {
        // The cu1 lowering: Rz·CX·Rz·CX·Rz on one pair → a single
        // diagonal 4×4.
        let lambda = 0.9;
        let mut c = Circuit::new(2);
        c.rz(Qubit(0), lambda / 2.0);
        c.cnot(Qubit(0), Qubit(1));
        c.rz(Qubit(1), -lambda / 2.0);
        c.cnot(Qubit(0), Qubit(1));
        c.rz(Qubit(1), lambda / 2.0);
        let ops = fuse(&c);
        assert_eq!(ops.len(), 1);
        let FusedOp::TwoQ { m, .. } = ops[0] else {
            panic!("expected a fused 2q block, got {:?}", ops[0]);
        };
        assert!(is_diagonal4(&m));
        // Up to global phase e^{-iλ/4} this is diag(1, 1, 1, e^{iλ}).
        let g = m[0][0];
        assert!((m[1][1] - g).abs() < 1e-15);
        assert!((m[2][2] - g).abs() < 1e-15);
        let ratio = m[3][3] * g.conj();
        let expect = Complex::cis(lambda);
        assert!((ratio - expect).abs() < 1e-12, "{ratio:?} vs {expect:?}");
    }

    #[test]
    fn overlapping_pairs_flush() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], FusedOp::TwoQ { .. }));
        assert!(matches!(ops[1], FusedOp::TwoQ { .. }));
    }

    #[test]
    fn disjoint_single_qubit_gates_float_past_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.h(Qubit(2));
        c.cnot(Qubit(0), Qubit(1));
        c.t(Qubit(2));
        let ops = fuse(&c);
        // h(2)·t(2) fuse even though a cnot sits between them.
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, FusedOp::OneQ { q: 2, .. }))
                .count(),
            1
        );
    }

    #[test]
    fn barrier_disappears() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).barrier().h(Qubit(0));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn s_s_fuses_to_z() {
        let mut c = Circuit::new(1);
        c.s(Qubit(0)).s(Qubit(0));
        let ops = fuse(&c);
        let FusedOp::OneQ { m, .. } = ops[0] else {
            panic!("expected fused 1q op");
        };
        assert!(is_diagonal2(&m));
        assert!((m[0][0].re - 1.0).abs() < 1e-15);
        assert!((m[1][1].re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn toffoli_flushes_and_passes_through() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.toffoli(Qubit(0), Qubit(1), Qubit(2));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], FusedOp::OneQ { q: 0, .. }));
        assert!(matches!(ops[1], FusedOp::Passthrough(Gate::Toffoli(..))));
    }

    #[test]
    fn t_dressed_cnot_stays_monomial() {
        // The Toffoli lowering's `Tdg(t); CX(c,t); T(c)` shape: diagonal
        // phases merge into the CNOT block without densifying it.
        let mut c = Circuit::new(2);
        c.tdg(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.t(Qubit(0));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 1);
        let FusedOp::TwoQ { m, .. } = ops[0] else {
            panic!("expected a fused 2q block, got {:?}", ops[0]);
        };
        assert!(is_monomial4(&m));
        assert!(!is_diagonal4(&m));
    }

    #[test]
    fn hadamard_does_not_densify_permutation_blocks() {
        // `H(t); CX(c,t)`: absorbing the H would make a dense 4×4 that
        // costs ~2× the cheap kernels; the cost model emits the H
        // separately and keeps the CNOT monomial.
        let mut c = Circuit::new(2);
        c.h(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], FusedOp::OneQ { q: 1, .. }));
        let FusedOp::TwoQ { m, .. } = ops[1] else {
            panic!("expected a 2q block, got {:?}", ops[1]);
        };
        assert!(is_monomial4(&m));
    }

    #[test]
    fn rotation_after_monomial_block_flushes_it() {
        // `CX; H(t)`: the trailing rotation must not densify the cheap
        // block either — it flushes the block and starts a 1q run.
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        c.h(Qubit(1));
        let ops = fuse(&c);
        assert_eq!(ops.len(), 2);
        let FusedOp::TwoQ { m, .. } = ops[0] else {
            panic!("expected a 2q block, got {:?}", ops[0]);
        };
        assert!(is_monomial4(&m));
        assert!(matches!(ops[1], FusedOp::OneQ { q: 1, .. }));
    }

    #[test]
    fn dense_blocks_still_absorb_rotations() {
        // XX is dense regardless; merging the H into it saves a pass,
        // so absorption is kept for already-dense blocks.
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.xx(Qubit(0), Qubit(1), 0.7);
        let ops = fuse(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], FusedOp::TwoQ { .. }));
    }

    #[test]
    fn transpose_qubits_round_trips() {
        let (_, _, m) = matrix_2q(&Gate::Cnot(Qubit(0), Qubit(1))).unwrap();
        assert_eq!(transpose_qubits(transpose_qubits(m)), m);
        // CNOT with swapped roles is a different matrix.
        assert_ne!(transpose_qubits(m), m);
    }
}
