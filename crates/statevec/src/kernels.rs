//! Pair-indexed gate kernels.
//!
//! Every kernel here avoids the naive pattern of scanning all `2^n`
//! basis indices and branching on bit tests. Instead the amplitude
//! array is decomposed *structurally* around the operand qubits:
//!
//! * For a target qubit `q`, the array splits into contiguous blocks of
//!   `2^(q+1)` amplitudes whose lower half has bit `q = 0` and upper
//!   half has bit `q = 1`. Zipping the halves enumerates exactly the
//!   `2^(n-1)` amplitude pairs `(x, x | 2^q)` with no bit tests — the
//!   block/offset decomposition is the `low | (high << (q+1))` splice
//!   expressed as slice arithmetic, which the optimizer turns into
//!   branch-free, vectorizable loops over contiguous memory.
//! * Diagonal gates (`Rz`, `S`, `T`, `CZ`, `CPhase`, `ZZ`) never touch
//!   amplitudes they would multiply by 1: they sweep only the affected
//!   sub-runs, with the one or two phase factors computed **once**, not
//!   per amplitude.
//! * Permutation gates (`CNOT`, `SWAP`, `Toffoli`) move whole
//!   contiguous runs with `swap_with_slice` (memcpy speed) whenever the
//!   run structure allows.
//!
//! Above [`PARALLEL_THRESHOLD`] amplitudes (and when the host has more
//! than one hardware thread) kernels recursively split the block range
//! with `rayon::join`, so disjoint slices are processed concurrently
//! without any unsafe aliasing.
//!
//! # Dispatch tiers
//!
//! The arithmetic-heavy entry points (`apply_1q`, `apply_2q`,
//! `diag_1q`, `phase_1q`, `scale_all`, `xx_rotate`, and the diag-run
//! table sweep) are *dispatchers*: when [`crate::simd`] resolves the
//! `avx2_fma` tier they call the explicit-SIMD implementation,
//! otherwise the portable scalar body, which is kept public under a
//! `*_scalar` name so tests can pin both tiers against each other. The
//! permutation kernels move memory rather than compute and stay
//! scalar (`swap_with_slice` is already memcpy-speed). Parallel
//! variants recurse down to the serial entry points, so they inherit
//! the dispatch automatically.

use crate::complex::Complex;
use crate::simd;

/// Minimum number of amplitudes before a kernel considers going
/// parallel. Below this the split/spawn overhead dominates; `2^16`
/// amplitudes (1 MiB) keeps leaf work far above a thread spawn.
pub const PARALLEL_THRESHOLD: usize = 1 << 16;

/// Smallest per-task slice when recursively splitting parallel work.
const PARALLEL_GRAIN: usize = 1 << 14;

/// Whether a kernel invocation should fan out.
#[inline]
pub(crate) fn should_parallelize(len: usize, force: Option<bool>) -> bool {
    match force {
        // Forced on exercises the parallel code paths even on a
        // single-core host (the splits then run inline).
        Some(on) => on,
        None => len >= PARALLEL_THRESHOLD && rayon::current_num_threads() > 1,
    }
}

/// Every kernel refuses operands outside the register, matching the
/// naive path's (and `State::apply`'s documented) panic instead of
/// silently applying nothing when the operand stride exceeds the
/// amplitude array.
#[inline]
fn assert_in_register(len: usize, stride: usize) {
    assert!(
        stride < len,
        "gate operand outside the register ({len} amplitudes)"
    );
}

// --- single-qubit kernels -------------------------------------------------

/// Applies the 2×2 matrix `m` to target `q` (dispatching entry point).
pub fn apply_1q(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2]) {
    assert_in_register(amps.len(), 1usize << q);
    if simd::active() {
        simd::apply_1q(amps, q, m);
    } else {
        apply_1q_scalar(amps, q, m);
    }
}

/// Portable scalar body of [`apply_1q`]: serial pair-indexed loop.
pub fn apply_1q_scalar(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2]) {
    let stride = 1usize << q;
    assert_in_register(amps.len(), stride);
    for block in amps.chunks_exact_mut(2 * stride) {
        let (lo, hi) = block.split_at_mut(stride);
        apply_1q_zip_scalar(lo, hi, m);
    }
}

/// Applies `m` to zipped planes of equal length, picking the tier once
/// per call (shared by the parallel recursion leaves).
fn apply_1q_zip(lo: &mut [Complex], hi: &mut [Complex], m: [[Complex; 2]; 2]) {
    if simd::active() && lo.len() >= 2 {
        simd::apply_1q_zip(lo, hi, m);
    } else {
        apply_1q_zip_scalar(lo, hi, m);
    }
}

#[inline]
fn apply_1q_zip_scalar(lo: &mut [Complex], hi: &mut [Complex], m: [[Complex; 2]; 2]) {
    for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
        let (x, y) = (*a0, *a1);
        *a0 = m[0][0] * x + m[0][1] * y;
        *a1 = m[1][0] * x + m[1][1] * y;
    }
}

/// Parallel variant of [`apply_1q`]: splits the block range with
/// `rayon::join` until slices reach the grain size.
pub fn apply_1q_parallel(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2]) {
    let stride = 1usize << q;
    if amps.len() <= PARALLEL_GRAIN.max(2 * stride) {
        // Either small enough, or a single block: split the block's
        // halves and zip them in parallel segments.
        if amps.len() == 2 * stride && amps.len() > PARALLEL_GRAIN {
            let (lo, hi) = amps.split_at_mut(stride);
            zip_rotate_parallel(lo, hi, m);
        } else {
            apply_1q(amps, q, m);
        }
        return;
    }
    // Multiple blocks: halve the block list (len is a multiple of
    // 2*stride and a power of two, so mid stays block-aligned).
    let mid = amps.len() / 2;
    let (a, b) = amps.split_at_mut(mid);
    rayon::join(|| apply_1q_parallel(a, q, m), || apply_1q_parallel(b, q, m));
}

/// Applies `m` to zipped halves of a single block, splitting both
/// segments in lockstep.
fn zip_rotate_parallel(lo: &mut [Complex], hi: &mut [Complex], m: [[Complex; 2]; 2]) {
    if lo.len() <= PARALLEL_GRAIN / 2 {
        apply_1q_zip(lo, hi, m);
        return;
    }
    let mid = lo.len() / 2;
    let (l0, l1) = lo.split_at_mut(mid);
    let (h0, h1) = hi.split_at_mut(mid);
    rayon::join(
        || zip_rotate_parallel(l0, h0, m),
        || zip_rotate_parallel(l1, h1, m),
    );
}

/// Multiplies every amplitude whose bit `q` is set by `phase`
/// (the `diag(1, phase)` gate: `Z`, `S`, `T`, …). Dispatching entry
/// point.
pub fn phase_1q(amps: &mut [Complex], q: usize, phase: Complex) {
    assert_in_register(amps.len(), 1usize << q);
    if simd::active() {
        simd::phase_1q(amps, q, phase);
    } else {
        phase_1q_scalar(amps, q, phase);
    }
}

/// Portable scalar body of [`phase_1q`].
pub fn phase_1q_scalar(amps: &mut [Complex], q: usize, phase: Complex) {
    let stride = 1usize << q;
    assert_in_register(amps.len(), stride);
    for block in amps.chunks_exact_mut(2 * stride) {
        for a in &mut block[stride..] {
            *a = *a * phase;
        }
    }
}

/// `diag(p0, p1)` on qubit `q` — both factors precomputed (`Rz`).
/// Dispatching entry point; the SIMD tier cache-blocks the two plane
/// sweeps.
pub fn diag_1q(amps: &mut [Complex], q: usize, p0: Complex, p1: Complex) {
    assert_in_register(amps.len(), 1usize << q);
    if simd::active() {
        simd::diag_1q(amps, q, p0, p1);
    } else {
        diag_1q_scalar(amps, q, p0, p1);
    }
}

/// Portable scalar body of [`diag_1q`]: two full plane passes.
pub fn diag_1q_scalar(amps: &mut [Complex], q: usize, p0: Complex, p1: Complex) {
    let stride = 1usize << q;
    assert_in_register(amps.len(), stride);
    for block in amps.chunks_exact_mut(2 * stride) {
        let (lo, hi) = block.split_at_mut(stride);
        for a in lo {
            *a = *a * p0;
        }
        for a in hi {
            *a = *a * p1;
        }
    }
}

/// Parallel contiguous sweep used by the diagonal kernels.
///
/// `amps.len()` is a power of two and `min_chunk` a power-of-two block
/// size, so every chunk is block-aligned and the diagonal patterns
/// (periodic in the block size) are offset-independent — `f` can treat
/// each chunk as a standalone array.
fn par_sweep(amps: &mut [Complex], min_chunk: usize, f: impl Fn(&mut [Complex]) + Send + Sync) {
    use rayon::prelude::*;
    let per_thread = amps.len() / rayon::current_num_threads().max(1);
    let chunk = per_thread.next_power_of_two().max(min_chunk);
    amps.par_chunks_mut(chunk).for_each(f);
}

/// Parallel variant of [`diag_1q`]. Only used when `2^(q+1)` divides
/// the chunk size, which holds because chunks are power-of-two sized
/// and at least `2^(q+1)`.
pub fn diag_1q_parallel(amps: &mut [Complex], q: usize, p0: Complex, p1: Complex) {
    let block = 2usize << q;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        diag_1q(amps, q, p0, p1);
        return;
    }
    par_sweep(amps, block, move |chunk| diag_1q(chunk, q, p0, p1));
}

/// Parallel variant of [`phase_1q`].
pub fn phase_1q_parallel(amps: &mut [Complex], q: usize, phase: Complex) {
    let block = 2usize << q;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        phase_1q(amps, q, phase);
        return;
    }
    par_sweep(amps, block, move |chunk| phase_1q(chunk, q, phase));
}

// --- two-qubit diagonal kernels -------------------------------------------

/// Multiplies every amplitude with **both** bits `a` and `b` set by
/// `phase` (`CZ`, `CPhase`). Touches exactly `2^(n-2)` amplitudes.
pub fn phase_both(amps: &mut [Complex], a: usize, b: usize, phase: Complex) {
    let (qlo, qhi) = (a.min(b), a.max(b));
    let stride_hi = 1usize << qhi;
    assert_in_register(amps.len(), stride_hi);
    for block in amps.chunks_exact_mut(2 * stride_hi) {
        // Upper half has bit qhi set; within it, sweep bit qlo set.
        phase_1q(&mut block[stride_hi..], qlo, phase);
    }
}

/// Parallel variant of [`phase_both`].
pub fn phase_both_parallel(amps: &mut [Complex], a: usize, b: usize, phase: Complex) {
    let (qlo, qhi) = (a.min(b), a.max(b));
    let block = 2usize << qhi;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        phase_both(amps, a, b, phase);
        return;
    }
    par_sweep(amps, block, move |chunk| phase_both(chunk, qlo, qhi, phase));
}

/// `ZZ(θ)`-style parity phase: amplitudes where bits `a` and `b` agree
/// get `same`, where they differ get `diff`. Runs are contiguous with
/// per-run constant factors — no per-amplitude parity computation.
pub fn phase_parity(amps: &mut [Complex], a: usize, b: usize, same: Complex, diff: Complex) {
    let (qlo, qhi) = (a.min(b), a.max(b));
    let stride_hi = 1usize << qhi;
    assert_in_register(amps.len(), stride_hi);
    for block in amps.chunks_exact_mut(2 * stride_hi) {
        let (lo, hi) = block.split_at_mut(stride_hi);
        diag_1q(lo, qlo, same, diff);
        diag_1q(hi, qlo, diff, same);
    }
}

/// Parallel variant of [`phase_parity`].
pub fn phase_parity_parallel(
    amps: &mut [Complex],
    a: usize,
    b: usize,
    same: Complex,
    diff: Complex,
) {
    let (qlo, qhi) = (a.min(b), a.max(b));
    let block = 2usize << qhi;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        phase_parity(amps, a, b, same, diff);
        return;
    }
    par_sweep(amps, block, move |chunk| {
        phase_parity(chunk, qlo, qhi, same, diff);
    });
}

// --- permutation kernels --------------------------------------------------

/// X on target `t` controlled on every bit of `ctrl_mask` being set
/// (`ctrl_mask == 0` is a plain X; one bit is CNOT; two bits Toffoli).
///
/// Swaps the `t=0` / `t=1` amplitudes of every basis state satisfying
/// the controls, moving whole contiguous runs where possible.
pub fn controlled_x(amps: &mut [Complex], ctrl_mask: usize, t: usize) {
    let stride = 1usize << t;
    assert_in_register(amps.len(), stride.max(ctrl_mask));
    controlled_x_in(amps, 0, ctrl_mask, t);
}

/// [`controlled_x`] over a subslice starting at absolute basis index
/// `base` (needed because control bits above the target compare against
/// absolute block addresses).
fn controlled_x_in(amps: &mut [Complex], base: usize, ctrl_mask: usize, t: usize) {
    let stride = 1usize << t;
    let low_ctrl = ctrl_mask & (stride - 1);
    let high_ctrl = ctrl_mask & !(2 * stride - 1);
    debug_assert_eq!(low_ctrl | high_ctrl, ctrl_mask, "control on target bit");
    for (bi, block) in amps.chunks_exact_mut(2 * stride).enumerate() {
        let block_base = base + bi * 2 * stride;
        if block_base & high_ctrl != high_ctrl {
            continue;
        }
        let (lo, hi) = block.split_at_mut(stride);
        if low_ctrl == 0 {
            lo.swap_with_slice(hi);
        } else {
            // Only offsets with every low control bit set participate.
            swap_masked(lo, hi, low_ctrl);
        }
    }
}

/// Parallel variant of [`controlled_x`]: recursively halves the block
/// range with `rayon::join`, pruning subtrees whose absolute base can
/// never satisfy the control bits at or above the subtree's span.
pub fn controlled_x_parallel(amps: &mut [Complex], ctrl_mask: usize, t: usize) {
    let stride = 1usize << t;
    assert_in_register(amps.len(), stride.max(ctrl_mask));
    controlled_x_split(amps, 0, ctrl_mask, t);
}

fn controlled_x_split(amps: &mut [Complex], base: usize, ctrl_mask: usize, t: usize) {
    let block = 2usize << t;
    // Control bits the whole subtree shares come from `base` alone
    // (`amps.len()` is a power of two): mismatch ⇒ nothing to do.
    let above = ctrl_mask & !(amps.len() - 1);
    if base & above != above {
        return;
    }
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        controlled_x_in(amps, base, ctrl_mask, t);
        return;
    }
    let mid = amps.len() / 2;
    let (a, b) = amps.split_at_mut(mid);
    rayon::join(
        || controlled_x_split(a, base, ctrl_mask, t),
        || controlled_x_split(b, base + mid, ctrl_mask, t),
    );
}

/// Swaps `lo[j] ↔ hi[j]` for every offset `j` with all bits of `mask`
/// set, moving the longest contiguous runs the mask allows.
fn swap_masked(lo: &mut [Complex], hi: &mut [Complex], mask: usize) {
    // Runs below the lowest control bit are contiguous.
    let run = 1usize << mask.trailing_zeros();
    let step = 2 * run;
    let mut j = run; // first offset with the lowest control bit set
    while j < lo.len() {
        if j & mask == mask {
            lo[j..j + run].swap_with_slice(&mut hi[j..j + run]);
        }
        j += step;
    }
}

/// SWAP of qubits `a` and `b`: exchanges the `(a=1, b=0)` and
/// `(a=0, b=1)` amplitude sets as contiguous runs.
pub fn swap_qubits(amps: &mut [Complex], a: usize, b: usize) {
    let (qlo, qhi) = (a.min(b), a.max(b));
    let (slo, shi) = (1usize << qlo, 1usize << qhi);
    assert_in_register(amps.len(), shi);
    for block in amps.chunks_exact_mut(2 * shi) {
        let (lo, hi) = block.split_at_mut(shi);
        // lo: bit qhi = 0; hi: bit qhi = 1. Swap lo's qlo=1 runs with
        // hi's qlo=0 runs.
        for (lc, hc) in lo
            .chunks_exact_mut(2 * slo)
            .zip(hi.chunks_exact_mut(2 * slo))
        {
            let (_, l1) = lc.split_at_mut(slo);
            let (h0, _) = hc.split_at_mut(slo);
            l1.swap_with_slice(h0);
        }
    }
}

/// Parallel variant of [`swap_qubits`]. The swap pattern is periodic in
/// the `2^(qhi+1)` block size with no absolute-address dependence, so
/// power-of-two chunks of at least one block parallelize directly.
pub fn swap_qubits_parallel(amps: &mut [Complex], a: usize, b: usize) {
    let qhi = a.max(b);
    let block = 2usize << qhi;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        swap_qubits(amps, a, b);
        return;
    }
    par_sweep(amps, block, move |chunk| swap_qubits(chunk, a, b));
}

// --- batched diagonal runs ------------------------------------------------

/// One factor of a batched diagonal run, normalized so the factor for
/// the all-zeros setting of its operand bits is 1 (callers defer that
/// common phase into the run-wide global factor).
#[derive(Clone, Copy, Debug)]
pub enum DiagTerm {
    /// `diag(p[0], p[1])` on qubit `q`.
    One {
        /// Target qubit.
        q: usize,
        /// Factors indexed by the target bit.
        p: [Complex; 2],
    },
    /// `diag(d[0], d[1], d[2], d[3])` on the pair `(qlo, qhi)` with
    /// `qlo < qhi` and index `v = bit(qlo) + 2·bit(qhi)`.
    Two {
        /// Lower operand qubit.
        qlo: usize,
        /// Higher operand qubit.
        qhi: usize,
        /// Factors indexed by `v`.
        d: [Complex; 4],
    },
}

impl DiagTerm {
    /// The highest qubit the term touches (the recursion pivot).
    fn top_qubit(&self) -> usize {
        match *self {
            DiagTerm::One { q, .. } => q,
            DiagTerm::Two { qhi, .. } => qhi,
        }
    }

    /// This term's factor at basis index `x` (the per-amplitude
    /// reference the batched sweep is tested against).
    pub fn factor(&self, x: usize) -> Complex {
        match *self {
            DiagTerm::One { q, p } => p[(x >> q) & 1],
            DiagTerm::Two { qlo, qhi, d } => d[((x >> qlo) & 1) | (((x >> qhi) & 1) << 1)],
        }
    }
}

/// Below this block size the run is collapsed into a phase lookup table
/// instead of recursing further (the table sweep is one multiply per
/// amplitude; deeper recursion would pay a call per handful of
/// amplitudes).
const DIAG_TABLE_MAX: usize = 256;

/// `true` when `z` is 1 up to fp rounding of unit-modulus products
/// (same classification the fusion pipeline uses).
#[inline]
fn is_unit(z: Complex) -> bool {
    let d = z - Complex::ONE;
    d.norm_sq() < 1e-30
}

/// Applies a whole run of diagonal factors in **one** hierarchical
/// sweep: each amplitude is multiplied exactly once, by the product of
/// every factor selected by its bits (consecutive fused diagonal blocks
/// — QFT rows, QAOA cost layers — would otherwise each pay a separate
/// pass over the state).
///
/// Two phases. **Build**: recursively split on the highest qubit any
/// term touches — terms on that qubit partially evaluate into per-half
/// scalars (or 1-qubit terms, for pairs) — until the remaining span
/// fits [`DIAG_TABLE_MAX`], where the residual run collapses into a
/// phase lookup table. The result is a small class tree computed
/// **once** per run (one node per setting of the run's high qubits),
/// not once per amplitude block. **Apply**: walk the state against the
/// tree; every amplitude receives exactly one multiply, from its leaf's
/// table or scalar. With `parallel`, disjoint subslices fan out via
/// `rayon::join` above the grain size.
pub fn apply_diag_run(amps: &mut [Complex], terms: &[DiagTerm], parallel: bool) {
    if let Some(t) = terms.iter().map(DiagTerm::top_qubit).max() {
        assert_in_register(amps.len(), 1usize << t);
    }
    let tree = build_diag_tree(terms.to_vec(), Complex::ONE);
    apply_diag_tree(amps, &tree, parallel);
}

/// One class of basis states in a batched diagonal run: all indices
/// sharing a setting of the run's qubits above the node's level get the
/// same residual factor structure.
enum DiagNode {
    /// No factors below this level beyond a constant (skipped when it
    /// is 1 up to rounding).
    Scale(Complex),
    /// Residual factors over a span of at most [`DIAG_TABLE_MAX`]
    /// amplitudes, collapsed into one lookup table.
    Leaf(Vec<Complex>),
    /// Blocks of `2^(h+1)` amplitudes split at qubit `h` into two
    /// half-classes.
    Split {
        h: usize,
        lo: Box<DiagNode>,
        hi: Box<DiagNode>,
    },
}

fn build_diag_tree(terms: Vec<DiagTerm>, scalar: Complex) -> DiagNode {
    let Some(h) = terms.iter().map(DiagTerm::top_qubit).max() else {
        return DiagNode::Scale(scalar);
    };
    let block = 2usize << h;
    if block <= DIAG_TABLE_MAX {
        let mut table = vec![scalar; block];
        for (x, f) in table.iter_mut().enumerate() {
            for t in &terms {
                *f = *f * t.factor(x);
            }
        }
        return DiagNode::Leaf(table);
    }
    let mut lo_terms = Vec::with_capacity(terms.len());
    let mut hi_terms = Vec::with_capacity(terms.len());
    let (mut lo_scalar, mut hi_scalar) = (scalar, scalar);
    for t in terms {
        match t {
            DiagTerm::One { q, p } if q == h => {
                lo_scalar = lo_scalar * p[0];
                hi_scalar = hi_scalar * p[1];
            }
            DiagTerm::Two { qlo, qhi, d } if qhi == h => {
                lo_terms.push(DiagTerm::One {
                    q: qlo,
                    p: [d[0], d[1]],
                });
                hi_terms.push(DiagTerm::One {
                    q: qlo,
                    p: [d[2], d[3]],
                });
            }
            other => {
                lo_terms.push(other);
                hi_terms.push(other);
            }
        }
    }
    DiagNode::Split {
        h,
        lo: Box::new(build_diag_tree(lo_terms, lo_scalar)),
        hi: Box::new(build_diag_tree(hi_terms, hi_scalar)),
    }
}

fn apply_diag_tree(amps: &mut [Complex], node: &DiagNode, parallel: bool) {
    match node {
        DiagNode::Scale(s) => {
            if !is_unit(*s) {
                if parallel && amps.len() > PARALLEL_GRAIN {
                    scale_all_parallel(amps, *s);
                } else {
                    scale_all(amps, *s);
                }
            }
        }
        DiagNode::Leaf(table) => {
            if parallel && amps.len() > PARALLEL_GRAIN {
                par_sweep(amps, table.len(), move |chunk| sweep_table(chunk, table));
            } else {
                sweep_table(amps, table);
            }
        }
        DiagNode::Split { h, lo, hi } => {
            let block = 2usize << h;
            if parallel && amps.len() > block && amps.len() > PARALLEL_GRAIN {
                let mid = amps.len() / 2;
                let (x, y) = amps.split_at_mut(mid);
                rayon::join(
                    || apply_diag_tree(x, node, parallel),
                    || apply_diag_tree(y, node, parallel),
                );
                return;
            }
            for chunk in amps.chunks_exact_mut(block) {
                let (clo, chi) = chunk.split_at_mut(block / 2);
                if parallel && clo.len() > PARALLEL_GRAIN {
                    rayon::join(
                        || apply_diag_tree(clo, lo, parallel),
                        || apply_diag_tree(chi, hi, parallel),
                    );
                } else {
                    apply_diag_tree(clo, lo, parallel);
                    apply_diag_tree(chi, hi, parallel);
                }
            }
        }
    }
}

/// Elementwise multiply by a table whose length divides the chunking.
/// Dispatching entry point.
#[inline]
fn sweep_table(amps: &mut [Complex], table: &[Complex]) {
    if simd::active() {
        simd::sweep_table(amps, table);
    } else {
        sweep_table_scalar(amps, table);
    }
}

#[inline]
fn sweep_table_scalar(amps: &mut [Complex], table: &[Complex]) {
    for chunk in amps.chunks_exact_mut(table.len()) {
        for (a, f) in chunk.iter_mut().zip(table) {
            *a = *a * *f;
        }
    }
}

// --- fused two-qubit block kernels ----------------------------------------

/// Applies a general 4×4 matrix to the qubit pair `(qlo, qhi)` with
/// `qlo < qhi` and the matrix in the `v = bit(qlo) + 2·bit(qhi)`
/// convention (callers transpose beforehand if needed).
///
/// One pass over the state replaces every pass the fused block absorbed.
/// Dispatching entry point.
pub fn apply_2q(amps: &mut [Complex], qlo: usize, qhi: usize, m: [[Complex; 4]; 4]) {
    debug_assert!(qlo < qhi);
    assert_in_register(amps.len(), 1usize << qhi);
    if simd::active() {
        simd::apply_2q(amps, qlo, qhi, m);
    } else {
        apply_2q_scalar(amps, qlo, qhi, m);
    }
}

/// Portable scalar body of [`apply_2q`].
pub fn apply_2q_scalar(amps: &mut [Complex], qlo: usize, qhi: usize, m: [[Complex; 4]; 4]) {
    debug_assert!(qlo < qhi);
    let (slo, shi) = (1usize << qlo, 1usize << qhi);
    assert_in_register(amps.len(), shi);
    for block in amps.chunks_exact_mut(2 * shi) {
        let (lo, hi) = block.split_at_mut(shi);
        for (lc, hc) in lo
            .chunks_exact_mut(2 * slo)
            .zip(hi.chunks_exact_mut(2 * slo))
        {
            let (l0, l1) = lc.split_at_mut(slo);
            let (h0, h1) = hc.split_at_mut(slo);
            for (((a0, a1), a2), a3) in l0
                .iter_mut()
                .zip(l1.iter_mut())
                .zip(h0.iter_mut())
                .zip(h1.iter_mut())
            {
                let v = [*a0, *a1, *a2, *a3];
                *a0 = m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2] + m[0][3] * v[3];
                *a1 = m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2] + m[1][3] * v[3];
                *a2 = m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2] + m[2][3] * v[3];
                *a3 = m[3][0] * v[0] + m[3][1] * v[1] + m[3][2] * v[2] + m[3][3] * v[3];
            }
        }
    }
}

/// Parallel variant of [`apply_2q`]: splits the top-level block range.
pub fn apply_2q_parallel(amps: &mut [Complex], qlo: usize, qhi: usize, m: [[Complex; 4]; 4]) {
    let block = 2usize << qhi;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        apply_2q(amps, qlo, qhi, m);
        return;
    }
    let mid = amps.len() / 2;
    let (x, y) = amps.split_at_mut(mid);
    rayon::join(
        || apply_2q_parallel(x, qlo, qhi, m),
        || apply_2q_parallel(y, qlo, qhi, m),
    );
}

/// Diagonal 4×4 `diag(d[0], d[1], d[2], d[3])` on `(qlo, qhi)`,
/// `qlo < qhi`, same index convention as [`apply_2q`]: four contiguous
/// run classes, one precomputed factor each.
pub fn diag_2q(amps: &mut [Complex], qlo: usize, qhi: usize, d: [Complex; 4]) {
    debug_assert!(qlo < qhi);
    let shi = 1usize << qhi;
    assert_in_register(amps.len(), shi);
    for block in amps.chunks_exact_mut(2 * shi) {
        let (lo, hi) = block.split_at_mut(shi);
        diag_1q(lo, qlo, d[0], d[1]);
        diag_1q(hi, qlo, d[2], d[3]);
    }
}

/// Parallel variant of [`diag_2q`].
pub fn diag_2q_parallel(amps: &mut [Complex], qlo: usize, qhi: usize, d: [Complex; 4]) {
    let block = 2usize << qhi;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        diag_2q(amps, qlo, qhi, d);
        return;
    }
    par_sweep(amps, block, move |chunk| diag_2q(chunk, qlo, qhi, d));
}

/// Multiplies every amplitude by `factor` (the deferred global phase
/// a fused run accumulates). Dispatching entry point.
pub fn scale_all(amps: &mut [Complex], factor: Complex) {
    if simd::active() {
        simd::scale_all(amps, factor);
    } else {
        scale_all_scalar(amps, factor);
    }
}

/// Portable scalar body of [`scale_all`].
pub fn scale_all_scalar(amps: &mut [Complex], factor: Complex) {
    for a in amps {
        *a = *a * factor;
    }
}

/// Parallel variant of [`scale_all`].
pub fn scale_all_parallel(amps: &mut [Complex], factor: Complex) {
    if amps.len() <= PARALLEL_GRAIN {
        scale_all(amps, factor);
        return;
    }
    par_sweep(amps, 1, move |chunk| scale_all(chunk, factor));
}

// --- the XX Mølmer–Sørensen kernel ----------------------------------------

/// `XX(θ) = exp(-iθ/2·X⊗X)` on qubits `a`, `b`: rotates the amplitude
/// pairs `(x, x ^ (2^a | 2^b))` by `cos = cos(θ/2)`,
/// `isin = -i·sin(θ/2)`, both precomputed by the caller.
pub fn xx_rotate(amps: &mut [Complex], a: usize, b: usize, cos: Complex, isin: Complex) {
    let (qlo, qhi) = (a.min(b), a.max(b));
    let (slo, shi) = (1usize << qlo, 1usize << qhi);
    assert_in_register(amps.len(), shi);
    for block in amps.chunks_exact_mut(2 * shi) {
        let (lo, hi) = block.split_at_mut(shi);
        for (lc, hc) in lo
            .chunks_exact_mut(2 * slo)
            .zip(hi.chunks_exact_mut(2 * slo))
        {
            let (l0, l1) = lc.split_at_mut(slo);
            let (h0, h1) = hc.split_at_mut(slo);
            // Orbits: (qlo=0,qhi=0) ↔ (1,1) and (1,0) ↔ (0,1).
            rotate_zip(l0, h1, cos, isin);
            rotate_zip(l1, h0, cos, isin);
        }
    }
}

/// Applies the symmetric 2×2 rotation `[[cos, isin], [isin, cos]]` to
/// zipped slices. Dispatching entry point (runs of one amplitude —
/// `qlo = 0` orbits — stay scalar; there is nothing to vectorize).
#[inline]
fn rotate_zip(xs: &mut [Complex], ys: &mut [Complex], cos: Complex, isin: Complex) {
    if simd::active() && xs.len() >= 2 {
        simd::rotate_zip(xs, ys, cos, isin);
    } else {
        rotate_zip_scalar(xs, ys, cos, isin);
    }
}

#[inline]
fn rotate_zip_scalar(xs: &mut [Complex], ys: &mut [Complex], cos: Complex, isin: Complex) {
    for (x, y) in xs.iter_mut().zip(ys.iter_mut()) {
        let (ax, ay) = (*x, *y);
        *x = cos * ax + isin * ay;
        *y = cos * ay + isin * ax;
    }
}

/// Parallel variant of [`xx_rotate`]: splits the top-level block range.
pub fn xx_rotate_parallel(amps: &mut [Complex], a: usize, b: usize, cos: Complex, isin: Complex) {
    let qhi = a.max(b);
    let block = 2usize << qhi;
    if amps.len() <= block.max(PARALLEL_GRAIN) {
        xx_rotate(amps, a, b, cos, isin);
        return;
    }
    let mid = amps.len() / 2;
    let (x, y) = amps.split_at_mut(mid);
    rayon::join(
        || xx_rotate_parallel(x, a, b, cos, isin),
        || xx_rotate_parallel(y, a, b, cos, isin),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp(re: f64) -> Complex {
        Complex::new(re, 0.0)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n).map(|i| amp(i as f64)).collect()
    }

    #[test]
    fn phase_both_hits_exactly_the_11_subspace() {
        let mut v = ramp(16);
        phase_both(&mut v, 0, 2, Complex::new(-1.0, 0.0));
        for (x, a) in v.iter().enumerate() {
            let expect = if x & 0b101 == 0b101 {
                -(x as f64)
            } else {
                x as f64
            };
            assert_eq!(a.re, expect, "index {x}");
        }
    }

    #[test]
    fn controlled_x_is_cnot() {
        for (c, t) in [(0usize, 2usize), (2, 0), (1, 3), (3, 1)] {
            let mut v = ramp(16);
            controlled_x(&mut v, 1 << c, t);
            for (x, a) in v.iter().enumerate() {
                let src = if x & (1 << c) != 0 { x ^ (1 << t) } else { x };
                assert_eq!(a.re, src as f64, "c={c} t={t} index {x}");
            }
        }
    }

    #[test]
    fn controlled_x_two_controls_is_toffoli() {
        let mut v = ramp(8);
        controlled_x(&mut v, 0b011, 2);
        for (x, a) in v.iter().enumerate() {
            let src = if x & 0b011 == 0b011 { x ^ 0b100 } else { x };
            assert_eq!(a.re, src as f64, "index {x}");
        }
    }

    #[test]
    fn swap_qubits_permutes_indices() {
        for (a, b) in [(0usize, 1usize), (0, 3), (2, 3), (3, 0)] {
            let mut v = ramp(16);
            swap_qubits(&mut v, a, b);
            for (x, amp_x) in v.iter().enumerate() {
                let ba = (x >> a) & 1;
                let bb = (x >> b) & 1;
                let src = (x & !(1 << a) & !(1 << b)) | (bb << a) | (ba << b);
                assert_eq!(amp_x.re, src as f64, "a={a} b={b} index {x}");
            }
        }
    }

    #[test]
    fn parity_phase_matches_bit_arithmetic() {
        let mut v = ramp(32);
        let same = Complex::cis(0.3);
        let diff = Complex::cis(-0.3);
        phase_parity(&mut v, 1, 3, same, diff);
        for (x, a) in v.iter().enumerate() {
            let p = ((x >> 1) ^ (x >> 3)) & 1;
            let expect = amp(x as f64) * if p == 0 { same } else { diff };
            assert!((a.re - expect.re).abs() < 1e-12 && (a.im - expect.im).abs() < 1e-12);
        }
    }

    #[test]
    fn serial_and_parallel_permutations_agree() {
        for n in [6usize, 9] {
            let init: Vec<Complex> = (0..1usize << n)
                .map(|i| Complex::new(i as f64, -(i as f64)))
                .collect();
            for (mask, t) in [
                (0usize, 0usize),
                (1 << 3, 0),
                (1 << 0, 5),
                ((1 << 2) | (1 << 4), 1),
                ((1 << 0) | (1 << 1), n - 1),
            ] {
                let mut a = init.clone();
                let mut b = init.clone();
                controlled_x(&mut a, mask, t);
                controlled_x_parallel(&mut b, mask, t);
                assert_eq!(a, b, "n={n} mask={mask:#b} t={t}");
            }
            for (p, q) in [(0usize, 1usize), (0, n - 1), (2, 4)] {
                let mut a = init.clone();
                let mut b = init.clone();
                swap_qubits(&mut a, p, q);
                swap_qubits_parallel(&mut b, p, q);
                assert_eq!(a, b, "n={n} swap({p},{q})");
            }
        }
    }

    #[test]
    fn diag_run_matches_per_term_application() {
        let n = 9usize;
        let terms = vec![
            DiagTerm::One {
                q: 0,
                p: [Complex::ONE, Complex::cis(0.3)],
            },
            DiagTerm::Two {
                qlo: 1,
                qhi: 7,
                d: [
                    Complex::ONE,
                    Complex::cis(0.2),
                    Complex::cis(-0.4),
                    Complex::cis(1.1),
                ],
            },
            DiagTerm::One {
                q: 8,
                p: [Complex::cis(-0.6), Complex::cis(0.6)],
            },
            DiagTerm::Two {
                qlo: 3,
                qhi: 4,
                d: [
                    Complex::ONE,
                    Complex::ONE,
                    Complex::ONE,
                    Complex::new(-1.0, 0.0),
                ],
            },
        ];
        let init: Vec<Complex> = (0..1usize << n)
            .map(|i| Complex::new((i % 17) as f64, (i % 5) as f64))
            .collect();
        for parallel in [false, true] {
            let mut batched = init.clone();
            apply_diag_run(&mut batched, &terms, parallel);
            let mut reference = init.clone();
            for (x, a) in reference.iter_mut().enumerate() {
                for t in &terms {
                    *a = *a * t.factor(x);
                }
            }
            for (x, (got, want)) in batched.iter().zip(&reference).enumerate() {
                assert!(
                    (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                    "parallel={parallel} index {x}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn empty_diag_run_is_identity() {
        let mut v = ramp(16);
        apply_diag_run(&mut v, &[], false);
        assert_eq!(v, ramp(16));
    }

    #[test]
    fn serial_and_parallel_1q_agree() {
        // Bitwise comparison across two dispatching calls: hold the
        // tier steady against concurrent force_scalar toggles.
        let _guard = simd::test_tier_lock();
        let m = [
            [Complex::new(0.6, 0.0), Complex::new(0.0, 0.8)],
            [Complex::new(0.0, 0.8), Complex::new(0.6, 0.0)],
        ];
        for q in 0..6 {
            let mut a: Vec<Complex> = (0..64)
                .map(|i| Complex::new(i as f64, -(i as f64)))
                .collect();
            let mut b = a.clone();
            apply_1q(&mut a, q, m);
            apply_1q_parallel(&mut b, q, m);
            assert_eq!(a, b, "q={q}");
        }
    }
}
