//! The retained naive reference path.
//!
//! This is the seed implementation of gate application: one full scan
//! of all `2^n` amplitudes per gate with a bit-test branch in the loop
//! body. It is kept in-tree, bit-for-bit, as the semantic baseline the
//! optimized kernels are property-tested and benchmarked against (see
//! `tests/statevec_kernel_equivalence.rs` and the `statevec_kernels`
//! criterion bench).
//!
//! The only change from the seed is hoisting the `Rz`/`ZZ` phase
//! factors out of the amplitude loops — the seed recomputed `sin`/`cos`
//! per amplitude, which made the baseline artificially slow rather than
//! representatively naive.

use crate::complex::Complex;
use tilt_circuit::Gate;

/// Applies `gate` to `amps` with the seed's full-scan implementation.
///
/// # Panics
///
/// Panics on [`Gate::Measure`] (this is a pure-state verifier).
pub fn apply_naive(amps: &mut [Complex], gate: &Gate) {
    match *gate {
        Gate::Barrier => {}
        Gate::Measure(_) | Gate::Reset(_) => {
            panic!("state-vector verifier cannot measure or reset")
        }
        Gate::H(q) => {
            let s = std::f64::consts::FRAC_1_SQRT_2;
            apply_1q_naive(
                amps,
                q.index(),
                [
                    [Complex::new(s, 0.0), Complex::new(s, 0.0)],
                    [Complex::new(s, 0.0), Complex::new(-s, 0.0)],
                ],
            );
        }
        Gate::X(q) => apply_1q_naive(
            amps,
            q.index(),
            [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
        ),
        Gate::Y(q) => apply_1q_naive(
            amps,
            q.index(),
            [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]],
        ),
        Gate::Z(q) => phase_if(amps, q.index(), Complex::new(-1.0, 0.0)),
        Gate::S(q) => phase_if(amps, q.index(), Complex::I),
        Gate::Sdg(q) => phase_if(amps, q.index(), -Complex::I),
        Gate::T(q) => phase_if(amps, q.index(), Complex::cis(std::f64::consts::FRAC_PI_4)),
        Gate::Tdg(q) => phase_if(amps, q.index(), Complex::cis(-std::f64::consts::FRAC_PI_4)),
        Gate::SqrtX(q) => {
            let p = Complex::new(0.5, 0.5);
            let m = Complex::new(0.5, -0.5);
            apply_1q_naive(amps, q.index(), [[p, m], [m, p]]);
        }
        Gate::SqrtY(q) => {
            let p = Complex::new(0.5, 0.5);
            apply_1q_naive(amps, q.index(), [[p, -p], [p, p]]);
        }
        Gate::Rx(q, t) => {
            let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
            apply_1q_naive(
                amps,
                q.index(),
                [
                    [Complex::new(c, 0.0), Complex::new(0.0, -s)],
                    [Complex::new(0.0, -s), Complex::new(c, 0.0)],
                ],
            );
        }
        Gate::Ry(q, t) => {
            let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
            apply_1q_naive(
                amps,
                q.index(),
                [
                    [Complex::new(c, 0.0), Complex::new(-s, 0.0)],
                    [Complex::new(s, 0.0), Complex::new(c, 0.0)],
                ],
            );
        }
        Gate::Rz(q, t) => {
            let m = 1usize << q.index();
            let lo = Complex::cis(-t / 2.0);
            let hi = Complex::cis(t / 2.0);
            for (x, a) in amps.iter_mut().enumerate() {
                *a = *a * if x & m == 0 { lo } else { hi };
            }
        }
        Gate::Cnot(c, t) => {
            let (mc, mt) = (1usize << c.index(), 1usize << t.index());
            for x in 0..amps.len() {
                if x & mc != 0 && x & mt == 0 {
                    amps.swap(x, x | mt);
                }
            }
        }
        Gate::Cz(a, b) => {
            let m = (1usize << a.index()) | (1usize << b.index());
            for (x, amp) in amps.iter_mut().enumerate() {
                if x & m == m {
                    *amp = -*amp;
                }
            }
        }
        Gate::Cphase(a, b, lambda) => {
            let m = (1usize << a.index()) | (1usize << b.index());
            let phase = Complex::cis(lambda);
            for (x, amp) in amps.iter_mut().enumerate() {
                if x & m == m {
                    *amp = *amp * phase;
                }
            }
        }
        Gate::Zz(a, b, t) => {
            let (ma, mb) = (1usize << a.index(), 1usize << b.index());
            let same = Complex::cis(-t / 2.0);
            let diff = Complex::cis(t / 2.0);
            for (x, amp) in amps.iter_mut().enumerate() {
                let parity = ((x & ma != 0) as u8) ^ ((x & mb != 0) as u8);
                *amp = *amp * if parity == 0 { same } else { diff };
            }
        }
        Gate::Xx(a, b, t) => {
            let mask = (1usize << a.index()) | (1usize << b.index());
            let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
            let cos = Complex::new(c, 0.0);
            let isin = Complex::new(0.0, -s);
            for x in 0..amps.len() {
                let y = x ^ mask;
                if x < y {
                    let (ax, ay) = (amps[x], amps[y]);
                    amps[x] = cos * ax + isin * ay;
                    amps[y] = cos * ay + isin * ax;
                }
            }
        }
        Gate::Swap(a, b) => {
            let (ma, mb) = (1usize << a.index(), 1usize << b.index());
            for x in 0..amps.len() {
                if x & ma != 0 && x & mb == 0 {
                    amps.swap(x, (x & !ma) | mb);
                }
            }
        }
        Gate::Toffoli(c0, c1, t) => {
            let (m0, m1, mt) = (
                1usize << c0.index(),
                1usize << c1.index(),
                1usize << t.index(),
            );
            for x in 0..amps.len() {
                if x & m0 != 0 && x & m1 != 0 && x & mt == 0 {
                    amps.swap(x, x | mt);
                }
            }
        }
    }
}

/// The seed's general single-qubit application: full scan with a
/// bit-test branch.
fn apply_1q_naive(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2]) {
    let mask = 1usize << q;
    for x in 0..amps.len() {
        if x & mask == 0 {
            let y = x | mask;
            let (a0, a1) = (amps[x], amps[y]);
            amps[x] = m[0][0] * a0 + m[0][1] * a1;
            amps[y] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

/// The seed's conditional phase: full scan multiplying where bit `q`
/// is set.
fn phase_if(amps: &mut [Complex], q: usize, phase: Complex) {
    let mask = 1usize << q;
    for (x, amp) in amps.iter_mut().enumerate() {
        if x & mask != 0 {
            *amp = *amp * phase;
        }
    }
}
