//! Explicit-SIMD kernel tier: AVX2+FMA implementations of the hot
//! pair-indexed loops, selected at runtime.
//!
//! The scalar kernels in [`crate::kernels`] are already branch-free
//! loops over contiguous memory, but the auto-vectorizer cannot use the
//! interleaved-complex trick this module is built on: two `Complex`
//! amplitudes are one `__m256d` of four `f64` lanes
//! `[re0, im0, re1, im1]`, and a complex multiply is one lane swap, one
//! multiply, and one `fmaddsub` (`a·b ∓ c` on even/odd lanes) — no
//! shuffle-heavy de-interleaving. [`Complex`] is `repr(C)` with a
//! compile-time size/alignment assertion precisely so this
//! reinterpretation is defined.
//!
//! # Dispatch
//!
//! [`tier`] resolves once per process:
//!
//! * `avx2_fma` — x86-64 host where `is_x86_feature_detected!` reports
//!   both `avx2` and `fma`;
//! * `scalar` — everything else, or when the `TILT_SIMD` environment
//!   variable is set to `off`/`0`/`scalar` (the bisection override: a
//!   suspected kernel regression can be pinned to dispatch by rerunning
//!   with `TILT_SIMD=off`).
//!
//! The resolved tier is recorded in every `BENCH_*.json` (field
//! `kernel_tier`), and [`force_scalar`] lets tests and the `perf`
//! binary compare both tiers inside one process. Every entry point here
//! has the matching scalar kernel as its portable fallback and is
//! pinned equivalent at 1e-12 by `tests/statevec_kernel_equivalence.rs`
//! under both tiers.
//!
//! # Cache blocking
//!
//! For a high-stride target qubit the pair planes `lo` and `hi` sit
//! `stride · 16` bytes apart. The diagonal kernels used to sweep the
//! full `lo` plane and then the full `hi` plane — two passes whose
//! working set each exceed L1 once `stride` passes a few thousand
//! amplitudes. The SIMD tier instead walks both planes in
//! [`L1_TILE`]-sized tiles (`lo[t..t+T]` then `hi[t..t+T]`), so the two
//! write streams stay within one L1 footprint of each other and the
//! hardware prefetcher sees two short dense streams instead of two long
//! alternating ones.

use crate::complex::Complex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The kernel implementation a process dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// `std::arch` AVX2+FMA intrinsics (x86-64 with runtime-detected
    /// `avx2` and `fma`).
    Avx2Fma,
    /// The portable scalar kernels of [`crate::kernels`].
    Scalar,
}

impl Tier {
    /// The stable name recorded in bench records (`avx2_fma` /
    /// `scalar`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Avx2Fma => "avx2_fma",
            Tier::Scalar => "scalar",
        }
    }
}

static TIER: OnceLock<Tier> = OnceLock::new();

/// Process-wide scalar override, below the detected tier: lets one
/// process benchmark/test both tiers (see [`force_scalar`]).
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn detect() -> Tier {
    if let Ok(v) = std::env::var("TILT_SIMD") {
        if matches!(v.as_str(), "off" | "0" | "scalar") {
            return Tier::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Tier::Avx2Fma;
        }
    }
    Tier::Scalar
}

/// The kernel tier this process resolved (detected once, then cached).
/// [`force_scalar`] is reported: with the override armed this returns
/// [`Tier::Scalar`].
pub fn tier() -> Tier {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return Tier::Scalar;
    }
    *TIER.get_or_init(detect)
}

/// [`tier`]'s stable name — the `kernel_tier` field of the bench
/// records.
pub fn tier_name() -> &'static str {
    tier().name()
}

/// Forces the scalar tier on (`true`) or restores detection (`false`).
///
/// A test/bench hook: the equivalence suites and the `perf` binary use
/// it to run both tiers in one process. Takes effect on the next kernel
/// call; not intended for use while kernels run on other threads.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// `true` when kernel entry points should take the AVX2+FMA path.
#[inline]
pub(crate) fn active() -> bool {
    tier() == Tier::Avx2Fma
}

/// Serializes tests that toggle [`force_scalar`] against tests that
/// compare kernel outputs bitwise — the dispatch tier is process-global,
/// so a mid-comparison toggle from a concurrently running test would
/// mix tiers across the two runs being compared.
#[doc(hidden)]
pub fn test_tier_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tile length, in complex amplitudes, for cache-blocked plane sweeps:
/// 1024 amplitudes = 16 KiB per plane, so a lo+hi tile pair (32 KiB)
/// fits a typical L1d.
pub(crate) const L1_TILE: usize = 1 << 10;

// Safe shims over the `target_feature` functions. Callers must have
// checked `active()`; on non-x86-64 targets `active()` is always false
// and these bodies are unreachable.

macro_rules! shim {
    ($(fn $name:ident($($arg:ident: $ty:ty),*);)*) => {
        $(
            #[inline]
            #[allow(unused_variables)]
            pub(crate) fn $name($($arg: $ty),*) {
                debug_assert!(active(), "SIMD kernel called with scalar tier resolved");
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `active()` established avx2+fma at runtime.
                unsafe { avx::$name($($arg),*) }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("SIMD tier is never active off x86-64")
            }
        )*
    };
}

shim! {
    fn apply_1q(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2]);
    fn apply_1q_zip(lo: &mut [Complex], hi: &mut [Complex], m: [[Complex; 2]; 2]);
    fn apply_2q(amps: &mut [Complex], qlo: usize, qhi: usize, m: [[Complex; 4]; 4]);
    fn diag_1q(amps: &mut [Complex], q: usize, p0: Complex, p1: Complex);
    fn phase_1q(amps: &mut [Complex], q: usize, phase: Complex);
    fn scale_all(amps: &mut [Complex], factor: Complex);
    fn sweep_table(amps: &mut [Complex], table: &[Complex]);
    fn rotate_zip(xs: &mut [Complex], ys: &mut [Complex], cos: Complex, isin: Complex);
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::L1_TILE;
    use crate::complex::Complex;
    use std::arch::x86_64::*;

    /// Loads two consecutive complexes as `[re0, im0, re1, im1]`.
    ///
    /// # Safety
    /// `p` must be valid for reading 2 `Complex` (4 `f64`); alignment
    /// beyond `f64`'s is not required (unaligned load).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load2(p: *const Complex) -> __m256d {
        // SAFETY: caller guarantees `p` is readable for 2 `Complex`;
        // `Complex` is `repr(C)` `{ re: f64, im: f64 }`, so 2 of them
        // are exactly 4 contiguous `f64` and the unaligned load needs
        // no further alignment.
        unsafe { _mm256_loadu_pd(p as *const f64) }
    }

    /// Stores `[re0, im0, re1, im1]` over two consecutive complexes.
    ///
    /// # Safety
    /// `p` must be valid for writing 2 `Complex`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store2(p: *mut Complex, v: __m256d) {
        // SAFETY: caller guarantees `p` is writable for 2 `Complex`
        // (4 contiguous `f64`); unaligned store.
        unsafe { _mm256_storeu_pd(p as *mut f64, v) }
    }

    /// A scalar complex broadcast into both 128-bit halves:
    /// `[re, im, re, im]`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn broadcast(c: Complex) -> __m256d {
        _mm256_setr_pd(c.re, c.im, c.re, c.im)
    }

    /// Lanewise complex multiply of two interleaved-complex vectors:
    /// for each 128-bit half `(ar, ai)·(br, bi)`.
    ///
    /// `fmaddsub(a, bre, t)` computes `a·bre − t` on even lanes and
    /// `a·bre + t` on odd lanes, which with `t = swap(a)·bim` is exactly
    /// `(ar·br − ai·bi, ai·br + ar·bi)`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn cmul(a: __m256d, b: __m256d) -> __m256d {
        let bre = _mm256_movedup_pd(b); // [br, br, br, br] per half
        let bim = _mm256_permute_pd(b, 0xF); // [bi, bi, bi, bi] per half
        let aswap = _mm256_permute_pd(a, 0x5); // [ai, ar, ai, ar]
        _mm256_fmaddsub_pd(a, bre, _mm256_mul_pd(aswap, bim))
    }

    /// `acc + a·b` (lanewise complex), fused where the ISA allows.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn cmul_add(acc: __m256d, a: __m256d, b: __m256d) -> __m256d {
        // SAFETY: pure register arithmetic under the same
        // target-feature contract as this fn.
        unsafe { _mm256_add_pd(acc, cmul(a, b)) }
    }

    /// Multiplies every amplitude of `amps` by the constant `factor`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_all(amps: &mut [Complex], factor: Complex) {
        // SAFETY: register-only broadcast under this fn's features.
        let f = unsafe { broadcast(factor) };
        let n = amps.len() & !1;
        let p = amps.as_mut_ptr();
        let mut i = 0;
        while i < n {
            // SAFETY: `i + 1 < amps.len()` (n is len rounded down to
            // even), so `p.add(i)` covers two in-bounds amplitudes of
            // the exclusively borrowed slice.
            unsafe { store2(p.add(i), cmul(load2(p.add(i)), f)) };
            i += 2;
        }
        if n < amps.len() {
            amps[n] = amps[n] * factor;
        }
    }

    /// Elementwise multiply by a table whose length divides the
    /// chunking (the batched diagonal run's leaf sweep). Tables are
    /// power-of-two sized, so a table of length ≥ 2 vectorizes exactly;
    /// a length-1 table is a plain scale.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sweep_table(amps: &mut [Complex], table: &[Complex]) {
        let t = table.len();
        if t < 2 {
            if let Some(&f) = table.first() {
                // SAFETY: same slice, same feature contract.
                unsafe { scale_all(amps, f) };
            }
            return;
        }
        let tp = table.as_ptr();
        for chunk in amps.chunks_exact_mut(t) {
            let p = chunk.as_mut_ptr();
            let mut i = 0;
            while i < t {
                // SAFETY: `i + 1 < t`, `t` even (power of two ≥ 2), so
                // both `p.add(i)` (chunk of length t) and `tp.add(i)`
                // (table of length t) cover two in-bounds amplitudes.
                unsafe { store2(p.add(i), cmul(load2(p.add(i)), load2(tp.add(i)))) };
                i += 2;
            }
        }
    }

    /// Multiplies a contiguous run by a constant — the tile primitive
    /// of the diagonal kernels.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn scale_run(p: *mut Complex, len: usize, f: __m256d, scalar: Complex) {
        let n = len & !1;
        let mut i = 0;
        while i < n {
            // SAFETY: caller guarantees `p..p+len` is exclusively
            // writable; `i + 1 < len`, so the two-amplitude access
            // stays inside the run.
            unsafe { store2(p.add(i), cmul(load2(p.add(i)), f)) };
            i += 2;
        }
        if n < len {
            // SAFETY: `n < len`, in-bounds of the caller's run; no
            // other reference aliases it.
            let a = unsafe { &mut *p.add(n) };
            *a = *a * scalar;
        }
    }

    /// `diag(p0, p1)` on qubit `q`: cache-blocked plane sweeps. Within
    /// each `2^(q+1)` block the lo/hi planes are walked in [`L1_TILE`]
    /// pieces — `lo[t..t+T]` then `hi[t..t+T]` — instead of two full
    /// passes `stride` apart.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn diag_1q(amps: &mut [Complex], q: usize, p0: Complex, p1: Complex) {
        let stride = 1usize << q;
        // SAFETY: register-only broadcasts under this fn's features.
        let (f0, f1) = unsafe { (broadcast(p0), broadcast(p1)) };
        for block in amps.chunks_exact_mut(2 * stride) {
            let base = block.as_mut_ptr();
            let mut t = 0;
            while t < stride {
                let tile = L1_TILE.min(stride - t);
                // SAFETY: `t + tile <= stride`, so both runs —
                // `[t, t+tile)` in the lo plane and
                // `[stride+t, stride+t+tile)` in the hi plane — stay
                // inside this exclusively borrowed 2·stride block.
                unsafe {
                    scale_run(base.add(t), tile, f0, p0);
                    scale_run(base.add(stride + t), tile, f1, p1);
                }
                t += tile;
            }
        }
    }

    /// Multiplies every amplitude with bit `q` set by `phase` (the hi
    /// plane only; the lo plane is untouched, so no tiling partner).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn phase_1q(amps: &mut [Complex], q: usize, phase: Complex) {
        let stride = 1usize << q;
        // SAFETY: register-only broadcast under this fn's features.
        let f = unsafe { broadcast(phase) };
        for block in amps.chunks_exact_mut(2 * stride) {
            // SAFETY: the hi plane `[stride, 2·stride)` of this
            // exclusively borrowed 2·stride block.
            unsafe { scale_run(block.as_mut_ptr().add(stride), stride, f, phase) };
        }
    }

    /// The 2×2 rotation of zipped planes: `lo[i], hi[i]` become
    /// `m·(lo[i], hi[i])`. Planes must have equal length ≥ 1.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn apply_1q_zip(
        lo: &mut [Complex],
        hi: &mut [Complex],
        m: [[Complex; 2]; 2],
    ) {
        debug_assert_eq!(lo.len(), hi.len());
        // SAFETY: register-only broadcasts under this fn's features.
        let (m00, m01, m10, m11) = unsafe {
            (
                broadcast(m[0][0]),
                broadcast(m[0][1]),
                broadcast(m[1][0]),
                broadcast(m[1][1]),
            )
        };
        let len = lo.len();
        let n = len & !1;
        let (lp, hp) = (lo.as_mut_ptr(), hi.as_mut_ptr());
        let mut i = 0;
        while i < n {
            // SAFETY: `i + 1 < len` for both equal-length, disjoint,
            // exclusively borrowed planes, so each two-amplitude
            // load/store is in-bounds and non-aliasing.
            unsafe {
                let x = load2(lp.add(i));
                let y = load2(hp.add(i));
                store2(lp.add(i), cmul_add(cmul(x, m00), y, m01));
                store2(hp.add(i), cmul_add(cmul(x, m10), y, m11));
            }
            i += 2;
        }
        if n < len {
            let (x, y) = (lo[n], hi[n]);
            lo[n] = m[0][0] * x + m[0][1] * y;
            hi[n] = m[1][0] * x + m[1][1] * y;
        }
    }

    /// Applies the 2×2 matrix `m` to target `q`.
    ///
    /// `q = 0` pairs are interleaved in memory (`[x, y]` is one
    /// vector), so each block is processed whole: duplicate `x` and `y`
    /// across halves and combine with the matrix *columns*
    /// (`[m00, m10]`, `[m01, m11]`), producing `[x', y']` in one store.
    /// For `q ≥ 1` the planes are contiguous and zip in L1 tiles.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn apply_1q(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2]) {
        if q == 0 {
            let col0 = _mm256_setr_pd(m[0][0].re, m[0][0].im, m[1][0].re, m[1][0].im);
            let col1 = _mm256_setr_pd(m[0][1].re, m[0][1].im, m[1][1].re, m[1][1].im);
            let n = amps.len();
            let p = amps.as_mut_ptr();
            let mut i = 0;
            while i < n {
                // SAFETY: the statevector length is a power of two ≥ 2,
                // so `i + 1 < n` and `p.add(i)` covers one in-bounds
                // `[x, y]` pair of the exclusively borrowed slice.
                unsafe {
                    let v = load2(p.add(i));
                    let x = _mm256_permute2f128_pd(v, v, 0x00); // [x, x]
                    let y = _mm256_permute2f128_pd(v, v, 0x11); // [y, y]
                    store2(p.add(i), cmul_add(cmul(x, col0), y, col1));
                }
                i += 2;
            }
            return;
        }
        let stride = 1usize << q;
        for block in amps.chunks_exact_mut(2 * stride) {
            let (lo, hi) = block.split_at_mut(stride);
            let mut t = 0;
            while t < stride {
                let tile = L1_TILE.min(stride - t);
                // SAFETY: equal-length disjoint reborrows of this
                // block's planes, same feature contract.
                unsafe { apply_1q_zip(&mut lo[t..t + tile], &mut hi[t..t + tile], m) };
                t += tile;
            }
        }
    }

    /// The symmetric `[[cos, isin], [isin, cos]]` rotation of zipped
    /// runs (the `XX(θ)` orbit kernel).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn rotate_zip(
        xs: &mut [Complex],
        ys: &mut [Complex],
        cos: Complex,
        isin: Complex,
    ) {
        // SAFETY: forwards the caller's equal-length disjoint planes
        // under the same feature contract.
        unsafe { apply_1q_zip(xs, ys, [[cos, isin], [isin, cos]]) };
    }

    /// Applies a general 4×4 matrix to the pair `(qlo, qhi)`,
    /// `qlo < qhi`, `v = bit(qlo) + 2·bit(qhi)`.
    ///
    /// `qlo = 0` keeps the `(v=0, v=1)` and `(v=2, v=3)` members
    /// adjacent in memory, so the block is combined column-wise like
    /// the interleaved 1q case; `qlo ≥ 1` zips four contiguous runs.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn apply_2q(
        amps: &mut [Complex],
        qlo: usize,
        qhi: usize,
        m: [[Complex; 4]; 4],
    ) {
        let (slo, shi) = (1usize << qlo, 1usize << qhi);
        if qlo == 0 {
            // Row-pair columns: colab[j] = [m[a][j], m[b][j]].
            let col = |a: usize, b: usize, j: usize| {
                _mm256_setr_pd(m[a][j].re, m[a][j].im, m[b][j].re, m[b][j].im)
            };
            let c01: [__m256d; 4] = [col(0, 1, 0), col(0, 1, 1), col(0, 1, 2), col(0, 1, 3)];
            let c23: [__m256d; 4] = [col(2, 3, 0), col(2, 3, 1), col(2, 3, 2), col(2, 3, 3)];
            for block in amps.chunks_exact_mut(2 * shi) {
                let (lo, hi) = block.split_at_mut(shi);
                let (lp, hp) = (lo.as_mut_ptr(), hi.as_mut_ptr());
                let mut i = 0;
                while i < shi {
                    // SAFETY: `shi` is a power of two ≥ 2 (qhi > qlo =
                    // 0), so `i + 1 < shi` and both two-amplitude
                    // accesses hit the disjoint, exclusively borrowed
                    // lo/hi planes in-bounds.
                    unsafe {
                        let v01 = load2(lp.add(i)); // [a0, a1]
                        let v23 = load2(hp.add(i)); // [a2, a3]
                        let a0 = _mm256_permute2f128_pd(v01, v01, 0x00);
                        let a1 = _mm256_permute2f128_pd(v01, v01, 0x11);
                        let a2 = _mm256_permute2f128_pd(v23, v23, 0x00);
                        let a3 = _mm256_permute2f128_pd(v23, v23, 0x11);
                        let lo_out = cmul_add(
                            cmul_add(cmul_add(cmul(a0, c01[0]), a1, c01[1]), a2, c01[2]),
                            a3,
                            c01[3],
                        );
                        let hi_out = cmul_add(
                            cmul_add(cmul_add(cmul(a0, c23[0]), a1, c23[1]), a2, c23[2]),
                            a3,
                            c23[3],
                        );
                        store2(lp.add(i), lo_out);
                        store2(hp.add(i), hi_out);
                    }
                    i += 2;
                }
            }
            return;
        }
        // SAFETY: register-only broadcasts under this fn's features.
        let mb: [[__m256d; 4]; 4] = unsafe {
            [
                [
                    broadcast(m[0][0]),
                    broadcast(m[0][1]),
                    broadcast(m[0][2]),
                    broadcast(m[0][3]),
                ],
                [
                    broadcast(m[1][0]),
                    broadcast(m[1][1]),
                    broadcast(m[1][2]),
                    broadcast(m[1][3]),
                ],
                [
                    broadcast(m[2][0]),
                    broadcast(m[2][1]),
                    broadcast(m[2][2]),
                    broadcast(m[2][3]),
                ],
                [
                    broadcast(m[3][0]),
                    broadcast(m[3][1]),
                    broadcast(m[3][2]),
                    broadcast(m[3][3]),
                ],
            ]
        };
        for block in amps.chunks_exact_mut(2 * shi) {
            let (lo, hi) = block.split_at_mut(shi);
            for (lc, hc) in lo
                .chunks_exact_mut(2 * slo)
                .zip(hi.chunks_exact_mut(2 * slo))
            {
                let (l0, l1) = lc.split_at_mut(slo);
                let (h0, h1) = hc.split_at_mut(slo);
                let p = [
                    l0.as_mut_ptr(),
                    l1.as_mut_ptr(),
                    h0.as_mut_ptr(),
                    h1.as_mut_ptr(),
                ];
                let mut i = 0;
                while i < slo {
                    // SAFETY: `slo` is a power of two ≥ 2 (qlo ≥ 1), so
                    // `i + 1 < slo`; the four runs are disjoint
                    // `slo`-length split-offs of this exclusively
                    // borrowed block, so every two-amplitude access is
                    // in-bounds and non-aliasing.
                    unsafe {
                        let v = [
                            load2(p[0].add(i)),
                            load2(p[1].add(i)),
                            load2(p[2].add(i)),
                            load2(p[3].add(i)),
                        ];
                        for r in 0..4 {
                            let acc = cmul_add(
                                cmul_add(
                                    cmul_add(cmul(v[0], mb[r][0]), v[1], mb[r][1]),
                                    v[2],
                                    mb[r][2],
                                ),
                                v[3],
                                mb[r][3],
                            );
                            store2(p[r].add(i), acc);
                        }
                    }
                    i += 2;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_name_is_stable() {
        assert!(matches!(tier_name(), "avx2_fma" | "scalar"));
    }

    #[test]
    fn force_scalar_overrides_detection() {
        let _guard = test_tier_lock();
        force_scalar(true);
        assert_eq!(tier(), Tier::Scalar);
        assert!(!active());
        force_scalar(false);
        assert_eq!(tier(), *TIER.get_or_init(detect));
    }
}
