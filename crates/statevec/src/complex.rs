//! A minimal complex-number type (kept local to avoid an external
//! dependency for two dozen lines of arithmetic).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// The layout is `repr(C)` — `re` then `im`, no padding — because the
/// SIMD kernel tier ([`crate::simd`]) reinterprets `&[Complex]` as a
/// sequence of interleaved `f64` lanes and must not depend on the
/// unspecified default (`repr(Rust)`) field order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

// Compile-time pin of the layout the SIMD loads/stores rely on: one
// `Complex` is exactly two `f64` lanes, `f64`-aligned, with `re` at
// offset 0 and `im` at offset 8.
const _: () = {
    assert!(std::mem::size_of::<Complex>() == 2 * std::mem::size_of::<f64>());
    assert!(std::mem::align_of::<Complex>() == std::mem::align_of::<f64>());
    assert!(std::mem::offset_of!(Complex, re) == 0);
    assert!(std::mem::offset_of!(Complex, im) == std::mem::size_of::<f64>());
};

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn cis_and_norm() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
        assert!((z.norm_sq() - 1.0).abs() < 1e-15);
        assert!((z.abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        assert_eq!(Complex::new(2.0, 3.0).conj(), Complex::new(2.0, -3.0));
    }
}
