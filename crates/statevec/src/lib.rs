//! Dense state-vector simulation for verification.
//!
//! The architectural simulator (`tilt-sim`) estimates *fidelity*; this
//! crate checks *semantics*: that the native-gate decompositions and the
//! routed physical circuits implement the same unitaries as the programs
//! they came from. It is a verification tool for small registers
//! (`n ≲ 16`), not a performance simulator.
//!
//! # Example
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//! use tilt_statevec::State;
//!
//! // Build a Bell state and inspect the amplitudes.
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cnot(Qubit(0), Qubit(1));
//! let state = State::zero(2).run(&bell);
//! let p = state.probability_of(0b00) + state.probability_of(0b11);
//! assert!((p - 1.0).abs() < 1e-12);
//! ```

pub mod complex;
pub mod fuse;
pub mod kernels;
pub mod naive;
pub mod simd;
pub mod state;

pub use complex::Complex;
pub use state::{RunOptions, State, StateError, DEFAULT_MAX_QUBITS};
