//! Dense state vectors and gate application.
//!
//! Conventions (all standard / OpenQASM):
//!
//! * Basis index bit `q` is the state of qubit `q` (qubit 0 = LSB).
//! * `Rp(θ) = exp(-iθ/2 P)` for `P ∈ {X, Y, Z}`.
//! * `XX(θ) = exp(-iθ/2 X⊗X)` (the Mølmer–Sørensen interaction; `θ = ±π/2`
//!   is maximally entangling), `ZZ(θ) = exp(-iθ/2 Z⊗Z)`.
//! * `CPhase(λ) = diag(1, 1, 1, e^{iλ})`.
//!
//! Gate application dispatches to the pair-indexed kernels of
//! [`crate::kernels`] (see `crates/statevec/README.md` for the indexing
//! scheme); each kernel in turn resolves to the active instruction tier
//! of [`crate::simd`] — AVX2+FMA on hosts that support it, the portable
//! scalar loops otherwise — so nothing at this layer depends on the
//! tier. The seed's branchy full-scan implementation is retained in
//! [`crate::naive`] as the reference path.

use crate::complex::Complex;
use crate::fuse::{self, FusedOp};
use crate::kernels;
use crate::naive;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::{Circuit, Gate};

/// Default register cap for the panicking constructors: `2^24`
/// amplitudes is 256 MiB, the seed's historical limit.
pub const DEFAULT_MAX_QUBITS: usize = 24;

/// Why a state could not be constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The register exceeds the configured qubit cap.
    TooManyQubits {
        /// Requested register width.
        n_qubits: usize,
        /// The cap it exceeded.
        cap: usize,
    },
    /// The amplitude vector could not be allocated.
    AllocationFailed {
        /// Number of amplitudes requested (`2^n`).
        amplitudes: usize,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StateError::TooManyQubits { n_qubits, cap } => {
                write!(
                    f,
                    "dense simulation of {n_qubits} qubits exceeds the cap of {cap}"
                )
            }
            StateError::AllocationFailed { amplitudes } => {
                write!(f, "could not allocate {amplitudes} amplitudes")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// How [`State::run_with`] should execute a circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Collapse runs of single-qubit gates before application
    /// (semantically transparent; see [`crate::fuse`]).
    pub fuse: bool,
    /// `None` — parallelize when the state is large and the host has
    /// threads (the default); `Some(true)` / `Some(false)` — force the
    /// choice (used by the equivalence tests to pin each path).
    pub parallel: Option<bool>,
}

impl RunOptions {
    /// The default execution mode: fusion on, parallelism automatic.
    pub fn optimized() -> Self {
        RunOptions {
            fuse: true,
            parallel: None,
        }
    }

    /// Gate-at-a-time serial execution through the optimized kernels.
    pub fn serial_unfused() -> Self {
        RunOptions {
            fuse: false,
            parallel: Some(false),
        }
    }
}

/// A pure quantum state over `n` qubits (`2^n` amplitudes).
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    n_qubits: usize,
    amps: Vec<Complex>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `n_qubits > `[`DEFAULT_MAX_QUBITS`] (the dense vector
    /// would not fit); use [`State::try_zero_with_cap`] for a checked,
    /// configurable-cap construction.
    pub fn zero(n_qubits: usize) -> Self {
        State::try_zero(n_qubits).expect("dense simulation beyond the default qubit cap")
    }

    /// The all-zeros state, checked against [`DEFAULT_MAX_QUBITS`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TooManyQubits`] above the cap and
    /// [`StateError::AllocationFailed`] when the allocator refuses the
    /// amplitude vector.
    pub fn try_zero(n_qubits: usize) -> Result<Self, StateError> {
        State::try_zero_with_cap(n_qubits, DEFAULT_MAX_QUBITS)
    }

    /// The all-zeros state with a caller-chosen qubit cap.
    ///
    /// The cap is a policy knob, not a hardware bound: callers that
    /// know their memory budget may raise it (every qubit doubles the
    /// 16-byte-per-amplitude allocation). The allocation itself is
    /// checked, so a hopeless request fails with an `Err` instead of
    /// aborting.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TooManyQubits`] when `n_qubits > cap` or
    /// `2^n_qubits` overflows `usize`, and
    /// [`StateError::AllocationFailed`] when the allocator refuses.
    pub fn try_zero_with_cap(n_qubits: usize, cap: usize) -> Result<Self, StateError> {
        if n_qubits > cap || n_qubits >= usize::BITS as usize {
            return Err(StateError::TooManyQubits { n_qubits, cap });
        }
        let len = 1usize << n_qubits;
        let mut amps = Vec::new();
        amps.try_reserve_exact(len)
            .map_err(|_| StateError::AllocationFailed { amplitudes: len })?;
        amps.resize(len, Complex::ZERO);
        amps[0] = Complex::ONE;
        Ok(State { n_qubits, amps })
    }

    /// A basis state `|x⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has bits above `n_qubits`.
    pub fn basis(n_qubits: usize, x: usize) -> Self {
        assert!(x < (1usize << n_qubits), "basis index out of range");
        let mut s = State::zero(n_qubits);
        s.amps[0] = Complex::ZERO;
        s.amps[x] = Complex::ONE;
        s
    }

    /// A reproducible Haar-ish random state (normalized Gaussian-free
    /// uniform components — adequate for equivalence probing).
    pub fn random(n_qubits: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut amps: Vec<Complex> = (0..1usize << n_qubits)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sq()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = a.scale(1.0 / norm);
        }
        State { n_qubits, amps }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude of basis state `x`.
    pub fn amplitude(&self, x: usize) -> Complex {
        self.amps[x]
    }

    /// `|⟨x|ψ⟩|²`.
    pub fn probability_of(&self, x: usize) -> f64 {
        self.amps[x].norm_sq()
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on register-width mismatch.
    pub fn inner(&self, other: &State) -> Complex {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// `|⟨self|other⟩|²` — 1.0 iff the states agree up to global phase.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sq()
    }

    /// Total probability (should be 1 for any unitary evolution).
    pub fn norm_sq(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }

    /// Applies `gate` in place through the optimized kernels
    /// (parallelizing automatically on large states).
    ///
    /// # Panics
    ///
    /// Panics on [`Gate::Measure`] (this is a pure-state verifier) and on
    /// operands outside the register.
    pub fn apply(&mut self, gate: &Gate) {
        let parallel = kernels::should_parallelize(self.amps.len(), None);
        apply_kernel(&mut self.amps, gate, parallel);
    }

    /// Applies `gate` with the retained seed implementation (full-scan
    /// reference path; see [`crate::naive`]).
    ///
    /// # Panics
    ///
    /// As [`State::apply`].
    pub fn apply_naive(&mut self, gate: &Gate) {
        naive::apply_naive(&mut self.amps, gate);
    }

    /// Applies every gate of `circuit` in program order through the
    /// optimized pipeline (single-qubit fusion plus pair-indexed
    /// kernels), consuming and returning the state for chaining.
    pub fn run(self, circuit: &Circuit) -> State {
        self.run_with(circuit, RunOptions::optimized())
    }

    /// [`State::run`] with explicit execution options.
    ///
    /// # Panics
    ///
    /// Panics when the circuit is wider than the state.
    pub fn run_with(mut self, circuit: &Circuit, opts: RunOptions) -> State {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        let parallel = kernels::should_parallelize(self.amps.len(), opts.parallel);
        if opts.fuse {
            // Unit-modulus factors common to a whole block are deferred
            // into one end-of-run sweep: the unitary applied is
            // identical (up to f64 rounding), but e.g. the ubiquitous
            // `e^{-iλ/4}·diag(1,1,1,e^{iλ})` fused controlled-phase
            // block touches 2^(n-2) amplitudes instead of 2^n.
            //
            // On top of that, *consecutive* diagonal blocks (QFT rows,
            // QAOA cost layers) are batched into one run and applied by
            // a single hierarchical sweep — diagonal ops commute, so
            // deferring each term past later diagonal terms is exact.
            let mut global = Complex::ONE;
            let mut run = DiagRun::new();
            for op in fuse::fuse(circuit) {
                match classify_diag(&op, &mut global) {
                    DiagClass::Term(term) => run.push(&mut self.amps, term, parallel),
                    DiagClass::Absorbed => {}
                    DiagClass::Opaque => {
                        run.flush(&mut self.amps, parallel);
                        apply_fused(&mut self.amps, op, parallel, &mut global);
                    }
                }
            }
            run.flush(&mut self.amps, parallel);
            if !close(global, Complex::ONE) {
                if parallel {
                    kernels::scale_all_parallel(&mut self.amps, global);
                } else {
                    kernels::scale_all(&mut self.amps, global);
                }
            }
        } else {
            for g in circuit {
                apply_kernel(&mut self.amps, g, parallel);
            }
        }
        self
    }

    /// Runs `circuit` through the retained naive reference path.
    pub fn run_naive(mut self, circuit: &Circuit) -> State {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for g in circuit {
            naive::apply_naive(&mut self.amps, g);
        }
        self
    }

    /// Marginal probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit outside register");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(x, _)| x & mask != 0)
            .map(|(_, a)| a.norm_sq())
            .sum()
    }

    /// Projects qubit `q` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics when the requested branch has (near-)zero probability —
    /// collapsing onto it would divide by zero.
    pub fn collapse(&mut self, q: usize, outcome: bool) {
        assert!(q < self.n_qubits, "qubit outside register");
        let mask = 1usize << q;
        let keep = if outcome { mask } else { 0 };
        let p: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(x, _)| x & mask == keep)
            .map(|(_, a)| a.norm_sq())
            .sum();
        assert!(
            p > 1e-12,
            "collapsing qubit {q} onto an outcome of probability {p:.3e}"
        );
        let scale = 1.0 / p.sqrt();
        for (x, a) in self.amps.iter_mut().enumerate() {
            if x & mask == keep {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
    }

    /// Measures qubit `q` using the uniform sample `u ∈ [0, 1)` as the
    /// randomness source (outcome is 1 iff `u < P(1)`), collapsing the
    /// state. Returns the outcome bit.
    pub fn measure_with(&mut self, q: usize, u: f64) -> bool {
        let p1 = self.prob_one(q);
        // Clamp so a numerically-degenerate branch is never selected by
        // a borderline draw.
        let outcome = u < p1 && p1 > 1e-12;
        self.collapse(q, outcome);
        outcome
    }

    /// Resets qubit `q` to `|0⟩` (measure with sample `u`, then flip on
    /// outcome 1). Returns the pre-reset measurement.
    pub fn reset_with(&mut self, q: usize, u: f64) -> bool {
        let outcome = self.measure_with(q, u);
        if outcome {
            self.apply(&Gate::X(tilt_circuit::Qubit(q)));
        }
        outcome
    }

    /// Runs `circuit` gate by gate, dispatching `measure`/`reset`
    /// through [`State::measure_with`] / [`State::reset_with`] with
    /// draws from `rng`. Returns the final state and one bit per
    /// `measure` gate in program order.
    ///
    /// Unlike [`State::run`] this path performs no fusion — mid-circuit
    /// measurement is a nonlinear barrier — so use it only when the
    /// program actually measures.
    pub fn run_sampled<R: rand::Rng>(
        mut self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> (State, Vec<bool>) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        let parallel = kernels::should_parallelize(self.amps.len(), None);
        let mut outcomes = Vec::new();
        for g in circuit {
            match *g {
                Gate::Measure(q) => {
                    let bit = self.measure_with(q.index(), rng.gen());
                    outcomes.push(bit);
                }
                Gate::Reset(q) => {
                    self.reset_with(q.index(), rng.gen());
                }
                ref unitary => apply_kernel(&mut self.amps, unitary, parallel),
            }
        }
        (self, outcomes)
    }

    /// Relabels qubits: qubit `q` of `self` becomes qubit `perm[q]` of the
    /// result. Used to compare routed physical states (where data ended at
    /// permuted tape positions) against logical references.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n_qubits`.
    pub fn permute_qubits(&self, perm: &[usize]) -> State {
        assert_eq!(perm.len(), self.n_qubits, "permutation width mismatch");
        let mut seen = vec![false; self.n_qubits];
        for &p in perm {
            assert!(p < self.n_qubits && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = vec![Complex::ZERO; self.amps.len()];
        for (x, amp) in self.amps.iter().enumerate() {
            let mut y = 0usize;
            for (q, &p) in perm.iter().enumerate() {
                if x & (1 << q) != 0 {
                    y |= 1 << p;
                }
            }
            out[y] = *amp;
        }
        State {
            n_qubits: self.n_qubits,
            amps: out,
        }
    }
}

/// `|a - b| < 1e-15` — fp-rounding-level agreement between unit-modulus
/// fusion products. Genuinely different phases differ by far more, so
/// this only classifies entries that drifted apart by accumulated
/// rounding; treating them as equal perturbs amplitudes below the 1e-12
/// equivalence tolerance even across hundreds of blocks.
#[inline]
fn close(a: Complex, b: Complex) -> bool {
    (a - b).norm_sq() < 1e-30
}

/// How a fused op enters the diagonal-run batcher.
enum DiagClass {
    /// A diagonal factor, normalized to a leading 1 (the common phase
    /// already moved into the deferred global factor).
    Term(kernels::DiagTerm),
    /// Diagonal and — after normalization — the identity: nothing to
    /// apply beyond the global factor.
    Absorbed,
    /// Not diagonal; must flush the pending run and apply directly.
    Opaque,
}

/// Classifies a fused op for run batching, accumulating each diagonal
/// block's common phase into `global` (the same normalization
/// [`apply_fused`] performs).
fn classify_diag(op: &FusedOp, global: &mut Complex) -> DiagClass {
    match *op {
        FusedOp::OneQ { q, m } if fuse::is_diagonal2(&m) => {
            *global = *global * m[0][0];
            let rel = m[1][1] * m[0][0].conj();
            if close(rel, Complex::ONE) {
                DiagClass::Absorbed
            } else {
                DiagClass::Term(kernels::DiagTerm::One {
                    q,
                    p: [Complex::ONE, rel],
                })
            }
        }
        FusedOp::TwoQ { a, b, m } if fuse::is_diagonal4(&m) => {
            // Orient to qlo < qhi: transposing the index bits of a
            // diagonal swaps the |01⟩ and |10⟩ entries.
            let raw = [m[0][0], m[1][1], m[2][2], m[3][3]];
            let (qlo, qhi, d) = if a < b {
                (a, b, raw)
            } else {
                (b, a, [raw[0], raw[2], raw[1], raw[3]])
            };
            *global = *global * d[0];
            let rel = [
                Complex::ONE,
                d[1] * d[0].conj(),
                d[2] * d[0].conj(),
                d[3] * d[0].conj(),
            ];
            if rel[1..].iter().all(|&z| close(z, Complex::ONE)) {
                DiagClass::Absorbed
            } else {
                DiagClass::Term(kernels::DiagTerm::Two { qlo, qhi, d: rel })
            }
        }
        _ => DiagClass::Opaque,
    }
}

/// Shortest run worth the hierarchical sweep: below this each term's
/// specialized kernel (which touches only the affected subspace) is
/// cheaper than one full-state pass.
const MIN_DIAG_RUN: usize = 4;

/// Most distinct qubits per batched run: the hierarchical sweep's
/// bookkeeping tree has one node per setting of the run's qubits, so an
/// unbounded run on an n-qubit register would cost as much as the naive
/// per-index evaluation it replaces.
const MAX_DIAG_RUN_QUBITS: u32 = 12;

/// Pending batch of consecutive diagonal factors.
struct DiagRun {
    terms: Vec<kernels::DiagTerm>,
    qubits: u64,
}

impl DiagRun {
    fn new() -> Self {
        DiagRun {
            terms: Vec::new(),
            qubits: 0,
        }
    }

    /// Adds a term, flushing first when the run's qubit budget would
    /// overflow.
    fn push(&mut self, amps: &mut [Complex], term: kernels::DiagTerm, parallel: bool) {
        let mask = match term {
            kernels::DiagTerm::One { q, .. } => 1u64 << q,
            kernels::DiagTerm::Two { qlo, qhi, .. } => (1u64 << qlo) | (1u64 << qhi),
        };
        if (self.qubits | mask).count_ones() > MAX_DIAG_RUN_QUBITS {
            self.flush(amps, parallel);
        }
        self.qubits |= mask;
        self.terms.push(term);
    }

    /// Applies and clears the pending run: long runs via the batched
    /// hierarchical sweep, short ones through the per-term kernels
    /// (identical numerics to unbatched dispatch).
    fn flush(&mut self, amps: &mut [Complex], parallel: bool) {
        if self.terms.len() >= MIN_DIAG_RUN {
            kernels::apply_diag_run(amps, &self.terms, parallel);
        } else {
            for term in &self.terms {
                apply_diag_term(amps, term, parallel);
            }
        }
        self.terms.clear();
        self.qubits = 0;
    }
}

/// Applies one normalized diagonal term through the specialized
/// sub-space kernels (the pre-batching dispatch, kept for short runs).
fn apply_diag_term(amps: &mut [Complex], term: &kernels::DiagTerm, parallel: bool) {
    match *term {
        kernels::DiagTerm::One { q, p } => phase_dispatch(amps, q, p[1], parallel),
        kernels::DiagTerm::Two { qlo, qhi, d } => {
            if close(d[1], Complex::ONE) && close(d[2], Complex::ONE) {
                // Controlled-phase shape: only the |11⟩ subspace moves.
                if !close(d[3], Complex::ONE) {
                    if parallel {
                        kernels::phase_both_parallel(amps, qlo, qhi, d[3]);
                    } else {
                        kernels::phase_both(amps, qlo, qhi, d[3]);
                    }
                }
            } else if parallel {
                kernels::diag_2q_parallel(amps, qlo, qhi, d);
            } else {
                kernels::diag_2q(amps, qlo, qhi, d);
            }
        }
    }
}

/// Applies one fused op, deferring block-common unit-modulus factors
/// into `global`.
///
/// Diagonal ops delegate to [`classify_diag`] + [`apply_diag_term`] —
/// the same normalization the run batcher uses — so the d₀-deferral
/// logic exists in one place. (In `State::run` the batcher intercepts
/// diagonal ops before this function; the delegation keeps any other
/// caller exactly equivalent.)
fn apply_fused(amps: &mut [Complex], op: FusedOp, parallel: bool, global: &mut Complex) {
    match classify_diag(&op, global) {
        DiagClass::Term(term) => {
            apply_diag_term(amps, &term, parallel);
            return;
        }
        DiagClass::Absorbed => return,
        DiagClass::Opaque => {}
    }
    match op {
        FusedOp::OneQ { q, m } => apply_1q_dispatch(amps, q, m, parallel),
        FusedOp::TwoQ { a, b, m } => {
            let (qlo, qhi, m) = if a < b {
                (a, b, m)
            } else {
                (b, a, fuse::transpose_qubits(m))
            };
            if apply_2q_monomial(amps, qlo, qhi, &m, parallel, global) {
                // Monomial block (a CNOT/SWAP possibly dressed with
                // diagonal phases): dispatched as a masked phase sweep
                // plus the contiguous-run swap kernels instead of a
                // dense 4×4 pass.
            } else if parallel {
                kernels::apply_2q_parallel(amps, qlo, qhi, m);
            } else {
                kernels::apply_2q(amps, qlo, qhi, m);
            }
        }
        FusedOp::Passthrough(g) => apply_kernel(amps, &g, parallel),
    }
}

/// Dispatches `m` to the cheap kernels when it is *monomial*: exactly
/// one nonzero entry per column, i.e. a basis permutation dressed with
/// phases, `M = P·D` (a CNOT or SWAP block with only diagonal factors
/// merged in — the fuser's cost model keeps these from densifying).
/// The diagonal factor is applied first as a masked phase sweep (its
/// common phase deferred into `global`), then the permutation through
/// the contiguous-run swap kernels; the dense 4×4 pass this replaces
/// costs roughly twice as much on such blocks. Returns `false` when
/// `m` is not monomial or its permutation has no specialized kernel.
fn apply_2q_monomial(
    amps: &mut [Complex],
    qlo: usize,
    qhi: usize,
    m: &fuse::Mat4,
    parallel: bool,
    global: &mut Complex,
) -> bool {
    // Column v's single nonzero entry at row p[v] carries the phase
    // d[v]: M·x moves d[v]·x[v] to index p[v].
    let mut p = [0usize; 4];
    let mut d = [Complex::ZERO; 4];
    for v in 0..4 {
        let mut image = None;
        for (r, row) in m.iter().enumerate() {
            if row[v] != Complex::ZERO {
                if image.is_some() {
                    return false;
                }
                image = Some(r);
            }
        }
        let Some(r) = image else { return false };
        p[v] = r;
        d[v] = m[r][v];
    }
    // Index convention: v = bit(qlo) + 2·bit(qhi). Permutations other
    // than these (X-dressed variants) have no specialized kernel and
    // stay on the dense path — they are rare and correct there.
    if !matches!(p, [0, 1, 2, 3] | [0, 3, 2, 1] | [0, 1, 3, 2] | [0, 2, 1, 3]) {
        return false;
    }
    // Apply D first: |d| = 1 up to rounding (products of unit-modulus
    // entries), so the common phase defers into `global` exactly as in
    // the diagonal-block path.
    *global = *global * d[0];
    let rel = [
        Complex::ONE,
        d[1] * d[0].conj(),
        d[2] * d[0].conj(),
        d[3] * d[0].conj(),
    ];
    if !rel[1..].iter().all(|&z| close(z, Complex::ONE)) {
        apply_diag_term(amps, &kernels::DiagTerm::Two { qlo, qhi, d: rel }, parallel);
    }
    // Then P.
    match p {
        // Identity (e.g. CNOT·CNOT merged): nothing to move.
        [0, 1, 2, 3] => {}
        // Flip qhi when qlo is set: CNOT(ctrl = qlo, target = qhi).
        [0, 3, 2, 1] => {
            if parallel {
                kernels::controlled_x_parallel(amps, 1usize << qlo, qhi);
            } else {
                kernels::controlled_x(amps, 1usize << qlo, qhi);
            }
        }
        // Flip qlo when qhi is set: CNOT(ctrl = qhi, target = qlo).
        [0, 1, 3, 2] => {
            if parallel {
                kernels::controlled_x_parallel(amps, 1usize << qhi, qlo);
            } else {
                kernels::controlled_x(amps, 1usize << qhi, qlo);
            }
        }
        // Exchange the mixed basis states: SWAP.
        [0, 2, 1, 3] => {
            if parallel {
                kernels::swap_qubits_parallel(amps, qlo, qhi);
            } else {
                kernels::swap_qubits(amps, qlo, qhi);
            }
        }
        _ => unreachable!("permutation was checked above"),
    }
    true
}

/// Routes a single-qubit matrix to the diagonal or general kernel.
fn apply_1q_dispatch(amps: &mut [Complex], q: usize, m: [[Complex; 2]; 2], parallel: bool) {
    if fuse::is_diagonal2(&m) {
        if parallel {
            kernels::diag_1q_parallel(amps, q, m[0][0], m[1][1]);
        } else {
            kernels::diag_1q(amps, q, m[0][0], m[1][1]);
        }
    } else if parallel {
        kernels::apply_1q_parallel(amps, q, m);
    } else {
        kernels::apply_1q(amps, q, m);
    }
}

/// Optimized single-gate dispatch.
/// True for multi-qubit gates whose operands repeat (`cx q, q` and
/// friends — constructible from QASM, which only range-checks).
fn has_repeated_operands(gate: &Gate) -> bool {
    match *gate {
        Gate::Cnot(a, b)
        | Gate::Cz(a, b)
        | Gate::Cphase(a, b, _)
        | Gate::Zz(a, b, _)
        | Gate::Xx(a, b, _)
        | Gate::Swap(a, b) => a == b,
        Gate::Toffoli(a, b, c) => a == b || b == c || a == c,
        _ => false,
    }
}

fn apply_kernel(amps: &mut [Complex], gate: &Gate, parallel: bool) {
    // The structured kernels assume distinct operand bits; degenerate
    // gates keep the seed's (naive-path) semantics — e.g. `Cz(q, q)`
    // acts as `Z(q)`, `Cnot(q, q)` as identity.
    if has_repeated_operands(gate) {
        naive::apply_naive(amps, gate);
        return;
    }
    match *gate {
        Gate::Barrier => {}
        Gate::Measure(_) | Gate::Reset(_) => {
            panic!("state-vector verifier cannot measure or reset")
        }
        // Diagonal single-qubit gates: phase sweeps over half the array.
        Gate::Z(q) => phase_dispatch(amps, q.index(), Complex::new(-1.0, 0.0), parallel),
        Gate::S(q) => phase_dispatch(amps, q.index(), Complex::I, parallel),
        Gate::Sdg(q) => phase_dispatch(amps, q.index(), -Complex::I, parallel),
        Gate::T(q) => phase_dispatch(
            amps,
            q.index(),
            Complex::cis(std::f64::consts::FRAC_PI_4),
            parallel,
        ),
        Gate::Tdg(q) => phase_dispatch(
            amps,
            q.index(),
            Complex::cis(-std::f64::consts::FRAC_PI_4),
            parallel,
        ),
        Gate::Rz(q, t) => {
            let (lo, hi) = (Complex::cis(-t / 2.0), Complex::cis(t / 2.0));
            if parallel {
                kernels::diag_1q_parallel(amps, q.index(), lo, hi);
            } else {
                kernels::diag_1q(amps, q.index(), lo, hi);
            }
        }
        // Remaining single-qubit unitaries: pair-indexed 2×2 kernel.
        Gate::H(_)
        | Gate::X(_)
        | Gate::Y(_)
        | Gate::SqrtX(_)
        | Gate::SqrtY(_)
        | Gate::Rx(..)
        | Gate::Ry(..) => {
            let (q, m) = fuse::matrix_1q(gate).expect("single-qubit gate has a matrix");
            apply_1q_dispatch(amps, q, m, parallel);
        }
        // Two-qubit diagonal gates.
        Gate::Cz(a, b) => {
            let phase = Complex::new(-1.0, 0.0);
            if parallel {
                kernels::phase_both_parallel(amps, a.index(), b.index(), phase);
            } else {
                kernels::phase_both(amps, a.index(), b.index(), phase);
            }
        }
        Gate::Cphase(a, b, lambda) => {
            let phase = Complex::cis(lambda);
            if parallel {
                kernels::phase_both_parallel(amps, a.index(), b.index(), phase);
            } else {
                kernels::phase_both(amps, a.index(), b.index(), phase);
            }
        }
        Gate::Zz(a, b, t) => {
            let (same, diff) = (Complex::cis(-t / 2.0), Complex::cis(t / 2.0));
            if parallel {
                kernels::phase_parity_parallel(amps, a.index(), b.index(), same, diff);
            } else {
                kernels::phase_parity(amps, a.index(), b.index(), same, diff);
            }
        }
        // Permutation gates: contiguous-run swaps, fanned out over
        // disjoint block ranges on large states (a single core is
        // memcpy-bound, but multiple cores multiply the bandwidth).
        Gate::Cnot(c, t) => {
            if parallel {
                kernels::controlled_x_parallel(amps, 1usize << c.index(), t.index());
            } else {
                kernels::controlled_x(amps, 1usize << c.index(), t.index());
            }
        }
        Gate::Swap(a, b) => {
            if parallel {
                kernels::swap_qubits_parallel(amps, a.index(), b.index());
            } else {
                kernels::swap_qubits(amps, a.index(), b.index());
            }
        }
        Gate::Toffoli(c0, c1, t) => {
            let mask = (1usize << c0.index()) | (1usize << c1.index());
            if parallel {
                kernels::controlled_x_parallel(amps, mask, t.index());
            } else {
                kernels::controlled_x(amps, mask, t.index());
            }
        }
        // The entangling workhorse.
        Gate::Xx(a, b, t) => {
            let cos = Complex::new((t / 2.0).cos(), 0.0);
            let isin = Complex::new(0.0, -(t / 2.0).sin());
            if parallel {
                kernels::xx_rotate_parallel(amps, a.index(), b.index(), cos, isin);
            } else {
                kernels::xx_rotate(amps, a.index(), b.index(), cos, isin);
            }
        }
    }
}

fn phase_dispatch(amps: &mut [Complex], q: usize, phase: Complex, parallel: bool) {
    if parallel {
        kernels::phase_1q_parallel(amps, q, phase);
    } else {
        kernels::phase_1q(amps, q, phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    use tilt_circuit::Qubit;

    const EPS: f64 = 1e-10;

    /// Checks two circuits implement the same unitary up to global phase
    /// by probing with random states.
    fn assert_equivalent(n: usize, c1: &Circuit, c2: &Circuit) {
        for seed in 0..3u64 {
            let probe = State::random(n, seed);
            let s1 = probe.clone().run(c1);
            let s2 = probe.run(c2);
            let f = s1.fidelity(&s2);
            assert!(
                (f - 1.0).abs() < EPS,
                "fidelity {f} for seed {seed}\nc1: {c1}\nc2: {c2}"
            );
        }
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(1));
        let s = State::zero(2).run(&c);
        assert!((s.probability_of(0b00) - 0.5).abs() < EPS);
        assert!((s.probability_of(0b11) - 0.5).abs() < EPS);
        assert!(s.probability_of(0b01) < EPS);
        assert!((s.norm_sq() - 1.0).abs() < EPS);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        for i in 1..4 {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        let s = State::zero(4).run(&c);
        assert!((s.probability_of(0) - 0.5).abs() < EPS);
        assert!((s.probability_of(0b1111) - 0.5).abs() < EPS);
    }

    #[test]
    fn unitarity_preserved_by_every_gate() {
        let gates: Vec<Gate> = vec![
            Gate::H(Qubit(0)),
            Gate::SqrtX(Qubit(1)),
            Gate::SqrtY(Qubit(2)),
            Gate::Rx(Qubit(0), 0.7),
            Gate::Ry(Qubit(1), -1.3),
            Gate::Rz(Qubit(2), 2.1),
            Gate::Cnot(Qubit(0), Qubit(1)),
            Gate::Cz(Qubit(1), Qubit(2)),
            Gate::Cphase(Qubit(0), Qubit(2), 0.9),
            Gate::Zz(Qubit(0), Qubit(1), 1.7),
            Gate::Xx(Qubit(1), Qubit(2), -0.6),
            Gate::Swap(Qubit(0), Qubit(2)),
            Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2)),
        ];
        let mut s = State::random(3, 42);
        for g in &gates {
            s.apply(g);
            assert!((s.norm_sq() - 1.0).abs() < EPS, "{g:?} broke unitarity");
        }
    }

    #[test]
    fn optimized_kernels_match_naive_per_gate() {
        let gates: Vec<Gate> = vec![
            Gate::H(Qubit(3)),
            Gate::X(Qubit(0)),
            Gate::Y(Qubit(4)),
            Gate::Z(Qubit(2)),
            Gate::S(Qubit(1)),
            Gate::Sdg(Qubit(3)),
            Gate::T(Qubit(0)),
            Gate::Tdg(Qubit(4)),
            Gate::SqrtX(Qubit(2)),
            Gate::SqrtY(Qubit(1)),
            Gate::Rx(Qubit(0), 0.7),
            Gate::Ry(Qubit(1), -1.3),
            Gate::Rz(Qubit(2), 2.1),
            Gate::Cnot(Qubit(0), Qubit(3)),
            Gate::Cnot(Qubit(3), Qubit(0)),
            Gate::Cz(Qubit(1), Qubit(4)),
            Gate::Cphase(Qubit(4), Qubit(0), 0.9),
            Gate::Zz(Qubit(0), Qubit(2), 1.7),
            Gate::Xx(Qubit(1), Qubit(3), -0.6),
            Gate::Xx(Qubit(4), Qubit(1), 0.4),
            Gate::Swap(Qubit(0), Qubit(4)),
            Gate::Swap(Qubit(4), Qubit(2)),
            Gate::Toffoli(Qubit(0), Qubit(1), Qubit(3)),
            Gate::Toffoli(Qubit(4), Qubit(2), Qubit(0)),
        ];
        let mut fast = State::random(5, 7);
        let mut slow = fast.clone();
        for g in &gates {
            fast.apply(g);
            slow.apply_naive(g);
            for x in 0..32 {
                let (a, b) = (fast.amplitude(x), slow.amplitude(x));
                assert!(
                    (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12,
                    "{g:?} diverged at index {x}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn pauli_identities() {
        // X = H Z H.
        let mut lhs = Circuit::new(1);
        lhs.x(Qubit(0));
        let mut rhs = Circuit::new(1);
        rhs.h(Qubit(0)).z(Qubit(0)).h(Qubit(0));
        assert_equivalent(1, &lhs, &rhs);
        // S·S = Z, T·T = S.
        let mut ss = Circuit::new(1);
        ss.s(Qubit(0)).s(Qubit(0));
        let mut z = Circuit::new(1);
        z.z(Qubit(0));
        assert_equivalent(1, &ss, &z);
        let mut tt = Circuit::new(1);
        tt.t(Qubit(0)).t(Qubit(0));
        let mut s1 = Circuit::new(1);
        s1.s(Qubit(0));
        assert_equivalent(1, &tt, &s1);
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let mut sxsx = Circuit::new(1);
        sxsx.push(Gate::SqrtX(Qubit(0))).push(Gate::SqrtX(Qubit(0)));
        let mut x = Circuit::new(1);
        x.x(Qubit(0));
        assert_equivalent(1, &sxsx, &x);
        let mut sysy = Circuit::new(1);
        sysy.push(Gate::SqrtY(Qubit(0))).push(Gate::SqrtY(Qubit(0)));
        let mut y = Circuit::new(1);
        y.y(Qubit(0));
        assert_equivalent(1, &sysy, &y);
    }

    #[test]
    fn cz_is_symmetric_and_hadamard_conjugate_of_cnot() {
        let mut ab = Circuit::new(2);
        ab.cz(Qubit(0), Qubit(1));
        let mut ba = Circuit::new(2);
        ba.cz(Qubit(1), Qubit(0));
        assert_equivalent(2, &ab, &ba);
        let mut viacx = Circuit::new(2);
        viacx.h(Qubit(1)).cnot(Qubit(0), Qubit(1)).h(Qubit(1));
        assert_equivalent(2, &ab, &viacx);
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut sw = Circuit::new(2);
        sw.swap(Qubit(0), Qubit(1));
        let mut cx3 = Circuit::new(2);
        cx3.cnot(Qubit(0), Qubit(1))
            .cnot(Qubit(1), Qubit(0))
            .cnot(Qubit(0), Qubit(1));
        assert_equivalent(2, &sw, &cx3);
    }

    #[test]
    fn zz_via_cnot_conjugation() {
        // ZZ(θ) = CX · Rz_t(θ) · CX.
        let theta = 0.83;
        let mut zz = Circuit::new(2);
        zz.zz(Qubit(0), Qubit(1), theta);
        let mut via = Circuit::new(2);
        via.cnot(Qubit(0), Qubit(1))
            .rz(Qubit(1), theta)
            .cnot(Qubit(0), Qubit(1));
        assert_equivalent(2, &zz, &via);
    }

    #[test]
    fn xx_is_hadamard_conjugated_zz() {
        let theta = -1.1;
        let mut xx = Circuit::new(2);
        xx.xx(Qubit(0), Qubit(1), theta);
        let mut via = Circuit::new(2);
        via.h(Qubit(0)).h(Qubit(1));
        via.zz(Qubit(0), Qubit(1), theta);
        via.h(Qubit(0)).h(Qubit(1));
        assert_equivalent(2, &xx, &via);
    }

    #[test]
    fn cphase_from_rz_and_cnots() {
        let lambda = 1.9;
        let mut cp = Circuit::new(2);
        cp.cphase(Qubit(0), Qubit(1), lambda);
        let mut via = Circuit::new(2);
        via.rz(Qubit(0), lambda / 2.0);
        via.cnot(Qubit(0), Qubit(1));
        via.rz(Qubit(1), -lambda / 2.0);
        via.cnot(Qubit(0), Qubit(1));
        via.rz(Qubit(1), lambda / 2.0);
        assert_equivalent(2, &cp, &via);
    }

    #[test]
    fn toffoli_truth_table() {
        for x in 0..8usize {
            let mut c = Circuit::new(3);
            c.toffoli(Qubit(0), Qubit(1), Qubit(2));
            let s = State::basis(3, x).run(&c);
            let expect = if x & 0b011 == 0b011 { x ^ 0b100 } else { x };
            assert!((s.probability_of(expect) - 1.0).abs() < EPS, "input {x}");
        }
    }

    #[test]
    fn permute_qubits_relabels() {
        // |q0=1, q1=0, q2=0⟩ = |001⟩; sending q0 → q2 gives |100⟩.
        let s = State::basis(3, 0b001);
        let p = s.permute_qubits(&[2, 1, 0]);
        assert!((p.probability_of(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_duplicates() {
        State::zero(2).permute_qubits(&[0, 0]);
    }

    #[test]
    fn rotations_compose_to_identity() {
        let mut c = Circuit::new(1);
        c.rx(Qubit(0), FRAC_PI_2)
            .rx(Qubit(0), -FRAC_PI_2)
            .ry(Qubit(0), PI)
            .ry(Qubit(0), -PI)
            .rz(Qubit(0), FRAC_PI_4)
            .rz(Qubit(0), -FRAC_PI_4);
        assert_equivalent(1, &c, &Circuit::new(1));
    }

    #[test]
    fn try_zero_respects_cap() {
        assert!(State::try_zero_with_cap(10, 10).is_ok());
        let err = State::try_zero_with_cap(11, 10).unwrap_err();
        assert_eq!(
            err,
            StateError::TooManyQubits {
                n_qubits: 11,
                cap: 10
            }
        );
        // Caps above the default are honoured (2^25 amplitudes = 512 MiB
        // would succeed; use a width that stays cheap to keep CI fast).
        assert!(State::try_zero_with_cap(4, 30).is_ok());
    }

    #[test]
    fn try_zero_rejects_absurd_widths_gracefully() {
        // Wider than the pointer size can even index: must be an Err,
        // not a shift overflow.
        let err = State::try_zero_with_cap(200, 300).unwrap_err();
        assert!(matches!(err, StateError::TooManyQubits { .. }));
    }

    #[test]
    #[should_panic(expected = "default qubit cap")]
    fn zero_still_panics_beyond_default_cap() {
        State::zero(DEFAULT_MAX_QUBITS + 1);
    }

    #[test]
    fn degenerate_same_operand_gates_match_naive() {
        // `cx q, q` and friends are constructible (QASM only
        // range-checks); the optimized paths must keep the seed's
        // semantics for them, e.g. Cz(q,q) ≡ Z(q), Cnot(q,q) ≡ I.
        let gates = [
            Gate::Cnot(Qubit(1), Qubit(1)),
            Gate::Cz(Qubit(2), Qubit(2)),
            Gate::Cphase(Qubit(0), Qubit(0), 0.7),
            Gate::Zz(Qubit(1), Qubit(1), 1.3),
            Gate::Xx(Qubit(2), Qubit(2), -0.9),
            Gate::Swap(Qubit(0), Qubit(0)),
            Gate::Toffoli(Qubit(0), Qubit(0), Qubit(2)),
            Gate::Toffoli(Qubit(0), Qubit(2), Qubit(2)),
        ];
        for g in &gates {
            let mut c = Circuit::new(3);
            c.h(Qubit(0)).push(*g).t(Qubit(1));
            let probe = State::random(3, 5);
            let mut fast = probe.clone();
            let mut slow = probe.clone();
            fast.apply(g);
            slow.apply_naive(g);
            assert_eq!(fast, slow, "{g:?} diverged in apply");
            let fused = probe.clone().run(&c);
            let reference = probe.run_naive(&c);
            let f = fused.fidelity(&reference);
            assert!((f - 1.0).abs() < 1e-12, "{g:?} diverged in run: {f}");
        }
    }

    #[test]
    #[should_panic(expected = "outside the register")]
    fn apply_rejects_out_of_range_operand() {
        // The naive path panics on out-of-range operands (raw index out
        // of bounds); the optimized kernels must be just as loud rather
        // than silently applying nothing.
        State::zero(2).apply(&Gate::H(Qubit(5)));
    }

    #[test]
    #[should_panic(expected = "outside the register")]
    fn apply_rejects_out_of_range_two_qubit_operand() {
        State::zero(3).apply(&Gate::Cnot(Qubit(0), Qubit(7)));
    }

    #[test]
    fn run_options_paths_agree() {
        let mut c = Circuit::new(6);
        c.h(Qubit(0));
        for i in 0..5 {
            c.cnot(Qubit(i), Qubit(i + 1));
            c.t(Qubit(i));
            c.rz(Qubit(i + 1), 0.3 + i as f64 * 0.1);
        }
        c.cphase(Qubit(0), Qubit(5), 1.1)
            .zz(Qubit(2), Qubit(4), -0.8);
        let probe = State::random(6, 99);
        let fused = probe.clone().run_with(&c, RunOptions::optimized());
        let unfused = probe.clone().run_with(&c, RunOptions::serial_unfused());
        let forced_par = probe.clone().run_with(
            &c,
            RunOptions {
                fuse: true,
                parallel: Some(true),
            },
        );
        let reference = probe.run_naive(&c);
        for s in [&fused, &unfused, &forced_par] {
            assert!((s.fidelity(&reference) - 1.0).abs() < 1e-12);
        }
    }
}
