//! Dense state vectors and gate application.
//!
//! Conventions (all standard / OpenQASM):
//!
//! * Basis index bit `q` is the state of qubit `q` (qubit 0 = LSB).
//! * `Rp(θ) = exp(-iθ/2 P)` for `P ∈ {X, Y, Z}`.
//! * `XX(θ) = exp(-iθ/2 X⊗X)` (the Mølmer–Sørensen interaction; `θ = ±π/2`
//!   is maximally entangling), `ZZ(θ) = exp(-iθ/2 Z⊗Z)`.
//! * `CPhase(λ) = diag(1, 1, 1, e^{iλ})`.

use crate::complex::Complex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::{Circuit, Gate};

/// A pure quantum state over `n` qubits (`2^n` amplitudes).
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    n_qubits: usize,
    amps: Vec<Complex>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `n_qubits > 24` (the dense vector would not fit).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 24, "dense simulation beyond 24 qubits");
        let mut amps = vec![Complex::ZERO; 1 << n_qubits];
        amps[0] = Complex::ONE;
        State { n_qubits, amps }
    }

    /// A basis state `|x⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has bits above `n_qubits`.
    pub fn basis(n_qubits: usize, x: usize) -> Self {
        assert!(x < (1usize << n_qubits), "basis index out of range");
        let mut s = State::zero(n_qubits);
        s.amps[0] = Complex::ZERO;
        s.amps[x] = Complex::ONE;
        s
    }

    /// A reproducible Haar-ish random state (normalized Gaussian-free
    /// uniform components — adequate for equivalence probing).
    pub fn random(n_qubits: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut amps: Vec<Complex> = (0..1usize << n_qubits)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sq()).sum::<f64>().sqrt();
        for a in amps.iter_mut() {
            *a = a.scale(1.0 / norm);
        }
        State { n_qubits, amps }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude of basis state `x`.
    pub fn amplitude(&self, x: usize) -> Complex {
        self.amps[x]
    }

    /// `|⟨x|ψ⟩|²`.
    pub fn probability_of(&self, x: usize) -> f64 {
        self.amps[x].norm_sq()
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on register-width mismatch.
    pub fn inner(&self, other: &State) -> Complex {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// `|⟨self|other⟩|²` — 1.0 iff the states agree up to global phase.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sq()
    }

    /// Total probability (should be 1 for any unitary evolution).
    pub fn norm_sq(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }

    /// Applies `gate` in place.
    ///
    /// # Panics
    ///
    /// Panics on [`Gate::Measure`] (this is a pure-state verifier) and on
    /// operands outside the register.
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::Barrier => {}
            Gate::Measure(_) => panic!("state-vector verifier cannot measure"),
            Gate::H(q) => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                self.apply_1q(
                    q.index(),
                    [
                        [Complex::new(s, 0.0), Complex::new(s, 0.0)],
                        [Complex::new(s, 0.0), Complex::new(-s, 0.0)],
                    ],
                );
            }
            Gate::X(q) => self.apply_1q(
                q.index(),
                [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
            ),
            Gate::Y(q) => self.apply_1q(
                q.index(),
                [
                    [Complex::ZERO, -Complex::I],
                    [Complex::I, Complex::ZERO],
                ],
            ),
            Gate::Z(q) => self.phase_if(|x, m| x & m != 0, q.index(), Complex::new(-1.0, 0.0)),
            Gate::S(q) => self.phase_if(|x, m| x & m != 0, q.index(), Complex::I),
            Gate::Sdg(q) => self.phase_if(|x, m| x & m != 0, q.index(), -Complex::I),
            Gate::T(q) => self.phase_if(
                |x, m| x & m != 0,
                q.index(),
                Complex::cis(std::f64::consts::FRAC_PI_4),
            ),
            Gate::Tdg(q) => self.phase_if(
                |x, m| x & m != 0,
                q.index(),
                Complex::cis(-std::f64::consts::FRAC_PI_4),
            ),
            Gate::SqrtX(q) => {
                // √X = e^{iπ/4}·Rx(π/2).
                let p = Complex::new(0.5, 0.5);
                let m = Complex::new(0.5, -0.5);
                self.apply_1q(q.index(), [[p, m], [m, p]]);
            }
            Gate::SqrtY(q) => {
                // √Y = e^{iπ/4}·Ry(π/2).
                let p = Complex::new(0.5, 0.5);
                self.apply_1q(q.index(), [[p, -p], [p, p]]);
            }
            Gate::Rx(q, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.apply_1q(
                    q.index(),
                    [
                        [Complex::new(c, 0.0), Complex::new(0.0, -s)],
                        [Complex::new(0.0, -s), Complex::new(c, 0.0)],
                    ],
                );
            }
            Gate::Ry(q, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.apply_1q(
                    q.index(),
                    [
                        [Complex::new(c, 0.0), Complex::new(-s, 0.0)],
                        [Complex::new(s, 0.0), Complex::new(c, 0.0)],
                    ],
                );
            }
            Gate::Rz(q, t) => {
                let m = 1usize << q.index();
                for (x, a) in self.amps.iter_mut().enumerate() {
                    let phase = if x & m == 0 { -t / 2.0 } else { t / 2.0 };
                    *a = *a * Complex::cis(phase);
                }
            }
            Gate::Cnot(c, t) => {
                let (mc, mt) = (1usize << c.index(), 1usize << t.index());
                for x in 0..self.amps.len() {
                    if x & mc != 0 && x & mt == 0 {
                        self.amps.swap(x, x | mt);
                    }
                }
            }
            Gate::Cz(a, b) => {
                let m = (1usize << a.index()) | (1usize << b.index());
                for (x, amp) in self.amps.iter_mut().enumerate() {
                    if x & m == m {
                        *amp = -*amp;
                    }
                }
            }
            Gate::Cphase(a, b, lambda) => {
                let m = (1usize << a.index()) | (1usize << b.index());
                let phase = Complex::cis(lambda);
                for (x, amp) in self.amps.iter_mut().enumerate() {
                    if x & m == m {
                        *amp = *amp * phase;
                    }
                }
            }
            Gate::Zz(a, b, t) => {
                let (ma, mb) = (1usize << a.index(), 1usize << b.index());
                let same = Complex::cis(-t / 2.0);
                let diff = Complex::cis(t / 2.0);
                for (x, amp) in self.amps.iter_mut().enumerate() {
                    let parity = ((x & ma != 0) as u8) ^ ((x & mb != 0) as u8);
                    *amp = *amp * if parity == 0 { same } else { diff };
                }
            }
            Gate::Xx(a, b, t) => {
                let mask = (1usize << a.index()) | (1usize << b.index());
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                let cos = Complex::new(c, 0.0);
                let isin = Complex::new(0.0, -s);
                for x in 0..self.amps.len() {
                    let y = x ^ mask;
                    if x < y {
                        let (ax, ay) = (self.amps[x], self.amps[y]);
                        self.amps[x] = cos * ax + isin * ay;
                        self.amps[y] = cos * ay + isin * ax;
                    }
                }
            }
            Gate::Swap(a, b) => {
                let (ma, mb) = (1usize << a.index(), 1usize << b.index());
                for x in 0..self.amps.len() {
                    if x & ma != 0 && x & mb == 0 {
                        self.amps.swap(x, (x & !ma) | mb);
                    }
                }
            }
            Gate::Toffoli(c0, c1, t) => {
                let (m0, m1, mt) = (
                    1usize << c0.index(),
                    1usize << c1.index(),
                    1usize << t.index(),
                );
                for x in 0..self.amps.len() {
                    if x & m0 != 0 && x & m1 != 0 && x & mt == 0 {
                        self.amps.swap(x, x | mt);
                    }
                }
            }
        }
    }

    /// Applies every gate of `circuit` in program order, consuming and
    /// returning the state for chaining.
    pub fn run(mut self, circuit: &Circuit) -> State {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for g in circuit.iter() {
            self.apply(g);
        }
        self
    }

    /// Relabels qubits: qubit `q` of `self` becomes qubit `perm[q]` of the
    /// result. Used to compare routed physical states (where data ended at
    /// permuted tape positions) against logical references.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n_qubits`.
    pub fn permute_qubits(&self, perm: &[usize]) -> State {
        assert_eq!(perm.len(), self.n_qubits, "permutation width mismatch");
        let mut seen = vec![false; self.n_qubits];
        for &p in perm {
            assert!(p < self.n_qubits && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = vec![Complex::ZERO; self.amps.len()];
        for (x, amp) in self.amps.iter().enumerate() {
            let mut y = 0usize;
            for (q, &p) in perm.iter().enumerate() {
                if x & (1 << q) != 0 {
                    y |= 1 << p;
                }
            }
            out[y] = *amp;
        }
        State {
            n_qubits: self.n_qubits,
            amps: out,
        }
    }

    /// Applies a general single-qubit matrix `[[m00, m01], [m10, m11]]`.
    fn apply_1q(&mut self, q: usize, m: [[Complex; 2]; 2]) {
        let mask = 1usize << q;
        for x in 0..self.amps.len() {
            if x & mask == 0 {
                let y = x | mask;
                let (a0, a1) = (self.amps[x], self.amps[y]);
                self.amps[x] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[y] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Multiplies the amplitude of every basis state satisfying the
    /// predicate by `phase`.
    fn phase_if(&mut self, pred: fn(usize, usize) -> bool, q: usize, phase: Complex) {
        let mask = 1usize << q;
        for (x, amp) in self.amps.iter_mut().enumerate() {
            if pred(x, mask) {
                *amp = *amp * phase;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    use tilt_circuit::Qubit;

    const EPS: f64 = 1e-10;

    /// Checks two circuits implement the same unitary up to global phase
    /// by probing with random states.
    fn assert_equivalent(n: usize, c1: &Circuit, c2: &Circuit) {
        for seed in 0..3u64 {
            let probe = State::random(n, seed);
            let s1 = probe.clone().run(c1);
            let s2 = probe.run(c2);
            let f = s1.fidelity(&s2);
            assert!(
                (f - 1.0).abs() < EPS,
                "fidelity {f} for seed {seed}\nc1: {c1}\nc2: {c2}"
            );
        }
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(1));
        let s = State::zero(2).run(&c);
        assert!((s.probability_of(0b00) - 0.5).abs() < EPS);
        assert!((s.probability_of(0b11) - 0.5).abs() < EPS);
        assert!(s.probability_of(0b01) < EPS);
        assert!((s.norm_sq() - 1.0).abs() < EPS);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        for i in 1..4 {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        let s = State::zero(4).run(&c);
        assert!((s.probability_of(0) - 0.5).abs() < EPS);
        assert!((s.probability_of(0b1111) - 0.5).abs() < EPS);
    }

    #[test]
    fn unitarity_preserved_by_every_gate() {
        let gates: Vec<Gate> = vec![
            Gate::H(Qubit(0)),
            Gate::SqrtX(Qubit(1)),
            Gate::SqrtY(Qubit(2)),
            Gate::Rx(Qubit(0), 0.7),
            Gate::Ry(Qubit(1), -1.3),
            Gate::Rz(Qubit(2), 2.1),
            Gate::Cnot(Qubit(0), Qubit(1)),
            Gate::Cz(Qubit(1), Qubit(2)),
            Gate::Cphase(Qubit(0), Qubit(2), 0.9),
            Gate::Zz(Qubit(0), Qubit(1), 1.7),
            Gate::Xx(Qubit(1), Qubit(2), -0.6),
            Gate::Swap(Qubit(0), Qubit(2)),
            Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2)),
        ];
        let mut s = State::random(3, 42);
        for g in &gates {
            s.apply(g);
            assert!((s.norm_sq() - 1.0).abs() < EPS, "{g:?} broke unitarity");
        }
    }

    #[test]
    fn pauli_identities() {
        // X = H Z H.
        let mut lhs = Circuit::new(1);
        lhs.x(Qubit(0));
        let mut rhs = Circuit::new(1);
        rhs.h(Qubit(0)).z(Qubit(0)).h(Qubit(0));
        assert_equivalent(1, &lhs, &rhs);
        // S·S = Z, T·T = S.
        let mut ss = Circuit::new(1);
        ss.s(Qubit(0)).s(Qubit(0));
        let mut z = Circuit::new(1);
        z.z(Qubit(0));
        assert_equivalent(1, &ss, &z);
        let mut tt = Circuit::new(1);
        tt.t(Qubit(0)).t(Qubit(0));
        let mut s1 = Circuit::new(1);
        s1.s(Qubit(0));
        assert_equivalent(1, &tt, &s1);
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let mut sxsx = Circuit::new(1);
        sxsx.push(Gate::SqrtX(Qubit(0))).push(Gate::SqrtX(Qubit(0)));
        let mut x = Circuit::new(1);
        x.x(Qubit(0));
        assert_equivalent(1, &sxsx, &x);
        let mut sysy = Circuit::new(1);
        sysy.push(Gate::SqrtY(Qubit(0))).push(Gate::SqrtY(Qubit(0)));
        let mut y = Circuit::new(1);
        y.y(Qubit(0));
        assert_equivalent(1, &sysy, &y);
    }

    #[test]
    fn cz_is_symmetric_and_hadamard_conjugate_of_cnot() {
        let mut ab = Circuit::new(2);
        ab.cz(Qubit(0), Qubit(1));
        let mut ba = Circuit::new(2);
        ba.cz(Qubit(1), Qubit(0));
        assert_equivalent(2, &ab, &ba);
        let mut viacx = Circuit::new(2);
        viacx.h(Qubit(1)).cnot(Qubit(0), Qubit(1)).h(Qubit(1));
        assert_equivalent(2, &ab, &viacx);
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut sw = Circuit::new(2);
        sw.swap(Qubit(0), Qubit(1));
        let mut cx3 = Circuit::new(2);
        cx3.cnot(Qubit(0), Qubit(1))
            .cnot(Qubit(1), Qubit(0))
            .cnot(Qubit(0), Qubit(1));
        assert_equivalent(2, &sw, &cx3);
    }

    #[test]
    fn zz_via_cnot_conjugation() {
        // ZZ(θ) = CX · Rz_t(θ) · CX.
        let theta = 0.83;
        let mut zz = Circuit::new(2);
        zz.zz(Qubit(0), Qubit(1), theta);
        let mut via = Circuit::new(2);
        via.cnot(Qubit(0), Qubit(1))
            .rz(Qubit(1), theta)
            .cnot(Qubit(0), Qubit(1));
        assert_equivalent(2, &zz, &via);
    }

    #[test]
    fn xx_is_hadamard_conjugated_zz() {
        let theta = -1.1;
        let mut xx = Circuit::new(2);
        xx.xx(Qubit(0), Qubit(1), theta);
        let mut via = Circuit::new(2);
        via.h(Qubit(0)).h(Qubit(1));
        via.zz(Qubit(0), Qubit(1), theta);
        via.h(Qubit(0)).h(Qubit(1));
        assert_equivalent(2, &xx, &via);
    }

    #[test]
    fn cphase_from_rz_and_cnots() {
        let lambda = 1.9;
        let mut cp = Circuit::new(2);
        cp.cphase(Qubit(0), Qubit(1), lambda);
        let mut via = Circuit::new(2);
        via.rz(Qubit(0), lambda / 2.0);
        via.cnot(Qubit(0), Qubit(1));
        via.rz(Qubit(1), -lambda / 2.0);
        via.cnot(Qubit(0), Qubit(1));
        via.rz(Qubit(1), lambda / 2.0);
        assert_equivalent(2, &cp, &via);
    }

    #[test]
    fn toffoli_truth_table() {
        for x in 0..8usize {
            let mut c = Circuit::new(3);
            c.toffoli(Qubit(0), Qubit(1), Qubit(2));
            let s = State::basis(3, x).run(&c);
            let expect = if x & 0b011 == 0b011 { x ^ 0b100 } else { x };
            assert!((s.probability_of(expect) - 1.0).abs() < EPS, "input {x}");
        }
    }

    #[test]
    fn permute_qubits_relabels() {
        // |q0=1, q1=0, q2=0⟩ = |001⟩; sending q0 → q2 gives |100⟩.
        let s = State::basis(3, 0b001);
        let p = s.permute_qubits(&[2, 1, 0]);
        assert!((p.probability_of(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_duplicates() {
        State::zero(2).permute_qubits(&[0, 0]);
    }

    #[test]
    fn rotations_compose_to_identity() {
        let mut c = Circuit::new(1);
        c.rx(Qubit(0), FRAC_PI_2)
            .rx(Qubit(0), -FRAC_PI_2)
            .ry(Qubit(0), PI)
            .ry(Qubit(0), -PI)
            .rz(Qubit(0), FRAC_PI_4)
            .rz(Qubit(0), -FRAC_PI_4);
        assert_equivalent(1, &c, &Circuit::new(1));
    }
}
