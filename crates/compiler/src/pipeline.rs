//! The end-to-end LinQ pipeline (Fig. 4 of the paper).
//!
//! [`Compiler`] chains the three passes — native-gate decomposition, qubit
//! mapping + swap insertion, tape movement scheduling — and reports the
//! quantities the paper's evaluation tracks: swap counts and opposing
//! ratio (Fig. 6), move counts and tape travel (Table III), and the
//! wall-clock time of each pass (`t_swap`, `t_move` columns of Table III).

pub mod streaming;

use crate::decompose::decompose_into;
use crate::error::CompileError;
use crate::mapping::InitialMapping;
use crate::program::TiltProgram;
use crate::route::{RouteOutcome, RouterKind};
use crate::schedule::{schedule, SchedulerKind};
use crate::spec::DeviceSpec;
use std::time::{Duration, Instant};
use tilt_circuit::{validate, Circuit};

/// Per-compilation statistics (the paper's evaluation metrics).
#[derive(Clone, Debug, PartialEq)]
pub struct CompileReport {
    /// Inserted SWAP gates (Fig. 6b).
    pub swap_count: usize,
    /// Swaps classified as opposing (Fig. 2c / Fig. 6a numerator).
    pub opposing_swap_count: usize,
    /// `opposing_swap_count / swap_count`, 0 when no swaps (Fig. 6a).
    pub opposing_ratio: f64,
    /// Tape movements (`#moves`, Table III / Fig. 6c).
    pub move_count: usize,
    /// Total tape travel in ion spacings (×5 µm = Table III `dist`).
    pub move_distance_ions: usize,
    /// Native gates in the scheduled program (after lowering swaps).
    pub native_gate_count: usize,
    /// Two-qubit (`XX`) gates in the scheduled program, swaps included.
    pub native_two_qubit_count: usize,
    /// Wall-clock time of decomposition.
    pub t_decompose: Duration,
    /// Wall-clock time of mapping + swap insertion (`t_swap`, Table III).
    pub t_swap: Duration,
    /// Wall-clock time of tape scheduling (`t_move`, Table III).
    pub t_move: Duration,
}

/// Everything a compilation produces.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// The executable gate/move stream.
    pub program: TiltProgram,
    /// The routing outcome (physical circuit with explicit SWAPs, before
    /// swap lowering), kept for inspection and for the Fig. 6 metrics.
    pub routed: RouteOutcome,
    /// Aggregate statistics.
    pub report: CompileReport,
}

/// Reusable per-compilation buffers.
///
/// The pipeline's two transient allocations — the decomposed native
/// circuit and the swap-lowered physical circuit — live here so that a
/// caller compiling many circuits (the `tilt-engine` batch path) pays
/// for them once per worker instead of once per circuit. A fresh
/// default scratch reproduces the one-shot behaviour exactly: reuse
/// only recycles `Vec` capacity, never gate content.
#[derive(Clone, Debug, Default)]
pub struct CompileScratch {
    native: Circuit,
    lowered: Circuit,
}

impl CompileScratch {
    /// An empty scratch (no buffers reserved yet).
    pub fn new() -> Self {
        CompileScratch::default()
    }
}

/// The LinQ compiler: a configurable three-pass pipeline.
///
/// # Example
///
/// ```
/// use tilt_benchmarks::bv::bernstein_vazirani;
/// use tilt_compiler::{Compiler, DeviceSpec, RouterKind};
/// use tilt_compiler::route::LinqConfig;
///
/// let circuit = bernstein_vazirani(16, &[true; 15]);
/// let mut compiler = Compiler::new(DeviceSpec::new(16, 8)?);
/// compiler.router(RouterKind::Linq(LinqConfig::with_max_swap_len(6)));
/// let out = compiler.compile(&circuit)?;
/// assert!(out.report.swap_count > 0);
/// assert!(out.report.opposing_ratio >= 0.0);
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Compiler {
    spec: DeviceSpec,
    router: RouterKind,
    scheduler: SchedulerKind,
    initial_mapping: InitialMapping,
}

impl Compiler {
    /// A compiler for `spec` with the paper's defaults: LinQ routing,
    /// greedy max-executable scheduling, identity initial mapping.
    pub fn new(spec: DeviceSpec) -> Self {
        Compiler {
            spec,
            router: RouterKind::default(),
            scheduler: SchedulerKind::default(),
            initial_mapping: InitialMapping::default(),
        }
    }

    /// Selects the swap-insertion policy.
    pub fn router(&mut self, router: RouterKind) -> &mut Self {
        self.router = router;
        self
    }

    /// Selects the tape-scheduling policy.
    pub fn scheduler(&mut self, scheduler: SchedulerKind) -> &mut Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the initial-placement strategy.
    pub fn initial_mapping(&mut self, initial: InitialMapping) -> &mut Self {
        self.initial_mapping = initial;
        self
    }

    /// The targeted device.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// Runs the full pipeline on `circuit`.
    ///
    /// # Errors
    ///
    /// Fails when the circuit is structurally invalid, wider than the
    /// tape, or the router configuration is inconsistent with the device.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompileOutput, CompileError> {
        self.compile_with_scratch(circuit, &mut CompileScratch::new())
    }

    /// [`Compiler::compile`] with caller-owned scratch buffers.
    ///
    /// Produces the identical [`CompileOutput`] (same program bytes, same
    /// statistics); the scratch only recycles allocation capacity between
    /// calls. Use one scratch per worker when compiling batches.
    ///
    /// # Errors
    ///
    /// As [`Compiler::compile`].
    pub fn compile_with_scratch(
        &self,
        circuit: &Circuit,
        scratch: &mut CompileScratch,
    ) -> Result<CompileOutput, CompileError> {
        validate(circuit)?;
        if circuit.n_qubits() > self.spec.n_ions() {
            return Err(CompileError::CircuitTooWide {
                circuit_qubits: circuit.n_qubits(),
                n_ions: self.spec.n_ions(),
            });
        }

        // Pass 1: native-gate decomposition (§IV-B).
        let t0 = Instant::now();
        decompose_into(circuit, &mut scratch.native);
        let native = &scratch.native;
        let t_decompose = t0.elapsed();

        // Pass 2: mapping + swap insertion (§IV-C).
        let t1 = Instant::now();
        let initial = self.initial_mapping.build(native, self.spec.n_ions());
        let routed = self.router.route(native, self.spec, &initial)?;
        let t_swap = t1.elapsed();

        // Lower the inserted SWAPs to native gates (3 XX each), then
        // pass 3: tape scheduling (§IV-D).
        let t2 = Instant::now();
        decompose_into(&routed.circuit, &mut scratch.lowered);
        let program = schedule(&scratch.lowered, self.spec, self.scheduler);
        let t_move = t2.elapsed();

        let report = CompileReport {
            swap_count: routed.swap_count,
            opposing_swap_count: routed.opposing_swap_count,
            opposing_ratio: routed.opposing_ratio(),
            move_count: program.move_count(),
            move_distance_ions: program.move_distance_ions(),
            native_gate_count: program.gate_count(),
            native_two_qubit_count: program.two_qubit_gate_count(),
            t_decompose,
            t_swap,
            t_move,
        };
        Ok(CompileOutput {
            program,
            routed,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{LinqConfig, StochasticConfig};
    use tilt_circuit::{Gate, Qubit};

    fn compile(c: &Circuit, n: usize, head: usize) -> CompileOutput {
        Compiler::new(DeviceSpec::new(n, head).unwrap())
            .compile(c)
            .unwrap()
    }

    #[test]
    fn end_to_end_small_circuit() {
        let mut c = Circuit::new(8);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(7));
        let out = compile(&c, 8, 4);
        // CNOT over distance 7 on head 4 needs at least one swap.
        assert!(out.report.swap_count >= 1);
        // Program contains only native gates.
        for (g, _) in out.program.gates() {
            assert!(g.is_native(), "{g:?}");
        }
    }

    #[test]
    fn program_preserves_xx_count_with_swap_overhead() {
        let mut c = Circuit::new(12);
        c.cnot(Qubit(0), Qubit(11));
        let out = compile(&c, 12, 4);
        // 1 XX for the CNOT + 3 per inserted swap.
        assert_eq!(
            out.program.two_qubit_gate_count(),
            1 + 3 * out.report.swap_count
        );
    }

    #[test]
    fn executable_program_covers_all_operands() {
        let mut c = Circuit::new(16);
        for i in 0..8 {
            c.cnot(Qubit(i), Qubit(15 - i));
        }
        let out = compile(&c, 16, 8);
        let spec = *out.program.spec();
        for (g, pos) in out.program.gates() {
            for q in g.qubits() {
                assert!(spec.covers(pos, q.index()));
            }
        }
    }

    #[test]
    fn rejects_wide_circuits() {
        let c = Circuit::new(80);
        let err = Compiler::new(DeviceSpec::tilt64(16))
            .compile(&c)
            .unwrap_err();
        assert!(matches!(err, CompileError::CircuitTooWide { .. }));
    }

    #[test]
    fn rejects_invalid_circuits() {
        let mut c = Circuit::new(2);
        c.rz(Qubit(0), f64::NAN);
        let err = Compiler::new(DeviceSpec::new(2, 2).unwrap())
            .compile(&c)
            .unwrap_err();
        assert!(matches!(err, CompileError::InvalidCircuit(_)));
    }

    #[test]
    fn rejects_inconsistent_router_config() {
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(3));
        let mut compiler = Compiler::new(DeviceSpec::new(4, 2).unwrap());
        compiler.router(RouterKind::Linq(LinqConfig::with_max_swap_len(5)));
        assert!(matches!(
            compiler.compile(&c).unwrap_err(),
            CompileError::InvalidRouterConfig { .. }
        ));
    }

    #[test]
    fn linq_beats_or_ties_baseline_on_swaps() {
        // Counterflow traffic: LinQ's opposing swaps should need no more
        // swaps than the baseline's max-jump greedy.
        let mut c = Circuit::new(24);
        for i in 0..6 {
            c.cnot(Qubit(i), Qubit(23 - i));
        }
        let spec = DeviceSpec::new(24, 8).unwrap();
        let linq = Compiler::new(spec).compile(&c).unwrap();
        let mut baseline_compiler = Compiler::new(spec);
        baseline_compiler.router(RouterKind::Stochastic(StochasticConfig::default()));
        let baseline = baseline_compiler.compile(&c).unwrap();
        assert!(
            linq.report.swap_count <= baseline.report.swap_count,
            "linq {} vs baseline {}",
            linq.report.swap_count,
            baseline.report.swap_count
        );
    }

    #[test]
    fn report_counts_match_program() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(15)).cnot(Qubit(3), Qubit(12));
        let out = compile(&c, 16, 6);
        assert_eq!(out.report.move_count, out.program.move_count());
        assert_eq!(
            out.report.move_distance_ions,
            out.program.move_distance_ions()
        );
        assert_eq!(out.report.native_gate_count, out.program.gate_count());
        assert_eq!(
            out.report.native_two_qubit_count,
            out.program.two_qubit_gate_count()
        );
    }

    #[test]
    fn swapless_program_has_zero_opposing_ratio() {
        let mut c = Circuit::new(8);
        c.cnot(Qubit(0), Qubit(1));
        let out = compile(&c, 8, 8);
        assert_eq!(out.report.swap_count, 0);
        assert_eq!(out.report.opposing_ratio, 0.0);
    }

    #[test]
    fn scheduler_choice_changes_move_count_not_gate_set() {
        let mut c = Circuit::new(32);
        for _ in 0..3 {
            c.cnot(Qubit(0), Qubit(1));
            c.cnot(Qubit(30), Qubit(31));
        }
        let spec = DeviceSpec::new(32, 8).unwrap();
        let greedy = Compiler::new(spec).compile(&c).unwrap();
        let mut naive_compiler = Compiler::new(spec);
        naive_compiler.scheduler(SchedulerKind::NaiveNextGate);
        let naive = naive_compiler.compile(&c).unwrap();
        assert_eq!(greedy.program.gate_count(), naive.program.gate_count());
        assert!(greedy.report.move_count <= naive.report.move_count);
    }

    #[test]
    fn measurement_passes_through_the_pipeline() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(3)).measure(Qubit(3));
        let out = compile(&c, 4, 4);
        assert!(out
            .program
            .gates()
            .any(|(g, _)| matches!(g, Gate::Measure(_))));
    }
}
