//! Compiler error types.

use std::error::Error;
use std::fmt;
use tilt_circuit::ValidateCircuitError;

/// Why compilation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The device specification is unusable (head smaller than 2 ions or
    /// wider than the tape).
    InvalidSpec {
        /// Requested tape length.
        n_ions: usize,
        /// Requested head size.
        head_size: usize,
    },
    /// The circuit uses more qubits than the tape has ions.
    CircuitTooWide {
        /// Circuit register width.
        circuit_qubits: usize,
        /// Tape length.
        n_ions: usize,
    },
    /// The input circuit failed structural validation.
    InvalidCircuit(ValidateCircuitError),
    /// A router configuration is internally inconsistent, e.g.
    /// `max_swap_len` of zero or at least the head size.
    InvalidRouterConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The requested configuration cannot run under the streaming
    /// pipeline (e.g. an initial-mapping strategy that must inspect the
    /// whole circuit before placing anything).
    StreamingUnsupported {
        /// Human-readable description of the incompatibility.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidSpec { n_ions, head_size } => write!(
                f,
                "invalid device spec: head of {head_size} lasers on a tape of {n_ions} ions"
            ),
            CompileError::CircuitTooWide {
                circuit_qubits,
                n_ions,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but the tape holds {n_ions} ions"
            ),
            CompileError::InvalidCircuit(e) => write!(f, "invalid input circuit: {e}"),
            CompileError::InvalidRouterConfig { reason } => {
                write!(f, "invalid router configuration: {reason}")
            }
            CompileError::StreamingUnsupported { reason } => {
                write!(f, "unsupported in streaming mode: {reason}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::InvalidCircuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateCircuitError> for CompileError {
    fn from(e: ValidateCircuitError) -> Self {
        CompileError::InvalidCircuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CompileError::CircuitTooWide {
            circuit_qubits: 70,
            n_ions: 64,
        };
        assert!(e.to_string().contains("70"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn validation_error_converts_and_chains() {
        let inner = ValidateCircuitError::NonFiniteAngle { gate_index: 3 };
        let e: CompileError = inner.clone().into();
        assert_eq!(e, CompileError::InvalidCircuit(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn spec_error_is_sourceless() {
        let e = CompileError::InvalidSpec {
            n_ions: 4,
            head_size: 9,
        };
        assert!(Error::source(&e).is_none());
    }
}
