//! The compiler's output format: an executable TILT program.

use crate::spec::DeviceSpec;
use std::fmt;
use tilt_circuit::Gate;

/// One TILT machine operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TiltOp {
    /// Shuttle the tape so the head's leftmost laser sits over ion
    /// position `to`. Every move heats the chain (§III-A).
    Move {
        /// New head position (leftmost covered ion).
        to: usize,
    },
    /// Execute `gate` while the head is at `head_pos`. All operands are
    /// guaranteed to be covered by the head.
    Gate {
        /// The native gate to execute (operands are physical positions).
        gate: Gate,
        /// Head position at execution time.
        head_pos: usize,
    },
}

/// An executable TILT program: the scheduled gate/move stream produced by
/// the LinQ pipeline, together with the device it targets.
///
/// The program starts with the head at the position of its first scheduled
/// segment; the initial placement is not counted as a move (the head parks
/// there before the computation starts).
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::{Compiler, DeviceSpec};
///
/// let mut c = Circuit::new(8);
/// c.cnot(Qubit(0), Qubit(1));
/// let out = Compiler::new(DeviceSpec::new(8, 4)?).compile(&c)?;
/// assert_eq!(out.program.move_count(), 0); // everything fits in one zone
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TiltProgram {
    spec: DeviceSpec,
    ops: Vec<TiltOp>,
}

impl TiltProgram {
    /// Wraps a scheduled op stream for `spec`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that every gate's operands are covered by its recorded
    /// head position and that every move targets a valid head position.
    pub fn new(spec: DeviceSpec, ops: Vec<TiltOp>) -> Self {
        #[cfg(debug_assertions)]
        for op in &ops {
            match op {
                TiltOp::Move { to } => {
                    debug_assert!(*to <= spec.n_ions() - spec.head_size());
                }
                TiltOp::Gate { gate, head_pos } => {
                    for q in gate.qubits() {
                        debug_assert!(
                            spec.covers(*head_pos, q.index()),
                            "{gate:?} at head {head_pos} leaves {q} uncovered"
                        );
                    }
                }
            }
        }
        TiltProgram { spec, ops }
    }

    /// Wraps an op stream without the debug-build invariant asserts.
    ///
    /// This exists for the static verifier's own tests, which
    /// deliberately construct invalid programs to prove the rules catch
    /// them; production passes go through [`TiltProgram::new`].
    pub fn new_unchecked(spec: DeviceSpec, ops: Vec<TiltOp>) -> Self {
        TiltProgram { spec, ops }
    }

    /// The device this program targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The operation stream in execution order.
    pub fn ops(&self) -> &[TiltOp] {
        &self.ops
    }

    /// Number of tape movements (`#moves` in Table III).
    pub fn move_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TiltOp::Move { .. }))
            .count()
    }

    /// Total tape travel distance in ion spacings.
    ///
    /// Multiply by the ion spacing (5 µm, §II-B) for the `dist(µm)` column
    /// of Table III.
    pub fn move_distance_ions(&self) -> usize {
        let mut dist = 0usize;
        let mut pos: Option<usize> = None;
        for op in &self.ops {
            match *op {
                TiltOp::Move { to } => {
                    if let Some(p) = pos {
                        dist += p.abs_diff(to);
                    }
                    pos = Some(to);
                }
                TiltOp::Gate { head_pos, .. } => {
                    if pos.is_none() {
                        pos = Some(head_pos);
                    }
                }
            }
        }
        dist
    }

    /// Number of gate operations.
    pub fn gate_count(&self) -> usize {
        self.ops.len() - self.move_count()
    }

    /// Number of two-qubit gate operations.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TiltOp::Gate { gate, .. } if gate.is_two_qubit()))
            .count()
    }

    /// Iterates over the gates only, with their head positions.
    pub fn gates(&self) -> impl Iterator<Item = (&Gate, usize)> + '_ {
        self.ops.iter().filter_map(|op| match op {
            TiltOp::Gate { gate, head_pos } => Some((gate, *head_pos)),
            TiltOp::Move { .. } => None,
        })
    }

    /// The head position before any move (where the head parks initially),
    /// or `None` for an empty program.
    pub fn initial_head_position(&self) -> Option<usize> {
        self.ops
            .iter()
            .map(|op| match op {
                TiltOp::Gate { head_pos, .. } => *head_pos,
                TiltOp::Move { to } => *to,
            })
            .next()
    }
}

impl fmt::Display for TiltProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tilt program [{} ions, head {}, {} gates, {} moves]",
            self.spec.n_ions(),
            self.spec.head_size(),
            self.gate_count(),
            self.move_count()
        )?;
        for op in &self.ops {
            match op {
                TiltOp::Move { to } => writeln!(f, "  move -> {to}")?,
                TiltOp::Gate { gate, head_pos } => writeln!(f, "  [{head_pos:>3}] {gate}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;

    fn spec() -> DeviceSpec {
        DeviceSpec::new(16, 4).unwrap()
    }

    #[test]
    fn counts_moves_and_gates() {
        let p = TiltProgram::new(
            spec(),
            vec![
                TiltOp::Gate {
                    gate: Gate::Rx(Qubit(0), 1.0),
                    head_pos: 0,
                },
                TiltOp::Move { to: 8 },
                TiltOp::Gate {
                    gate: Gate::Xx(Qubit(8), Qubit(9), 0.5),
                    head_pos: 8,
                },
                TiltOp::Move { to: 2 },
            ],
        );
        assert_eq!(p.move_count(), 2);
        assert_eq!(p.gate_count(), 2);
        assert_eq!(p.two_qubit_gate_count(), 1);
    }

    #[test]
    fn move_distance_sums_absolute_deltas() {
        let p = TiltProgram::new(
            spec(),
            vec![
                TiltOp::Gate {
                    gate: Gate::Rx(Qubit(3), 1.0),
                    head_pos: 2,
                },
                TiltOp::Move { to: 10 }, // +8
                TiltOp::Move { to: 4 },  // +6
            ],
        );
        assert_eq!(p.move_distance_ions(), 14);
        assert_eq!(p.initial_head_position(), Some(2));
    }

    #[test]
    fn initial_position_is_not_a_move() {
        let p = TiltProgram::new(
            spec(),
            vec![TiltOp::Gate {
                gate: Gate::Rx(Qubit(12), 0.1),
                head_pos: 12,
            }],
        );
        assert_eq!(p.move_count(), 0);
        assert_eq!(p.move_distance_ions(), 0);
    }

    #[test]
    fn empty_program() {
        let p = TiltProgram::new(spec(), vec![]);
        assert_eq!(p.initial_head_position(), None);
        assert_eq!(p.gate_count(), 0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn uncovered_gate_is_rejected_in_debug() {
        TiltProgram::new(
            spec(),
            vec![TiltOp::Gate {
                gate: Gate::Xx(Qubit(0), Qubit(9), 0.5),
                head_pos: 0,
            }],
        );
    }
}
