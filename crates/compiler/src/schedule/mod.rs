//! Tape movement scheduling (§IV-D of the paper, Algorithm 2).
//!
//! Every tape move heats the ion chain and degrades all future two-qubit
//! gates (§III-A), so the scheduler's objective is to execute as many
//! gates as possible per head position. The paper's greedy heuristic
//! scores every head position by the number of gates executable there —
//! `Score(p) = n_p` (Eq. 2), following dependency order — moves the tape
//! to the argmax, executes, and repeats until the circuit is drained.
//!
//! A deliberately weak alternative, [`SchedulerKind::NaiveNextGate`], parks
//! the head over the oldest ready gate each round; it exists to quantify
//! the benefit of Eq. 2 (ablation, DESIGN.md §5).
//!
//! Three engines implement the Eq. 2 policies. The seed **rescan**
//! engine recomputes every position's executable-gate count from
//! scratch each round; the **incremental** engine ([`incremental`])
//! keeps per-position counts in a bucket index and rescores only the
//! positions whose counts a round's retired/unlocked gates could have
//! changed; the default **bound-pruned** engine additionally skips
//! rescoring dirty positions whose monotone score ceiling (the
//! incomplete gates covering the position) provably cannot beat the
//! round's incumbent — the "lazy argmax". All three make identical
//! decisions (see the `engines_agree` tests and
//! `tests/scheduler_equivalence.rs`); the slower engines are retained
//! behind [`ScheduleConfig::rescan`] and [`ScheduleConfig::unpruned`]
//! as reference paths and benchmark baselines, mirroring the router's
//! `LinqConfig` knob.

mod incremental;
mod streaming;

pub(crate) use streaming::StreamScheduler;

use crate::program::{TiltOp, TiltProgram};
use crate::spec::DeviceSpec;
use std::collections::{HashMap, HashSet};
use tilt_circuit::{Circuit, Dag, Gate, ReadyTracker};

/// Which tape-scheduling policy to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The paper's Algorithm 2: move to the position with the maximal
    /// number of executable gates.
    #[default]
    GreedyMaxExecutable,
    /// Eq. 2 with a travel-distance discount: position score is
    /// `n_p · 1000 − penalty_permille · dist(head, p)`, so nearby
    /// positions win ties *and* small gate deficits when travel is
    /// expensive. `penalty_permille = 0` reduces to Algorithm 2 with its
    /// nearest-tie-break. The paper presents Eq. 2 as "the general form"
    /// of the cost function; this is the natural refinement when shuttle
    /// time (not only heating) matters.
    DistanceDiscounted {
        /// Score penalty per ion spacing of head travel, in thousandths
        /// of one executable gate.
        penalty_permille: u32,
    },
    /// Ablation baseline: move to the leftmost position covering the
    /// oldest ready gate, then drain whatever else that position covers.
    NaiveNextGate,
}

impl SchedulerKind {
    /// The travel penalty (permille of one executable gate per ion
    /// spacing) the Eq. 2 scorers apply; `None` for policies that do
    /// not score positions.
    pub(crate) fn penalty_permille(&self) -> Option<i64> {
        match *self {
            SchedulerKind::GreedyMaxExecutable => Some(0),
            SchedulerKind::DistanceDiscounted { penalty_permille } => Some(penalty_permille as i64),
            SchedulerKind::NaiveNextGate => None,
        }
    }
}

/// Full scheduling configuration: the policy plus the engine that
/// evaluates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Which tape-scheduling policy to run.
    pub kind: SchedulerKind,
    /// Engine selection for the Eq. 2 policies: `true` (the default)
    /// maintains per-position executable-gate counts incrementally;
    /// `false` re-derives every position's count each round, as the
    /// seed did. All engines produce identical programs; the rescan
    /// engine exists as the benchmark baseline.
    pub incremental: bool,
    /// With the incremental engine, `true` (the default) also prunes the
    /// argmax: dirty positions whose score ceiling cannot beat the
    /// round's incumbent skip their cascade walk entirely. `false`
    /// rescores every dirty position (the PR-3 engine, retained as the
    /// pruning baseline). Ignored when `incremental` is `false`.
    pub pruned: bool,
    /// Eligibility horizon: each scheduling round only considers gates
    /// whose index lies below `min(floor + horizon, n)`, where `floor`
    /// is the smallest incomplete gate index. Circuits shorter than the
    /// horizon are unaffected (the bound never binds and the monolithic
    /// engines run unchanged); longer circuits are scheduled by the
    /// bounded-memory streaming engine so that one-shot compiles agree
    /// byte for byte with the windowed `pipeline::streaming` path,
    /// whose working set is O(horizon) rather than O(circuit).
    pub horizon: usize,
}

/// The default eligibility horizon ([`ScheduleConfig::horizon`]):
/// generous enough that every realistic in-memory circuit schedules on
/// the unbounded engines, small enough that million-gate streams keep
/// a bounded working set.
pub const DEFAULT_HORIZON: usize = 1 << 17;

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig::new(SchedulerKind::default())
    }
}

impl ScheduleConfig {
    /// The bound-pruned incremental engine (the default) running `kind`.
    pub fn new(kind: SchedulerKind) -> Self {
        ScheduleConfig {
            kind,
            incremental: true,
            pruned: true,
            horizon: DEFAULT_HORIZON,
        }
    }

    /// The incremental engine without argmax pruning — every dirty
    /// position is rescored each round.
    pub fn unpruned(kind: SchedulerKind) -> Self {
        ScheduleConfig {
            kind,
            incremental: true,
            pruned: false,
            horizon: DEFAULT_HORIZON,
        }
    }

    /// The retained seed engine running `kind` — rescans every head
    /// position per decision.
    pub fn rescan(kind: SchedulerKind) -> Self {
        ScheduleConfig {
            kind,
            incremental: false,
            pruned: false,
            horizon: DEFAULT_HORIZON,
        }
    }

    /// Overrides the eligibility horizon (clamped to at least 1).
    #[must_use]
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon.max(1);
        self
    }
}

/// Schedules a routed physical circuit into an executable [`TiltProgram`].
///
/// `physical` must be routed for `spec`: every two-qubit gate's operands
/// must fit under the head simultaneously.
///
/// Barriers are honoured as scheduling fences but are not emitted as
/// machine operations.
///
/// # Panics
///
/// Panics if some two-qubit gate spans at least `head_size` ion spacings
/// (an unrouted circuit) — this is a contract violation by the caller, not
/// a recoverable condition.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::schedule::{schedule, SchedulerKind};
/// use tilt_compiler::DeviceSpec;
///
/// let mut c = Circuit::new(8);
/// c.xx(Qubit(0), Qubit(1), 0.5);
/// c.xx(Qubit(6), Qubit(7), 0.5);
/// let spec = DeviceSpec::new(8, 4)?;
/// let program = schedule(&c, spec, SchedulerKind::GreedyMaxExecutable);
/// assert_eq!(program.move_count(), 1); // two zones, one move
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn schedule(physical: &Circuit, spec: DeviceSpec, kind: SchedulerKind) -> TiltProgram {
    schedule_with(physical, spec, ScheduleConfig::new(kind))
}

/// [`schedule`] with an explicit engine choice; see [`ScheduleConfig`].
///
/// # Panics
///
/// As [`schedule`].
pub fn schedule_with(physical: &Circuit, spec: DeviceSpec, config: ScheduleConfig) -> TiltProgram {
    for g in physical {
        if let Some(d) = g.span() {
            assert!(
                d < spec.head_size(),
                "unrouted gate {g:?} spans {d} ≥ head size {}",
                spec.head_size()
            );
        }
    }
    let horizon = config.horizon.max(1);
    if horizon < physical.len() {
        // The eligibility horizon binds: schedule on the bounded-window
        // engines so the result matches the streaming pipeline exactly.
        // The rescan config keeps its role as the reference engine via
        // the horizon-capped seed loop.
        return match config.kind.penalty_permille() {
            Some(_) if config.incremental => {
                streaming::schedule_stream_monolithic(physical, spec, config.kind, horizon)
            }
            _ => streaming::schedule_rescan_capped(physical, spec, config.kind, horizon),
        };
    }
    match config.kind.penalty_permille() {
        Some(penalty) if config.incremental && config.pruned => {
            incremental::schedule_incremental_pruned(physical, spec, penalty)
        }
        Some(penalty) if config.incremental => {
            incremental::schedule_incremental(physical, spec, penalty)
        }
        // NaiveNextGate never scores positions, so there is nothing to
        // maintain incrementally; it always runs on the rescan loop.
        _ => schedule_rescan(physical, spec, config.kind),
    }
}

/// The seed engine: one full pass over every head position per
/// decision.
fn schedule_rescan(physical: &Circuit, spec: DeviceSpec, kind: SchedulerKind) -> TiltProgram {
    let dag = Dag::new(physical);
    let mut tracker = ReadyTracker::new(&dag);
    let mut ops: Vec<TiltOp> = Vec::with_capacity(physical.len());
    let mut head: Option<usize> = None;

    while !tracker.is_done() {
        let pos = match kind {
            SchedulerKind::GreedyMaxExecutable => {
                best_position(physical, &dag, &tracker, spec, head, 0)
            }
            SchedulerKind::DistanceDiscounted { penalty_permille } => best_position(
                physical,
                &dag,
                &tracker,
                spec,
                head,
                penalty_permille as i64,
            ),
            SchedulerKind::NaiveNextGate => {
                let oldest = *tracker
                    .ready()
                    .iter()
                    .min()
                    .expect("tracker not done implies ready gates exist");
                leftmost_position_covering(physical, spec, oldest)
            }
        };

        if head != Some(pos) {
            if head.is_some() {
                ops.push(TiltOp::Move { to: pos });
            }
            head = Some(pos);
        }

        // Drain the cascade of executable gates at `pos` in dependency
        // order, mutating the global tracker.
        let mut executed_any = false;
        loop {
            let next = tracker
                .ready()
                .iter()
                .copied()
                .filter(|&i| gate_fits(physical.gates()[i], spec, pos))
                .min();
            let Some(i) = next else { break };
            tracker.complete(&dag, i);
            executed_any = true;
            let gate = physical.gates()[i];
            if !matches!(gate, Gate::Barrier) {
                ops.push(TiltOp::Gate {
                    gate,
                    head_pos: pos,
                });
            }
        }
        assert!(
            executed_any,
            "scheduler made no progress at position {pos}; this is a bug"
        );
    }

    TiltProgram::new(spec, ops)
}

/// True when every operand of `g` is covered by the head at `pos`
/// (barriers fit anywhere).
fn gate_fits(g: Gate, spec: DeviceSpec, pos: usize) -> bool {
    g.qubits().iter().all(|q| spec.covers(pos, q.index()))
}

/// Algorithm 2 scoring loop: the executable-gate count `n_p` for every
/// head position (discounted by travel distance at `penalty_permille`
/// thousandths of a gate per ion spacing), returning the argmax. Ties
/// prefer staying at the current head position (a free non-move), then
/// the closest position, then the leftmost.
fn best_position(
    physical: &Circuit,
    dag: &Dag,
    tracker: &ReadyTracker,
    spec: DeviceSpec,
    head: Option<usize>,
    penalty_permille: i64,
) -> usize {
    let mut best_pos = 0usize;
    let mut best_score = i64::MIN;
    let mut best_dist = usize::MAX;
    let mut any = false;
    for p in spec.head_positions() {
        let count = executable_count(physical, dag, tracker, spec, p);
        if count == 0 {
            continue;
        }
        any = true;
        let dist = head.map_or(0, |h| h.abs_diff(p));
        let score = count as i64 * 1000 - penalty_permille * dist as i64;
        if score > best_score || (score == best_score && dist < best_dist) {
            best_score = score;
            best_pos = p;
            best_dist = dist;
        }
    }
    assert!(
        any,
        "no head position can execute any ready gate; circuit is unroutable"
    );
    best_pos
}

/// Counts the cascade of gates executable at head position `pos` without
/// mutating the global tracker: ready gates covered by the head execute,
/// potentially unlocking successors that are also covered, and so on
/// (dependency order, exactly as the real drain loop would).
fn executable_count(
    physical: &Circuit,
    dag: &Dag,
    tracker: &ReadyTracker,
    spec: DeviceSpec,
    pos: usize,
) -> usize {
    let mut queue: Vec<usize> = tracker
        .ready()
        .iter()
        .copied()
        .filter(|&i| gate_fits(physical.gates()[i], spec, pos))
        .collect();
    let mut executed: HashSet<usize> = HashSet::new();
    // Local in-degree adjustments for gates unlocked during the cascade.
    let mut local_indeg: HashMap<usize, usize> = HashMap::new();
    let mut count = 0usize;

    while let Some(i) = queue.pop() {
        if !executed.insert(i) {
            continue;
        }
        if !matches!(physical.gates()[i], Gate::Barrier) {
            count += 1;
        }
        for &s in dag.succs(i) {
            let remaining = local_indeg.entry(s).or_insert_with(|| {
                dag.preds(s)
                    .iter()
                    .filter(|&&p| !tracker.is_complete(p))
                    .count()
            });
            *remaining -= 1;
            if *remaining == 0 && gate_fits(physical.gates()[s], spec, pos) {
                queue.push(s);
            }
        }
    }
    count
}

/// The leftmost head position covering gate `i` (barriers default to 0).
fn leftmost_position_covering(physical: &Circuit, spec: DeviceSpec, i: usize) -> usize {
    let g = physical.gates()[i];
    spec.covering_head_positions(g.qubits().iter().map(|q| q.index()))
        .map(|r| *r.start())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;

    fn spec(n: usize, head: usize) -> DeviceSpec {
        DeviceSpec::new(n, head).unwrap()
    }

    #[test]
    fn single_zone_circuit_never_moves() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(1), 0.5).rx(Qubit(2), 1.0);
        let p = schedule(&c, spec(8, 4), SchedulerKind::GreedyMaxExecutable);
        assert_eq!(p.move_count(), 0);
        assert_eq!(p.gate_count(), 2);
    }

    #[test]
    fn two_distant_zones_need_one_move() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.5);
        c.xx(Qubit(14), Qubit(15), 0.5);
        let p = schedule(&c, spec(16, 4), SchedulerKind::GreedyMaxExecutable);
        assert_eq!(p.move_count(), 1);
    }

    #[test]
    fn greedy_prefers_position_with_more_gates() {
        // Three gates on the left zone, one on the right: greedy parks
        // left first.
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.5);
        c.xx(Qubit(1), Qubit(2), 0.5);
        c.xx(Qubit(2), Qubit(3), 0.5);
        c.xx(Qubit(14), Qubit(15), 0.5);
        let p = schedule(&c, spec(16, 4), SchedulerKind::GreedyMaxExecutable);
        assert_eq!(p.initial_head_position(), Some(0));
        assert_eq!(p.move_count(), 1);
    }

    #[test]
    fn all_gates_are_scheduled_exactly_once() {
        let mut c = Circuit::new(16);
        for i in 0..15 {
            c.xx(Qubit(i), Qubit(i + 1), 0.1);
        }
        for kind in [
            SchedulerKind::GreedyMaxExecutable,
            SchedulerKind::NaiveNextGate,
        ] {
            let p = schedule(&c, spec(16, 4), kind);
            assert_eq!(p.gate_count(), c.len(), "{kind:?}");
        }
    }

    #[test]
    fn schedule_respects_dependencies() {
        // Chain across zones: (0,1) then (1,15) is unroutable; use a
        // routed-like chain: (0,1), (7,8), (14,15) sharing no qubits plus
        // a dependent gate on (0,1) again.
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.1); // idx 0
        c.xx(Qubit(14), Qubit(15), 0.1); // idx 1
        c.xx(Qubit(1), Qubit(2), 0.1); // idx 2, depends on 0
        let p = schedule(&c, spec(16, 4), SchedulerKind::GreedyMaxExecutable);
        let order: Vec<&Gate> = p.gates().map(|(g, _)| g).collect();
        let pos_of = |target: &Gate| order.iter().position(|g| *g == target).unwrap();
        assert!(
            pos_of(&Gate::Xx(Qubit(0), Qubit(1), 0.1)) < pos_of(&Gate::Xx(Qubit(1), Qubit(2), 0.1))
        );
    }

    #[test]
    fn barriers_fence_but_do_not_emit() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.barrier();
        c.xx(Qubit(6), Qubit(7), 0.1);
        let p = schedule(&c, spec(8, 4), SchedulerKind::GreedyMaxExecutable);
        assert_eq!(p.gate_count(), 2); // barrier not emitted
        let order: Vec<usize> = p.gates().map(|(_, pos)| pos).collect();
        assert_eq!(order, vec![0, 4]);
    }

    #[test]
    fn naive_scheduler_moves_at_least_as_often() {
        let mut c = Circuit::new(32);
        // Interleave left-zone and right-zone gates; greedy batches them,
        // naive ping-pongs.
        for _ in 0..4 {
            c.xx(Qubit(0), Qubit(1), 0.1);
            c.xx(Qubit(30), Qubit(31), 0.1);
        }
        let greedy = schedule(&c, spec(32, 8), SchedulerKind::GreedyMaxExecutable);
        let naive = schedule(&c, spec(32, 8), SchedulerKind::NaiveNextGate);
        assert!(greedy.move_count() <= naive.move_count());
        assert_eq!(greedy.move_count(), 1);
    }

    #[test]
    fn distance_discount_prefers_nearby_work() {
        // Head starts where two gates are executable on the left; one more
        // gate waits on the right, one at centre. Undiscounted Algorithm 2
        // always chases the max count; with a strong travel penalty the
        // scheduler takes the closer position first.
        let mut c = Circuit::new(32);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.xx(Qubit(12), Qubit(13), 0.1);
        c.xx(Qubit(30), Qubit(31), 0.1);
        let zero = schedule(
            &c,
            spec(32, 4),
            SchedulerKind::DistanceDiscounted {
                penalty_permille: 0,
            },
        );
        let plain = schedule(&c, spec(32, 4), SchedulerKind::GreedyMaxExecutable);
        // Zero penalty reduces exactly to Algorithm 2.
        assert_eq!(zero, plain);
        let discounted = schedule(
            &c,
            spec(32, 4),
            SchedulerKind::DistanceDiscounted {
                penalty_permille: 500,
            },
        );
        // All gates still execute exactly once.
        assert_eq!(discounted.gate_count(), c.len());
        // The discounted schedule never travels farther in total.
        assert!(discounted.move_distance_ions() <= plain.move_distance_ions());
    }

    #[test]
    fn all_three_engines_agree_on_structured_workloads() {
        // Mixed zones, chains, barriers, and single-qubit traffic: the
        // incremental and bound-pruned engines must reproduce the seed
        // engine's program op-for-op (positions, moves, and
        // executed-gate order).
        let mut zones = Circuit::new(32);
        for r in 0..4 {
            for i in 0..28 {
                if (i * 5 + r) % 3 == 0 {
                    zones.xx(Qubit(i), Qubit(i + 3), 0.1 * (r + 1) as f64);
                }
            }
            zones.rx(Qubit((r * 7) % 32), 0.5);
        }
        let mut fenced = Circuit::new(16);
        for i in 0..13 {
            fenced.xx(Qubit(i), Qubit(i + 2), 0.2);
            if i % 5 == 4 {
                fenced.barrier();
            }
        }
        let mut pingpong = Circuit::new(24);
        for _ in 0..6 {
            pingpong.xx(Qubit(0), Qubit(1), 0.3);
            pingpong.xx(Qubit(22), Qubit(23), 0.3);
            pingpong.xx(Qubit(11), Qubit(12), 0.3);
        }
        let workloads = [(zones, 32usize, 8usize), (fenced, 16, 4), (pingpong, 24, 4)];
        let kinds = [
            SchedulerKind::GreedyMaxExecutable,
            SchedulerKind::DistanceDiscounted {
                penalty_permille: 250,
            },
            SchedulerKind::DistanceDiscounted {
                penalty_permille: 2000,
            },
        ];
        for (c, n, head) in &workloads {
            for kind in kinds {
                let pruned = schedule_with(c, spec(*n, *head), ScheduleConfig::new(kind));
                let unpruned = schedule_with(c, spec(*n, *head), ScheduleConfig::unpruned(kind));
                let slow = schedule_with(c, spec(*n, *head), ScheduleConfig::rescan(kind));
                assert_eq!(unpruned, slow, "{kind:?} diverged on {n}-ion workload");
                assert_eq!(
                    pruned, slow,
                    "{kind:?} pruning diverged on {n}-ion workload"
                );
            }
        }
    }

    #[test]
    fn schedule_defaults_to_the_incremental_engine() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(1), 0.5);
        c.xx(Qubit(14), Qubit(15), 0.5);
        let via_kind = schedule(&c, spec(16, 4), SchedulerKind::GreedyMaxExecutable);
        let via_config = schedule_with(&c, spec(16, 4), ScheduleConfig::default());
        assert_eq!(via_kind, via_config);
    }

    #[test]
    #[should_panic(expected = "unrouted gate")]
    fn unrouted_input_is_rejected() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(15), 0.5);
        schedule(&c, spec(16, 4), SchedulerKind::GreedyMaxExecutable);
    }

    #[test]
    fn single_qubit_gates_need_coverage_too() {
        let mut c = Circuit::new(16);
        c.rx(Qubit(0), 0.1);
        c.rx(Qubit(15), 0.1);
        let p = schedule(&c, spec(16, 4), SchedulerKind::GreedyMaxExecutable);
        assert_eq!(p.move_count(), 1);
        for (g, pos) in p.gates() {
            for q in g.qubits() {
                assert!(spec(16, 4).covers(pos, q.index()));
            }
        }
    }

    #[test]
    fn empty_circuit_schedules_to_empty_program() {
        let p = schedule(
            &Circuit::new(8),
            spec(8, 4),
            SchedulerKind::GreedyMaxExecutable,
        );
        assert!(p.ops().is_empty());
    }
}
