//! The incremental Algorithm-2 engine.
//!
//! The seed scorer re-derives `Score(p) = n_p` (Eq. 2) for **every**
//! head position each round, even though one round only retires the
//! gates under the chosen position and unlocks some of their
//! successors. This engine exploits that locality:
//!
//! * Per-position executable-gate counts live in a **bucket index**
//!   ([`PosScoreIndex`]): `buckets[c]` holds the positions whose last
//!   computed count was `c`, with stale entries dropped lazily. The
//!   argmax scan walks buckets from the top and stops as soon as even a
//!   zero-distance candidate in the next bucket could not beat the best
//!   so far, which also covers the [`DistanceDiscounted`]
//!   (`n_p·1000 − penalty·dist`) refinement exactly.
//! * After a round executes the gate set `E` at position `p`, a
//!   position's count can only have changed if some gate of `E` — or
//!   some successor of `E`, whose unlock threshold just dropped — fits
//!   it. Those **dirty ranges** (each gate's covering-position range is
//!   contiguous) are the only positions rescored next round; everything
//!   else keeps its cached count.
//! * Rescoring itself runs the same cascade walk as the seed, but on
//!   epoch-stamped scratch arrays instead of a fresh `HashMap`/`HashSet`
//!   pair per position, seeded from a per-position ready list
//!   maintained as gates become ready (lazily compacted as they
//!   complete).
//! * The drain at the chosen position replays the seed's
//!   min-index-first cascade through a binary heap fed by
//!   [`ReadyTracker::complete_notify`] instead of re-scanning the ready
//!   set per executed gate.
//!
//! Every decision — position choice, tie-breaks, and executed-gate
//! order — is identical to the rescan engine's; the equivalence is
//! pinned by unit and property tests.
//!
//! # The bound-pruned argmax
//!
//! [`schedule_incremental_pruned`] (the default engine) goes one step
//! further: even a *dirty* position's cascade walk can be skipped when
//! the position provably cannot win the round. The engine maintains
//! `cover[p]` — the number of incomplete non-barrier gates whose
//! covering range contains `p` — as a sound per-position score ceiling:
//! every gate a cascade at `p` executes must cover `p` and be incomplete,
//! so `Score(p) ≤ cover[p]` at all times, and `cover[p]` only shrinks as
//! gates retire (the monotone-unlock argument; see
//! `crates/compiler/README.md` for the proof sketch). Each round the
//! exact cached scores of clean positions establish an incumbent, dirty
//! candidates are visited in decreasing bound order, and the walk stops
//! at the first candidate whose ceiling is *strictly* below the
//! incumbent's score — equal ceilings still walk, because a tie could be
//! won on the distance/leftmost tie-breaks. Skipped positions simply
//! stay dirty. The chosen position, and therefore the whole program, is
//! identical to the unpruned engines'.
//!
//! [`DistanceDiscounted`]: super::SchedulerKind::DistanceDiscounted

use crate::program::{TiltOp, TiltProgram};
use crate::spec::DeviceSpec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tilt_circuit::{Circuit, Dag, Gate, ReadyTracker};

/// Lazily-compacted bucket index over per-position counts.
struct PosScoreIndex {
    /// Current executable-gate count per head position.
    counts: Vec<u32>,
    /// `buckets[c]` = positions whose count was `c` when last scored;
    /// entries whose count moved on are dropped during scans.
    buckets: Vec<Vec<u32>>,
    /// Upper bound on the highest non-empty bucket.
    max_bucket: usize,
}

impl PosScoreIndex {
    fn new(n_positions: usize) -> Self {
        PosScoreIndex {
            counts: vec![0; n_positions],
            buckets: vec![Vec::new(); 8],
            max_bucket: 0,
        }
    }

    /// Records a freshly computed count for `pos`.
    fn set(&mut self, pos: usize, count: u32) {
        if self.counts[pos] == count {
            return;
        }
        self.counts[pos] = count;
        let c = count as usize;
        if c > 0 {
            if c >= self.buckets.len() {
                self.buckets.resize(c + 1, Vec::new());
            }
            self.buckets[c].push(pos as u32);
            self.max_bucket = self.max_bucket.max(c);
        }
    }

    /// The seed scorer's argmax: maximal `count·1000 − penalty·dist`,
    /// ties preferring the smaller head travel, then the leftmost
    /// position. Returns `None` when no position can execute anything.
    fn best(&mut self, head: Option<usize>, penalty: i64) -> Option<usize> {
        // Settle the top bucket before scanning.
        while self.max_bucket > 0 {
            let c = self.max_bucket;
            let counts = &self.counts;
            self.buckets[c].retain(|&p| counts[p as usize] == c as u32);
            if !self.buckets[c].is_empty() {
                break;
            }
            self.max_bucket -= 1;
        }
        if self.max_bucket == 0 {
            return None;
        }
        // Best by (score desc, dist asc, pos asc) — the total order the
        // seed's ascending scan with strict improvement realizes.
        let mut best: Option<(i64, usize, usize)> = None;
        let mut c = self.max_bucket;
        while c > 0 {
            if let Some((best_score, _, _)) = best {
                // Even at distance 0 this bucket cannot beat the
                // incumbent (equal score could still win a tie-break,
                // so only strictly-lower ceilings stop the scan).
                if (c as i64) * 1000 < best_score {
                    break;
                }
            }
            let counts = &self.counts;
            self.buckets[c].retain(|&p| counts[p as usize] == c as u32);
            for &p in &self.buckets[c] {
                let pos = p as usize;
                let dist = head.map_or(0, |h| h.abs_diff(pos));
                let score = (c as i64) * 1000 - penalty * dist as i64;
                let better = match best {
                    None => true,
                    Some((bs, bd, bp)) => score > bs || (score == bs && (dist, pos) < (bd, bp)),
                };
                if better {
                    best = Some((score, dist, pos));
                }
            }
            c -= 1;
        }
        best.map(|(_, _, pos)| pos)
    }
}

/// Epoch-stamped scratch for the cascade scorer — allocation-free
/// replacements for the seed's per-position `HashMap`/`HashSet`.
struct CascadeScratch {
    /// Remaining incomplete-predecessor count per gate, valid when the
    /// matching epoch stamp is current.
    need: Vec<u32>,
    need_epoch: Vec<u32>,
    epoch: u32,
    stack: Vec<usize>,
}

impl CascadeScratch {
    fn new(n_gates: usize) -> Self {
        CascadeScratch {
            need: vec![0; n_gates],
            need_epoch: vec![0; n_gates],
            epoch: 0,
            stack: Vec::new(),
        }
    }
}

pub(super) fn schedule_incremental(
    physical: &Circuit,
    spec: DeviceSpec,
    penalty: i64,
) -> TiltProgram {
    let dag = Dag::new(physical);
    let mut tracker = ReadyTracker::new(&dag);
    let n_positions = spec.n_head_positions();
    let gates = physical.gates();

    // Contiguous covering-position range per gate (barriers fit
    // everywhere). Gate `g` fits position `p` exactly when `p` lies in
    // `range_of[g]`, so this table doubles as the engine's O(1),
    // allocation-free executability check.
    let range_of: Vec<(u32, u32)> = gates
        .iter()
        .map(
            |g| match spec.covering_head_positions(g.operands().iter().map(|q| q.index())) {
                Some(r) => (*r.start() as u32, *r.end() as u32),
                None => (0, (n_positions - 1) as u32),
            },
        )
        .collect();

    // Per-position ready gates (completed entries compacted lazily).
    let mut ready_at: Vec<Vec<u32>> = vec![Vec::new(); n_positions];
    for &g in tracker.ready() {
        let (lo, hi) = range_of[g];
        for p in lo..=hi {
            ready_at[p as usize].push(g as u32);
        }
    }

    let mut index = PosScoreIndex::new(n_positions);
    let mut scratch = CascadeScratch::new(gates.len());
    let mut dirty = vec![true; n_positions];
    let mut dirty_list: Vec<u32> = (0..n_positions as u32).collect();

    let mut ops: Vec<TiltOp> = Vec::with_capacity(physical.len());
    let mut head: Option<usize> = None;
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut executed: Vec<usize> = Vec::new();
    // Per-round dedup of visited successors during dirty marking.
    let mut succ_epoch: Vec<u32> = vec![0; gates.len()];
    let mut succ_epoch_counter: u32 = 0;

    while !tracker.is_done() {
        // Rescore only the positions last round's executions could have
        // changed.
        for &p in &dirty_list {
            let pos = p as usize;
            dirty[pos] = false;
            let count = cascade_count(
                physical,
                &dag,
                &tracker,
                pos,
                &range_of,
                &mut ready_at[pos],
                &mut scratch,
            );
            index.set(pos, count);
        }
        dirty_list.clear();

        let pos = index
            .best(head, penalty)
            .expect("no head position can execute any ready gate; circuit is unroutable");

        if head != Some(pos) {
            if head.is_some() {
                ops.push(TiltOp::Move { to: pos });
            }
            head = Some(pos);
        }

        // Drain the cascade at `pos` in the seed's min-index order.
        heap.clear();
        ready_at[pos].retain(|&g| !tracker.is_complete(g as usize));
        heap.extend(ready_at[pos].iter().map(|&g| Reverse(g as usize)));
        executed.clear();
        while let Some(Reverse(i)) = heap.pop() {
            tracker.complete_notify(&dag, i, |s| {
                let (lo, hi) = range_of[s];
                for p in lo..=hi {
                    ready_at[p as usize].push(s as u32);
                }
                if lo as usize <= pos && pos <= hi as usize {
                    heap.push(Reverse(s));
                }
            });
            executed.push(i);
            let gate = gates[i];
            if !matches!(gate, Gate::Barrier) {
                ops.push(TiltOp::Gate {
                    gate,
                    head_pos: pos,
                });
            }
        }
        assert!(
            !executed.is_empty(),
            "scheduler made no progress at position {pos}; this is a bug"
        );

        // Mark the positions whose counts this round could have
        // changed: every retired gate's covering range, plus — for each
        // successor whose unlock threshold dropped — the intersection
        // of its range with its still-incomplete predecessors' ranges
        // (a cascade can only admit the successor where those
        // predecessors are themselves executable).
        succ_epoch_counter += 1;
        for &i in &executed {
            let (lo, hi) = range_of[i];
            for p in lo..=hi {
                if !dirty[p as usize] {
                    dirty[p as usize] = true;
                    dirty_list.push(p);
                }
            }
            for &s in dag.succs(i) {
                if succ_epoch[s] == succ_epoch_counter {
                    continue;
                }
                succ_epoch[s] = succ_epoch_counter;
                let (mut lo, mut hi) = range_of[s];
                for &q in dag.preds(s) {
                    if !tracker.is_complete(q) {
                        let (qlo, qhi) = range_of[q];
                        lo = lo.max(qlo);
                        hi = hi.min(qhi);
                    }
                }
                if lo > hi {
                    // Some incomplete predecessor shares no covering
                    // position with `s`: no cascade anywhere can admit
                    // it this round.
                    continue;
                }
                for p in lo..=hi {
                    if !dirty[p as usize] {
                        dirty[p as usize] = true;
                        dirty_list.push(p);
                    }
                }
            }
        }
    }

    TiltProgram::new(spec, ops)
}

/// The incremental engine with the bound-pruned argmax (the default).
///
/// Identical decisions to [`schedule_incremental`] and the rescan
/// engine, but a dirty position is only rescored when its score ceiling
/// (`cover[p]`, the incomplete non-barrier gates covering `p`) says it
/// could still beat the best exact score seen this round.
pub(super) fn schedule_incremental_pruned(
    physical: &Circuit,
    spec: DeviceSpec,
    penalty: i64,
) -> TiltProgram {
    let dag = Dag::new(physical);
    let mut tracker = ReadyTracker::new(&dag);
    let n_positions = spec.n_head_positions();
    let gates = physical.gates();

    let range_of: Vec<(u32, u32)> = gates
        .iter()
        .map(
            |g| match spec.covering_head_positions(g.operands().iter().map(|q| q.index())) {
                Some(r) => (*r.start() as u32, *r.end() as u32),
                None => (0, (n_positions - 1) as u32),
            },
        )
        .collect();

    // The monotone score ceiling: cover[p] counts the incomplete
    // non-barrier gates whose covering range contains p. A cascade at p
    // only ever executes such gates, so Score(p) ≤ cover[p]; retiring a
    // gate decrements its range, so the ceiling never rises.
    let mut cover: Vec<u32> = vec![0; n_positions];
    for (i, g) in gates.iter().enumerate() {
        if matches!(g, Gate::Barrier) {
            continue;
        }
        let (lo, hi) = range_of[i];
        for p in lo..=hi {
            cover[p as usize] += 1;
        }
    }

    let mut ready_at: Vec<Vec<u32>> = vec![Vec::new(); n_positions];
    for &g in tracker.ready() {
        let (lo, hi) = range_of[g];
        for p in lo..=hi {
            ready_at[p as usize].push(g as u32);
        }
    }

    let mut scratch = CascadeScratch::new(gates.len());
    // Exact cascade count per position, valid while the position stays
    // clean. A skipped candidate keeps its stale count *and* its dirty
    // flag, so the stale value is never trusted.
    let mut counts: Vec<u32> = vec![0; n_positions];
    let mut dirty = vec![true; n_positions];
    // (bound score, position) candidates, rebuilt each round.
    let mut candidates: Vec<(i64, u32)> = Vec::new();

    let mut ops: Vec<TiltOp> = Vec::with_capacity(physical.len());
    let mut head: Option<usize> = None;
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut executed: Vec<usize> = Vec::new();
    let mut succ_epoch: Vec<u32> = vec![0; gates.len()];
    let mut succ_epoch_counter: u32 = 0;

    while !tracker.is_done() {
        // Clean positions carry exact counts: they establish the
        // incumbent under the engines' shared total order
        // (score desc, dist asc, pos asc) without any cascade work.
        let mut best: Option<(i64, usize, usize)> = None;
        candidates.clear();
        for pos in 0..n_positions {
            let dist = head.map_or(0, |h| h.abs_diff(pos));
            if dirty[pos] {
                let bound = cover[pos] as i64 * 1000 - penalty * dist as i64;
                candidates.push((bound, pos as u32));
            } else if counts[pos] > 0 {
                let score = counts[pos] as i64 * 1000 - penalty * dist as i64;
                let better = match best {
                    None => true,
                    Some((bs, bd, bp)) => score > bs || (score == bs && (dist, pos) < (bd, bp)),
                };
                if better {
                    best = Some((score, dist, pos));
                }
            }
        }
        // Highest ceiling first: the incumbent only improves, so once
        // one candidate's bound falls strictly below it every later
        // (lower-bounded) candidate is pruned too.
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for &(bound, p) in &candidates {
            if let Some((bs, _, _)) = best {
                if bound < bs {
                    // Exact ≤ bound < incumbent: this candidate (and all
                    // after it) cannot win even before tie-breaks. It
                    // stays dirty for future rounds.
                    break;
                }
            }
            let pos = p as usize;
            dirty[pos] = false;
            let count = cascade_count(
                physical,
                &dag,
                &tracker,
                pos,
                &range_of,
                &mut ready_at[pos],
                &mut scratch,
            );
            counts[pos] = count;
            if count > 0 {
                let dist = head.map_or(0, |h| h.abs_diff(pos));
                let score = count as i64 * 1000 - penalty * dist as i64;
                let better = match best {
                    None => true,
                    Some((bs, bd, bp)) => score > bs || (score == bs && (dist, pos) < (bd, bp)),
                };
                if better {
                    best = Some((score, dist, pos));
                }
            }
        }

        let Some((_, _, pos)) = best else {
            // No incumbent means no candidate was skipped, so every
            // position's exact count is zero — the same condition the
            // other engines panic on.
            panic!("no head position can execute any ready gate; circuit is unroutable");
        };

        if head != Some(pos) {
            if head.is_some() {
                ops.push(TiltOp::Move { to: pos });
            }
            head = Some(pos);
        }

        // Drain the cascade at `pos` in the seed's min-index order.
        heap.clear();
        ready_at[pos].retain(|&g| !tracker.is_complete(g as usize));
        heap.extend(ready_at[pos].iter().map(|&g| Reverse(g as usize)));
        executed.clear();
        while let Some(Reverse(i)) = heap.pop() {
            tracker.complete_notify(&dag, i, |s| {
                let (lo, hi) = range_of[s];
                for p in lo..=hi {
                    ready_at[p as usize].push(s as u32);
                }
                if lo as usize <= pos && pos <= hi as usize {
                    heap.push(Reverse(s));
                }
            });
            executed.push(i);
            let gate = gates[i];
            if !matches!(gate, Gate::Barrier) {
                ops.push(TiltOp::Gate {
                    gate,
                    head_pos: pos,
                });
            }
        }
        assert!(
            !executed.is_empty(),
            "scheduler made no progress at position {pos}; this is a bug"
        );

        // Same dirty marking as the unpruned engine, plus the ceiling
        // decrement for every retired non-barrier gate.
        succ_epoch_counter += 1;
        for &i in &executed {
            let (lo, hi) = range_of[i];
            if !matches!(gates[i], Gate::Barrier) {
                for p in lo..=hi {
                    cover[p as usize] -= 1;
                }
            }
            for p in lo..=hi {
                dirty[p as usize] = true;
            }
            for &s in dag.succs(i) {
                if succ_epoch[s] == succ_epoch_counter {
                    continue;
                }
                succ_epoch[s] = succ_epoch_counter;
                let (mut lo, mut hi) = range_of[s];
                for &q in dag.preds(s) {
                    if !tracker.is_complete(q) {
                        let (qlo, qhi) = range_of[q];
                        lo = lo.max(qlo);
                        hi = hi.min(qhi);
                    }
                }
                if lo > hi {
                    continue;
                }
                for p in lo..=hi {
                    dirty[p as usize] = true;
                }
            }
        }
    }

    TiltProgram::new(spec, ops)
}

/// The seed's cascade count ([`super`]'s `executable_count`) on scratch
/// arrays: ready gates covered by `pos` execute, potentially unlocking
/// covered successors, transitively; barriers cascade but do not count.
fn cascade_count(
    physical: &Circuit,
    dag: &Dag,
    tracker: &ReadyTracker,
    pos: usize,
    range_of: &[(u32, u32)],
    seeds: &mut Vec<u32>,
    scratch: &mut CascadeScratch,
) -> u32 {
    seeds.retain(|&g| !tracker.is_complete(g as usize));
    scratch.epoch = scratch.epoch.wrapping_add(1);
    if scratch.epoch == 0 {
        // One lap of the u32 epoch: invalidate every stamp explicitly.
        scratch.need_epoch.fill(u32::MAX);
        scratch.epoch = 1;
    }
    let epoch = scratch.epoch;
    scratch.stack.clear();
    scratch.stack.extend(seeds.iter().map(|&g| g as usize));

    let gates = physical.gates();
    let mut count = 0u32;
    while let Some(i) = scratch.stack.pop() {
        if !matches!(gates[i], Gate::Barrier) {
            count += 1;
        }
        for &s in dag.succs(i) {
            if scratch.need_epoch[s] != epoch {
                scratch.need_epoch[s] = epoch;
                // The tracker's residual in-degree *is* the incomplete
                // predecessor count — O(1) instead of a preds scan.
                scratch.need[s] = tracker.pending_preds(s) as u32;
            }
            scratch.need[s] -= 1;
            let (lo, hi) = range_of[s];
            if scratch.need[s] == 0 && lo as usize <= pos && pos <= hi as usize {
                scratch.stack.push(s);
            }
        }
    }
    count
}
