//! The horizon-bounded streaming Algorithm-2 engine.
//!
//! The incremental engines in [`super::incremental`] hold the whole
//! physical circuit, its dependency DAG, and the finished op list in
//! memory — O(circuit) at every stage. This module bounds the
//! scheduler's working set to O(horizon): [`StreamScheduler`] ingests
//! gates one at a time, maintains the dependency frontier with inline
//! per-gate edge lists instead of a CSR DAG, and retires a compacted
//! prefix as gates complete, so a million-gate stream schedules in a
//! fixed-size window.
//!
//! # Eligibility horizon
//!
//! Algorithm 2's cascade score can, in principle, chain through the
//! entire remaining circuit (a long run of gates on one zone), so exact
//! agreement with the *unbounded* engines fundamentally requires whole-
//! circuit lookahead. The streaming engine therefore schedules under an
//! **eligibility horizon** `H` ([`super::ScheduleConfig::horizon`]):
//! each round only the gates with index below
//!
//! ```text
//! E = min(floor + H, n)        floor = smallest incomplete gate index
//! ```
//!
//! participate — in argmax scoring, in the cascade walk, and in the
//! drain (E is frozen for the round; gates unlocked past it wait for
//! the next round). The gate at `floor` has all predecessors below
//! `floor`, hence complete, so it is always ready and always eligible
//! (`floor < E` whenever work remains): every round makes progress and
//! the bound never deadlocks.
//!
//! Sub-horizon circuits never bind `E`, and [`super::schedule_with`]
//! routes them to the unchanged monolithic engines; this module is
//! decision-identical to them in that regime (pinned by the in-crate
//! equivalence tests). When the horizon binds, the monolithic entry
//! points below ([`schedule_stream_monolithic`],
//! [`schedule_rescan_capped`]) apply the *same* capped rule, so the
//! windowed pipeline and a one-shot compile of the same circuit still
//! agree byte for byte.
//!
//! # Incremental dependency tracking
//!
//! `Dag::new` needs the whole circuit; the streaming tracker rebuilds
//! its exact edge structure on the fly. For a non-barrier gate the
//! predecessors are the distinct last writers of its operands since the
//! previous barrier (falling back to that barrier when none exist); a
//! barrier depends on every non-barrier gate since the previous one
//! (falling back to barrier-chaining over an empty span). A non-barrier
//! gate therefore has at most two qubit-successors plus its closing
//! barrier — three inline slots — while barriers keep a spill list.
//! Only predecessors still incomplete at push time create edges; the
//! residual `pending` count is exactly `ReadyTracker::pending_preds`,
//! so the cascade scorer and the pruned-argmax bound carry over
//! unchanged from the monolithic engine.

use super::SchedulerKind;
use crate::program::{TiltOp, TiltProgram};
use crate::spec::DeviceSpec;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tilt_circuit::{Circuit, Dag, Gate, ReadyTracker};

/// Sentinel for "no gate" in the per-qubit last-writer table.
const NO_GATE: u32 = u32::MAX;

/// One ingested gate plus its frontier bookkeeping.
struct GateRec {
    gate: Gate,
    /// Contiguous covering-position range (barriers span everything).
    lo: u32,
    hi: u32,
    /// Distinct incomplete predecessors remaining (the residual
    /// in-degree `ReadyTracker::pending_preds` would report).
    pending: u32,
    done: bool,
    /// Forward edges: ≤ 2 qubit-successors + the closing barrier.
    /// Barriers overflow into [`StreamScheduler::barrier_succs`].
    succs: [u32; 3],
    n_succs: u8,
    /// Non-barrier predecessors incomplete at push time, for the dirty-
    /// range narrowing walk (a barrier predecessor covers every
    /// position, so the intersection it contributes is a no-op and it
    /// is not stored).
    preds: [u32; 2],
    n_preds: u8,
}

impl GateRec {
    fn covers(&self, pos: usize) -> bool {
        self.lo as usize <= pos && pos <= self.hi as usize
    }
}

/// The bounded-memory scheduler: push gates, drain [`TiltOp`]s.
///
/// Decision-identical to the monolithic engines whenever the horizon
/// does not bind, and to [`schedule_rescan_capped`] when it does.
pub(crate) struct StreamScheduler {
    spec: DeviceSpec,
    /// `Some(penalty)` for the Eq. 2 scorers, `None` for NaiveNextGate.
    penalty: Option<i64>,
    horizon: usize,
    n_positions: usize,

    /// Global index of `recs[0]`; everything below is retired.
    base: usize,
    recs: Vec<GateRec>,
    /// Spilled successor lists for barriers (keyed by global index).
    barrier_succs: HashMap<usize, Vec<u32>>,
    /// Gates ingested so far.
    total: usize,
    eof: bool,
    /// Smallest incomplete gate index (advanced lazily).
    floor: usize,
    /// Gates below this global index are activated (eligible).
    active_end: usize,
    n_done: usize,

    // --- ingest-side dependency state --------------------------------
    /// Last gate touching each qubit since the previous barrier.
    last_on: Vec<u32>,
    /// First gate index after the previous barrier.
    span_start: usize,
    last_barrier: Option<usize>,

    // --- per-position scoring state (Eq. 2 engines only) -------------
    /// Incomplete, *active*, non-barrier gates covering each position —
    /// the monotone score ceiling of the pruned argmax.
    cover: Vec<u32>,
    counts: Vec<u32>,
    dirty: Vec<bool>,
    ready_at: Vec<Vec<u32>>,
    candidates: Vec<(i64, u32)>,

    // --- cascade scratch (aligned with `recs`) -----------------------
    need: Vec<u32>,
    need_epoch: Vec<u32>,
    epoch: u32,
    succ_epoch: Vec<u32>,
    succ_epoch_counter: u32,
    stack: Vec<usize>,
    heap: BinaryHeap<Reverse<usize>>,
    executed: Vec<usize>,

    head: Option<usize>,
}

impl StreamScheduler {
    pub(crate) fn new(spec: DeviceSpec, kind: SchedulerKind, horizon: usize) -> Self {
        let n_positions = spec.n_head_positions();
        StreamScheduler {
            spec,
            penalty: kind.penalty_permille(),
            horizon: horizon.max(1),
            n_positions,
            base: 0,
            recs: Vec::new(),
            barrier_succs: HashMap::new(),
            total: 0,
            eof: false,
            floor: 0,
            active_end: 0,
            n_done: 0,
            last_on: vec![NO_GATE; spec.n_ions()],
            span_start: 0,
            last_barrier: None,
            cover: vec![0; n_positions],
            counts: vec![0; n_positions],
            dirty: vec![false; n_positions],
            ready_at: vec![Vec::new(); n_positions],
            candidates: Vec::new(),
            need: Vec::new(),
            need_epoch: Vec::new(),
            epoch: 0,
            succ_epoch: Vec::new(),
            succ_epoch_counter: 0,
            stack: Vec::new(),
            heap: BinaryHeap::new(),
            executed: Vec::new(),
            head: None,
        }
    }

    fn done_at(&self, idx: usize) -> bool {
        idx < self.base || self.recs[idx - self.base].done
    }

    /// Ingests the next gate of the physical stream.
    ///
    /// # Panics
    ///
    /// Panics on an unrouted two-qubit gate (same contract as
    /// [`super::schedule`]).
    pub(crate) fn push(&mut self, g: Gate) {
        let idx = self.total;
        assert!(idx < NO_GATE as usize, "gate stream exceeds u32 indexing");
        self.total += 1;
        if let Some(d) = g.span() {
            assert!(
                d < self.spec.head_size(),
                "unrouted gate {g:?} spans {d} ≥ head size {}",
                self.spec.head_size()
            );
        }
        let (lo, hi) = match self
            .spec
            .covering_head_positions(g.operands().iter().map(|q| q.index()))
        {
            Some(r) => (*r.start() as u32, *r.end() as u32),
            None => (0, (self.n_positions - 1) as u32),
        };
        let mut rec = GateRec {
            gate: g,
            lo,
            hi,
            pending: 0,
            done: false,
            succs: [0; 3],
            n_succs: 0,
            preds: [0; 2],
            n_preds: 0,
        };

        if matches!(g, Gate::Barrier) {
            // Every incomplete gate of the closing span becomes a
            // predecessor; already-retired span gates need no edge (the
            // residual count never included them).
            let mut pending = 0u32;
            for p in self.span_start.max(self.base)..idx {
                let slot = p - self.base;
                if self.recs[slot].done || matches!(self.recs[slot].gate, Gate::Barrier) {
                    continue;
                }
                pending += 1;
                let r = &mut self.recs[slot];
                debug_assert!((r.n_succs as usize) < 3);
                r.succs[r.n_succs as usize] = idx as u32;
                r.n_succs += 1;
            }
            if pending == 0 {
                if let Some(lb) = self.last_barrier {
                    if !self.done_at(lb) {
                        pending = 1;
                        self.barrier_succs.entry(lb).or_default().push(idx as u32);
                    }
                }
            }
            rec.pending = pending;
            self.last_barrier = Some(idx);
            self.span_start = idx + 1;
            self.last_on.fill(NO_GATE);
        } else {
            let ops = g.operands();
            let mut pred_set = [0u32; 2];
            let mut n_distinct = 0usize;
            for q in ops.iter() {
                let p = self.last_on[q.index()];
                if p != NO_GATE && !pred_set[..n_distinct].contains(&p) {
                    pred_set[n_distinct] = p;
                    n_distinct += 1;
                }
            }
            if n_distinct == 0 {
                // No writer since the fence: depend on the fence itself.
                if let Some(lb) = self.last_barrier {
                    if !self.done_at(lb) {
                        rec.pending = 1;
                        self.barrier_succs.entry(lb).or_default().push(idx as u32);
                    }
                }
            } else {
                for &p in &pred_set[..n_distinct] {
                    if self.done_at(p as usize) {
                        continue;
                    }
                    rec.pending += 1;
                    rec.preds[rec.n_preds as usize] = p;
                    rec.n_preds += 1;
                    let r = &mut self.recs[p as usize - self.base];
                    debug_assert!((r.n_succs as usize) < 3);
                    r.succs[r.n_succs as usize] = idx as u32;
                    r.n_succs += 1;
                }
            }
            for q in ops.iter() {
                self.last_on[q.index()] = idx as u32;
            }
        }

        self.recs.push(rec);
        self.need.push(0);
        self.need_epoch.push(0);
        self.succ_epoch.push(0);
    }

    /// Marks the input stream exhausted; subsequent
    /// [`StreamScheduler::run_rounds`] calls drain to completion.
    pub(crate) fn finish_input(&mut self) {
        self.eof = true;
    }

    pub(crate) fn is_done(&self) -> bool {
        self.eof && self.n_done == self.total
    }

    /// Runs scheduling rounds while legal — i.e. while the retained
    /// stream reaches the eligibility bound (`total ≥ floor + H`) or
    /// the input is exhausted — appending emitted ops to `ops`.
    pub(crate) fn run_rounds(&mut self, ops: &mut Vec<TiltOp>) {
        loop {
            while self.floor < self.total && self.done_at(self.floor) {
                self.floor += 1;
            }
            if self.floor == self.total {
                break;
            }
            if !self.eof && self.total < self.floor + self.horizon {
                break;
            }
            self.round(ops);
            self.maybe_compact();
        }
    }

    /// Activates gates `[active_end, e)`: they join the cover ceiling,
    /// dirty their ranges (a newly eligible gate can only raise
    /// scores), and enter the per-position ready lists when already
    /// unblocked.
    fn activate(&mut self, e: usize) {
        for idx in self.active_end..e {
            let slot = idx - self.base;
            let rec = &self.recs[slot];
            debug_assert!(!rec.done);
            let (lo, hi) = (rec.lo as usize, rec.hi as usize);
            if self.penalty.is_some() {
                if !matches!(rec.gate, Gate::Barrier) {
                    for p in lo..=hi {
                        self.cover[p] += 1;
                    }
                }
                for p in lo..=hi {
                    self.dirty[p] = true;
                }
            }
            if rec.pending == 0 {
                for p in lo..=hi {
                    self.ready_at[p].push(idx as u32);
                }
            }
        }
        self.active_end = e;
    }

    fn round(&mut self, ops: &mut Vec<TiltOp>) {
        let e = (self.floor + self.horizon).min(self.total);
        if e > self.active_end {
            self.activate(e);
        }

        let pos = match self.penalty {
            Some(penalty) => match self.best_position(penalty, e) {
                Some(pos) => pos,
                // Every eligible ready gate is a barrier (a countable
                // ready gate would score ≥ 1 somewhere): complete the
                // barriers without moving and rescore next round.
                None => {
                    self.barrier_relief(e);
                    return;
                }
            },
            // NaiveNextGate: the oldest ready gate is exactly the floor
            // gate (all its predecessors are below the floor, hence
            // complete), parked at the leftmost covering position.
            None => {
                let rec = &self.recs[self.floor - self.base];
                debug_assert_eq!(rec.pending, 0);
                rec.lo as usize
            }
        };

        if self.head != Some(pos) {
            if self.head.is_some() {
                ops.push(TiltOp::Move { to: pos });
            }
            self.head = Some(pos);
        }

        // Drain the cascade at `pos` in min-index order, with the
        // eligibility bound frozen for the whole round.
        self.heap.clear();
        {
            let base = self.base;
            let recs = &self.recs;
            self.ready_at[pos].retain(|&g| {
                let g = g as usize;
                g >= base && !recs[g - base].done
            });
        }
        self.heap
            .extend(self.ready_at[pos].iter().map(|&g| Reverse(g as usize)));
        self.executed.clear();
        while let Some(Reverse(i)) = self.heap.pop() {
            let slot = i - self.base;
            debug_assert!(!self.recs[slot].done && self.recs[slot].pending == 0);
            self.recs[slot].done = true;
            self.n_done += 1;
            for k in 0..succ_count(&self.recs[slot], &self.barrier_succs, i) {
                let s = succ_at(&self.recs[slot], &self.barrier_succs, i, k) as usize;
                let srec = &mut self.recs[s - self.base];
                srec.pending -= 1;
                if srec.pending == 0 && s < e {
                    let (lo, hi) = (srec.lo as usize, srec.hi as usize);
                    let covering = srec.covers(pos);
                    for p in lo..=hi {
                        self.ready_at[p].push(s as u32);
                    }
                    if covering {
                        self.heap.push(Reverse(s));
                    }
                }
            }
            self.executed.push(i);
            let gate = self.recs[slot].gate;
            if !matches!(gate, Gate::Barrier) {
                ops.push(TiltOp::Gate {
                    gate,
                    head_pos: pos,
                });
            }
        }
        assert!(
            !self.executed.is_empty(),
            "scheduler made no progress at position {pos}; this is a bug"
        );

        if self.penalty.is_none() {
            return;
        }
        self.mark_dirty_after_round(e);
    }

    /// When a round's argmax finds no countable gate anywhere, the
    /// eligible ready set consists solely of barriers (any countable
    /// ready gate would score at its covering positions). Complete
    /// them — min-index order, cascading through newly-ready eligible
    /// barriers — without moving the head or emitting ops; the capped
    /// rescan reference applies the identical rule.
    fn barrier_relief(&mut self, e: usize) {
        // Barriers cover every position, so the ready list at position
        // 0 holds exactly the eligible ready barriers here.
        self.heap.clear();
        {
            let base = self.base;
            let recs = &self.recs;
            self.ready_at[0].retain(|&g| {
                let g = g as usize;
                g >= base && !recs[g - base].done
            });
        }
        self.heap
            .extend(self.ready_at[0].iter().map(|&g| Reverse(g as usize)));
        self.executed.clear();
        while let Some(Reverse(i)) = self.heap.pop() {
            let slot = i - self.base;
            debug_assert!(matches!(self.recs[slot].gate, Gate::Barrier));
            self.recs[slot].done = true;
            self.n_done += 1;
            for k in 0..succ_count(&self.recs[slot], &self.barrier_succs, i) {
                let s = succ_at(&self.recs[slot], &self.barrier_succs, i, k) as usize;
                let srec = &mut self.recs[s - self.base];
                srec.pending -= 1;
                if srec.pending == 0 && s < e {
                    let (lo, hi) = (srec.lo as usize, srec.hi as usize);
                    let barrier = matches!(srec.gate, Gate::Barrier);
                    for p in lo..=hi {
                        self.ready_at[p].push(s as u32);
                    }
                    if barrier {
                        self.heap.push(Reverse(s));
                    }
                }
            }
            self.executed.push(i);
        }
        assert!(
            !self.executed.is_empty(),
            "no head position can execute any ready gate; circuit is unroutable"
        );
        self.mark_dirty_after_round(e);
    }

    fn mark_dirty_after_round(&mut self, e: usize) {
        // Dirty marking: every retired gate's range (with the cover
        // ceiling decrement), plus each still-eligible successor's
        // range intersected with its incomplete predecessors' ranges.
        self.succ_epoch_counter += 1;
        let executed = std::mem::take(&mut self.executed);
        for &i in &executed {
            let slot = i - self.base;
            let (lo, hi) = (self.recs[slot].lo as usize, self.recs[slot].hi as usize);
            if !matches!(self.recs[slot].gate, Gate::Barrier) {
                for p in lo..=hi {
                    self.cover[p] -= 1;
                }
            }
            for p in lo..=hi {
                self.dirty[p] = true;
            }
            for k in 0..succ_count(&self.recs[slot], &self.barrier_succs, i) {
                let s = succ_at(&self.recs[slot], &self.barrier_succs, i, k) as usize;
                if s >= e {
                    // Not yet eligible: activation will dirty its full
                    // range when it joins.
                    continue;
                }
                let sslot = s - self.base;
                if self.succ_epoch[sslot] == self.succ_epoch_counter {
                    continue;
                }
                self.succ_epoch[sslot] = self.succ_epoch_counter;
                let srec = &self.recs[sslot];
                let (mut slo, mut shi) = (srec.lo, srec.hi);
                for &q in &srec.preds[..srec.n_preds as usize] {
                    if !self.done_at(q as usize) {
                        let qrec = &self.recs[q as usize - self.base];
                        slo = slo.max(qrec.lo);
                        shi = shi.min(qrec.hi);
                    }
                }
                if slo > shi {
                    continue;
                }
                for p in slo as usize..=shi as usize {
                    self.dirty[p] = true;
                }
            }
        }
        self.executed = executed;
    }

    /// The pruned argmax of [`super::incremental`], restricted to the
    /// active window: clean positions establish the incumbent from
    /// cached counts, dirty candidates are walked in descending ceiling
    /// order and rescored exactly while their bound could still win.
    fn best_position(&mut self, penalty: i64, e: usize) -> Option<usize> {
        let mut best: Option<(i64, usize, usize)> = None;
        self.candidates.clear();
        for pos in 0..self.n_positions {
            let dist = self.head.map_or(0, |h| h.abs_diff(pos));
            if self.dirty[pos] {
                let bound = self.cover[pos] as i64 * 1000 - penalty * dist as i64;
                self.candidates.push((bound, pos as u32));
            } else if self.counts[pos] > 0 {
                let score = self.counts[pos] as i64 * 1000 - penalty * dist as i64;
                let better = match best {
                    None => true,
                    Some((bs, bd, bp)) => score > bs || (score == bs && (dist, pos) < (bd, bp)),
                };
                if better {
                    best = Some((score, dist, pos));
                }
            }
        }
        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for &(bound, p) in &candidates {
            if let Some((bs, _, _)) = best {
                if bound < bs {
                    // Exact ≤ bound < incumbent: pruned, stays dirty.
                    break;
                }
            }
            let pos = p as usize;
            self.dirty[pos] = false;
            let count = self.cascade_count(pos, e);
            self.counts[pos] = count;
            if count > 0 {
                let dist = self.head.map_or(0, |h| h.abs_diff(pos));
                let score = count as i64 * 1000 - penalty * dist as i64;
                let better = match best {
                    None => true,
                    Some((bs, bd, bp)) => score > bs || (score == bs && (dist, pos) < (bd, bp)),
                };
                if better {
                    best = Some((score, dist, pos));
                }
            }
        }
        self.candidates = candidates;
        best.map(|(_, _, pos)| pos)
    }

    /// The epoch-stamped cascade count over the active window: active
    /// ready gates covered by `pos` execute, unlocking covered active
    /// successors transitively; barriers cascade but do not count.
    fn cascade_count(&mut self, pos: usize, e: usize) -> u32 {
        {
            let base = self.base;
            let recs = &self.recs;
            self.ready_at[pos].retain(|&g| {
                let g = g as usize;
                g >= base && !recs[g - base].done
            });
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.need_epoch.fill(u32::MAX);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.stack.clear();
        self.stack
            .extend(self.ready_at[pos].iter().map(|&g| g as usize));

        let mut count = 0u32;
        while let Some(i) = self.stack.pop() {
            let slot = i - self.base;
            if !matches!(self.recs[slot].gate, Gate::Barrier) {
                count += 1;
            }
            for k in 0..succ_count(&self.recs[slot], &self.barrier_succs, i) {
                let s = succ_at(&self.recs[slot], &self.barrier_succs, i, k) as usize;
                if s >= e {
                    continue;
                }
                let sslot = s - self.base;
                if self.need_epoch[sslot] != epoch {
                    self.need_epoch[sslot] = epoch;
                    self.need[sslot] = self.recs[sslot].pending;
                }
                self.need[sslot] -= 1;
                if self.need[sslot] == 0 && self.recs[sslot].covers(pos) {
                    self.stack.push(s);
                }
            }
        }
        count
    }

    /// Retires the completed prefix once it dominates the live window,
    /// keeping the resident state at O(horizon + ingest slack).
    fn maybe_compact(&mut self) {
        let retired = self.floor - self.base;
        if retired < 1024 || retired * 2 < self.recs.len() {
            return;
        }
        self.recs.drain(..retired);
        self.need.drain(..retired);
        self.need_epoch.drain(..retired);
        self.succ_epoch.drain(..retired);
        self.base = self.floor;
        let base = self.base;
        self.barrier_succs.retain(|&k, _| k >= base);
        for list in &mut self.ready_at {
            let recs = &self.recs;
            list.retain(|&g| {
                let g = g as usize;
                g >= base && !recs[g - base].done
            });
        }
    }
}

/// Successor count of the gate at global index `i` (inline + spill).
fn succ_count(rec: &GateRec, spill: &HashMap<usize, Vec<u32>>, i: usize) -> usize {
    rec.n_succs as usize + spill.get(&i).map_or(0, Vec::len)
}

/// The `k`-th successor of the gate at global index `i`.
fn succ_at(rec: &GateRec, spill: &HashMap<usize, Vec<u32>>, i: usize, k: usize) -> u32 {
    let inline = rec.n_succs as usize;
    if k < inline {
        rec.succs[k]
    } else {
        spill[&i][k - inline]
    }
}

/// One-shot adapter: runs the streaming engine over an in-memory
/// circuit. [`super::schedule_with`] routes horizon-binding circuits
/// here so that a monolithic compile and the windowed pipeline agree
/// byte for byte.
pub(super) fn schedule_stream_monolithic(
    physical: &Circuit,
    spec: DeviceSpec,
    kind: SchedulerKind,
    horizon: usize,
) -> TiltProgram {
    let mut s = StreamScheduler::new(spec, kind, horizon);
    let mut ops: Vec<TiltOp> = Vec::with_capacity(physical.len());
    for &g in physical.gates() {
        s.push(g);
        s.run_rounds(&mut ops);
    }
    s.finish_input();
    s.run_rounds(&mut ops);
    debug_assert!(s.is_done());
    TiltProgram::new(spec, ops)
}

/// The rescan reference under the same eligibility horizon: a direct
/// port of [`super::schedule_rescan`] with every scoring/drain step
/// filtered to gates below the per-round bound `E`. Serves as the test
/// oracle for the horizon-binding regime (monolithic memory; reference
/// only).
pub(super) fn schedule_rescan_capped(
    physical: &Circuit,
    spec: DeviceSpec,
    kind: SchedulerKind,
    horizon: usize,
) -> TiltProgram {
    let horizon = horizon.max(1);
    let dag = Dag::new(physical);
    let mut tracker = ReadyTracker::new(&dag);
    let gates = physical.gates();
    let n = gates.len();
    let mut ops: Vec<TiltOp> = Vec::with_capacity(n);
    let mut head: Option<usize> = None;
    let mut floor = 0usize;

    while !tracker.is_done() {
        while floor < n && tracker.is_complete(floor) {
            floor += 1;
        }
        let e = (floor + horizon).min(n);

        let pos = match kind {
            SchedulerKind::NaiveNextGate => {
                let oldest = *tracker
                    .ready()
                    .iter()
                    .filter(|&&i| i < e)
                    .min()
                    .expect("floor gate is always ready and eligible");
                super::leftmost_position_covering(physical, spec, oldest)
            }
            _ => {
                let penalty = kind
                    .penalty_permille()
                    .expect("scoring kinds carry a penalty");
                let mut best_pos = 0usize;
                let mut best_score = i64::MIN;
                let mut best_dist = usize::MAX;
                let mut any = false;
                for p in spec.head_positions() {
                    let count = capped_executable_count(physical, &dag, &tracker, spec, p, e);
                    if count == 0 {
                        continue;
                    }
                    any = true;
                    let dist = head.map_or(0, |h| h.abs_diff(p));
                    let score = count as i64 * 1000 - penalty * dist as i64;
                    if score > best_score || (score == best_score && dist < best_dist) {
                        best_score = score;
                        best_pos = p;
                        best_dist = dist;
                    }
                }
                if !any {
                    // Barrier relief, mirroring `StreamScheduler`: the
                    // eligible ready set is all barriers — complete
                    // them (min-index) without moving the head.
                    let mut relieved = false;
                    loop {
                        let next = tracker
                            .ready()
                            .iter()
                            .copied()
                            .filter(|&i| i < e && matches!(gates[i], Gate::Barrier))
                            .min();
                        let Some(i) = next else { break };
                        tracker.complete(&dag, i);
                        relieved = true;
                    }
                    assert!(
                        relieved,
                        "no head position can execute any ready gate; circuit is unroutable"
                    );
                    continue;
                }
                best_pos
            }
        };

        if head != Some(pos) {
            if head.is_some() {
                ops.push(TiltOp::Move { to: pos });
            }
            head = Some(pos);
        }

        let mut executed_any = false;
        loop {
            let next = tracker
                .ready()
                .iter()
                .copied()
                .filter(|&i| i < e && super::gate_fits(gates[i], spec, pos))
                .min();
            let Some(i) = next else { break };
            tracker.complete(&dag, i);
            executed_any = true;
            let gate = gates[i];
            if !matches!(gate, Gate::Barrier) {
                ops.push(TiltOp::Gate {
                    gate,
                    head_pos: pos,
                });
            }
        }
        assert!(
            executed_any,
            "scheduler made no progress at position {pos}; this is a bug"
        );
    }

    TiltProgram::new(spec, ops)
}

/// [`super::executable_count`] restricted to gates below `e`.
fn capped_executable_count(
    physical: &Circuit,
    dag: &Dag,
    tracker: &ReadyTracker,
    spec: DeviceSpec,
    pos: usize,
    e: usize,
) -> usize {
    use std::collections::{HashMap, HashSet};
    let gates = physical.gates();
    let mut queue: Vec<usize> = tracker
        .ready()
        .iter()
        .copied()
        .filter(|&i| i < e && super::gate_fits(gates[i], spec, pos))
        .collect();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut local_indeg: HashMap<usize, usize> = HashMap::new();
    let mut count = 0usize;
    while let Some(i) = queue.pop() {
        if !seen.insert(i) {
            continue;
        }
        if !matches!(gates[i], Gate::Barrier) {
            count += 1;
        }
        for &s in dag.succs(i) {
            if s >= e {
                continue;
            }
            let remaining = local_indeg.entry(s).or_insert_with(|| {
                dag.preds(s)
                    .iter()
                    .filter(|&&p| !tracker.is_complete(p))
                    .count()
            });
            *remaining -= 1;
            if *remaining == 0 && super::gate_fits(gates[s], spec, pos) {
                queue.push(s);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::super::{schedule_with, ScheduleConfig, SchedulerKind};
    use super::*;
    use tilt_circuit::Qubit;

    fn spec(n: usize, head: usize) -> DeviceSpec {
        DeviceSpec::new(n, head).unwrap()
    }

    /// Deterministic mixed workload: zones, chains, fences, 1q traffic.
    fn workload(n: usize, len: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..len {
            match next() % 10 {
                0..=5 => {
                    let a = (next() as usize) % n;
                    let span = 1 + (next() as usize) % 3;
                    let b = (a + span).min(n - 1);
                    if a != b {
                        c.xx(Qubit(a.min(b)), Qubit(a.max(b)), 0.1);
                    } else {
                        c.rx(Qubit(a), 0.2);
                    }
                }
                6..=8 => {
                    c.rz(Qubit((next() as usize) % n), 0.3);
                }
                _ => {
                    c.barrier();
                }
            }
        }
        c
    }

    const KINDS: [SchedulerKind; 4] = [
        SchedulerKind::GreedyMaxExecutable,
        SchedulerKind::DistanceDiscounted {
            penalty_permille: 250,
        },
        SchedulerKind::DistanceDiscounted {
            penalty_permille: 2000,
        },
        SchedulerKind::NaiveNextGate,
    ];

    #[test]
    fn non_binding_horizon_matches_monolithic_engines() {
        for seed in 0..4u64 {
            let c = workload(24, 160, seed);
            for kind in KINDS {
                let mono = schedule_with(&c, spec(24, 6), ScheduleConfig::new(kind));
                let streamed = schedule_stream_monolithic(&c, spec(24, 6), kind, c.len() + 1);
                assert_eq!(streamed, mono, "kind {kind:?} seed {seed}");
            }
        }
    }

    #[test]
    fn binding_horizon_matches_capped_rescan() {
        for seed in 0..4u64 {
            let c = workload(20, 200, seed);
            for kind in KINDS {
                for horizon in [1usize, 2, 7, 32, 150] {
                    let reference = schedule_rescan_capped(&c, spec(20, 5), kind, horizon);
                    let streamed = schedule_stream_monolithic(&c, spec(20, 5), kind, horizon);
                    assert_eq!(streamed, reference, "kind {kind:?} seed {seed} H={horizon}");
                }
            }
        }
    }

    #[test]
    fn capped_rescan_with_loose_horizon_is_the_seed_engine() {
        for seed in 0..3u64 {
            let c = workload(16, 120, seed);
            for kind in KINDS {
                let capped = schedule_rescan_capped(&c, spec(16, 4), kind, c.len());
                let seed_engine = schedule_with(&c, spec(16, 4), ScheduleConfig::rescan(kind));
                assert_eq!(capped, seed_engine, "kind {kind:?} seed {seed}");
            }
        }
    }

    #[test]
    fn incremental_push_matches_bulk_push() {
        // Interleaving run_rounds with pushes (the windowed pipeline's
        // call pattern) must not change any decision.
        let c = workload(24, 300, 9);
        let sp = spec(24, 6);
        for horizon in [16usize, 64, 1024] {
            let bulk =
                schedule_stream_monolithic(&c, sp, SchedulerKind::GreedyMaxExecutable, horizon);
            let mut s = StreamScheduler::new(sp, SchedulerKind::GreedyMaxExecutable, horizon);
            let mut ops = Vec::new();
            for (i, &g) in c.gates().iter().enumerate() {
                s.push(g);
                if i % 7 == 0 {
                    s.run_rounds(&mut ops);
                }
            }
            s.finish_input();
            s.run_rounds(&mut ops);
            assert!(s.is_done());
            assert_eq!(TiltProgram::new(sp, ops), bulk, "H={horizon}");
        }
    }

    #[test]
    fn compaction_keeps_memory_bounded() {
        let sp = spec(8, 4);
        let mut s = StreamScheduler::new(sp, SchedulerKind::GreedyMaxExecutable, 64);
        let mut ops = Vec::new();
        for i in 0..200_000usize {
            s.push(Gate::Xx(Qubit(i % 7), Qubit(i % 7 + 1), 0.1));
            s.run_rounds(&mut ops);
        }
        // The retained window tracks the horizon, not the stream.
        assert!(
            s.recs.len() < 8 * 64 + 2048,
            "resident window grew to {}",
            s.recs.len()
        );
        s.finish_input();
        s.run_rounds(&mut ops);
        assert!(s.is_done());
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, TiltOp::Gate { .. }))
                .count(),
            200_000
        );
    }
}
