//! Bounded-memory streaming compilation.
//!
//! [`StreamingCompiler`] runs the same three passes as
//! [`Compiler::compile`] — decompose, route, schedule — over a gate
//! *stream* instead of a materialized [`Circuit`], holding only
//! O(window + look-ahead) state: the current input window, the router's
//! pruned pending suffix ([`StreamRouter`]), and the scheduler's active
//! horizon ([`StreamScheduler`]). Scheduled ops leave through a
//! [`ProgramSink`] as increments; concatenating every increment yields
//! **exactly** the monolithic program's op stream — decision identity is
//! the correctness bar, pinned by the in-crate equivalence tests and
//! `tests/streaming_equivalence.rs`.
//!
//! Carry-over state between windows:
//!
//! * the logical→physical [`Mapping`] and the router's swap/opposing
//!   counters, look-ahead window and policy state (LinQ weight cache or
//!   the stochastic policy's RNG);
//! * the scheduler's dependency frontier (the incremental equivalent of
//!   the `ReadyTracker` seed engine state), head position, and
//!   per-position score caches;
//! * the report accumulators (move count/distance, gate counts, pass
//!   timings).
//!
//! Two configurations cannot stream and are rejected up front rather
//! than silently diverging from the monolithic result:
//! [`InitialMapping::InteractionChain`] must weigh the complete
//! interaction graph before placing the first ion, and a window can
//! never be scheduled before its successors' dependencies are known —
//! which is why the scheduler ingests up to its eligibility horizon
//! before committing any round instead of scheduling each window in
//! isolation.

use super::{CompileReport, Compiler};
use crate::decompose::decompose_into;
use crate::error::CompileError;
use crate::mapping::Mapping;
use crate::program::TiltOp;
use crate::route::streaming::StreamRouter;
use crate::schedule::{StreamScheduler, DEFAULT_HORIZON};
use crate::spec::DeviceSpec;
use std::time::{Duration, Instant};
use tilt_circuit::{validate_gate, Circuit, Gate};

/// Receives scheduled program increments from the streaming pipeline.
///
/// `emit` is called with each non-empty batch of ops in execution order;
/// the concatenation of all batches equals the monolithic
/// [`TiltProgram::ops`](crate::TiltProgram::ops) stream byte for byte.
pub trait ProgramSink {
    /// Consumes the next increment of the scheduled op stream.
    fn emit(&mut self, ops: &[TiltOp]);
}

/// Any `FnMut(&[TiltOp])` is a sink.
impl<F: FnMut(&[TiltOp])> ProgramSink for F {
    fn emit(&mut self, ops: &[TiltOp]) {
        self(ops);
    }
}

/// A sink that simply collects every op (testing, small programs).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// All ops emitted so far, in execution order.
    pub ops: Vec<TiltOp>,
}

impl ProgramSink for CollectSink {
    fn emit(&mut self, ops: &[TiltOp]) {
        self.ops.extend_from_slice(ops);
    }
}

/// What a completed streaming compile reports.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// The same statistics the monolithic pipeline reports — identical
    /// values except the wall-clock fields.
    pub report: CompileReport,
    /// Number of non-empty increments handed to the sink.
    pub increments: usize,
    /// Program gates consumed from the input stream.
    pub input_gate_count: usize,
    /// The starting permutation used.
    pub initial_mapping: Mapping,
    /// The permutation after the final gate.
    pub final_mapping: Mapping,
}

/// Push-based streaming counterpart of [`Compiler::compile`].
///
/// Feed program gates with [`push`](StreamingCompiler::push); every
/// `window` input gates the pipeline advances all three passes and
/// flushes any newly scheduled ops to the sink. [`finish`]
/// (StreamingCompiler::finish) drains the carry-over state and returns
/// the summary.
pub struct StreamingCompiler {
    spec: DeviceSpec,
    n_qubits: usize,
    window: usize,
    /// Buffered input program gates of the current window.
    buffer: Circuit,
    /// Decompose-pass scratch (native expansion of the window).
    native: Circuit,
    /// Swap-lowering scratch (native expansion of routed increments).
    lowered: Circuit,
    router: StreamRouter,
    scheduler: StreamScheduler,
    /// Scheduled ops awaiting the next flush.
    ops: Vec<TiltOp>,
    initial_mapping: Mapping,
    input_gate_count: usize,
    increments: usize,
    // Report accumulators (the monolithic fold, applied incrementally).
    move_count: usize,
    move_distance_ions: usize,
    last_head: Option<usize>,
    native_gate_count: usize,
    native_two_qubit_count: usize,
    t_decompose: Duration,
    t_swap: Duration,
    t_move: Duration,
}

impl StreamingCompiler {
    /// Starts a streaming session for `compiler`'s configuration over a
    /// `n_qubits`-wide input stream, flushing every `window` input gates
    /// (`usize::MAX` streams the whole input as one window).
    ///
    /// # Errors
    ///
    /// [`CompileError::CircuitTooWide`] when the register exceeds the
    /// tape, [`CompileError::InvalidRouterConfig`] for inconsistent
    /// router parameters, and [`CompileError::StreamingUnsupported`] for
    /// configurations that must inspect the whole circuit
    /// ([`InitialMapping::InteractionChain`]).
    ///
    /// [`InitialMapping::InteractionChain`]: crate::InitialMapping::InteractionChain
    pub fn new(compiler: &Compiler, n_qubits: usize, window: usize) -> Result<Self, CompileError> {
        let spec = compiler.spec;
        if n_qubits > spec.n_ions() {
            return Err(CompileError::CircuitTooWide {
                circuit_qubits: n_qubits,
                n_ions: spec.n_ions(),
            });
        }
        let Some(initial) = compiler.initial_mapping.build_streaming(spec.n_ions()) else {
            return Err(CompileError::StreamingUnsupported {
                reason: format!(
                    "initial mapping {:?} must inspect the whole circuit before placing ions",
                    compiler.initial_mapping
                ),
            });
        };
        let router = StreamRouter::new(&compiler.router, spec, initial.clone())?;
        let scheduler = StreamScheduler::new(spec, compiler.scheduler, DEFAULT_HORIZON);
        Ok(StreamingCompiler {
            spec,
            n_qubits,
            window: window.max(1),
            buffer: Circuit::new(n_qubits),
            native: Circuit::new(n_qubits),
            lowered: Circuit::new(spec.n_ions()),
            router,
            scheduler,
            ops: Vec::new(),
            initial_mapping: initial,
            input_gate_count: 0,
            increments: 0,
            move_count: 0,
            move_distance_ions: 0,
            last_head: None,
            native_gate_count: 0,
            native_two_qubit_count: 0,
            t_decompose: Duration::ZERO,
            t_swap: Duration::ZERO,
            t_move: Duration::ZERO,
        })
    }

    /// Ingests the next program gate; advances the pipeline and flushes
    /// to `sink` when the current window fills.
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidCircuit`] with the offending gate's global
    /// index, exactly as the monolithic validation pass reports it.
    pub fn push(&mut self, g: Gate, sink: &mut dyn ProgramSink) -> Result<(), CompileError> {
        validate_gate(&g, self.input_gate_count, self.n_qubits)?;
        self.input_gate_count += 1;
        self.buffer.push(g);
        if self.buffer.len() >= self.window {
            self.process_window(false, sink);
        }
        Ok(())
    }

    /// Declares end of input, drains every pass, flushes the final
    /// increment, and reports.
    pub fn finish(mut self, sink: &mut dyn ProgramSink) -> StreamSummary {
        self.process_window(true, sink);
        debug_assert!(self.scheduler.is_done());
        let swap_count = self.router.swap_count();
        let opposing_swap_count = self.router.opposing_swap_count();
        let opposing_ratio = if swap_count == 0 {
            0.0
        } else {
            opposing_swap_count as f64 / swap_count as f64
        };
        StreamSummary {
            report: CompileReport {
                swap_count,
                opposing_swap_count,
                opposing_ratio,
                move_count: self.move_count,
                move_distance_ions: self.move_distance_ions,
                native_gate_count: self.native_gate_count,
                native_two_qubit_count: self.native_two_qubit_count,
                t_decompose: self.t_decompose,
                t_swap: self.t_swap,
                t_move: self.t_move,
            },
            increments: self.increments,
            input_gate_count: self.input_gate_count,
            initial_mapping: self.initial_mapping,
            final_mapping: self.router.mapping().clone(),
        }
    }

    /// Runs the buffered window through decompose → route → schedule and
    /// flushes any scheduled ops.
    fn process_window(&mut self, eof: bool, sink: &mut dyn ProgramSink) {
        // Pass 1: native-gate decomposition (§IV-B) of this window.
        let t0 = Instant::now();
        decompose_into(&self.buffer, &mut self.native);
        self.t_decompose += t0.elapsed();

        // Pass 2: mapping + swap insertion (§IV-C), carried across
        // windows by the router.
        let t1 = Instant::now();
        for g in self.native.gates() {
            self.router.push(*g);
        }
        if eof {
            self.router.finish_input();
        }
        self.t_swap += t1.elapsed();

        // Lower routed SWAPs to native gates, then pass 3: tape
        // scheduling (§IV-D) up to the carry-over horizon.
        let t2 = Instant::now();
        self.lowered.reset(self.spec.n_ions());
        for g in self.router.drain_routed() {
            crate::decompose::decompose_gate(&mut self.lowered, &g);
        }
        for g in self.lowered.gates() {
            self.scheduler.push(*g);
        }
        if eof {
            self.scheduler.finish_input();
        }
        let emitted_from = self.ops.len();
        self.scheduler.run_rounds(&mut self.ops);
        self.t_move += t2.elapsed();

        self.accumulate(emitted_from);
        self.buffer.reset(self.n_qubits);
        if !self.ops.is_empty() {
            sink.emit(&self.ops);
            self.increments += 1;
            self.ops.clear();
        }
    }

    /// Folds the ops appended since `from` into the report accumulators
    /// (the same fold `TiltProgram`'s count/distance methods apply to the
    /// finished op stream).
    fn accumulate(&mut self, from: usize) {
        for op in &self.ops[from..] {
            match *op {
                TiltOp::Move { to } => {
                    if let Some(p) = self.last_head {
                        self.move_distance_ions += p.abs_diff(to);
                    }
                    self.last_head = Some(to);
                    self.move_count += 1;
                }
                TiltOp::Gate { gate, head_pos } => {
                    if self.last_head.is_none() {
                        self.last_head = Some(head_pos);
                    }
                    self.native_gate_count += 1;
                    if gate.is_two_qubit() {
                        self.native_two_qubit_count += 1;
                    }
                }
            }
        }
    }
}

impl Compiler {
    /// Streaming counterpart of [`Compiler::compile`]: pulls gates off
    /// `gates`, compiles in `window`-gate increments, and emits scheduled
    /// ops through `sink`. The concatenated increments equal the
    /// monolithic program's op stream exactly.
    ///
    /// # Errors
    ///
    /// As [`StreamingCompiler::new`] and [`StreamingCompiler::push`].
    pub fn compile_stream<I>(
        &self,
        n_qubits: usize,
        gates: I,
        window: usize,
        sink: &mut dyn ProgramSink,
    ) -> Result<StreamSummary, CompileError>
    where
        I: IntoIterator<Item = Gate>,
    {
        let mut session = StreamingCompiler::new(self, n_qubits, window)?;
        for g in gates {
            session.push(g, sink)?;
        }
        Ok(session.finish(sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::InitialMapping;
    use crate::route::{LinqConfig, RouterKind, StochasticConfig};
    use crate::schedule::SchedulerKind;
    use tilt_circuit::Qubit;

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// Random program-level workload (pre-decomposition gate set).
    fn workload(n: usize, len: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed;
        for _ in 0..len {
            let q = |s: &mut u64| Qubit((xorshift(s) as usize) % n);
            match xorshift(&mut s) % 12 {
                0 => {
                    c.barrier();
                }
                1 => {
                    c.h(q(&mut s));
                }
                2 => {
                    c.t(q(&mut s));
                }
                3 => {
                    let a = q(&mut s);
                    c.measure(a).reset_qubit(a);
                }
                4 | 5 => {
                    let (a, b) = distinct(n, &mut s);
                    c.cphase(a, b, 0.3);
                }
                _ => {
                    let (a, b) = distinct(n, &mut s);
                    c.cnot(a, b);
                }
            }
        }
        c
    }

    fn distinct(n: usize, s: &mut u64) -> (Qubit, Qubit) {
        let a = (xorshift(s) as usize) % n;
        let mut b = (xorshift(s) as usize) % n;
        if a == b {
            b = (b + 1) % n;
        }
        (Qubit(a), Qubit(b))
    }

    fn configs() -> Vec<Compiler> {
        let spec = DeviceSpec::new(24, 6).unwrap();
        let mut linq_capped = Compiler::new(spec);
        linq_capped.router(RouterKind::Linq(LinqConfig::with_max_swap_len(3)));
        let mut stochastic = Compiler::new(spec);
        stochastic.router(RouterKind::Stochastic(StochasticConfig::default()));
        let mut naive = Compiler::new(spec);
        naive.scheduler(SchedulerKind::NaiveNextGate);
        let mut discounted = Compiler::new(spec);
        discounted.scheduler(SchedulerKind::DistanceDiscounted {
            penalty_permille: 250,
        });
        let mut reverse = Compiler::new(spec);
        reverse.initial_mapping(InitialMapping::Reverse);
        let mut random = Compiler::new(spec);
        random.initial_mapping(InitialMapping::Random(13));
        vec![
            Compiler::new(spec),
            linq_capped,
            stochastic,
            naive,
            discounted,
            reverse,
            random,
        ]
    }

    #[test]
    fn streamed_compile_matches_monolithic_across_windows() {
        let c = workload(24, 400, 0xA11CE);
        for compiler in configs() {
            let mono = compiler.compile(&c).unwrap();
            for window in [1usize, 64, 1024, usize::MAX] {
                let mut sink = CollectSink::default();
                let summary = compiler
                    .compile_stream(c.n_qubits(), c.gates().iter().copied(), window, &mut sink)
                    .unwrap();
                assert_eq!(sink.ops, mono.program.ops(), "window {window}");
                assert_eq!(summary.final_mapping, mono.routed.final_mapping);
                assert_eq!(summary.initial_mapping, mono.routed.initial_mapping);
                let (sr, mr) = (&summary.report, &mono.report);
                assert_eq!(sr.swap_count, mr.swap_count);
                assert_eq!(sr.opposing_swap_count, mr.opposing_swap_count);
                assert_eq!(sr.move_count, mr.move_count);
                assert_eq!(sr.move_distance_ions, mr.move_distance_ions);
                assert_eq!(sr.native_gate_count, mr.native_gate_count);
                assert_eq!(sr.native_two_qubit_count, mr.native_two_qubit_count);
                assert!(summary.increments >= 1);
                assert_eq!(summary.input_gate_count, c.len());
            }
        }
    }

    #[test]
    fn interaction_chain_mapping_is_rejected() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let mut compiler = Compiler::new(spec);
        compiler.initial_mapping(InitialMapping::InteractionChain);
        let err = StreamingCompiler::new(&compiler, 8, 64).err().unwrap();
        assert!(matches!(err, CompileError::StreamingUnsupported { .. }));
    }

    #[test]
    fn invalid_gate_reports_global_index() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let compiler = Compiler::new(spec);
        let mut session = StreamingCompiler::new(&compiler, 8, 4).unwrap();
        let mut sink = CollectSink::default();
        for i in 0..10 {
            session
                .push(Gate::Rx(Qubit(i % 8), 0.5), &mut sink)
                .unwrap();
        }
        let err = session
            .push(Gate::Rz(Qubit(0), f64::NAN), &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            CompileError::InvalidCircuit(tilt_circuit::ValidateCircuitError::NonFiniteAngle {
                gate_index: 10
            })
        ));
    }

    #[test]
    fn too_wide_stream_is_rejected() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let compiler = Compiler::new(spec);
        let err = StreamingCompiler::new(&compiler, 9, 64).err().unwrap();
        assert!(matches!(err, CompileError::CircuitTooWide { .. }));
    }

    #[test]
    fn empty_stream_compiles_to_empty_program() {
        let spec = DeviceSpec::new(8, 4).unwrap();
        let compiler = Compiler::new(spec);
        let mut sink = CollectSink::default();
        let summary = compiler
            .compile_stream(8, std::iter::empty(), 64, &mut sink)
            .unwrap();
        assert!(sink.ops.is_empty());
        assert_eq!(summary.increments, 0);
        assert_eq!(summary.report.native_gate_count, 0);
    }
}
