//! Logical-to-physical qubit mapping (`M` in the paper, Table I).
//!
//! A [`Mapping`] is a permutation between logical qubits and tape
//! positions. The router mutates it swap by swap (`M ← M_{qi,qj}` in
//! Algorithm 1); the [`InitialMapping`] strategies produce the starting
//! permutation, adopting the heuristic initial-placement approach of the
//! paper (§IV-C, citing Li et al.\[51\] and Itoko et al.\[40\]).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tilt_circuit::{Circuit, Qubit};

/// A bijection between logical qubits and physical tape positions.
///
/// Both directions are stored so lookups are O(1) either way; the
/// invariant `phys_to_log[log_to_phys[q]] == q` is maintained by every
/// mutation and checked in debug builds.
///
/// # Example
///
/// ```
/// use tilt_compiler::Mapping;
/// use tilt_circuit::Qubit;
///
/// let mut m = Mapping::identity(4);
/// m.swap_positions(0, 3);
/// assert_eq!(m.position_of(Qubit(0)), 3);
/// assert_eq!(m.logical_at(0), Qubit(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    log_to_phys: Vec<usize>,
    phys_to_log: Vec<usize>,
}

impl Mapping {
    /// The identity mapping over `n` qubits.
    pub fn identity(n: usize) -> Self {
        Mapping {
            log_to_phys: (0..n).collect(),
            phys_to_log: (0..n).collect(),
        }
    }

    /// Builds a mapping from a `log_to_phys` permutation.
    ///
    /// # Panics
    ///
    /// Panics if `log_to_phys` is not a permutation of `0..n`.
    pub fn from_log_to_phys(log_to_phys: Vec<usize>) -> Self {
        let n = log_to_phys.len();
        let mut phys_to_log = vec![usize::MAX; n];
        for (l, &p) in log_to_phys.iter().enumerate() {
            assert!(p < n, "position {p} out of range");
            assert_eq!(phys_to_log[p], usize::MAX, "position {p} assigned twice");
            phys_to_log[p] = l;
        }
        Mapping {
            log_to_phys,
            phys_to_log,
        }
    }

    /// Number of qubits/positions.
    pub fn len(&self) -> usize {
        self.log_to_phys.len()
    }

    /// True for the zero-qubit mapping.
    pub fn is_empty(&self) -> bool {
        self.log_to_phys.is_empty()
    }

    /// Tape position of logical qubit `q`.
    #[inline]
    pub fn position_of(&self, q: Qubit) -> usize {
        self.log_to_phys[q.index()]
    }

    /// Logical qubit at tape position `pos`.
    #[inline]
    pub fn logical_at(&self, pos: usize) -> Qubit {
        Qubit(self.phys_to_log[pos])
    }

    /// Physical distance `d_g` between the operands of a logical pair.
    #[inline]
    pub fn distance(&self, a: Qubit, b: Qubit) -> usize {
        self.position_of(a).abs_diff(self.position_of(b))
    }

    /// Swaps the logical qubits at tape positions `pa` and `pb` — the
    /// effect of a SWAP gate on the layout (`M_{qi,qj}` in the paper).
    pub fn swap_positions(&mut self, pa: usize, pb: usize) {
        let la = self.phys_to_log[pa];
        let lb = self.phys_to_log[pb];
        self.phys_to_log.swap(pa, pb);
        self.log_to_phys[la] = pb;
        self.log_to_phys[lb] = pa;
        debug_assert!(self.is_consistent());
    }

    /// Rewrites a logical circuit into physical coordinates under this
    /// (fixed) mapping.
    pub fn apply(&self, circuit: &Circuit) -> Circuit {
        circuit.map_qubits(self.len(), |q| Qubit(self.position_of(q)))
    }

    /// The full logical→physical table.
    pub fn log_to_phys(&self) -> &[usize] {
        &self.log_to_phys
    }

    fn is_consistent(&self) -> bool {
        self.log_to_phys
            .iter()
            .enumerate()
            .all(|(l, &p)| self.phys_to_log[p] == l)
    }
}

/// Initial-placement strategies for the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitialMapping {
    /// Logical qubit `i` starts at tape position `i`. The paper's
    /// benchmarks are generated with locality already in mind (e.g. the
    /// interleaved Cuccaro layout), so identity is the default.
    #[default]
    Identity,
    /// Reverse order (stress-test placement).
    Reverse,
    /// Greedy interaction-weighted chain placement: repeatedly extend the
    /// tape with the unplaced qubit most strongly coupled to the current
    /// endpoint, seeded from the heaviest interaction pair. This is the
    /// 1-D adaptation of the heuristic initial mappings of [40, 51].
    InteractionChain,
    /// Uniformly random permutation from the given seed (ablation).
    Random(u64),
}

impl InitialMapping {
    /// Builds the starting permutation for `circuit` on `n_ions` positions.
    ///
    /// The circuit may be narrower than the tape; the strategy permutes all
    /// `n_ions` positions, with unused logical indices acting as spectator
    /// ions.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the tape.
    pub fn build(self, circuit: &Circuit, n_ions: usize) -> Mapping {
        assert!(
            circuit.n_qubits() <= n_ions,
            "circuit wider than tape: {} > {}",
            circuit.n_qubits(),
            n_ions
        );
        match self {
            InitialMapping::InteractionChain => interaction_chain(circuit, n_ions),
            circuit_free => circuit_free
                .build_streaming(n_ions)
                .expect("only InteractionChain needs the circuit"),
        }
    }

    /// Builds the starting permutation without a circuit, for the
    /// streaming pipeline (where no materialized circuit exists to
    /// inspect). Identical to [`InitialMapping::build`] for the
    /// circuit-independent strategies; returns `None` for
    /// [`InitialMapping::InteractionChain`], which must weigh the whole
    /// interaction graph first.
    pub fn build_streaming(self, n_ions: usize) -> Option<Mapping> {
        match self {
            InitialMapping::Identity => Some(Mapping::identity(n_ions)),
            InitialMapping::Reverse => Some(Mapping::from_log_to_phys((0..n_ions).rev().collect())),
            InitialMapping::Random(seed) => {
                let mut perm: Vec<usize> = (0..n_ions).collect();
                perm.shuffle(&mut SmallRng::seed_from_u64(seed));
                Some(Mapping::from_log_to_phys(perm))
            }
            InitialMapping::InteractionChain => None,
        }
    }
}

/// Greedy 1-D placement by interaction weight.
fn interaction_chain(circuit: &Circuit, n_ions: usize) -> Mapping {
    let n = circuit.n_qubits();
    let pairs = circuit.interaction_pairs();
    if pairs.is_empty() {
        return Mapping::identity(n_ions);
    }

    // Dense weight matrix over logical qubits.
    let mut w = vec![vec![0usize; n]; n];
    for (&(a, b), &count) in &pairs {
        w[a.index()][b.index()] += count;
        w[b.index()][a.index()] += count;
    }

    // Seed the chain with the heaviest pair, then greedily extend at both
    // ends with the strongest coupling to the respective endpoint.
    let (&(sa, sb), _) = pairs
        .iter()
        .max_by_key(|(&(a, b), &c)| (c, std::cmp::Reverse((a, b))))
        .expect("non-empty pairs");
    let mut chain: std::collections::VecDeque<usize> =
        [sa.index(), sb.index()].into_iter().collect();
    let mut placed = vec![false; n];
    placed[sa.index()] = true;
    placed[sb.index()] = true;

    while chain.len() < n {
        let front = *chain.front().expect("chain is non-empty");
        let back = *chain.back().expect("chain is non-empty");
        let best_for = |end: usize| {
            (0..n)
                .filter(|&q| !placed[q])
                .map(|q| (w[end][q], q))
                .max_by_key(|&(wt, q)| (wt, std::cmp::Reverse(q)))
        };
        let (wf, qf) = best_for(front).expect("unplaced qubit exists");
        let (wb, qb) = best_for(back).expect("unplaced qubit exists");
        if wf > wb {
            placed[qf] = true;
            chain.push_front(qf);
        } else {
            placed[qb] = true;
            chain.push_back(qb);
        }
    }

    let mut log_to_phys = vec![usize::MAX; n_ions];
    for (pos, q) in chain.iter().enumerate() {
        log_to_phys[*q] = pos;
    }
    // Spectator logical indices fill the remaining positions in order.
    let mut next = n;
    for slot in &mut log_to_phys {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
        }
    }
    Mapping::from_log_to_phys(log_to_phys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips() {
        let m = Mapping::identity(8);
        for i in 0..8 {
            assert_eq!(m.position_of(Qubit(i)), i);
            assert_eq!(m.logical_at(i), Qubit(i));
        }
    }

    #[test]
    fn swap_positions_updates_both_tables() {
        let mut m = Mapping::identity(5);
        m.swap_positions(1, 4);
        assert_eq!(m.position_of(Qubit(1)), 4);
        assert_eq!(m.position_of(Qubit(4)), 1);
        assert_eq!(m.logical_at(1), Qubit(4));
        assert_eq!(m.logical_at(4), Qubit(1));
        // Others untouched.
        assert_eq!(m.position_of(Qubit(2)), 2);
    }

    #[test]
    fn distance_uses_positions() {
        let mut m = Mapping::identity(10);
        assert_eq!(m.distance(Qubit(0), Qubit(9)), 9);
        m.swap_positions(0, 8);
        assert_eq!(m.distance(Qubit(0), Qubit(9)), 1);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_position_rejected() {
        Mapping::from_log_to_phys(vec![0, 0, 1]);
    }

    #[test]
    fn apply_rewrites_circuit() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(0), Qubit(2));
        let m = Mapping::from_log_to_phys(vec![2, 1, 0]);
        let physical = m.apply(&c);
        assert_eq!(physical.gates()[0].qubits(), vec![Qubit(2), Qubit(0)]);
    }

    #[test]
    fn reverse_strategy() {
        let c = Circuit::new(4);
        let m = InitialMapping::Reverse.build(&c, 4);
        assert_eq!(m.position_of(Qubit(0)), 3);
        assert_eq!(m.position_of(Qubit(3)), 0);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let c = Circuit::new(16);
        let a = InitialMapping::Random(9).build(&c, 16);
        let b = InitialMapping::Random(9).build(&c, 16);
        let d = InitialMapping::Random(10).build(&c, 16);
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn interaction_chain_places_coupled_qubits_adjacently() {
        // Star circuit: q0 interacts with everyone; chain placement keeps
        // q0 near its partners, beating identity's worst-case spread.
        let mut c = Circuit::new(6);
        for i in 1..6 {
            c.cnot(Qubit(0), Qubit(i));
            c.cnot(Qubit(0), Qubit(i));
        }
        let m = InitialMapping::InteractionChain.build(&c, 6);
        let total: usize = (1..6).map(|i| m.distance(Qubit(0), Qubit(i))).sum();
        let identity_total: usize = (1..6).sum();
        assert!(total <= identity_total);
    }

    #[test]
    fn interaction_chain_covers_all_positions() {
        let mut c = Circuit::new(5);
        c.cnot(Qubit(0), Qubit(4)).cnot(Qubit(1), Qubit(3));
        let m = InitialMapping::InteractionChain.build(&c, 8);
        let mut seen = [false; 8];
        for i in 0..8 {
            seen[m.position_of(Qubit(i))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interaction_chain_without_two_qubit_gates_is_identity() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        let m = InitialMapping::InteractionChain.build(&c, 4);
        assert_eq!(m, Mapping::identity(4));
    }

    #[test]
    #[should_panic(expected = "wider than tape")]
    fn circuit_wider_than_tape_panics() {
        InitialMapping::Identity.build(&Circuit::new(10), 8);
    }
}
