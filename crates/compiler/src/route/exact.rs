//! Exact minimal-swap routing for small instances.
//!
//! The paper contrasts heuristic swap insertion against solver-based
//! optimal approaches (ILP/MINLP, §IV-C and \[87\]) that "guarantee an
//! optimal solution" but scale exponentially. This module is that
//! reference point: a breadth-first search over `(qubit permutation,
//! resolved-gate index)` states that returns a provably swap-minimal
//! routing. Use it to measure the LinQ heuristic's optimality gap on
//! small circuits (see the `linq_vs_exact` tests and the ablation bench);
//! it is deliberately guarded against large instances.

use super::{is_opposing, pending_gates, PendingIndex, RouteOutcome};
use crate::error::CompileError;
use crate::mapping::Mapping;
use crate::spec::DeviceSpec;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use tilt_circuit::{Circuit, Qubit};

/// Configuration for the exact search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactConfig {
    /// Maximum span of an inserted SWAP (like
    /// [`LinqConfig::max_swap_len`](super::LinqConfig::max_swap_len));
    /// `None` means `head_size - 1`.
    pub max_swap_len: Option<usize>,
    /// State-count budget; the search aborts (with an error) beyond this.
    pub max_states: usize,
    /// Hard cap on tape width — `n!` states explode quickly.
    pub max_ions: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_swap_len: None,
            max_states: 2_000_000,
            max_ions: 9,
        }
    }
}

/// One BFS state: the layout permutation plus how many two-qubit gates
/// have been resolved.
type StateKey = (Vec<u8>, usize);

/// Routes `native` with a provably minimal number of inserted SWAPs.
///
/// Semantics match [`RouterKind::route`](super::RouterKind::route): the
/// result is a physical circuit in which every two-qubit gate fits under
/// the head, with [`RouteOutcome::swap_count`] guaranteed minimal for the
/// given initial mapping and swap-length cap.
///
/// # Errors
///
/// * [`CompileError::CircuitTooWide`] — circuit wider than the tape.
/// * [`CompileError::InvalidRouterConfig`] — tape wider than
///   [`ExactConfig::max_ions`], inconsistent `max_swap_len`, or search
///   budget exhausted.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::mapping::Mapping;
/// use tilt_compiler::route::exact::{optimal_route, ExactConfig};
/// use tilt_compiler::DeviceSpec;
///
/// let mut c = Circuit::new(6);
/// c.xx(Qubit(0), Qubit(5), 0.5);
/// let spec = DeviceSpec::new(6, 3)?;
/// let out = optimal_route(&c, spec, &Mapping::identity(6), &ExactConfig::default())?;
/// assert_eq!(out.swap_count, 2); // d=5 → 3, 3 → 1 with span-2 swaps
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn optimal_route(
    native: &Circuit,
    spec: DeviceSpec,
    initial: &Mapping,
    cfg: &ExactConfig,
) -> Result<RouteOutcome, CompileError> {
    if native.n_qubits() > spec.n_ions() {
        return Err(CompileError::CircuitTooWide {
            circuit_qubits: native.n_qubits(),
            n_ions: spec.n_ions(),
        });
    }
    if spec.n_ions() > cfg.max_ions {
        return Err(CompileError::InvalidRouterConfig {
            reason: format!(
                "exact search over {} ions exceeds the {}-ion cap (n! states)",
                spec.n_ions(),
                cfg.max_ions
            ),
        });
    }
    let max_swap_len = cfg.max_swap_len.unwrap_or(spec.head_size() - 1);
    if max_swap_len == 0 || max_swap_len >= spec.head_size() {
        return Err(CompileError::InvalidRouterConfig {
            reason: format!(
                "max_swap_len {max_swap_len} must be in 1..={}",
                spec.head_size() - 1
            ),
        });
    }

    let pending = pending_gates(native);
    let n = spec.n_ions();

    // Advance through every already-executable gate (free transitions).
    let advance = |perm: &[u8], mut k: usize| -> usize {
        while k < pending.len() {
            let g = &pending[k];
            let pa = perm
                .iter()
                .position(|&l| l as usize == g.a.index())
                .expect("qubit present");
            let pb = perm
                .iter()
                .position(|&l| l as usize == g.b.index())
                .expect("qubit present");
            if pa.abs_diff(pb) >= spec.head_size() {
                break;
            }
            k += 1;
        }
        k
    };

    // perm[pos] = logical qubit at tape position pos.
    let start_perm: Vec<u8> = (0..n)
        .map(|p| initial.logical_at(p).index() as u8)
        .collect();
    let start_k = advance(&start_perm, 0);

    // BFS: uniform swap cost, so first arrival is minimal.
    let mut parents: HashMap<StateKey, (StateKey, (usize, usize))> = HashMap::new();
    let mut seen: HashMap<StateKey, ()> = HashMap::new();
    let mut queue: VecDeque<StateKey> = VecDeque::new();
    let start: StateKey = (start_perm, start_k);
    seen.insert(start.clone(), ());
    queue.push_back(start.clone());

    let mut goal: Option<StateKey> = None;
    if start.1 == pending.len() {
        goal = Some(start.clone());
    }

    while let Some(state) = queue.pop_front() {
        if goal.is_some() {
            break;
        }
        let (perm, k) = &state;
        for lo in 0..n {
            for hi in (lo + 1)..n.min(lo + max_swap_len + 1) {
                let mut next_perm = perm.clone();
                next_perm.swap(lo, hi);
                let next_k = advance(&next_perm, *k);
                let key: StateKey = (next_perm, next_k);
                if let Entry::Vacant(e) = seen.entry(key.clone()) {
                    e.insert(());
                    if seen.len() > cfg.max_states {
                        return Err(CompileError::InvalidRouterConfig {
                            reason: format!(
                                "exact search exceeded the {}-state budget",
                                cfg.max_states
                            ),
                        });
                    }
                    parents.insert(key.clone(), (state.clone(), (lo, hi)));
                    if key.1 == pending.len() {
                        goal = Some(key.clone());
                        break;
                    }
                    queue.push_back(key);
                }
            }
            if goal.is_some() {
                break;
            }
        }
    }

    let goal = goal.expect("swap graph over permutations is connected");

    // Reconstruct the swap sequence, each tagged with the gate index it
    // was applied before.
    let mut swaps_rev: Vec<(usize, (usize, usize))> = Vec::new();
    let mut cursor = goal.clone();
    while let Some((parent, swap)) = parents.get(&cursor) {
        swaps_rev.push((parent.1, *swap));
        cursor = parent.clone();
    }
    swaps_rev.reverse();

    // Replay: walk the native circuit, applying each tagged swap before
    // the gate that needed it.
    let index = PendingIndex::build(&pending, n);
    let mut out = Circuit::with_capacity(n, native.len() + swaps_rev.len());
    let mut mapping = initial.clone();
    let mut swap_iter = swaps_rev.iter().peekable();
    let mut k = 0usize;
    let mut swap_count = 0usize;
    let mut opposing = 0usize;
    for g in native {
        if g.is_two_qubit() {
            while let Some(&&(tag, (lo, hi))) = swap_iter.peek() {
                if tag > k {
                    break;
                }
                if is_opposing(&mapping, &pending, &index, k, lo, hi) {
                    opposing += 1;
                }
                out.swap(Qubit(lo), Qubit(hi));
                mapping.swap_positions(lo, hi);
                swap_count += 1;
                swap_iter.next();
            }
            out.push(g.map_qubits(|q| Qubit(mapping.position_of(q))));
            k += 1;
        } else {
            out.push(g.map_qubits(|q| Qubit(mapping.position_of(q))));
        }
    }
    // Trailing swaps can only exist if the BFS appended them after the
    // last gate, which a minimal solution never does.
    debug_assert!(swap_iter.next().is_none());

    Ok(RouteOutcome {
        circuit: out,
        initial_mapping: initial.clone(),
        final_mapping: mapping,
        swap_count,
        opposing_swap_count: opposing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::InitialMapping;
    use crate::route::{LinqConfig, RouterKind};

    fn exact(c: &Circuit, n: usize, head: usize) -> RouteOutcome {
        let spec = DeviceSpec::new(n, head).unwrap();
        optimal_route(c, spec, &Mapping::identity(n), &ExactConfig::default()).unwrap()
    }

    #[test]
    fn executable_circuit_needs_zero_swaps() {
        let mut c = Circuit::new(6);
        c.xx(Qubit(0), Qubit(2), 0.5);
        assert_eq!(exact(&c, 6, 4).swap_count, 0);
    }

    #[test]
    fn single_long_gate_minimal_swaps() {
        // d = 5 on head 3 (executable iff d ≤ 2, swaps span ≤ 2):
        // 5 → 3 → 1: two swaps.
        let mut c = Circuit::new(6);
        c.xx(Qubit(0), Qubit(5), 0.5);
        assert_eq!(exact(&c, 6, 3).swap_count, 2);
    }

    #[test]
    fn fig2c_needs_exactly_one_swap() {
        // The paper's opposing-swap example: order Q1 Q3 Q2 Q4, gates
        // (Q1,Q2) and (Q3,Q4) with head 2 (only adjacent executable).
        // One swap of the middle pair serves both gates.
        let mut c = Circuit::new(4);
        c.xx(Qubit(0), Qubit(2), 0.5); // Q1, Q2
        c.xx(Qubit(1), Qubit(3), 0.5); // Q3, Q4
        let out = exact(&c, 4, 2);
        assert_eq!(out.swap_count, 1);
        assert_eq!(out.opposing_swap_count, 1);
    }

    #[test]
    fn exact_respects_max_swap_len() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(7), 0.5);
        let spec = DeviceSpec::new(8, 4).unwrap();
        let tight = optimal_route(
            &c,
            spec,
            &Mapping::identity(8),
            &ExactConfig {
                max_swap_len: Some(1),
                ..ExactConfig::default()
            },
        )
        .unwrap();
        for g in &tight.circuit {
            if let tilt_circuit::Gate::Swap(a, b) = g {
                assert_eq!(a.index().abs_diff(b.index()), 1);
            }
        }
        // Span-1 swaps: d must fall from 7 to ≤ 3 → 4 swaps.
        assert_eq!(tight.swap_count, 4);
    }

    #[test]
    fn exact_replays_to_logical_program() {
        let mut c = Circuit::new(6);
        c.xx(Qubit(0), Qubit(5), 0.1);
        c.rx(Qubit(5), 0.7);
        c.xx(Qubit(1), Qubit(4), 0.2);
        let out = exact(&c, 6, 3);
        let mut m = out.initial_mapping.clone();
        let mut xx = Vec::new();
        for g in &out.circuit {
            match *g {
                tilt_circuit::Gate::Swap(a, b) => m.swap_positions(a.index(), b.index()),
                tilt_circuit::Gate::Xx(a, b, t) => {
                    let la = m.logical_at(a.index());
                    let lb = m.logical_at(b.index());
                    xx.push((la.min(lb), la.max(lb), t));
                }
                _ => {}
            }
        }
        assert_eq!(
            xx,
            vec![(Qubit(0), Qubit(5), 0.1), (Qubit(1), Qubit(4), 0.2)]
        );
        assert_eq!(m, out.final_mapping);
    }

    #[test]
    fn linq_matches_exact_on_simple_instances() {
        // On single-gate and two-gate instances the heuristic should be
        // optimal.
        let cases: Vec<Circuit> = vec![
            {
                let mut c = Circuit::new(6);
                c.xx(Qubit(0), Qubit(5), 0.5);
                c
            },
            {
                let mut c = Circuit::new(7);
                c.xx(Qubit(0), Qubit(6), 0.5);
                c.xx(Qubit(0), Qubit(1), 0.5);
                c
            },
        ];
        for circuit in cases {
            let n = circuit.n_qubits();
            let spec = DeviceSpec::new(n, 3).unwrap();
            let initial = InitialMapping::Identity.build(&circuit, n);
            let opt = optimal_route(&circuit, spec, &initial, &ExactConfig::default())
                .unwrap()
                .swap_count;
            let linq = RouterKind::Linq(LinqConfig::default())
                .route(&circuit, spec, &initial)
                .unwrap()
                .swap_count;
            assert_eq!(linq, opt, "heuristic should be optimal here");
        }
    }

    #[test]
    fn linq_never_beats_exact() {
        // Optimality sanity: on a batch of small random-ish circuits the
        // exact count lower-bounds LinQ.
        for seed in 0..6usize {
            let mut c = Circuit::new(7);
            for i in 0..5 {
                let a = (seed * 3 + i * 2) % 7;
                let b = (a + 3 + (seed + i) % 3) % 7;
                if a != b {
                    c.xx(Qubit(a), Qubit(b), 0.1);
                }
            }
            let spec = DeviceSpec::new(7, 3).unwrap();
            let initial = Mapping::identity(7);
            let opt = optimal_route(&c, spec, &initial, &ExactConfig::default())
                .unwrap()
                .swap_count;
            let linq = RouterKind::default()
                .route(&c, spec, &initial)
                .unwrap()
                .swap_count;
            assert!(linq >= opt, "seed {seed}: linq {linq} < optimal {opt}");
        }
    }

    #[test]
    fn wide_tapes_are_rejected() {
        let c = Circuit::new(12);
        let spec = DeviceSpec::new(12, 4).unwrap();
        let err =
            optimal_route(&c, spec, &Mapping::identity(12), &ExactConfig::default()).unwrap_err();
        assert!(matches!(err, CompileError::InvalidRouterConfig { .. }));
    }

    #[test]
    fn state_budget_is_enforced() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(7), 0.5);
        let spec = DeviceSpec::new(8, 2).unwrap();
        let err = optimal_route(
            &c,
            spec,
            &Mapping::identity(8),
            &ExactConfig {
                max_states: 10,
                ..ExactConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::InvalidRouterConfig { .. }));
    }
}
