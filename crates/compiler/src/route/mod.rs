//! Qubit mapping and swap insertion (§IV-C of the paper).
//!
//! On TILT a two-qubit gate is executable only when its operands fit under
//! the laser head (`d_g < L`). The router walks the native circuit in
//! dependency order and, for each unexecutable gate, inserts SWAP gates
//! until the operands are close enough — updating the logical→physical
//! [`Mapping`] as it goes.
//!
//! Two swap-selection policies are provided:
//!
//! * [`linq`] — the paper's heuristic (Algorithm 1): candidates are
//!   position pairs between the gate's endpoints within `MaxSwapLen`,
//!   scored with the look-ahead sum of Eq. 1, which naturally pairs data
//!   moving in opposite directions into *opposing swaps* (Fig. 2c).
//! * [`stochastic`] — the baseline: a port of Qiskit's `StochasticSwap`
//!   restricted to 1-D windowed connectivity, which greedily jumps an
//!   endpoint the maximum allowed distance with randomized endpoint
//!   selection.
//!
//! Swaps are *long-range* gates: a SWAP between positions `d ≤ L-1` apart
//! is a single three-`XX` gate, not a chain of neighbour swaps — trapped
//! ions are fully connected inside the execution zone.

pub mod exact;
pub mod linq;
pub mod stochastic;
pub(crate) mod streaming;

use crate::error::CompileError;
use crate::mapping::Mapping;
use crate::spec::DeviceSpec;
use tilt_circuit::{Circuit, Gate, Qubit};

pub use exact::ExactConfig;
pub use linq::LinqConfig;
pub use stochastic::StochasticConfig;

/// Which swap-insertion policy to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RouterKind {
    /// The paper's Algorithm 1 heuristic.
    Linq(LinqConfig),
    /// The Qiskit-StochasticSwap-style baseline of §VI-A.
    Stochastic(StochasticConfig),
}

impl Default for RouterKind {
    fn default() -> Self {
        RouterKind::Linq(LinqConfig::default())
    }
}

/// A two-qubit gate awaiting routing: logical operands plus its layer in
/// the *two-qubit skeleton* of the circuit (used for the `α^Δ(g)` decay of
/// Eq. 1).
///
/// Δ is measured in two-qubit-gate layers, not native-gate layers: the
/// single-qubit rotations produced by decomposition would otherwise
/// inflate Δ several-fold and flatten the look-ahead term of Eq. 1 into
/// pure greediness.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingGate {
    pub a: Qubit,
    pub b: Qubit,
    pub layer: usize,
}

/// ASAP layering of the two-qubit skeleton: only two-qubit gates advance
/// per-qubit levels (single-qubit gates are transparent; barriers
/// synchronise everything).
pub(crate) fn pending_gates(native: &Circuit) -> Vec<PendingGate> {
    let mut level = vec![0usize; native.n_qubits()];
    let mut barrier_level = 0usize;
    let mut pending = Vec::with_capacity(native.len() / 2);
    for g in native {
        if matches!(g, Gate::Barrier) {
            barrier_level = barrier_level.max(level.iter().copied().max().unwrap_or(0));
            continue;
        }
        if !g.is_two_qubit() {
            continue;
        }
        let qs = g.qubits();
        let (a, b) = (qs[0], qs[1]);
        let layer = level[a.index()].max(level[b.index()]).max(barrier_level);
        level[a.index()] = layer + 1;
        level[b.index()] = layer + 1;
        pending.push(PendingGate { a, b, layer });
    }
    pending
}

/// Per-qubit index into the pending-gate list: for each logical qubit,
/// the (ascending) indices of the pending two-qubit gates touching it.
///
/// Built **once per route** and shared by the Eq. 1 scorer and the
/// opposing-swap classifier, replacing their per-decision scans of the
/// pending list with `O(log)` binary searches.
pub(crate) struct PendingIndex {
    per_qubit: Vec<Vec<u32>>,
}

impl PendingIndex {
    pub(crate) fn build(pending: &[PendingGate], n_qubits: usize) -> Self {
        let mut per_qubit = vec![Vec::new(); n_qubits];
        for (i, g) in pending.iter().enumerate() {
            per_qubit[g.a.index()].push(i as u32);
            per_qubit[g.b.index()].push(i as u32);
        }
        PendingIndex { per_qubit }
    }

    /// The slice of gate indices touching `q` at or after `cursor`.
    pub(crate) fn gates_from(&self, q: Qubit, cursor: usize) -> &[u32] {
        let list = &self.per_qubit[q.index()];
        let start = list.partition_point(|&i| (i as usize) < cursor);
        &list[start..]
    }

    /// First pending gate touching `q` within `[cursor, horizon)`.
    pub(crate) fn first_gate_of(&self, q: Qubit, cursor: usize, horizon: usize) -> Option<usize> {
        match self.gates_from(q, cursor).first() {
            Some(&i) if (i as usize) < horizon => Some(i as usize),
            _ => None,
        }
    }
}

/// Everything a swap policy may inspect when choosing the next swap.
pub(crate) struct RouteState<'a> {
    pub spec: DeviceSpec,
    pub mapping: &'a Mapping,
    /// All two-qubit gates in program order.
    pub pending: &'a [PendingGate],
    /// Per-qubit index over `pending`, built once per route.
    pub index: &'a PendingIndex,
    /// Index into `pending` of the gate currently being resolved.
    pub cursor: usize,
}

impl RouteState<'_> {
    /// Positions of the current gate's endpoints, `(lo, hi)`.
    pub(crate) fn endpoints(&self) -> (usize, usize) {
        let g = &self.pending[self.cursor];
        let pa = self.mapping.position_of(g.a);
        let pb = self.mapping.position_of(g.b);
        (pa.min(pb), pa.max(pb))
    }
}

/// A swap-selection policy: given the route state, pick the next pair of
/// tape positions to swap. The returned pair must strictly reduce the
/// current gate's distance (all built-in policies guarantee this, which
/// guarantees router termination).
pub(crate) trait SwapPolicy {
    fn choose_swap(&mut self, state: &RouteState<'_>) -> (usize, usize);
}

/// Result of routing: the physical circuit and the statistics Fig. 6
/// reports.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    /// Physical circuit over `n_ions` positions with `Gate::Swap`s
    /// inserted; every two-qubit gate now fits under the head.
    pub circuit: Circuit,
    /// The starting permutation used.
    pub initial_mapping: Mapping,
    /// The permutation after the final gate.
    pub final_mapping: Mapping,
    /// Number of inserted SWAP gates (Fig. 6b).
    pub swap_count: usize,
    /// How many inserted swaps were *opposing* — simultaneously moving two
    /// data streams toward partners in opposite directions (Fig. 2c).
    pub opposing_swap_count: usize,
}

impl RouteOutcome {
    /// Opposing-swap ratio (Fig. 6a); zero when no swaps were inserted.
    pub fn opposing_ratio(&self) -> f64 {
        if self.swap_count == 0 {
            0.0
        } else {
            self.opposing_swap_count as f64 / self.swap_count as f64
        }
    }
}

impl RouterKind {
    /// Checks this policy's parameters against `spec` without routing
    /// anything — the session API (`tilt-engine`) calls this once at
    /// engine construction so configuration errors surface before the
    /// first circuit instead of inside every [`RouterKind::route`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidRouterConfig`] for inconsistent
    /// policy parameters (e.g. `max_swap_len` of 0 or `≥ head_size`).
    pub fn validate(&self, spec: DeviceSpec) -> Result<(), CompileError> {
        match self {
            RouterKind::Linq(cfg) => cfg.validate(spec),
            RouterKind::Stochastic(cfg) => cfg.validate(),
        }
    }

    /// The widest swap this policy may insert on `spec`, in ion
    /// spacings — the cap the `tilt/swap-chain` verifier rule checks
    /// routed circuits against.
    pub fn max_swap_span(&self, spec: DeviceSpec) -> usize {
        match self {
            RouterKind::Linq(cfg) => cfg.effective_max_swap_len(spec),
            // The baseline jumps an endpoint as far as the head allows.
            RouterKind::Stochastic(_) => spec.head_size() - 1,
        }
    }

    /// Routes `native` (a circuit already lowered to the native gate set or
    /// at least to two-qubit granularity) onto `spec`, starting from
    /// `initial` and inserting swaps with this policy.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::CircuitTooWide`] when the circuit does not
    /// fit on the tape, or [`CompileError::InvalidRouterConfig`] for
    /// inconsistent policy parameters (e.g. `max_swap_len` of 0 or
    /// `≥ head_size`).
    pub fn route(
        &self,
        native: &Circuit,
        spec: DeviceSpec,
        initial: &Mapping,
    ) -> Result<RouteOutcome, CompileError> {
        if native.n_qubits() > spec.n_ions() {
            return Err(CompileError::CircuitTooWide {
                circuit_qubits: native.n_qubits(),
                n_ions: spec.n_ions(),
            });
        }
        self.validate(spec)?;
        match self {
            RouterKind::Linq(cfg) => {
                let mut policy = linq::LinqPolicy::new(*cfg, spec);
                Ok(route_with_policy(native, spec, initial, &mut policy))
            }
            RouterKind::Stochastic(cfg) => {
                let mut policy = stochastic::StochasticPolicy::new(*cfg);
                Ok(route_with_policy(native, spec, initial, &mut policy))
            }
        }
    }
}

/// Shared routing loop: walk the circuit in program order (a topological
/// order), inserting the policy's swaps before each unexecutable gate.
pub(crate) fn route_with_policy(
    native: &Circuit,
    spec: DeviceSpec,
    initial: &Mapping,
    policy: &mut dyn SwapPolicy,
) -> RouteOutcome {
    let pending = pending_gates(native);
    let index = PendingIndex::build(&pending, spec.n_ions());

    let mut out = Circuit::with_capacity(spec.n_ions(), native.len() + native.len() / 4);
    let mut mapping = initial.clone();
    let mut cursor = 0usize;
    let mut swap_count = 0usize;
    let mut opposing_swap_count = 0usize;

    for g in native {
        if g.is_two_qubit() {
            let qs = g.qubits();
            while mapping.distance(qs[0], qs[1]) >= spec.head_size() {
                let (pa, pb) = {
                    let state = RouteState {
                        spec,
                        mapping: &mapping,
                        pending: &pending,
                        index: &index,
                        cursor,
                    };
                    policy.choose_swap(&state)
                };
                debug_assert!(pa != pb && pa.abs_diff(pb) < spec.head_size());
                if is_opposing(&mapping, &pending, &index, cursor, pa, pb) {
                    opposing_swap_count += 1;
                }
                out.swap(Qubit(pa.min(pb)), Qubit(pa.max(pb)));
                mapping.swap_positions(pa, pb);
                swap_count += 1;
            }
            out.push(g.map_qubits(|q| Qubit(mapping.position_of(q))));
            cursor += 1;
        } else {
            out.push(g.map_qubits(|q| Qubit(mapping.position_of(q))));
        }
    }

    RouteOutcome {
        circuit: out,
        initial_mapping: initial.clone(),
        final_mapping: mapping,
        swap_count,
        opposing_swap_count,
    }
}

/// How far ahead the opposing-swap classifier looks for each datum's next
/// partner.
const OPPOSING_HORIZON: usize = 256;

/// Classifies a swap of positions `(pa, pb)` as *opposing* (Fig. 2c): the
/// one swap must strictly shorten **two distinct** pending two-qubit gates
/// — one involving each swapped datum — i.e. it advances two independent
/// communications travelling in opposite directions. A swap that merely
/// serves both endpoints of a *single* gate (e.g. pulling BV's ancilla
/// toward its next partner) is a regular swap, which is why the paper
/// reports a zero opposing ratio for BV (§VI-A).
fn is_opposing(
    mapping: &Mapping,
    pending: &[PendingGate],
    index: &PendingIndex,
    cursor: usize,
    pa: usize,
    pb: usize,
) -> bool {
    let qa = mapping.logical_at(pa);
    let qb = mapping.logical_at(pb);
    let horizon = pending.len().min(cursor + OPPOSING_HORIZON);

    let (Some(ga), Some(gb)) = (
        index.first_gate_of(qa, cursor, horizon),
        index.first_gate_of(qb, cursor, horizon),
    ) else {
        return false;
    };
    if ga == gb {
        return false;
    }

    // Distance of pending gate `i` under the virtual swap of (pa, pb).
    let vdist = |i: usize| -> usize {
        let g = &pending[i];
        let vpos = |q: Qubit| {
            let p = mapping.position_of(q);
            if p == pa {
                pb
            } else if p == pb {
                pa
            } else {
                p
            }
        };
        vpos(g.a).abs_diff(vpos(g.b))
    };
    let dist = |i: usize| {
        let g = &pending[i];
        mapping.distance(g.a, g.b)
    };
    vdist(ga) < dist(ga) && vdist(gb) < dist(gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::InitialMapping;

    fn route(kind: &RouterKind, circuit: &Circuit, n_ions: usize, head: usize) -> RouteOutcome {
        let spec = DeviceSpec::new(n_ions, head).unwrap();
        let initial = InitialMapping::Identity.build(circuit, n_ions);
        kind.route(circuit, spec, &initial).unwrap()
    }

    fn all_kinds() -> Vec<RouterKind> {
        vec![
            RouterKind::Linq(LinqConfig::default()),
            RouterKind::Stochastic(StochasticConfig::default()),
        ]
    }

    #[test]
    fn executable_circuit_needs_no_swaps() {
        let mut c = Circuit::new(8);
        c.xx(Qubit(0), Qubit(3), 0.5).xx(Qubit(4), Qubit(7), 0.5);
        for kind in all_kinds() {
            let out = route(&kind, &c, 8, 4);
            assert_eq!(out.swap_count, 0, "{kind:?}");
            assert_eq!(out.circuit.two_qubit_count(), 2);
        }
    }

    #[test]
    fn long_gate_gets_swapped_within_head() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(15), 0.5);
        for kind in all_kinds() {
            let out = route(&kind, &c, 16, 4);
            assert!(out.swap_count >= 1, "{kind:?}");
            // Every two-qubit gate in the output fits under the head.
            for g in out.circuit.iter().filter(|g| g.is_two_qubit()) {
                assert!(g.span().unwrap() < 4, "{kind:?}: {g:?}");
            }
        }
    }

    #[test]
    fn routed_circuit_applies_gate_to_tracked_positions() {
        // After routing, replaying the swaps recovers which logical pair
        // each XX acts on; it must match the original program.
        let mut c = Circuit::new(12);
        c.xx(Qubit(0), Qubit(11), 0.5);
        c.xx(Qubit(0), Qubit(1), 0.25);
        for kind in all_kinds() {
            let out = route(&kind, &c, 12, 4);
            let mut m = out.initial_mapping.clone();
            let mut seen = Vec::new();
            for g in &out.circuit {
                match g {
                    tilt_circuit::Gate::Swap(a, b) => m.swap_positions(a.index(), b.index()),
                    tilt_circuit::Gate::Xx(a, b, t) => {
                        let la = m.logical_at(a.index());
                        let lb = m.logical_at(b.index());
                        seen.push((la.min(lb), la.max(lb), *t));
                    }
                    _ => {}
                }
            }
            assert_eq!(
                seen,
                vec![(Qubit(0), Qubit(11), 0.5), (Qubit(0), Qubit(1), 0.25)],
                "{kind:?}"
            );
            assert_eq!(m, out.final_mapping, "{kind:?}");
        }
    }

    #[test]
    fn single_qubit_gates_are_remapped_too() {
        let mut c = Circuit::new(10);
        c.xx(Qubit(0), Qubit(9), 0.5);
        c.rx(Qubit(0), 1.0);
        for kind in all_kinds() {
            let out = route(&kind, &c, 10, 4);
            let mut m = out.initial_mapping.clone();
            let mut rx_logical = None;
            for g in &out.circuit {
                match g {
                    tilt_circuit::Gate::Swap(a, b) => m.swap_positions(a.index(), b.index()),
                    tilt_circuit::Gate::Rx(q, _) => rx_logical = Some(m.logical_at(q.index())),
                    _ => {}
                }
            }
            assert_eq!(rx_logical, Some(Qubit(0)), "{kind:?}");
        }
    }

    #[test]
    fn opposing_classifier_detects_fig2c() {
        // Layout: A _ B C ... gate (A, B') where B' right of B, and
        // (B, leftward partner). Construct the Fig. 2c situation directly:
        // order Q1 Q3 Q2 Q4, gates (Q1,Q2) and (Q3,Q4). Swapping positions
        // of Q3 and Q2 (1 and 2) helps both.
        let mapping = Mapping::identity(4);
        // logical: Q1=0 at 0, Q3=1 at 1, Q2=2 at 2, Q4=3 at 3.
        let pending = vec![
            PendingGate {
                a: Qubit(0),
                b: Qubit(2),
                layer: 0,
            },
            PendingGate {
                a: Qubit(1),
                b: Qubit(3),
                layer: 0,
            },
        ];
        let index = PendingIndex::build(&pending, 4);
        // Swap positions 1 and 2: logical 1 (Q3) moves right toward Q4 at 3;
        // logical 2 (Q2) moves left toward Q1 at 0.
        assert!(is_opposing(&mapping, &pending, &index, 0, 1, 2));
        // Swapping 0 and 1 helps only Q1's partner direction.
        assert!(!is_opposing(&mapping, &pending, &index, 0, 0, 1));
    }

    #[test]
    fn ancilla_pull_is_not_opposing() {
        // BV-like: every pending gate targets the ancilla (logical 5).
        // Pulling the ancilla toward its partners serves single gates, so
        // no swap is opposing (the paper's BV observation, §VI-A).
        let mapping = Mapping::identity(6);
        let pending = vec![
            PendingGate {
                a: Qubit(0),
                b: Qubit(5),
                layer: 0,
            },
            PendingGate {
                a: Qubit(1),
                b: Qubit(5),
                layer: 1,
            },
        ];
        let index = PendingIndex::build(&pending, 6);
        // Swap ancilla (pos 5) with the spectator ion at pos 2.
        assert!(!is_opposing(&mapping, &pending, &index, 0, 2, 5));
        // Swapping the two interacting endpoints directly is not opposing
        // either (distance unchanged).
        assert!(!is_opposing(&mapping, &pending, &index, 0, 0, 5));
    }

    #[test]
    fn skeleton_layers_ignore_single_qubit_gates() {
        let mut c = Circuit::new(4);
        c.xx(Qubit(0), Qubit(1), 0.1);
        c.rx(Qubit(1), 0.5);
        c.rz(Qubit(1), 0.5);
        c.xx(Qubit(1), Qubit(2), 0.1);
        c.xx(Qubit(0), Qubit(3), 0.1);
        let pending = pending_gates(&c);
        assert_eq!(pending.len(), 3);
        assert_eq!(pending[0].layer, 0);
        assert_eq!(pending[1].layer, 1); // chained through q1, rotations transparent
        assert_eq!(pending[2].layer, 1); // chained through q0
    }

    #[test]
    fn rejects_circuit_wider_than_tape() {
        let c = Circuit::new(20);
        let spec = DeviceSpec::new(16, 4).unwrap();
        let initial = Mapping::identity(16);
        let err = RouterKind::default().route(&c, spec, &initial).unwrap_err();
        assert!(matches!(err, CompileError::CircuitTooWide { .. }));
    }
}
