//! Baseline swap insertion: a 1-D port of IBM Qiskit's `StochasticSwap`
//! (§IV-C "Baseline Approach" / §VI-A of the paper).
//!
//! For each unexecutable gate the policy runs `trials` randomized
//! attempts; each attempt samples a candidate swap between an endpoint and
//! an intermediate position (up to the full `head_size - 1` span — the
//! baseline deliberately allows maximal jumps, which is the behaviour the
//! paper criticizes) and keeps the attempt that brings the *current* gate
//! closest to executable. No look-ahead, no opposing-swap awareness: each
//! gate is resolved in isolation, exactly like running `StochasticSwap`
//! per-gate against the windowed 1-D coupling graph.

use super::{RouteState, SwapPolicy};
use crate::error::CompileError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the baseline policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StochasticConfig {
    /// Randomized attempts per swap decision (Qiskit's `trials`).
    pub trials: usize,
    /// RNG seed, for reproducible baselines.
    pub seed: u64,
}

impl Default for StochasticConfig {
    fn default() -> Self {
        StochasticConfig {
            trials: 20,
            seed: 0x51_0C_4A_57,
        }
    }
}

impl StochasticConfig {
    /// Checks parameter consistency.
    ///
    /// # Errors
    ///
    /// Rejects a zero trial count.
    pub fn validate(&self) -> Result<(), CompileError> {
        if self.trials == 0 {
            return Err(CompileError::InvalidRouterConfig {
                reason: "stochastic router needs at least one trial".into(),
            });
        }
        Ok(())
    }
}

/// Stateful baseline policy.
pub(crate) struct StochasticPolicy {
    trials: usize,
    rng: SmallRng,
}

impl StochasticPolicy {
    pub(crate) fn new(cfg: StochasticConfig) -> Self {
        StochasticPolicy {
            trials: cfg.trials,
            rng: SmallRng::seed_from_u64(cfg.seed),
        }
    }
}

impl SwapPolicy for StochasticPolicy {
    fn choose_swap(&mut self, state: &RouteState<'_>) -> (usize, usize) {
        let (lo, hi) = state.endpoints();
        let d = hi - lo;
        let max_jump = (state.spec.head_size() - 1).min(d - 1);

        // Sample (endpoint, jump) pairs; keep the one minimizing the
        // resulting distance of the current gate. The resulting
        // distance is `d - jump` with `d` fixed for the whole decision,
        // so minimizing it is exactly maximizing the jump: the trial
        // loop tracks only the strictly-largest jump seen (first win
        // kept, as the seed's strict `<` did) and the candidate pair
        // plus its distance are materialized once, after the loop. The
        // RNG is consumed identically to the seed loop, so fixed seeds
        // reproduce the seed's routes bit-for-bit (pinned by
        // `trial_loop_matches_seed_semantics`).
        let mut best_jump = 0usize;
        let mut best_from_lo = true;
        for _ in 0..self.trials {
            let jump = self.rng.gen_range(1..=max_jump);
            let from_lo: bool = self.rng.gen();
            if jump > best_jump {
                best_jump = jump;
                best_from_lo = from_lo;
            }
        }
        debug_assert!(best_jump >= 1, "at least one trial ran");
        if best_from_lo {
            (lo, lo + best_jump)
        } else {
            (hi - best_jump, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::InitialMapping;
    use crate::route::{RouteOutcome, RouterKind};
    use crate::spec::DeviceSpec;
    use tilt_circuit::{Circuit, Qubit};

    fn route_stochastic(c: &Circuit, n: usize, head: usize, seed: u64) -> RouteOutcome {
        let spec = DeviceSpec::new(n, head).unwrap();
        let initial = InitialMapping::Identity.build(c, n);
        RouterKind::Stochastic(StochasticConfig { trials: 20, seed })
            .route(c, spec, &initial)
            .unwrap()
    }

    #[test]
    fn zero_trials_is_rejected() {
        assert!(StochasticConfig { trials: 0, seed: 0 }.validate().is_err());
        assert!(StochasticConfig::default().validate().is_ok());
    }

    #[test]
    fn resolves_all_gates() {
        let mut c = Circuit::new(24);
        for i in 0..6 {
            c.xx(Qubit(i), Qubit(23 - i), 0.1);
        }
        let out = route_stochastic(&c, 24, 6, 1);
        for g in out.circuit.iter().filter(|g| g.is_two_qubit()) {
            assert!(g.span().unwrap() < 6, "{g:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(15), 0.5);
        c.xx(Qubit(2), Qubit(13), 0.5);
        let a = route_stochastic(&c, 16, 4, 7);
        let b = route_stochastic(&c, 16, 4, 7);
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn uses_near_maximal_jumps() {
        // With 20 trials over jumps 1..=L-1, the sampled best is almost
        // surely the max jump; the baseline therefore needs close to the
        // minimum swap count per gate but at maximal span.
        let mut c = Circuit::new(32);
        c.xx(Qubit(0), Qubit(31), 0.5);
        let out = route_stochastic(&c, 32, 8, 3);
        // d=31, head 8: minimal swaps = ceil((31-7)/7) = 4.
        assert!(out.swap_count >= 4);
        assert!(
            out.swap_count <= 6,
            "baseline used {} swaps",
            out.swap_count
        );
        let max_span = out
            .circuit
            .iter()
            .filter_map(|g| match g {
                tilt_circuit::Gate::Swap(a, b) => Some(a.index().abs_diff(b.index())),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_span, 7, "baseline should jump maximally");
    }

    /// The seed's trial loop, verbatim: recomputes the candidate pair
    /// and resulting distance inside every attempt. The shipping policy
    /// hoists that out (max-jump tracking); this reference pins the two
    /// to identical routes under identical RNG streams.
    struct SeedPolicy {
        trials: usize,
        rng: SmallRng,
    }

    impl SwapPolicy for SeedPolicy {
        fn choose_swap(&mut self, state: &RouteState<'_>) -> (usize, usize) {
            let (lo, hi) = state.endpoints();
            let d = hi - lo;
            let max_jump = (state.spec.head_size() - 1).min(d - 1);
            let mut best: Option<((usize, usize), usize)> = None;
            for _ in 0..self.trials {
                let jump = self.rng.gen_range(1..=max_jump);
                let from_lo: bool = self.rng.gen();
                let cand = if from_lo {
                    (lo, lo + jump)
                } else {
                    (hi - jump, hi)
                };
                let new_d = d - jump;
                let better = match best {
                    None => true,
                    Some((_, bd)) => new_d < bd,
                };
                if better {
                    best = Some((cand, new_d));
                }
            }
            best.expect("at least one trial ran").0
        }
    }

    #[test]
    fn trial_loop_matches_seed_semantics() {
        use crate::route::route_with_policy;
        for (n, head, seed) in [
            (16usize, 4usize, 0u64),
            (24, 6, 7),
            (40, 16, 11),
            (32, 8, 99),
        ] {
            let mut c = Circuit::new(n);
            for i in 0..n / 4 {
                c.xx(Qubit(i), Qubit(n - 1 - i), 0.1 * (i + 1) as f64);
                c.xx(Qubit((i * 11) % n), Qubit((i * 11 + n / 2) % n), 0.05);
            }
            let spec = DeviceSpec::new(n, head).unwrap();
            let initial = InitialMapping::Identity.build(&c, n);
            let mut fast = StochasticPolicy::new(StochasticConfig { trials: 20, seed });
            let fast_out = route_with_policy(&c, spec, &initial, &mut fast);
            let mut reference = SeedPolicy {
                trials: 20,
                rng: SmallRng::seed_from_u64(seed),
            };
            let ref_out = route_with_policy(&c, spec, &initial, &mut reference);
            assert_eq!(
                fast_out.circuit, ref_out.circuit,
                "n={n} head={head} seed={seed}"
            );
            assert_eq!(fast_out.swap_count, ref_out.swap_count);
            assert_eq!(fast_out.final_mapping, ref_out.final_mapping);
        }
    }

    #[test]
    fn swaps_fit_under_head() {
        let mut c = Circuit::new(40);
        c.xx(Qubit(0), Qubit(39), 0.5);
        let out = route_stochastic(&c, 40, 16, 11);
        for g in &out.circuit {
            if let tilt_circuit::Gate::Swap(a, b) = g {
                assert!(a.index().abs_diff(b.index()) <= 15);
            }
        }
    }
}
