//! Incremental swap insertion for the streaming pipeline.
//!
//! [`StreamRouter`] replays [`route_with_policy`]'s per-gate loop over a
//! gate stream instead of a materialized circuit, holding only a bounded
//! suffix of the two-qubit skeleton in memory. Decision identity with the
//! monolithic router rests on one observation: every policy decision and
//! the opposing-swap classifier inspect the pending list only inside
//! `[cursor, cursor + K)` with `K = max(lookahead, OPPOSING_HORIZON)` —
//! so a two-qubit gate is routed only once `K` pending gates beyond it
//! have been ingested (or the stream ended), at which point every
//! `min(len, cursor + K)` the scorers compute equals the monolithic
//! value.
//!
//! The already-routed prefix of the pending list is dropped in chunks
//! ([`PRUNE_CHUNK`]); indices are rebased to local coordinates and the
//! LinQ weight cache (keyed on the cursor coordinate) is invalidated,
//! which rebuilds identical weights and leaves decisions unchanged.

use std::collections::VecDeque;

use super::{is_opposing, linq, stochastic, PendingGate, PendingIndex, RouteState};
use super::{RouterKind, SwapPolicy, OPPOSING_HORIZON};
use crate::error::CompileError;
use crate::mapping::Mapping;
use crate::spec::DeviceSpec;
use tilt_circuit::{Gate, Qubit};

/// Routed-prefix length at which the pending list is rebased.
const PRUNE_CHUNK: usize = 4096;

/// The policy instance carried across windows.
enum StreamPolicy {
    Linq(linq::LinqPolicy),
    Stochastic(stochastic::StochasticPolicy),
}

/// Incremental counterpart of [`route_with_policy`]: push native gates,
/// drain routed (physical-coordinate) gates, identical output.
pub(crate) struct StreamRouter {
    spec: DeviceSpec,
    policy: StreamPolicy,
    /// Pending gates required beyond the cursor before a decision is
    /// arithmetic-identical to the monolithic router's.
    ahead: usize,
    /// Two-qubit skeleton layering state (incremental `pending_gates`).
    level: Vec<usize>,
    level_peak: usize,
    barrier_level: usize,
    /// Pending two-qubit gates in **local** coordinates: entry `i` is
    /// skeleton gate `base + i`.
    pending: Vec<PendingGate>,
    index: PendingIndex,
    base: usize,
    /// Local index of the skeleton gate currently being resolved.
    cursor: usize,
    /// Native gates ingested but not yet routed (head blocks on the
    /// ingest-ahead requirement; everything behind it waits in order).
    queue: VecDeque<Gate>,
    mapping: Mapping,
    eof: bool,
    swap_count: usize,
    opposing_swap_count: usize,
    /// Routed output awaiting collection by the caller.
    out: Vec<Gate>,
}

impl StreamRouter {
    /// Creates a streaming router for `kind` starting from `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidRouterConfig`] exactly when
    /// [`RouterKind::validate`] does.
    pub(crate) fn new(
        kind: &RouterKind,
        spec: DeviceSpec,
        initial: Mapping,
    ) -> Result<Self, CompileError> {
        kind.validate(spec)?;
        let (policy, ahead) = match kind {
            RouterKind::Linq(cfg) => (
                StreamPolicy::Linq(linq::LinqPolicy::new(*cfg, spec)),
                cfg.lookahead.max(OPPOSING_HORIZON),
            ),
            RouterKind::Stochastic(cfg) => (
                StreamPolicy::Stochastic(stochastic::StochasticPolicy::new(*cfg)),
                OPPOSING_HORIZON,
            ),
        };
        Ok(StreamRouter {
            spec,
            policy,
            ahead,
            level: vec![0; spec.n_ions()],
            level_peak: 0,
            barrier_level: 0,
            pending: Vec::new(),
            index: PendingIndex::build(&[], spec.n_ions()),
            base: 0,
            cursor: 0,
            queue: VecDeque::new(),
            mapping: initial,
            eof: false,
            swap_count: 0,
            opposing_swap_count: 0,
            out: Vec::new(),
        })
    }

    /// Ingests the next native gate (program order) and routes as much of
    /// the queue as the ingest-ahead requirement allows.
    pub(crate) fn push(&mut self, g: Gate) {
        debug_assert!(!self.eof, "push after finish_input");
        if matches!(g, Gate::Barrier) {
            // Levels never decrease, so the running peak equals the
            // monolithic per-barrier max scan.
            self.barrier_level = self.level_peak;
        } else if g.is_two_qubit() {
            let qs = g.qubits();
            let (a, b) = (qs[0], qs[1]);
            let layer = self.level[a.index()]
                .max(self.level[b.index()])
                .max(self.barrier_level);
            self.level[a.index()] = layer + 1;
            self.level[b.index()] = layer + 1;
            self.level_peak = self.level_peak.max(layer + 1);
            let i = u32::try_from(self.pending.len()).expect("pending window fits u32");
            self.index.per_qubit[a.index()].push(i);
            self.index.per_qubit[b.index()].push(i);
            self.pending.push(PendingGate { a, b, layer });
        }
        self.queue.push_back(g);
        self.drain();
    }

    /// Declares end of input: the remaining queue routes unconditionally
    /// (truncated windows now match the monolithic end-of-circuit ones).
    pub(crate) fn finish_input(&mut self) {
        self.eof = true;
        self.drain();
        debug_assert!(self.queue.is_empty());
    }

    /// Routed gates produced since the last call, in program order.
    pub(crate) fn drain_routed(&mut self) -> std::vec::Drain<'_, Gate> {
        self.out.drain(..)
    }

    /// Number of inserted SWAP gates so far.
    pub(crate) fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// Number of opposing swaps so far (Fig. 2c).
    pub(crate) fn opposing_swap_count(&self) -> usize {
        self.opposing_swap_count
    }

    /// The current (after `finish_input`: final) mapping.
    pub(crate) fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Pending skeleton gates currently held (memory-bound diagnostics).
    #[cfg(test)]
    fn window_len(&self) -> usize {
        self.pending.len()
    }

    fn drain(&mut self) {
        while let Some(&g) = self.queue.front() {
            if g.is_two_qubit() {
                if !self.eof && self.pending.len() < self.cursor + self.ahead {
                    break;
                }
                let qs = g.qubits();
                while self.mapping.distance(qs[0], qs[1]) >= self.spec.head_size() {
                    let state = RouteState {
                        spec: self.spec,
                        mapping: &self.mapping,
                        pending: &self.pending,
                        index: &self.index,
                        cursor: self.cursor,
                    };
                    let (pa, pb) = match &mut self.policy {
                        StreamPolicy::Linq(p) => p.choose_swap(&state),
                        StreamPolicy::Stochastic(p) => p.choose_swap(&state),
                    };
                    debug_assert!(pa != pb && pa.abs_diff(pb) < self.spec.head_size());
                    if is_opposing(
                        &self.mapping,
                        &self.pending,
                        &self.index,
                        self.cursor,
                        pa,
                        pb,
                    ) {
                        self.opposing_swap_count += 1;
                    }
                    self.out
                        .push(Gate::Swap(Qubit(pa.min(pb)), Qubit(pa.max(pb))));
                    self.mapping.swap_positions(pa, pb);
                    self.swap_count += 1;
                }
                self.out
                    .push(g.map_qubits(|q| Qubit(self.mapping.position_of(q))));
                self.cursor += 1;
            } else {
                self.out
                    .push(g.map_qubits(|q| Qubit(self.mapping.position_of(q))));
            }
            self.queue.pop_front();
        }
        if self.cursor >= PRUNE_CHUNK {
            self.rebase();
        }
    }

    /// Drops the routed prefix `[0, cursor)` of the pending list and
    /// rebases all indices to the new origin.
    fn rebase(&mut self) {
        let k = self.cursor;
        self.pending.drain(..k);
        self.base += k;
        self.cursor = 0;
        let cut = u32::try_from(k).expect("prune chunk fits u32");
        for list in &mut self.index.per_qubit {
            let split = list.partition_point(|&i| i < cut);
            list.drain(..split);
            for i in list.iter_mut() {
                *i -= cut;
            }
        }
        if let StreamPolicy::Linq(p) = &mut self.policy {
            p.invalidate_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::InitialMapping;
    use crate::route::{LinqConfig, RouteOutcome, StochasticConfig};
    use tilt_circuit::Circuit;

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// Random native-granularity workload: far XX pairs, rotations,
    /// occasional barriers.
    fn workload(n: usize, len: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed;
        for _ in 0..len {
            match xorshift(&mut s) % 10 {
                0 => {
                    c.barrier();
                }
                1..=3 => {
                    let q = Qubit((xorshift(&mut s) as usize) % n);
                    c.rz(q, 0.25);
                }
                _ => {
                    let a = (xorshift(&mut s) as usize) % n;
                    let mut b = (xorshift(&mut s) as usize) % n;
                    if a == b {
                        b = (b + 1) % n;
                    }
                    c.xx(Qubit(a), Qubit(b), 0.5);
                }
            }
        }
        c
    }

    fn kinds() -> Vec<RouterKind> {
        vec![
            RouterKind::Linq(LinqConfig::default()),
            RouterKind::Linq(LinqConfig {
                incremental: false,
                ..LinqConfig::default()
            }),
            RouterKind::Linq(LinqConfig {
                max_swap_len: Some(3),
                lookahead: 17,
                ..LinqConfig::default()
            }),
            RouterKind::Stochastic(StochasticConfig::default()),
        ]
    }

    fn stream_route(kind: &RouterKind, c: &Circuit, spec: DeviceSpec) -> (Vec<Gate>, RouteOutcome) {
        let initial = InitialMapping::Identity.build(c, spec.n_ions());
        let mono = kind.route(c, spec, &initial).unwrap();
        let mut sr = StreamRouter::new(kind, spec, initial).unwrap();
        let mut got = Vec::new();
        for g in c {
            sr.push(*g);
            got.extend(sr.drain_routed());
        }
        sr.finish_input();
        got.extend(sr.drain_routed());
        assert_eq!(sr.swap_count(), mono.swap_count, "{kind:?}");
        assert_eq!(
            sr.opposing_swap_count(),
            mono.opposing_swap_count,
            "{kind:?}"
        );
        assert_eq!(sr.mapping(), &mono.final_mapping, "{kind:?}");
        (got, mono)
    }

    #[test]
    fn streamed_route_matches_monolithic() {
        for (n, head, len, seed) in [(16usize, 4usize, 300usize, 7u64), (32, 8, 800, 41)] {
            let spec = DeviceSpec::new(n, head).unwrap();
            let c = workload(n, len, seed);
            for kind in kinds() {
                let (got, mono) = stream_route(&kind, &c, spec);
                assert_eq!(got, mono.circuit.gates(), "{kind:?} n={n} head={head}");
            }
        }
    }

    #[test]
    fn rebase_crossing_matches_monolithic_and_stays_bounded() {
        // Enough two-qubit gates to cross PRUNE_CHUNK several times.
        let n = 24;
        let spec = DeviceSpec::new(n, 6).unwrap();
        let mut c = Circuit::new(n);
        let mut s = 0xFEED_u64;
        for _ in 0..(PRUNE_CHUNK * 2 + 500) {
            let a = (xorshift(&mut s) as usize) % n;
            let mut b = (xorshift(&mut s) as usize) % n;
            if a == b {
                b = (b + 1) % n;
            }
            c.xx(Qubit(a), Qubit(b), 0.5);
        }
        let kind = RouterKind::Linq(LinqConfig::default());
        let initial = InitialMapping::Identity.build(&c, n);
        let mono = kind.route(&c, spec, &initial).unwrap();
        let mut sr = StreamRouter::new(&kind, spec, initial).unwrap();
        let mut got = Vec::new();
        let mut peak_window = 0usize;
        for g in &c {
            sr.push(*g);
            peak_window = peak_window.max(sr.window_len());
            got.extend(sr.drain_routed());
        }
        sr.finish_input();
        got.extend(sr.drain_routed());
        assert_eq!(got, mono.circuit.gates());
        assert_eq!(sr.swap_count(), mono.swap_count);
        assert_eq!(sr.mapping(), &mono.final_mapping);
        // The pending window never holds more than one prune chunk plus
        // the ingest-ahead margin.
        assert!(
            peak_window <= PRUNE_CHUNK + 2 * OPPOSING_HORIZON,
            "window grew to {peak_window}"
        );
    }

    #[test]
    fn barriers_and_measurements_pass_through_in_order() {
        let n = 12;
        let spec = DeviceSpec::new(n, 4).unwrap();
        let mut c = Circuit::new(n);
        c.xx(Qubit(0), Qubit(11), 0.5);
        c.barrier();
        c.measure(Qubit(0)).reset_qubit(Qubit(0));
        c.xx(Qubit(0), Qubit(1), 0.25);
        for kind in kinds() {
            let (got, mono) = stream_route(&kind, &c, spec);
            assert_eq!(got, mono.circuit.gates(), "{kind:?}");
        }
    }
}
