//! The LinQ swap-insertion heuristic (Algorithm 1 + Eq. 1 of the paper).
//!
//! For an unexecutable gate `g` on endpoints `(q1, q2)`, every position
//! `qi` strictly between the endpoints yields up to two candidates:
//! swap `qi` with the `q1`-side ion or with the `q2`-side ion, provided the
//! swap spans at most [`LinqConfig::max_swap_len`]. Each candidate mapping
//! `M_{qi,qj}` is scored with
//!
//! ```text
//! Score(M_{qi,qj}) = Σ_{g ∈ G} D(g, M_{qi,qj}) · α^Δ(g)        (Eq. 1)
//! ```
//!
//! where `G` are the remaining two-qubit gates, `D` the operand distance
//! under the candidate mapping, and `Δ(g)` the layer distance from the gate
//! being resolved. The candidate with the minimal score is applied. Because
//! future gates participate in the score, a swap that simultaneously
//! advances a second datum in the opposite direction scores lower — this is
//! how *opposing swaps* (Fig. 2c) emerge without special-casing.
//!
//! Restricting `max_swap_len` below `L-1` trades a few extra swaps for
//! freedom in tape scheduling (Fig. 5 / Fig. 7): a swap of span `L-1` can
//! execute at exactly one head position, so capping the span lets the
//! scheduler batch more gates per move.

use super::{RouteState, SwapPolicy};
use crate::error::CompileError;
use crate::spec::DeviceSpec;
use tilt_circuit::Qubit;

/// Tuning knobs for the LinQ policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinqConfig {
    /// Maximum span of an inserted SWAP gate, in ion spacings. `None`
    /// means the loosest feasible cap, `head_size - 1`. Fig. 7 sweeps this
    /// parameter; the best value is application-dependent.
    pub max_swap_len: Option<usize>,
    /// Look-ahead decay `α` of Eq. 1, `0 < α < 1`. The paper fixes a value
    /// in this range without publishing it; 0.9 is our documented default,
    /// calibrated on the QFT benchmark (see EXPERIMENTS.md): smaller values
    /// collapse Eq. 1 into per-gate greediness and inflate swap counts
    /// several-fold.
    pub alpha: f64,
    /// Number of upcoming two-qubit gates included in `G`. With `α = 0.5`
    /// contributions vanish numerically after a few tens of layers, so a
    /// window is equivalent to the full sum at a fraction of the cost.
    pub lookahead: usize,
    /// Use the incremental scorer (the default). `false` selects the
    /// retained reference scorer, which rebuilds the look-ahead weights
    /// and a hash-map qubit index for **every** swap decision; both
    /// scorers choose identical swaps (see the `scorers_agree` test), so
    /// this knob exists purely as the benchmark baseline.
    pub incremental: bool,
}

impl Default for LinqConfig {
    fn default() -> Self {
        LinqConfig {
            max_swap_len: None,
            alpha: 0.9,
            lookahead: 128,
            incremental: true,
        }
    }
}

impl LinqConfig {
    /// Convenience constructor fixing only `max_swap_len` (the Fig. 7
    /// sweep parameter).
    pub fn with_max_swap_len(max_swap_len: usize) -> Self {
        LinqConfig {
            max_swap_len: Some(max_swap_len),
            ..LinqConfig::default()
        }
    }

    /// Checks parameter consistency against the device.
    ///
    /// # Errors
    ///
    /// Rejects `max_swap_len` of 0 or `≥ head_size` (a swap wider than the
    /// head could never execute), `α` outside `(0, 1)`, and a zero
    /// look-ahead window.
    pub fn validate(&self, spec: DeviceSpec) -> Result<(), CompileError> {
        if let Some(len) = self.max_swap_len {
            if len == 0 || len >= spec.head_size() {
                return Err(CompileError::InvalidRouterConfig {
                    reason: format!(
                        "max_swap_len {len} must be in 1..={} for head size {}",
                        spec.head_size() - 1,
                        spec.head_size()
                    ),
                });
            }
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(CompileError::InvalidRouterConfig {
                reason: format!("alpha {} must lie strictly between 0 and 1", self.alpha),
            });
        }
        if self.lookahead == 0 {
            return Err(CompileError::InvalidRouterConfig {
                reason: "lookahead window must be at least 1 (the current gate)".into(),
            });
        }
        Ok(())
    }

    /// The effective swap-span cap on `spec`.
    pub fn effective_max_swap_len(&self, spec: DeviceSpec) -> usize {
        self.max_swap_len.unwrap_or(spec.head_size() - 1)
    }
}

/// Stateful LinQ policy (implements Algorithm 1 one swap at a time).
///
/// The default scorer is *incremental*: the decayed Eq. 1 weights for
/// the current look-ahead window are cached per pending-gate cursor
/// (several swap decisions usually serve one gate), and the gates
/// touching a candidate's two ions come from the route-wide
/// [`PendingIndex`](super::PendingIndex) instead of a per-decision
/// hash map. Correctness relies on one observation: the candidate
/// comparison only ever subtracts scores *within one decision*, so the
/// constant `Σ D(g)·α^Δ(g)` base term of Eq. 1 cancels and each
/// candidate needs only its **delta** over the gates its two ions
/// touch. The reference scorer (`incremental: false`) recomputes the
/// full Eq. 1 sum per decision, as the seed did.
pub(crate) struct LinqPolicy {
    cfg: LinqConfig,
    max_swap_len: usize,
    /// Cursor the cached weights belong to (`usize::MAX` = none).
    cached_cursor: usize,
    /// `α^Δ(g)` for each window offset at `cached_cursor`.
    weights: Vec<f64>,
    /// Window end (absolute pending index) at `cached_cursor`.
    window_end: usize,
}

impl LinqPolicy {
    pub(crate) fn new(cfg: LinqConfig, spec: DeviceSpec) -> Self {
        let max_swap_len = cfg.effective_max_swap_len(spec);
        LinqPolicy {
            cfg,
            max_swap_len,
            cached_cursor: usize::MAX,
            weights: Vec::new(),
            window_end: 0,
        }
    }

    /// Forgets the cached look-ahead window; the next decision rebuilds
    /// it from scratch. The streaming router periodically rebases its
    /// pending list (dropping the already-routed prefix), which shifts
    /// the cursor coordinate the cache is keyed on — the rebuilt weights
    /// are identical, so decisions are unaffected.
    pub(crate) fn invalidate_window(&mut self) {
        self.cached_cursor = usize::MAX;
    }

    /// Rebuilds the per-window weight cache when the routing cursor has
    /// moved since the last decision.
    fn refresh_window(&mut self, state: &RouteState<'_>) {
        if self.cached_cursor == state.cursor {
            return;
        }
        self.cached_cursor = state.cursor;
        self.window_end = state.pending.len().min(state.cursor + self.cfg.lookahead);
        let window = &state.pending[state.cursor..self.window_end];
        let cur_layer = window[0].layer;
        self.weights.clear();
        self.weights.extend(window.iter().map(|g| {
            // Skeleton layers are not monotone in program order (a later
            // gate on fresh qubits can sit in an earlier layer), so Δ
            // saturates at 0: such gates are "as urgent as" the current
            // one.
            self.cfg
                .alpha
                .powi(g.layer.saturating_sub(cur_layer) as i32)
        }));
    }

    /// Incremental scorer: Eq. 1 delta of swapping positions `(pa, pb)`
    /// — only gates touching the two swapped ions contribute.
    fn score_delta(&self, state: &RouteState<'_>, pa: usize, pb: usize) -> f64 {
        let la = state.mapping.logical_at(pa);
        let lb = state.mapping.logical_at(pb);
        // Virtual position lookup under the candidate swap.
        let vpos = |q: Qubit| -> usize {
            let p = state.mapping.position_of(q);
            if p == pa {
                pb
            } else if p == pb {
                pa
            } else {
                p
            }
        };
        let mut delta = 0.0f64;
        let mut visit = |idx: usize| {
            let g = &state.pending[idx];
            let old = state.mapping.distance(g.a, g.b) as f64;
            let new = vpos(g.a).abs_diff(vpos(g.b)) as f64;
            delta += (new - old) * self.weights[idx - self.cached_cursor];
        };
        for &i in state.index.gates_from(la, state.cursor) {
            let i = i as usize;
            if i >= self.window_end {
                break;
            }
            visit(i);
        }
        for &i in state.index.gates_from(lb, state.cursor) {
            let i = i as usize;
            if i >= self.window_end {
                break;
            }
            // Skip gates already visited through `la`.
            let g = &state.pending[i];
            if g.a != la && g.b != la {
                visit(i);
            }
        }
        delta
    }

    /// The seed scorer, retained as the benchmark baseline: rebuilds
    /// the window weights and a hash-map qubit index for every swap
    /// decision and scores candidates as `base + delta`.
    fn reference_score_candidates(
        &self,
        state: &RouteState<'_>,
        mut consider: impl FnMut(usize, usize, f64),
        candidates: &[(usize, usize)],
    ) {
        let window_end = state.pending.len().min(state.cursor + self.cfg.lookahead);
        let window = &state.pending[state.cursor..window_end];
        let cur_layer = window[0].layer;

        let mut base_score = 0.0f64;
        let mut weights = Vec::with_capacity(window.len());
        let mut touching: std::collections::HashMap<Qubit, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, g) in window.iter().enumerate() {
            let w = self
                .cfg
                .alpha
                .powi(g.layer.saturating_sub(cur_layer) as i32);
            weights.push(w);
            base_score += (state.mapping.distance(g.a, g.b) as f64) * w;
            touching.entry(g.a).or_default().push(i);
            touching.entry(g.b).or_default().push(i);
        }

        for &(pa, pb) in candidates {
            let la = state.mapping.logical_at(pa);
            let lb = state.mapping.logical_at(pb);
            let vpos = |q: Qubit| -> usize {
                let p = state.mapping.position_of(q);
                if p == pa {
                    pb
                } else if p == pb {
                    pa
                } else {
                    p
                }
            };
            let mut delta = 0.0f64;
            let mut visit = |idx: usize| {
                let g = &window[idx];
                let old = state.mapping.distance(g.a, g.b) as f64;
                let new = vpos(g.a).abs_diff(vpos(g.b)) as f64;
                delta += (new - old) * weights[idx];
            };
            if let Some(list) = touching.get(&la) {
                for &i in list {
                    visit(i);
                }
            }
            if let Some(list) = touching.get(&lb) {
                for &i in list {
                    let g = &window[i];
                    if g.a != la && g.b != la {
                        visit(i);
                    }
                }
            }
            consider(pa, pb, base_score + delta);
        }
    }

    /// Algorithm 1 candidate enumeration: calls `consider(pa, pb)` for
    /// every legal swap, in a fixed order shared by both scorers.
    fn for_each_candidate(&self, state: &RouteState<'_>, mut consider: impl FnMut(usize, usize)) {
        let (lo, hi) = state.endpoints();
        debug_assert!(hi - lo >= state.spec.head_size());
        for qi in (lo + 1)..hi {
            if qi - lo <= self.max_swap_len {
                consider(lo, qi);
            }
            if hi - qi <= self.max_swap_len {
                consider(qi, hi);
            }
        }
    }
}

impl SwapPolicy for LinqPolicy {
    fn choose_swap(&mut self, state: &RouteState<'_>) -> (usize, usize) {
        let mut best: Option<((usize, usize), f64)> = None;
        let mut consider = |pa: usize, pb: usize, s: f64| {
            let better = match best {
                None => true,
                Some((_, bs)) => s < bs - 1e-12,
            };
            if better {
                best = Some(((pa, pb), s));
            }
        };
        if self.cfg.incremental {
            // Allocation-free hot path: score each candidate as it is
            // enumerated.
            self.refresh_window(state);
            self.for_each_candidate(state, |pa, pb| {
                let s = self.score_delta(state, pa, pb);
                consider(pa, pb, s);
            });
        } else {
            let mut candidates = Vec::new();
            self.for_each_candidate(state, |pa, pb| candidates.push((pa, pb)));
            self.reference_score_candidates(state, consider, &candidates);
        }
        best.expect("an unexecutable gate always has swap candidates")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{InitialMapping, Mapping};
    use crate::route::{RouteOutcome, RouterKind};
    use tilt_circuit::Circuit;

    fn route_linq(c: &Circuit, n: usize, head: usize, cfg: LinqConfig) -> RouteOutcome {
        let spec = DeviceSpec::new(n, head).unwrap();
        let initial = InitialMapping::Identity.build(c, n);
        RouterKind::Linq(cfg).route(c, spec, &initial).unwrap()
    }

    #[test]
    fn default_config_is_valid() {
        LinqConfig::default()
            .validate(DeviceSpec::tilt64(16))
            .unwrap();
    }

    #[test]
    fn rejects_bad_parameters() {
        let spec = DeviceSpec::tilt64(16);
        assert!(LinqConfig::with_max_swap_len(0).validate(spec).is_err());
        assert!(LinqConfig::with_max_swap_len(16).validate(spec).is_err());
        assert!(LinqConfig::with_max_swap_len(15).validate(spec).is_ok());
        let bad_alpha = LinqConfig {
            alpha: 1.0,
            ..LinqConfig::default()
        };
        assert!(bad_alpha.validate(spec).is_err());
        let bad_window = LinqConfig {
            lookahead: 0,
            ..LinqConfig::default()
        };
        assert!(bad_window.validate(spec).is_err());
    }

    #[test]
    fn resolves_distance_with_minimal_swaps_when_unconstrained() {
        // d = 15 on a head of 8: one max-length swap (span 7) brings it to
        // 8, still ≥ 8 → second swap → 7 or less. Expect exactly 2 swaps
        // under the default (max-span) config with no competing gates.
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(15), 0.5);
        let out = route_linq(&c, 16, 8, LinqConfig::default());
        assert_eq!(out.swap_count, 2);
    }

    #[test]
    fn swap_spans_respect_max_swap_len() {
        let mut c = Circuit::new(32);
        c.xx(Qubit(0), Qubit(31), 0.5);
        for cap in [3usize, 5, 7] {
            let out = route_linq(&c, 32, 8, LinqConfig::with_max_swap_len(cap));
            for g in &out.circuit {
                if let tilt_circuit::Gate::Swap(a, b) = g {
                    assert!(a.index().abs_diff(b.index()) <= cap, "cap {cap}: {g:?}");
                }
            }
        }
    }

    #[test]
    fn tighter_cap_needs_at_least_as_many_swaps() {
        let mut c = Circuit::new(32);
        for i in 0..4 {
            c.xx(Qubit(i), Qubit(31 - i), 0.5);
        }
        let loose = route_linq(&c, 32, 8, LinqConfig::default()).swap_count;
        let tight = route_linq(&c, 32, 8, LinqConfig::with_max_swap_len(2)).swap_count;
        assert!(tight >= loose, "tight {tight} < loose {loose}");
    }

    #[test]
    fn creates_opposing_swaps_for_counterflow_traffic() {
        // Two data streams crossing mid-tape: q4 travels right toward q11
        // while q7 travels left toward q0. A single swap exchanging the
        // two streams advances both gates — the Fig. 2c situation.
        let mut c = Circuit::new(12);
        c.xx(Qubit(4), Qubit(11), 0.1);
        c.xx(Qubit(7), Qubit(0), 0.1);
        let out = route_linq(&c, 12, 4, LinqConfig::default());
        assert!(out.swap_count > 0);
        assert!(
            out.opposing_swap_count > 0,
            "expected opposing swaps, got {out:?}"
        );
    }

    #[test]
    fn score_prefers_swap_helping_future_gate() {
        // Current gate: (0, 9) on head 8 → needs one swap. A future gate
        // (8, 0) means pulling qubit 0 rightward helps twice; pulling
        // qubit 9 leftward helps once. The chosen swap should move q0.
        let mut c = Circuit::new(10);
        c.xx(Qubit(0), Qubit(9), 0.5);
        c.xx(Qubit(8), Qubit(0), 0.5);
        let out = route_linq(&c, 10, 8, LinqConfig::default());
        assert_eq!(out.swap_count, 1);
        let swap = out
            .circuit
            .iter()
            .find_map(|g| match g {
                tilt_circuit::Gate::Swap(a, b) => Some((a.index(), b.index())),
                _ => None,
            })
            .unwrap();
        // The swap must involve position 0 (qubit 0 moving right).
        assert_eq!(swap.0, 0, "swap {swap:?} should move qubit 0");
    }

    #[test]
    fn effective_cap_defaults_to_head_minus_one() {
        let spec = DeviceSpec::tilt64(16);
        assert_eq!(LinqConfig::default().effective_max_swap_len(spec), 15);
        assert_eq!(
            LinqConfig::with_max_swap_len(9).effective_max_swap_len(spec),
            9
        );
    }

    #[test]
    fn incremental_and_reference_scorers_choose_identical_swaps() {
        // The incremental scorer drops the constant Eq. 1 base term
        // (argmin-invariant); the routed circuits must match the seed
        // scorer's exactly, swap for swap.
        let reference = LinqConfig {
            incremental: false,
            ..LinqConfig::default()
        };
        let mut workloads: Vec<(Circuit, usize, usize)> = Vec::new();
        let mut crossing = Circuit::new(24);
        for i in 0..8 {
            crossing.xx(Qubit(i), Qubit(23 - i), 0.1 * (i + 1) as f64);
            crossing.xx(Qubit(23 - i), Qubit((i + 11) % 24), 0.07 * (i + 1) as f64);
        }
        workloads.push((crossing, 24, 6));
        let mut ladder = Circuit::new(16);
        for i in 0..15 {
            let partner = (i * 7 + 5) % 16;
            if partner != i {
                ladder.xx(Qubit(i), Qubit(partner), 0.2);
            }
        }
        workloads.push((ladder, 16, 4));
        for (circuit, n, head) in workloads {
            let fast = route_linq(&circuit, n, head, LinqConfig::default());
            let slow = route_linq(&circuit, n, head, reference);
            assert_eq!(fast.circuit, slow.circuit);
            assert_eq!(fast.swap_count, slow.swap_count);
            assert_eq!(fast.opposing_swap_count, slow.opposing_swap_count);
            assert_eq!(fast.final_mapping, slow.final_mapping);
        }
    }

    #[test]
    fn deterministic() {
        let mut c = Circuit::new(24);
        for i in 0..6 {
            c.xx(Qubit(i), Qubit(23 - i), 0.1);
        }
        let a = route_linq(&c, 24, 6, LinqConfig::default());
        let b = route_linq(&c, 24, 6, LinqConfig::default());
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn final_mapping_is_consistent_with_swaps() {
        let mut c = Circuit::new(16);
        c.xx(Qubit(0), Qubit(15), 0.5);
        let out = route_linq(&c, 16, 4, LinqConfig::default());
        let mut m = Mapping::identity(16);
        for g in &out.circuit {
            if let tilt_circuit::Gate::Swap(a, b) = g {
                m.swap_positions(a.index(), b.index());
            }
        }
        assert_eq!(m, out.final_mapping);
    }
}
