//! Static verification of compiled programs.
//!
//! A compiled program that silently violates a machine invariant is a
//! correctness bug the success estimator will happily mis-score: a gate
//! outside the head span would need a tape move the timing model never
//! charged, an over-long swap could not execute at any head position,
//! and a scrambled schedule breaks the circuit's dependency order. The
//! pipeline debug-asserts these invariants while building programs;
//! this module re-checks them *from the finished artifact* in release
//! builds, so every emitted program can be validated independently of
//! the pass that produced it — the safety net the streaming/sharded
//! compilation plans need before compile windows stop being
//! whole-program.
//!
//! The rule engine is deliberately boring: each rule walks a compiled
//! artifact and appends [`Diagnostic`]s. Backend-specific rule packs
//! live next to their program types — [`verify_tilt`] here, the QCCD
//! pack in `tilt-qccd`, the ELU-array pack in `tilt-scale` — and the
//! session layer (`tilt-engine`) dispatches on the run's backend.
//!
//! # TILT tape rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `tilt/head-span` | every gate's operands sit under the recorded head position; every move targets a valid head position |
//! | `tilt/swap-chain` | every inserted SWAP spans `1..=max_swap_len` positions |
//! | `tilt/mapping-bijection` | replaying the routed swaps over the initial mapping lands exactly on the recorded final mapping |
//! | `tilt/schedule-order` | the scheduled op stream preserves each ion's gate order from the routed circuit, and no gate is dropped or invented |
//!
//! # Example
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//! use tilt_compiler::{verify, Compiler, DeviceSpec};
//!
//! let mut c = Circuit::new(8);
//! c.h(Qubit(0)).cnot(Qubit(0), Qubit(7));
//! let spec = DeviceSpec::new(8, 4)?;
//! let out = Compiler::new(spec).compile(&c)?;
//! let cap = spec.head_size() - 1;
//! assert!(verify::verify_tilt(&out, cap).is_empty());
//! # Ok::<(), tilt_compiler::CompileError>(())
//! ```

use crate::decompose::decompose;
use crate::pipeline::CompileOutput;
use crate::program::TiltOp;
use tilt_circuit::Gate;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable; reported, never fatal.
    Warning,
    /// A machine-invariant violation: the program cannot execute as
    /// recorded, so any estimate derived from it is unsound.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One verifier finding, anchored to the offending operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, `backend/rule-name` (e.g.
    /// `tilt/head-span`).
    pub rule: &'static str,
    /// How bad the finding is.
    pub severity: Severity,
    /// Index of the offending operation in the stream the rule walks
    /// (op stream for program rules, routed circuit for routing rules;
    /// the message says which).
    pub op_index: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// An [`Severity::Error`] finding.
    pub fn error(rule: &'static str, op_index: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            op_index,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] op {}: {}",
            self.severity, self.rule, self.op_index, self.message
        )
    }
}

/// Runs the TILT tape rule pack over one compilation.
///
/// `max_swap_len` is the router's effective swap-span cap
/// ([`crate::route::RouterKind::max_swap_span`] resolves it for the
/// configured policy).
pub fn verify_tilt(out: &CompileOutput, max_swap_len: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    head_span(out, &mut diags);
    swap_chain(out, max_swap_len, &mut diags);
    mapping_bijection(out, &mut diags);
    schedule_order(out, &mut diags);
    diags
}

/// `tilt/head-span`: gates covered, moves in range.
fn head_span(out: &CompileOutput, diags: &mut Vec<Diagnostic>) {
    let spec = *out.program.spec();
    for (i, op) in out.program.ops().iter().enumerate() {
        head_span_op(&spec, i, op, diags);
    }
}

/// The per-op body of `tilt/head-span`, shared by the whole-program
/// walk and the incremental [`StreamVerifier`].
fn head_span_op(
    spec: &crate::spec::DeviceSpec,
    i: usize,
    op: &TiltOp,
    diags: &mut Vec<Diagnostic>,
) {
    let max_head = spec.n_ions() - spec.head_size();
    match op {
        TiltOp::Move { to } => {
            if *to > max_head {
                diags.push(Diagnostic::error(
                    "tilt/head-span",
                    i,
                    format!("move targets head position {to}, past the last valid {max_head}"),
                ));
            }
        }
        TiltOp::Gate { gate, head_pos } => {
            if *head_pos > max_head {
                diags.push(Diagnostic::error(
                    "tilt/head-span",
                    i,
                    format!("{gate} recorded at head {head_pos}, past the last valid {max_head}"),
                ));
            }
            for q in gate.qubits() {
                if q.index() >= spec.n_ions() || !spec.covers(*head_pos, q.index()) {
                    diags.push(Diagnostic::error(
                        "tilt/head-span",
                        i,
                        format!(
                            "{gate} at head {head_pos} leaves position {} outside the \
                             {}-wide head",
                            q.index(),
                            spec.head_size()
                        ),
                    ));
                }
            }
        }
    }
}

/// Incremental evaluation of the window-applicable TILT rules over a
/// streaming compile's op increments.
///
/// Only `tilt/head-span` is window-applicable: it is a pure per-op
/// predicate, so checking each increment as it arrives is exactly the
/// whole-program walk with the indices offset by the ops already seen.
/// The other three rules need whole-compilation artifacts (the routed
/// circuit, the final mapping, every ion's complete gate sequence) and
/// cannot run on a window without false verdicts — use the monolithic
/// [`verify_tilt`] for those.
///
/// Diagnostics carry **global** op indices: pushing a stream in any
/// window partition yields byte-identical findings.
#[derive(Debug)]
pub struct StreamVerifier {
    spec: crate::spec::DeviceSpec,
    next_index: usize,
    diags: Vec<Diagnostic>,
}

impl StreamVerifier {
    /// A verifier for a streaming compile on `spec`'s tape.
    pub fn new(spec: crate::spec::DeviceSpec) -> StreamVerifier {
        StreamVerifier {
            spec,
            next_index: 0,
            diags: Vec::new(),
        }
    }

    /// Checks one op increment; indices continue from prior pushes.
    pub fn push(&mut self, ops: &[TiltOp]) {
        for op in ops {
            head_span_op(&self.spec, self.next_index, op, &mut self.diags);
            self.next_index += 1;
        }
    }

    /// Total ops checked so far.
    pub fn ops_seen(&self) -> usize {
        self.next_index
    }

    /// Findings accumulated so far (borrowed; [`StreamVerifier::finish`]
    /// consumes).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the verifier, returning every finding.
    pub fn finish(self) -> Vec<Diagnostic> {
        self.diags
    }
}

/// `tilt/swap-chain`: inserted swaps span `1..=max_swap_len`.
fn swap_chain(out: &CompileOutput, max_swap_len: usize, diags: &mut Vec<Diagnostic>) {
    for (i, g) in out.routed.circuit.iter().enumerate() {
        if let Gate::Swap(a, b) = g {
            let span = a.index().abs_diff(b.index());
            if span == 0 || span > max_swap_len {
                diags.push(Diagnostic::error(
                    "tilt/swap-chain",
                    i,
                    format!(
                        "routed swap ({}, {}) spans {span} positions, outside the router's \
                         1..={max_swap_len} cap",
                        a.index(),
                        b.index()
                    ),
                ));
            }
        }
    }
}

/// `tilt/mapping-bijection`: the routed swap sequence transforms the
/// initial layout into exactly the recorded final layout.
fn mapping_bijection(out: &CompileOutput, diags: &mut Vec<Diagnostic>) {
    let mut m = out.routed.initial_mapping.clone();
    let n = m.len();
    for (i, g) in out.routed.circuit.iter().enumerate() {
        if let Gate::Swap(a, b) = g {
            if a.index() >= n || b.index() >= n {
                diags.push(Diagnostic::error(
                    "tilt/mapping-bijection",
                    i,
                    format!(
                        "swap ({}, {}) references a position outside the {n}-ion tape",
                        a.index(),
                        b.index()
                    ),
                ));
                continue;
            }
            m.swap_positions(a.index(), b.index());
        }
    }
    if m != out.routed.final_mapping {
        diags.push(Diagnostic::error(
            "tilt/mapping-bijection",
            out.routed.circuit.len(),
            "replaying the routed swaps does not reproduce the recorded final mapping".into(),
        ));
    }
}

/// `tilt/schedule-order`: the scheduled program preserves every ion's
/// gate subsequence from the (swap-lowered) routed circuit.
///
/// The op stream is serial, so "never two ops on one ion at once" holds
/// by construction; the meaningful DAG property on a serial stream is
/// that per-ion order survives scheduling — any reordering that crosses
/// a data dependency shows up as a per-ion subsequence mismatch.
fn schedule_order(out: &CompileOutput, diags: &mut Vec<Diagnostic>) {
    let spec = *out.program.spec();
    let n = spec.n_ions();
    let lowered = decompose(&out.routed.circuit);
    let mut expected: Vec<Vec<Gate>> = vec![Vec::new(); n];
    for g in &lowered {
        for q in g.qubits() {
            if q.index() < n {
                expected[q.index()].push(*g);
            }
        }
    }

    let mut cursor = vec![0usize; n];
    // One report per ion: after a mismatch every later gate on that ion
    // is out of step, which would only repeat the same finding.
    let mut desynced = vec![false; n];
    for (i, op) in out.program.ops().iter().enumerate() {
        let TiltOp::Gate { gate, .. } = op else {
            continue;
        };
        for q in gate.qubits() {
            let qi = q.index();
            if qi >= n || desynced[qi] {
                continue;
            }
            match expected[qi].get(cursor[qi]) {
                Some(want) if *want == *gate => cursor[qi] += 1,
                Some(want) => {
                    desynced[qi] = true;
                    diags.push(Diagnostic::error(
                        "tilt/schedule-order",
                        i,
                        format!("position {qi} executes {gate} but its next dependency is {want}"),
                    ));
                }
                None => {
                    desynced[qi] = true;
                    diags.push(Diagnostic::error(
                        "tilt/schedule-order",
                        i,
                        format!("position {qi} executes {gate} beyond its routed gate sequence"),
                    ));
                }
            }
        }
    }
    for qi in 0..n {
        if !desynced[qi] && cursor[qi] < expected[qi].len() {
            diags.push(Diagnostic::error(
                "tilt/schedule-order",
                out.program.ops().len(),
                format!(
                    "position {qi} is missing {} scheduled gate(s) from the routed circuit",
                    expected[qi].len() - cursor[qi]
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;
    use crate::program::TiltProgram;
    use crate::route::{LinqConfig, RouterKind};
    use crate::spec::DeviceSpec;
    use tilt_circuit::{Circuit, Qubit};

    fn compiled(n: usize, head: usize) -> CompileOutput {
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        for i in 1..n {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        c.cnot(Qubit(0), Qubit(n - 1));
        Compiler::new(DeviceSpec::new(n, head).unwrap())
            .compile(&c)
            .unwrap()
    }

    #[test]
    fn clean_compile_verifies_clean() {
        let out = compiled(16, 4);
        assert_eq!(verify_tilt(&out, 3), Vec::new());
    }

    #[test]
    fn capped_router_verifies_against_its_cap() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(15));
        let spec = DeviceSpec::new(16, 8).unwrap();
        let mut compiler = Compiler::new(spec);
        compiler.router(RouterKind::Linq(LinqConfig::with_max_swap_len(3)));
        let out = compiler.compile(&c).unwrap();
        assert!(verify_tilt(&out, 3).is_empty());
    }

    #[test]
    fn uncovered_gate_is_diagnosed() {
        let mut out = compiled(16, 4);
        // Rebuild the program with one gate's head position shifted out
        // from under its operands (skip the debug asserts of `new` by
        // mutating a covered gate to an uncovered head).
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        let idx = ops
            .iter()
            .position(|op| matches!(op, TiltOp::Gate { gate, .. } if gate.is_two_qubit()))
            .unwrap();
        if let TiltOp::Gate { gate, head_pos } = &mut ops[idx] {
            let hi = gate.qubits().iter().map(|q| q.index()).max().unwrap();
            *head_pos = if hi >= spec.head_size() {
                0
            } else {
                spec.n_ions() - spec.head_size()
            };
        }
        out.program = TiltProgram::new_unchecked(spec, ops);
        let diags = verify_tilt(&out, spec.head_size() - 1);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "tilt/head-span" && d.op_index == idx),
            "{diags:?}"
        );
    }

    #[test]
    fn move_past_tape_end_is_diagnosed() {
        let mut out = compiled(16, 4);
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        ops.push(TiltOp::Move { to: spec.n_ions() });
        out.program = TiltProgram::new_unchecked(spec, ops);
        let diags = verify_tilt(&out, spec.head_size() - 1);
        assert!(
            diags.iter().any(|d| d.rule == "tilt/head-span"),
            "{diags:?}"
        );
    }

    #[test]
    fn stream_verifier_matches_head_span_at_every_window_split() {
        // Corrupt two ops at known indices, then push the op stream in
        // several window partitions: the findings (rules AND global
        // indices) must be byte-identical to the whole-program walk.
        let out = compiled(16, 4);
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        let idx = ops
            .iter()
            .position(|op| matches!(op, TiltOp::Gate { gate, .. } if gate.is_two_qubit()))
            .unwrap();
        if let TiltOp::Gate { head_pos, .. } = &mut ops[idx] {
            *head_pos = spec.n_ions() - spec.head_size();
        }
        ops.push(TiltOp::Move { to: spec.n_ions() });
        let mut whole = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            head_span_op(&spec, i, op, &mut whole);
        }
        assert!(whole.iter().any(|d| d.op_index == idx));
        assert!(whole.iter().any(|d| d.op_index == ops.len() - 1));
        for window in [1, 3, 7, ops.len(), ops.len() + 5] {
            let mut sv = StreamVerifier::new(spec);
            for chunk in ops.chunks(window) {
                sv.push(chunk);
            }
            assert_eq!(sv.ops_seen(), ops.len());
            assert_eq!(sv.finish(), whole, "window {window}");
        }
    }

    #[test]
    fn stream_verifier_is_clean_on_a_clean_compile() {
        let out = compiled(16, 4);
        let mut sv = StreamVerifier::new(*out.program.spec());
        for chunk in out.program.ops().chunks(5) {
            sv.push(chunk);
        }
        assert!(sv.diagnostics().is_empty());
        assert_eq!(sv.ops_seen(), out.program.ops().len());
        assert_eq!(sv.finish(), Vec::new());
    }

    #[test]
    fn overlong_swap_is_diagnosed() {
        let mut out = compiled(16, 4);
        let idx = out
            .routed
            .circuit
            .iter()
            .position(|g| matches!(g, Gate::Swap(..)))
            .expect("wrap-around CNOT forces a swap");
        out.routed.circuit.gates_mut()[idx] = Gate::Swap(Qubit(0), Qubit(9));
        let diags = verify_tilt(&out, 3);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "tilt/swap-chain" && d.op_index == idx),
            "{diags:?}"
        );
        // Replaying the corrupted swap also breaks the recorded final
        // mapping and the per-ion schedule.
        assert!(diags.iter().any(|d| d.rule == "tilt/mapping-bijection"));
    }

    #[test]
    fn scrambled_schedule_is_diagnosed() {
        let mut out = compiled(16, 4);
        // Swap two gate ops that share an operand: per-ion order breaks.
        let gate_idx: Vec<usize> = out
            .program
            .ops()
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op {
                TiltOp::Gate { gate, .. } if !gate.qubits().is_empty() => Some(i),
                _ => None,
            })
            .collect();
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        let (mut a, mut b) = (usize::MAX, usize::MAX);
        'outer: for (k, &i) in gate_idx.iter().enumerate() {
            for &j in &gate_idx[k + 1..] {
                let (TiltOp::Gate { gate: gi, .. }, TiltOp::Gate { gate: gj, .. }) =
                    (&ops[i], &ops[j])
                else {
                    continue;
                };
                let shared = gi.qubits().iter().any(|q| gj.qubits().contains(q));
                if shared && gi != gj {
                    (a, b) = (i, j);
                    break 'outer;
                }
            }
        }
        assert_ne!(a, usize::MAX, "GHZ chain has dependent gate pairs");
        ops.swap(a, b);
        out.program = TiltProgram::new_unchecked(spec, ops);
        let diags = verify_tilt(&out, spec.head_size() - 1);
        assert!(
            diags.iter().any(|d| d.rule == "tilt/schedule-order"),
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_gate_is_diagnosed() {
        let mut out = compiled(16, 4);
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        // Drop the final gate: no reordering, just a silently missing
        // op — the completeness half of the rule.
        let idx = ops
            .iter()
            .rposition(|op| matches!(op, TiltOp::Gate { .. }))
            .unwrap();
        ops.remove(idx);
        out.program = TiltProgram::new_unchecked(spec, ops);
        let diags = verify_tilt(&out, spec.head_size() - 1);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "tilt/schedule-order" && d.message.contains("missing")),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_rule_and_index() {
        let d = Diagnostic::error("tilt/head-span", 7, "example".into());
        assert_eq!(d.to_string(), "error[tilt/head-span] op 7: example");
        assert!(Severity::Error > Severity::Warning);
    }
}
