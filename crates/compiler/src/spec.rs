//! TILT device specification.

use crate::error::CompileError;

/// Physical description of a TILT machine: an ion chain of `n_ions`
/// positions shuttling under a laser head covering `head_size` contiguous
/// positions (Fig. 1 of the paper).
///
/// Head positions are indexed by their leftmost covered ion position, so
/// valid head positions are `0..=n_ions - head_size`.
///
/// # Example
///
/// ```
/// use tilt_compiler::DeviceSpec;
///
/// let spec = DeviceSpec::new(64, 16)?;
/// assert_eq!(spec.head_positions().count(), 49);
/// assert!(spec.fits_under_head(3, 18));   // distance 15 < 16
/// assert!(!spec.fits_under_head(3, 19));  // distance 16 needs a swap
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeviceSpec {
    n_ions: usize,
    head_size: usize,
}

impl DeviceSpec {
    /// Creates a device with `n_ions` tape positions and a head covering
    /// `head_size` positions.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidSpec`] when the head is smaller than
    /// two ions (no two-qubit gate could ever execute) or larger than the
    /// tape.
    pub fn new(n_ions: usize, head_size: usize) -> Result<Self, CompileError> {
        if head_size < 2 || head_size > n_ions {
            return Err(CompileError::InvalidSpec { n_ions, head_size });
        }
        Ok(DeviceSpec { n_ions, head_size })
    }

    /// The paper's primary configuration: a 64-ion tape.
    ///
    /// # Panics
    ///
    /// Never panics for the fixed valid arguments.
    pub fn tilt64(head_size: usize) -> Self {
        DeviceSpec::new(64, head_size).expect("64-ion spec with paper head sizes is valid")
    }

    /// Number of ions on the tape (`N` in the paper).
    #[inline]
    pub fn n_ions(&self) -> usize {
        self.n_ions
    }

    /// Laser head width (`L` in the paper; 16 or 32 in the evaluation).
    #[inline]
    pub fn head_size(&self) -> usize {
        self.head_size
    }

    /// Iterator over the valid head positions (leftmost covered ion).
    pub fn head_positions(&self) -> impl Iterator<Item = usize> + '_ {
        0..=self.n_ions - self.head_size
    }

    /// Number of distinct head positions.
    pub fn n_head_positions(&self) -> usize {
        self.n_ions - self.head_size + 1
    }

    /// True when ion positions `a` and `b` can sit under the head
    /// simultaneously, i.e. `|a - b| < head_size`.
    ///
    /// This is the executability criterion of §III: a two-qubit gate is
    /// executable (possibly after a tape move) iff its operands fit under
    /// the head.
    #[inline]
    pub fn fits_under_head(&self, a: usize, b: usize) -> bool {
        a.abs_diff(b) < self.head_size
    }

    /// True when position `pos` is covered by the head at `head_pos`.
    #[inline]
    pub fn covers(&self, head_pos: usize, pos: usize) -> bool {
        pos >= head_pos && pos < head_pos + self.head_size
    }

    /// The inclusive range of head positions from which *all* of `positions`
    /// are covered, or `None` if they do not fit under the head at once.
    ///
    /// For a gate spanning `d` positions this yields `head_size - d` valid
    /// positions (Fig. 5 of the paper).
    pub fn covering_head_positions(
        &self,
        positions: impl IntoIterator<Item = usize>,
    ) -> Option<std::ops::RangeInclusive<usize>> {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut any = false;
        for p in positions {
            debug_assert!(p < self.n_ions, "position {p} outside tape");
            min = min.min(p);
            max = max.max(p);
            any = true;
        }
        if !any || max - min >= self.head_size {
            return None;
        }
        let lo = max.saturating_sub(self.head_size - 1);
        let hi = min.min(self.n_ions - self.head_size);
        if lo > hi {
            return None;
        }
        Some(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_heads() {
        assert!(DeviceSpec::new(64, 1).is_err());
        assert!(DeviceSpec::new(64, 0).is_err());
        assert!(DeviceSpec::new(8, 9).is_err());
        assert!(DeviceSpec::new(8, 8).is_ok());
    }

    #[test]
    fn head_position_count() {
        let spec = DeviceSpec::tilt64(16);
        assert_eq!(spec.n_head_positions(), 49);
        assert_eq!(spec.head_positions().count(), 49);
        let full = DeviceSpec::new(16, 16).unwrap();
        assert_eq!(full.n_head_positions(), 1);
    }

    #[test]
    fn executability_is_strict_inequality() {
        let spec = DeviceSpec::tilt64(16);
        assert!(spec.fits_under_head(0, 15));
        assert!(!spec.fits_under_head(0, 16));
    }

    #[test]
    fn covers_window() {
        let spec = DeviceSpec::tilt64(16);
        assert!(spec.covers(10, 10));
        assert!(spec.covers(10, 25));
        assert!(!spec.covers(10, 26));
        assert!(!spec.covers(10, 9));
    }

    #[test]
    fn covering_positions_match_fig5() {
        // Head size L: a gate with d = L-1 has exactly one position,
        // d = L-3 has three (Fig. 5).
        let spec = DeviceSpec::tilt64(16);
        let one: Vec<_> = spec.covering_head_positions([20, 35]).unwrap().collect();
        assert_eq!(one, vec![20]);
        let three: Vec<_> = spec.covering_head_positions([20, 33]).unwrap().collect();
        assert_eq!(three, vec![18, 19, 20]);
    }

    #[test]
    fn covering_positions_none_when_too_far() {
        let spec = DeviceSpec::tilt64(16);
        assert!(spec.covering_head_positions([0, 16]).is_none());
        assert!(spec.covering_head_positions(std::iter::empty()).is_none());
    }

    #[test]
    fn covering_positions_clamped_at_tape_ends() {
        let spec = DeviceSpec::tilt64(16);
        // A single qubit at the right end: head cannot slide past N - L.
        let r: Vec<_> = spec.covering_head_positions([63]).unwrap().collect();
        assert_eq!(*r.first().unwrap(), 48);
        assert_eq!(*r.last().unwrap(), 48);
        let l: Vec<_> = spec.covering_head_positions([0]).unwrap().collect();
        assert_eq!(l, vec![0]);
    }
}
