//! [`Fingerprint`] implementations for every compilation policy knob.
//!
//! These feed the config half of the engine's compile-cache key: two
//! sessions whose specs and policies fingerprint identically produce
//! byte-identical compile output for the same circuit (the pipeline is
//! deterministic — even the stochastic baseline router is seeded), so a
//! cached result can stand in for a fresh compile. Every semantic field
//! is written, including knobs (like `LinqConfig::incremental`) that are
//! proven decision-identical — hashing more than necessary only costs a
//! spurious miss, never a wrong hit.

use crate::mapping::InitialMapping;
use crate::route::{LinqConfig, RouterKind, StochasticConfig};
use crate::schedule::SchedulerKind;
use crate::spec::DeviceSpec;
use tilt_hash::{Fingerprint, Hasher};

impl Fingerprint for DeviceSpec {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_usize(self.n_ions()).write_usize(self.head_size());
    }
}

impl Fingerprint for LinqConfig {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_opt_usize(self.max_swap_len)
            .write_f64(self.alpha)
            .write_usize(self.lookahead)
            .write_bool(self.incremental);
    }
}

impl Fingerprint for StochasticConfig {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_usize(self.trials).write_u64(self.seed);
    }
}

impl Fingerprint for RouterKind {
    fn fingerprint_into(&self, h: &mut Hasher) {
        match self {
            RouterKind::Linq(cfg) => {
                h.write_tag(1);
                cfg.fingerprint_into(h);
            }
            RouterKind::Stochastic(cfg) => {
                h.write_tag(2);
                cfg.fingerprint_into(h);
            }
        }
    }
}

impl Fingerprint for SchedulerKind {
    fn fingerprint_into(&self, h: &mut Hasher) {
        match self {
            SchedulerKind::GreedyMaxExecutable => {
                h.write_tag(1);
            }
            SchedulerKind::DistanceDiscounted { penalty_permille } => {
                h.write_tag(2).write_u64(*penalty_permille as u64);
            }
            SchedulerKind::NaiveNextGate => {
                h.write_tag(3);
            }
        }
    }
}

impl Fingerprint for InitialMapping {
    fn fingerprint_into(&self, h: &mut Hasher) {
        match self {
            InitialMapping::Identity => {
                h.write_tag(1);
            }
            InitialMapping::Reverse => {
                h.write_tag(2);
            }
            InitialMapping::InteractionChain => {
                h.write_tag(3);
            }
            InitialMapping::Random(seed) => {
                h.write_tag(4).write_u64(*seed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_knob_changes_the_fingerprint() {
        let base = RouterKind::Linq(LinqConfig::default()).fingerprint();
        let variants = [
            RouterKind::Linq(LinqConfig::with_max_swap_len(3)),
            RouterKind::Linq(LinqConfig {
                alpha: 0.5,
                ..LinqConfig::default()
            }),
            RouterKind::Linq(LinqConfig {
                lookahead: 64,
                ..LinqConfig::default()
            }),
            RouterKind::Linq(LinqConfig {
                incremental: false,
                ..LinqConfig::default()
            }),
            RouterKind::Stochastic(StochasticConfig::default()),
            RouterKind::Stochastic(StochasticConfig {
                seed: 1,
                ..StochasticConfig::default()
            }),
        ];
        for v in &variants {
            assert_ne!(base, v.fingerprint(), "{v:?}");
        }
    }

    #[test]
    fn scheduler_and_mapping_variants_are_distinct() {
        let kinds = [
            SchedulerKind::GreedyMaxExecutable.fingerprint(),
            SchedulerKind::NaiveNextGate.fingerprint(),
            SchedulerKind::DistanceDiscounted {
                penalty_permille: 10,
            }
            .fingerprint(),
            SchedulerKind::DistanceDiscounted {
                penalty_permille: 20,
            }
            .fingerprint(),
        ];
        for i in 0..kinds.len() {
            for j in i + 1..kinds.len() {
                assert_ne!(kinds[i], kinds[j]);
            }
        }
        assert_ne!(
            InitialMapping::Identity.fingerprint(),
            InitialMapping::Reverse.fingerprint()
        );
        assert_ne!(
            InitialMapping::Random(1).fingerprint(),
            InitialMapping::Random(2).fingerprint()
        );
    }

    #[test]
    fn device_spec_is_content_addressed() {
        let a = DeviceSpec::new(64, 16).unwrap().fingerprint();
        assert_eq!(a, DeviceSpec::tilt64(16).fingerprint());
        assert_ne!(a, DeviceSpec::new(64, 32).unwrap().fingerprint());
        assert_ne!(a, DeviceSpec::new(32, 16).unwrap().fingerprint());
    }
}
