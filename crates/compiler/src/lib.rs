//! LinQ — the optimizing compiler for the TILT trapped-ion linear-tape
//! architecture (Wu et al., HPCA 2021, §IV).
//!
//! LinQ lowers a high-level quantum circuit to a stream of TILT machine
//! operations (gates pinned to tape-head positions, interleaved with tape
//! moves) in three passes, mirroring Fig. 4 of the paper:
//!
//! 1. [`decompose`] — rewrite program gates into the trapped-ion native set
//!    `{Rx, Ry, Rz, XX}` (§IV-B).
//! 2. [`route`] — map logical qubits onto tape positions and insert SWAP
//!    gates so that every two-qubit gate fits under the head (§IV-C,
//!    Algorithm 1). Two routers are provided: the paper's heuristic
//!    ([`route::linq`], with opposing-swap creation and the `MaxSwapLen`
//!    restriction) and the Qiskit-StochasticSwap-style baseline
//!    ([`route::stochastic`]).
//! 3. [`schedule`] — choose the tape-head position sequence, greedily
//!    maximizing executable gates per move (§IV-D, Algorithm 2).
//!
//! The [`pipeline::Compiler`] builder runs all three and reports the
//! statistics the paper evaluates (swap counts, opposing-swap ratio, move
//! counts, tape travel distance, pass timings).
//!
//! # Example
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//! use tilt_compiler::{Compiler, DeviceSpec};
//!
//! let mut c = Circuit::new(8);
//! c.h(Qubit(0));
//! c.cnot(Qubit(0), Qubit(7));
//! let spec = DeviceSpec::new(8, 4)?;
//! let out = Compiler::new(spec).compile(&c)?;
//! assert!(out.program.move_count() >= 1);
//! # Ok::<(), tilt_compiler::CompileError>(())
//! ```

pub mod decompose;
pub mod error;
pub mod fingerprint;
pub mod mapping;
pub mod pipeline;
pub mod program;
pub mod route;
pub mod schedule;
pub mod spec;
pub mod verify;
pub mod viz;

pub use error::CompileError;
pub use mapping::{InitialMapping, Mapping};
pub use pipeline::streaming::{CollectSink, ProgramSink, StreamSummary, StreamingCompiler};
pub use pipeline::{CompileOutput, CompileReport, CompileScratch, Compiler};
pub use program::{TiltOp, TiltProgram};
pub use route::{RouteOutcome, RouterKind};
pub use schedule::{ScheduleConfig, SchedulerKind};
pub use spec::DeviceSpec;
pub use verify::{Diagnostic, Severity, StreamVerifier};
