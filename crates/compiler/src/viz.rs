//! ASCII visualization of scheduled TILT programs.
//!
//! Renders the tape-head trajectory: one row per head-position segment
//! showing where the execution zone sat and how many gates ran there.
//! Reading the picture top to bottom is reading Algorithm 2's output —
//! Fig. 1's execution zone sliding along the chain.

use crate::program::{TiltOp, TiltProgram};
use std::fmt::Write as _;

/// Renders the head-position timeline of `program`.
///
/// Each row is one contiguous stretch of execution at a fixed head
/// position: the segment index, the head position, the number of gates
/// executed, and a bar marking the covered window on the tape.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::{viz, Compiler, DeviceSpec};
///
/// let mut c = Circuit::new(8);
/// c.xx(Qubit(0), Qubit(1), 0.5);
/// c.xx(Qubit(6), Qubit(7), 0.5);
/// let out = Compiler::new(DeviceSpec::new(8, 4)?).compile(&c)?;
/// let timeline = viz::render_timeline(&out.program);
/// assert!(timeline.contains("####"));
/// # Ok::<(), tilt_compiler::CompileError>(())
/// ```
pub fn render_timeline(program: &TiltProgram) -> String {
    let n = program.spec().n_ions();
    let head = program.spec().head_size();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tape-head timeline ({n} ions, head {head}, {} moves, {} gates)",
        program.move_count(),
        program.gate_count()
    );

    // Collapse the op stream into (head position, gate count) segments.
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut current: Option<(usize, usize)> = None;
    for op in program.ops() {
        match *op {
            TiltOp::Move { to } => {
                if let Some(seg) = current.take() {
                    segments.push(seg);
                }
                current = Some((to, 0));
            }
            TiltOp::Gate { head_pos, .. } => match current.as_mut() {
                Some((pos, count)) if *pos == head_pos => *count += 1,
                _ => {
                    if let Some(seg) = current.take() {
                        segments.push(seg);
                    }
                    current = Some((head_pos, 1));
                }
            },
        }
    }
    if let Some(seg) = current {
        segments.push(seg);
    }

    for (i, (pos, count)) in segments.iter().enumerate() {
        let mut bar = String::with_capacity(n);
        for p in 0..n {
            bar.push(if p >= *pos && p < pos + head {
                '#'
            } else {
                '.'
            });
        }
        let _ = writeln!(out, "{i:>4}  pos {pos:>3}  {count:>5} gates  |{bar}|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, DeviceSpec};
    use tilt_circuit::{Circuit, Qubit};

    fn program(gates: &[(usize, usize)], n: usize, head: usize) -> TiltProgram {
        let mut c = Circuit::new(n);
        for &(a, b) in gates {
            c.xx(Qubit(a), Qubit(b), 0.1);
        }
        Compiler::new(DeviceSpec::new(n, head).unwrap())
            .compile(&c)
            .unwrap()
            .program
    }

    #[test]
    fn one_segment_per_head_position() {
        let p = program(&[(0, 1), (6, 7)], 8, 4);
        let text = render_timeline(&p);
        // Header plus two segment rows.
        assert_eq!(text.trim().lines().count(), 3, "{text}");
        assert!(
            text.contains("pos   0") || text.contains("pos   4"),
            "{text}"
        );
    }

    #[test]
    fn bars_have_tape_width_and_head_coverage() {
        let p = program(&[(0, 1)], 8, 4);
        let text = render_timeline(&p);
        let bar_line = text.lines().nth(1).unwrap();
        let bar: String = bar_line
            .chars()
            .skip_while(|&c| c != '|')
            .skip(1)
            .take_while(|&c| c != '|')
            .collect();
        assert_eq!(bar.len(), 8);
        assert_eq!(bar.chars().filter(|&c| c == '#').count(), 4);
    }

    #[test]
    fn empty_program_renders_header_only() {
        let p = program(&[], 8, 4);
        let text = render_timeline(&p);
        assert_eq!(text.trim().lines().count(), 1);
        assert!(text.contains("0 moves"));
    }

    #[test]
    fn gate_counts_sum_to_program() {
        let p = program(&[(0, 1), (1, 2), (6, 7), (5, 6)], 8, 4);
        let text = render_timeline(&p);
        let total: usize = text
            .lines()
            .skip(1)
            .filter_map(|l| {
                l.split_whitespace()
                    .nth(3)
                    .and_then(|w| w.parse::<usize>().ok())
            })
            .sum();
        assert_eq!(total, p.gate_count());
    }
}
