//! Trapped-ion native gate decomposition (§IV-B of the paper).
//!
//! The TILT native set is `{Rx, Ry, Rz, XX(θ)}` plus measurement (Maslov,
//! NJP 19 023035). The pass rewrites every program gate into that set;
//! the key rule is the paper's CNOT recipe:
//!
//! ```text
//! CNOT q1, q2  →  Ry(π/2) q1; XX(π/4) q1,q2; Rx(-π/2) q1; Rx(-π/2) q2; Ry(-π/2) q1
//! ```
//!
//! Every two-qubit program gate lowers to one `XX` per underlying CNOT:
//! `CZ` and `ZZ` cost one, `CPhase` costs two (it is emitted at the CNOT
//! level by the benchmark generators), and `SWAP` costs three — which is
//! why inserted swaps are expensive and the paper's router works to
//! minimize them.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use tilt_circuit::{Circuit, Gate, Qubit};

/// Rewrites `circuit` into the trapped-ion native gate set.
///
/// The output satisfies [`Circuit::is_native`] and preserves the register
/// width. Gate order follows program order; each program gate expands
/// in place.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
/// use tilt_compiler::decompose::decompose;
///
/// let mut c = Circuit::new(2);
/// c.cnot(Qubit(0), Qubit(1));
/// let native = decompose(&c);
/// assert!(native.is_native());
/// assert_eq!(native.two_qubit_count(), 1); // one XX per CNOT
/// ```
pub fn decompose(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_capacity(circuit.n_qubits(), circuit.len() * 3);
    decompose_into(circuit, &mut out);
    out
}

/// [`decompose`] into a caller-owned scratch circuit, reusing its gate
/// allocation. `out` is reset to `circuit`'s register width first; batch
/// compilation calls this once per circuit with a per-worker scratch so
/// the decomposition buffer is allocated once per worker, not once per
/// circuit.
pub fn decompose_into(circuit: &Circuit, out: &mut Circuit) {
    out.reset(circuit.n_qubits());
    for g in circuit {
        decompose_gate(out, g);
    }
}

/// Appends the native expansion of a single gate to `out`.
pub fn decompose_gate(out: &mut Circuit, g: &Gate) {
    use Gate::*;
    match *g {
        // Already native (resets are optical pumping, a hardware
        // primitive like measurement).
        Rx(..) | Ry(..) | Rz(..) | Xx(..) | Measure(_) | Reset(_) | Barrier => {
            out.push(*g);
        }

        // Single-qubit program gates → one or two rotations.
        X(q) => {
            out.rx(q, PI);
        }
        Y(q) => {
            out.ry(q, PI);
        }
        Z(q) => {
            out.rz(q, PI);
        }
        S(q) => {
            out.rz(q, FRAC_PI_2);
        }
        Sdg(q) => {
            out.rz(q, -FRAC_PI_2);
        }
        T(q) => {
            out.rz(q, FRAC_PI_4);
        }
        Tdg(q) => {
            out.rz(q, -FRAC_PI_4);
        }
        SqrtX(q) => {
            out.rx(q, FRAC_PI_2);
        }
        SqrtY(q) => {
            out.ry(q, FRAC_PI_2);
        }
        // H = Ry(π/2)·Rz(π) up to global phase (circuit order: Rz first).
        // Verified against the state-vector simulator; the opposite order
        // yields H·Z, not H.
        H(q) => {
            out.rz(q, PI);
            out.ry(q, FRAC_PI_2);
        }

        // The paper's CNOT recipe (§IV-B), exact up to global phase. The
        // paper labels the interaction "XX(π/4)" in the exp(iθ·X⊗X)
        // convention; in the QASM convention used across this workspace,
        // XX(θ) = exp(-iθ/2·X⊗X), the same maximally-entangling
        // Mølmer–Sørensen gate is XX(π/2). Verified by
        // `tests/semantics_verification.rs`.
        Cnot(c, t) => {
            out.ry(c, FRAC_PI_2);
            out.xx(c, t, FRAC_PI_2);
            out.rx(c, -FRAC_PI_2);
            out.rx(t, -FRAC_PI_2);
            out.ry(c, -FRAC_PI_2);
        }

        // CZ = H(t) · CNOT · H(t).
        Cz(a, b) => {
            decompose_gate(out, &H(b));
            decompose_gate(out, &Cnot(a, b));
            decompose_gate(out, &H(b));
        }

        // CPhase at the CNOT level (two XX), matching the generators.
        Cphase(a, b, lambda) => {
            out.rz(a, lambda / 2.0);
            decompose_gate(out, &Cnot(a, b));
            out.rz(b, -lambda / 2.0);
            decompose_gate(out, &Cnot(a, b));
            out.rz(b, lambda / 2.0);
        }

        // ZZ(θ) = (Ry(-π/2)⊗Ry(-π/2)) · XX(θ) · (Ry(π/2)⊗Ry(π/2)):
        // a single Mølmer–Sørensen interaction.
        Zz(a, b, theta) => {
            out.ry(a, FRAC_PI_2);
            out.ry(b, FRAC_PI_2);
            out.xx(a, b, theta);
            out.ry(a, -FRAC_PI_2);
            out.ry(b, -FRAC_PI_2);
        }

        // SWAP = 3 CNOTs = 3 XX; the communication cost unit of §IV-C.
        Swap(a, b) => {
            decompose_gate(out, &Cnot(a, b));
            decompose_gate(out, &Cnot(b, a));
            decompose_gate(out, &Cnot(a, b));
        }

        // Standard 6-CNOT Toffoli, recursively lowered.
        Toffoli(c0, c1, t) => {
            for g in toffoli_gates(c0, c1, t) {
                decompose_gate(out, &g);
            }
        }
    }
}

/// The CNOT-level Toffoli expansion used by [`decompose_gate`].
fn toffoli_gates(c0: Qubit, c1: Qubit, t: Qubit) -> Vec<Gate> {
    use Gate::*;
    vec![
        H(t),
        Cnot(c1, t),
        Tdg(t),
        Cnot(c0, t),
        T(t),
        Cnot(c1, t),
        Tdg(t),
        Cnot(c0, t),
        T(c1),
        T(t),
        Cnot(c0, c1),
        H(t),
        T(c0),
        Tdg(c1),
        Cnot(c0, c1),
    ]
}

/// Number of `XX` interactions a gate costs after decomposition.
///
/// Useful for estimating routed-circuit cost without materializing the
/// native expansion.
pub fn xx_cost(g: &Gate) -> usize {
    use Gate::*;
    match g {
        Cnot(..) | Cz(..) | Zz(..) | Xx(..) => 1,
        Cphase(..) => 2,
        Swap(..) => 3,
        Toffoli(..) => 6,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposed_circuit_is_native() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0))
            .t(Qubit(1))
            .cnot(Qubit(0), Qubit(1))
            .cz(Qubit(1), Qubit(2))
            .cphase(Qubit(2), Qubit(3), 0.7)
            .zz(Qubit(0), Qubit(3), 0.3)
            .swap(Qubit(1), Qubit(3))
            .toffoli(Qubit(0), Qubit(1), Qubit(2))
            .measure(Qubit(0));
        let native = decompose(&c);
        assert!(native.is_native());
        assert!(tilt_circuit::validate(&native).is_ok());
    }

    #[test]
    fn cnot_follows_the_paper_recipe() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        let native = decompose(&c);
        let names: Vec<_> = native.iter().map(tilt_circuit::Gate::name).collect();
        assert_eq!(names, vec!["ry", "rxx", "rx", "rx", "ry"]);
        match native.gates()[1] {
            Gate::Xx(a, b, t) => {
                assert_eq!((a, b), (Qubit(0), Qubit(1)));
                // π/2 in the QASM exp(-iθ/2·XX) convention = the paper's
                // "XX(π/4)" in its exp(iθ·XX) convention.
                assert!((t - FRAC_PI_2).abs() < 1e-12);
            }
            ref other => panic!("expected XX, got {other:?}"),
        }
    }

    #[test]
    fn xx_costs_match_materialized_expansion() {
        let cases: Vec<Gate> = vec![
            Gate::Cnot(Qubit(0), Qubit(1)),
            Gate::Cz(Qubit(0), Qubit(1)),
            Gate::Cphase(Qubit(0), Qubit(1), 0.5),
            Gate::Zz(Qubit(0), Qubit(1), 0.5),
            Gate::Swap(Qubit(0), Qubit(1)),
            Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2)),
            Gate::H(Qubit(0)),
        ];
        for g in cases {
            let mut c = Circuit::new(3);
            decompose_gate(&mut c, &g);
            assert_eq!(c.two_qubit_count(), xx_cost(&g), "{g:?}");
        }
    }

    #[test]
    fn swap_costs_three_xx() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        assert_eq!(decompose(&c).two_qubit_count(), 3);
    }

    #[test]
    fn xx_operand_pairs_preserved() {
        // All XX gates produced for a 2Q program gate act on the same pair.
        let mut c = Circuit::new(8);
        c.cphase(Qubit(2), Qubit(7), 1.0);
        let native = decompose(&c);
        for g in native.iter().filter(|g| g.is_two_qubit()) {
            let mut qs = g.qubits();
            qs.sort();
            assert_eq!(qs, vec![Qubit(2), Qubit(7)]);
        }
    }

    #[test]
    fn idempotent_on_native_circuits() {
        let mut c = Circuit::new(2);
        c.rx(Qubit(0), 0.2)
            .xx(Qubit(0), Qubit(1), 0.3)
            .rz(Qubit(1), 0.4);
        assert_eq!(decompose(&c), c);
    }

    #[test]
    fn qft64_native_has_table2_xx_count() {
        let qft = tilt_benchmarks::qft::qft64();
        let native = decompose(&qft);
        assert_eq!(native.two_qubit_count(), 4032);
    }
}
