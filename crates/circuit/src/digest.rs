//! Canonical structural hashing for circuits.
//!
//! [`Circuit::digest`] is the content-address of a circuit: a stable
//! 128-bit digest over the register width and the gate stream (variant,
//! operands, angle bits, in program order). Two circuits with the same
//! digest compile identically under the same configuration — the
//! pipeline is deterministic over exactly this content.
//!
//! The digest is **structural**: it sees what the gates *are*, never how
//! the circuit came to hold them. A circuit parsed fresh, one assembled
//! with the builder API, and one written into a reused scratch buffer
//! via [`Circuit::reset`] all hash identically when their gate streams
//! match — allocation history, reserved capacity, and previous contents
//! of a recycled buffer leave no trace (pinned by the tests below).

use crate::circuit::Circuit;
use crate::gate::Gate;
use tilt_hash::{Digest, Fingerprint, Hasher};

/// Stable per-variant tags for the gate stream. These are part of the
/// digest's definition: renumbering them invalidates every persisted
/// cache entry (which digest verification then rejects cleanly), so new
/// gates append rather than reorder.
fn gate_tag(g: &Gate) -> u8 {
    use Gate::*;
    match g {
        H(_) => 1,
        X(_) => 2,
        Y(_) => 3,
        Z(_) => 4,
        S(_) => 5,
        Sdg(_) => 6,
        T(_) => 7,
        Tdg(_) => 8,
        SqrtX(_) => 9,
        SqrtY(_) => 10,
        Rx(..) => 11,
        Ry(..) => 12,
        Rz(..) => 13,
        Cnot(..) => 14,
        Cz(..) => 15,
        Cphase(..) => 16,
        Zz(..) => 17,
        Xx(..) => 18,
        Swap(..) => 19,
        Toffoli(..) => 20,
        Measure(_) => 21,
        Reset(_) => 22,
        Barrier => 23,
    }
}

impl Fingerprint for Gate {
    fn fingerprint_into(&self, h: &mut Hasher) {
        use Gate::*;
        h.write_tag(gate_tag(self));
        for q in self.operands().iter() {
            h.write_usize(q.index());
        }
        match self {
            Rx(_, a) | Ry(_, a) | Rz(_, a) => {
                h.write_f64(*a);
            }
            Cphase(_, _, a) | Zz(_, _, a) | Xx(_, _, a) => {
                h.write_f64(*a);
            }
            _ => {}
        }
    }
}

impl Fingerprint for Circuit {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_usize(self.n_qubits());
        h.write_usize(self.len());
        for g in self {
            g.fingerprint_into(h);
        }
    }
}

impl Circuit {
    /// The canonical content digest of this circuit — the circuit half
    /// of a compile-cache key.
    ///
    /// # Example
    ///
    /// ```
    /// use tilt_circuit::{Circuit, Qubit};
    ///
    /// let mut a = Circuit::new(4);
    /// a.h(Qubit(0)).cnot(Qubit(0), Qubit(3));
    /// let mut b = Circuit::with_capacity(4, 1024); // different allocation
    /// b.h(Qubit(0)).cnot(Qubit(0), Qubit(3));
    /// assert_eq!(a.digest(), b.digest());
    /// b.rz(Qubit(1), 0.25);
    /// assert_ne!(a.digest(), b.digest());
    /// ```
    pub fn digest(&self) -> Digest {
        self.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    fn sample() -> Circuit {
        let mut c = Circuit::new(6);
        c.h(Qubit(0))
            .cnot(Qubit(0), Qubit(5))
            .rz(Qubit(2), 1.25)
            .xx(Qubit(1), Qubit(4), 0.5)
            .measure(Qubit(5));
        c
    }

    #[test]
    fn digest_ignores_allocation_history() {
        let fresh = sample();
        // The same content assembled in a reused scratch buffer that
        // previously held an unrelated, larger circuit.
        let mut scratch = Circuit::new(32);
        for i in 0..31 {
            scratch.toffoli(Qubit(i), Qubit(i + 1), Qubit((i + 2) % 32));
        }
        scratch.reset(6);
        scratch
            .h(Qubit(0))
            .cnot(Qubit(0), Qubit(5))
            .rz(Qubit(2), 1.25)
            .xx(Qubit(1), Qubit(4), 0.5)
            .measure(Qubit(5));
        assert_eq!(fresh.digest(), scratch.digest());
    }

    #[test]
    fn digest_sees_register_width() {
        let narrow = sample();
        let mut wide = Circuit::new(7);
        wide.extend_from(&narrow);
        assert_ne!(narrow.digest(), wide.digest());
    }

    #[test]
    fn digest_sees_every_structural_change() {
        let base = sample();
        // Operand change.
        let mut operand = sample();
        operand.reset(6);
        operand
            .h(Qubit(1))
            .cnot(Qubit(0), Qubit(5))
            .rz(Qubit(2), 1.25)
            .xx(Qubit(1), Qubit(4), 0.5)
            .measure(Qubit(5));
        assert_ne!(base.digest(), operand.digest());
        // Angle change.
        let mut angle = sample();
        angle.reset(6);
        angle
            .h(Qubit(0))
            .cnot(Qubit(0), Qubit(5))
            .rz(Qubit(2), 1.25 + 1e-12)
            .xx(Qubit(1), Qubit(4), 0.5)
            .measure(Qubit(5));
        assert_ne!(base.digest(), angle.digest());
        // Gate-kind change on the same operands.
        let mut kind = sample();
        kind.reset(6);
        kind.h(Qubit(0))
            .cz(Qubit(0), Qubit(5))
            .rz(Qubit(2), 1.25)
            .xx(Qubit(1), Qubit(4), 0.5)
            .measure(Qubit(5));
        assert_ne!(base.digest(), kind.digest());
        // Order change.
        let mut order = sample();
        order.reset(6);
        order
            .cnot(Qubit(0), Qubit(5))
            .h(Qubit(0))
            .rz(Qubit(2), 1.25)
            .xx(Qubit(1), Qubit(4), 0.5)
            .measure(Qubit(5));
        assert_ne!(base.digest(), order.digest());
        // Truncation.
        let mut shorter = sample();
        shorter.reset(6);
        shorter
            .h(Qubit(0))
            .cnot(Qubit(0), Qubit(5))
            .rz(Qubit(2), 1.25)
            .xx(Qubit(1), Qubit(4), 0.5);
        assert_ne!(base.digest(), shorter.digest());
    }

    #[test]
    fn every_gate_variant_hashes_distinctly() {
        // Distinct variants on identical operands must not collide via
        // their tags (Measure vs Reset vs single-qubit unitaries, the
        // parametrized two-qubit family, ...).
        let q = Qubit(0);
        let p = Qubit(1);
        let r = Qubit(2);
        let gates = vec![
            Gate::H(q),
            Gate::X(q),
            Gate::Y(q),
            Gate::Z(q),
            Gate::S(q),
            Gate::Sdg(q),
            Gate::T(q),
            Gate::Tdg(q),
            Gate::SqrtX(q),
            Gate::SqrtY(q),
            Gate::Rx(q, 0.5),
            Gate::Ry(q, 0.5),
            Gate::Rz(q, 0.5),
            Gate::Cnot(q, p),
            Gate::Cz(q, p),
            Gate::Cphase(q, p, 0.5),
            Gate::Zz(q, p, 0.5),
            Gate::Xx(q, p, 0.5),
            Gate::Swap(q, p),
            Gate::Toffoli(q, p, r),
            Gate::Measure(q),
            Gate::Reset(q),
            Gate::Barrier,
        ];
        let digests: Vec<Digest> = gates.iter().map(Fingerprint::fingerprint).collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{:?} vs {:?}", gates[i], gates[j]);
            }
        }
    }
}
