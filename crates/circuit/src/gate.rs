//! The gate set.
//!
//! Two groups of gates appear in the toolflow:
//!
//! * **Program gates** emitted by the benchmark generators: `H`, `X`, `T`,
//!   `CNOT`, `CZ`, controlled-phase, Toffoli, `Swap`, measurement.
//! * **Trapped-ion native gates** produced by the decomposition pass
//!   (§IV-B of the paper): single-qubit rotations `Rx/Ry/Rz` and the
//!   two-qubit Mølmer–Sørensen interaction `XX(θ) = exp(i·θ/2·X⊗X)`.
//!
//! The LinQ passes only care about *which qubits* a gate touches and whether
//! it is a two-qubit interaction; angles ride along untouched.

use crate::qubit::Qubit;
use std::fmt;

/// A quantum gate applied to one, two, or three qubits.
///
/// Angles are in radians. The enum intentionally keeps both high-level
/// program gates and trapped-ion native gates: benchmark circuits are built
/// from the former and lowered to the latter by
/// `tilt_compiler::decompose`.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Gate, Qubit};
///
/// let g = Gate::Cnot(Qubit(0), Qubit(5));
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![Qubit(0), Qubit(5)]);
/// assert_eq!(g.span(), Some(5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    // --- single-qubit program gates -------------------------------------
    /// Hadamard.
    H(Qubit),
    /// Pauli-X.
    X(Qubit),
    /// Pauli-Y.
    Y(Qubit),
    /// Pauli-Z.
    Z(Qubit),
    /// Phase gate S = diag(1, i).
    S(Qubit),
    /// Inverse phase gate.
    Sdg(Qubit),
    /// T = diag(1, e^{iπ/4}).
    T(Qubit),
    /// Inverse T.
    Tdg(Qubit),
    /// Square root of X (used by RCS).
    SqrtX(Qubit),
    /// Square root of Y (used by RCS).
    SqrtY(Qubit),

    // --- single-qubit native rotations ----------------------------------
    /// Rotation about the X axis by the given angle (radians).
    Rx(Qubit, f64),
    /// Rotation about the Y axis by the given angle (radians).
    Ry(Qubit, f64),
    /// Rotation about the Z axis by the given angle (radians).
    Rz(Qubit, f64),

    // --- two-qubit gates --------------------------------------------------
    /// Controlled-NOT with control first.
    Cnot(Qubit, Qubit),
    /// Controlled-Z (symmetric).
    Cz(Qubit, Qubit),
    /// Controlled phase rotation by the given angle; the workhorse of QFT.
    Cphase(Qubit, Qubit, f64),
    /// Ising coupling `ZZ(θ) = exp(-i·θ/2·Z⊗Z)`; the workhorse of QAOA.
    Zz(Qubit, Qubit, f64),
    /// The trapped-ion native Mølmer–Sørensen gate
    /// `XX(θ) = exp(i·θ/2·X⊗X)`.
    Xx(Qubit, Qubit, f64),
    /// SWAP of two qubits. On TILT this is a *communication* gate inserted
    /// by the compiler; it costs three `XX` interactions after lowering.
    Swap(Qubit, Qubit),

    // --- three-qubit program gates ---------------------------------------
    /// Toffoli (CCX) with the two controls first.
    Toffoli(Qubit, Qubit, Qubit),

    // --- non-unitary -------------------------------------------------------
    /// Computational-basis measurement.
    Measure(Qubit),
    /// Re-initialization of one ion to |0⟩ (optical pumping). Required
    /// between uses of a communication ion: once measured, the ion must
    /// be pumped back to the ground state before it can host the next
    /// EPR half.
    Reset(Qubit),
    /// Compiler barrier: no dependency may be reordered across it.
    Barrier,
}

impl Gate {
    /// The qubits this gate acts on, in declaration order.
    ///
    /// [`Gate::Barrier`] returns an empty vector: it constrains *all* qubits
    /// but owns none.
    pub fn qubits(&self) -> Vec<Qubit> {
        use Gate::*;
        match *self {
            H(q)
            | X(q)
            | Y(q)
            | Z(q)
            | S(q)
            | Sdg(q)
            | T(q)
            | Tdg(q)
            | SqrtX(q)
            | SqrtY(q)
            | Rx(q, _)
            | Ry(q, _)
            | Rz(q, _)
            | Measure(q)
            | Reset(q) => vec![q],
            Cnot(a, b) | Cz(a, b) | Swap(a, b) => vec![a, b],
            Cphase(a, b, _) | Zz(a, b, _) | Xx(a, b, _) => vec![a, b],
            Toffoli(a, b, c) => vec![a, b, c],
            Barrier => vec![],
        }
    }

    /// The gate's operands as a fixed-capacity, allocation-free slice
    /// — [`Gate::qubits`] allocates a `Vec` per call, which hot paths
    /// (the tape scheduler's cascade walks) cannot afford.
    pub fn operands(&self) -> Operands {
        use Gate::*;
        let (arr, len) = match *self {
            H(q)
            | X(q)
            | Y(q)
            | Z(q)
            | S(q)
            | Sdg(q)
            | T(q)
            | Tdg(q)
            | SqrtX(q)
            | SqrtY(q)
            | Rx(q, _)
            | Ry(q, _)
            | Rz(q, _)
            | Measure(q)
            | Reset(q) => ([q, Qubit(0), Qubit(0)], 1),
            Cnot(a, b) | Cz(a, b) | Swap(a, b) | Cphase(a, b, _) | Zz(a, b, _) | Xx(a, b, _) => {
                ([a, b, Qubit(0)], 2)
            }
            Toffoli(a, b, c) => ([a, b, c], 3),
            Barrier => ([Qubit(0); 3], 0),
        };
        Operands { arr, len }
    }

    /// Number of qubits the gate acts on (0 for [`Gate::Barrier`]).
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            Barrier => 0,
            H(_) | X(_) | Y(_) | Z(_) | S(_) | Sdg(_) | T(_) | Tdg(_) | SqrtX(_) | SqrtY(_)
            | Rx(..) | Ry(..) | Rz(..) | Measure(_) | Reset(_) => 1,
            Cnot(..) | Cz(..) | Cphase(..) | Zz(..) | Xx(..) | Swap(..) => 2,
            Toffoli(..) => 3,
        }
    }

    /// True for gates coupling exactly two qubits.
    ///
    /// This is the paper's `g` (Table I): the class of gates that the swap
    /// inserter must make executable within the tape head.
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// True for the single-qubit unitaries (excludes measurement/barrier).
    pub fn is_single_qubit_unitary(&self) -> bool {
        !matches!(self, Gate::Measure(_) | Gate::Reset(_) | Gate::Barrier) && self.arity() == 1
    }

    /// True if this gate is in the trapped-ion native set `{Rx, Ry, Rz, XX}`
    /// (measurement and barriers are also accepted by the hardware).
    pub fn is_native(&self) -> bool {
        matches!(
            self,
            Gate::Rx(..)
                | Gate::Ry(..)
                | Gate::Rz(..)
                | Gate::Xx(..)
                | Gate::Measure(_)
                | Gate::Reset(_)
                | Gate::Barrier
        )
    }

    /// For two-qubit gates, the distance `d_g = |q1 - q2|` between the
    /// operands in ion spacings; `None` otherwise.
    pub fn span(&self) -> Option<usize> {
        let qs = self.qubits();
        if qs.len() == 2 {
            Some(qs[0].distance(qs[1]))
        } else {
            None
        }
    }

    /// Returns a copy of the gate with every operand remapped through `f`.
    ///
    /// Used by the mapping pass to rewrite logical operands into physical
    /// tape positions, and by swap insertion to track the evolving layout.
    pub fn map_qubits(&self, mut f: impl FnMut(Qubit) -> Qubit) -> Gate {
        use Gate::*;
        match *self {
            H(q) => H(f(q)),
            X(q) => X(f(q)),
            Y(q) => Y(f(q)),
            Z(q) => Z(f(q)),
            S(q) => S(f(q)),
            Sdg(q) => Sdg(f(q)),
            T(q) => T(f(q)),
            Tdg(q) => Tdg(f(q)),
            SqrtX(q) => SqrtX(f(q)),
            SqrtY(q) => SqrtY(f(q)),
            Rx(q, a) => Rx(f(q), a),
            Ry(q, a) => Ry(f(q), a),
            Rz(q, a) => Rz(f(q), a),
            Cnot(a, b) => Cnot(f(a), f(b)),
            Cz(a, b) => Cz(f(a), f(b)),
            Cphase(a, b, t) => Cphase(f(a), f(b), t),
            Zz(a, b, t) => Zz(f(a), f(b), t),
            Xx(a, b, t) => Xx(f(a), f(b), t),
            Swap(a, b) => Swap(f(a), f(b)),
            Toffoli(a, b, c) => Toffoli(f(a), f(b), f(c)),
            Measure(q) => Measure(f(q)),
            Reset(q) => Reset(f(q)),
            Barrier => Barrier,
        }
    }

    /// True when the gate normalizes a Pauli operator to a Pauli
    /// operator — i.e. the stabilizer (tableau) backend can simulate it
    /// exactly.
    ///
    /// Angle-carrying gates are classified against the Clifford grid
    /// with the shared [`crate::clifford::ANGLE_TOL`] tolerance:
    /// `Rx`/`Ry`/`Rz`/`Zz`/`Xx` at multiples of π/2, `Cphase` at
    /// multiples of π (λ = π/2 is the CS gate, which is *not*
    /// Clifford). `T`/`Tdg`/`Toffoli` are never Clifford.
    ///
    /// [`Gate::Measure`], [`Gate::Reset`], and [`Gate::Barrier`] return
    /// `true`: they are not unitaries, but a tableau simulates them
    /// exactly, so "every gate is Clifford" is precisely the condition
    /// under which the whole circuit is stabilizer-simulable.
    pub fn is_clifford(&self) -> bool {
        use crate::clifford::{half_pi_steps, pi_steps};
        use Gate::*;
        match *self {
            H(_) | X(_) | Y(_) | Z(_) | S(_) | Sdg(_) | SqrtX(_) | SqrtY(_) | Cnot(..) | Cz(..)
            | Swap(..) => true,
            T(_) | Tdg(_) | Toffoli(..) => false,
            Rx(_, t) | Ry(_, t) | Rz(_, t) | Zz(_, _, t) | Xx(_, _, t) => {
                half_pi_steps(t).is_some()
            }
            Cphase(_, _, t) => pi_steps(t).is_some(),
            Measure(_) | Reset(_) | Barrier => true,
        }
    }

    /// Short lowercase mnemonic, matching the OpenQASM spelling where one
    /// exists.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            H(_) => "h",
            X(_) => "x",
            Y(_) => "y",
            Z(_) => "z",
            S(_) => "s",
            Sdg(_) => "sdg",
            T(_) => "t",
            Tdg(_) => "tdg",
            SqrtX(_) => "sx",
            SqrtY(_) => "sy",
            Rx(..) => "rx",
            Ry(..) => "ry",
            Rz(..) => "rz",
            Cnot(..) => "cx",
            Cz(..) => "cz",
            Cphase(..) => "cp",
            Zz(..) => "rzz",
            Xx(..) => "rxx",
            Swap(..) => "swap",
            Toffoli(..) => "ccx",
            Measure(_) => "measure",
            Reset(_) => "reset",
            Barrier => "barrier",
        }
    }
}

/// Fixed-capacity operand list returned by [`Gate::operands`]; derefs
/// to a slice of the gate's qubits in declaration order.
#[derive(Clone, Copy, Debug)]
pub struct Operands {
    arr: [Qubit; 3],
    len: usize,
}

impl std::ops::Deref for Operands {
    type Target = [Qubit];

    fn deref(&self) -> &[Qubit] {
        &self.arr[..self.len]
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Gate::*;
        match self {
            Rx(q, a) | Ry(q, a) | Rz(q, a) => write!(f, "{}({:.4}) {}", self.name(), a, q),
            Cphase(a, b, t) | Zz(a, b, t) | Xx(a, b, t) => {
                write!(f, "{}({:.4}) {}, {}", self.name(), t, a, b)
            }
            Barrier => write!(f, "barrier"),
            _ => {
                write!(f, "{}", self.name())?;
                let qs = self.qubits();
                for (i, q) in qs.iter().enumerate() {
                    write!(f, "{}{}", if i == 0 { " " } else { ", " }, q)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_qubits_len() {
        let gates = [
            Gate::H(Qubit(0)),
            Gate::Rx(Qubit(1), 0.5),
            Gate::Cnot(Qubit(0), Qubit(1)),
            Gate::Xx(Qubit(2), Qubit(3), 0.25),
            Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2)),
            Gate::Measure(Qubit(4)),
            Gate::Barrier,
        ];
        for g in gates {
            assert_eq!(g.arity(), g.qubits().len(), "{g:?}");
        }
    }

    #[test]
    fn two_qubit_classification() {
        assert!(Gate::Cnot(Qubit(0), Qubit(1)).is_two_qubit());
        assert!(Gate::Swap(Qubit(0), Qubit(1)).is_two_qubit());
        assert!(!Gate::H(Qubit(0)).is_two_qubit());
        assert!(!Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2)).is_two_qubit());
    }

    #[test]
    fn native_set() {
        assert!(Gate::Xx(Qubit(0), Qubit(1), 0.1).is_native());
        assert!(Gate::Rz(Qubit(0), 1.0).is_native());
        assert!(!Gate::Cnot(Qubit(0), Qubit(1)).is_native());
        assert!(!Gate::H(Qubit(0)).is_native());
    }

    #[test]
    fn span_of_two_qubit_gates() {
        assert_eq!(Gate::Cnot(Qubit(3), Qubit(11)).span(), Some(8));
        assert_eq!(Gate::H(Qubit(3)).span(), None);
        assert_eq!(Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2)).span(), None);
    }

    #[test]
    fn map_qubits_shifts_operands() {
        let g = Gate::Cphase(Qubit(1), Qubit(2), 0.5);
        let shifted = g.map_qubits(|q| Qubit(q.index() + 10));
        assert_eq!(shifted.qubits(), vec![Qubit(11), Qubit(12)]);
        // Angle preserved.
        match shifted {
            Gate::Cphase(_, _, t) => assert_eq!(t, 0.5),
            other => panic!("unexpected gate {other:?}"),
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::Cnot(Qubit(0), Qubit(1)).to_string(), "cx q0, q1");
        assert_eq!(Gate::Rx(Qubit(2), 0.5).to_string(), "rx(0.5000) q2");
        assert_eq!(Gate::Barrier.to_string(), "barrier");
    }

    #[test]
    #[allow(clippy::approx_constant)] // decimal π/2 spellings are the point
    fn clifford_classification_is_angle_aware() {
        use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
        let q = Qubit(0);
        let p = Qubit(1);
        // Fixed Clifford gates.
        for g in [
            Gate::H(q),
            Gate::X(q),
            Gate::Y(q),
            Gate::Z(q),
            Gate::S(q),
            Gate::Sdg(q),
            Gate::SqrtX(q),
            Gate::SqrtY(q),
            Gate::Cnot(q, p),
            Gate::Cz(q, p),
            Gate::Swap(q, p),
            Gate::Measure(q),
            Gate::Reset(q),
            Gate::Barrier,
        ] {
            assert!(g.is_clifford(), "{g:?}");
        }
        // Never Clifford.
        for g in [Gate::T(q), Gate::Tdg(q), Gate::Toffoli(q, p, Qubit(2))] {
            assert!(!g.is_clifford(), "{g:?}");
        }
        // Rotations: π/2 grid, with tolerance for decimal spellings.
        assert!(Gate::Rz(q, FRAC_PI_2).is_clifford());
        assert!(Gate::Rz(q, -3.0 * PI / 2.0).is_clifford());
        assert!(Gate::Rx(q, 1.5707963267948966).is_clifford());
        assert!(Gate::Ry(q, 0.0).is_clifford());
        assert!(!Gate::Rz(q, FRAC_PI_4).is_clifford());
        assert!(!Gate::Rx(q, 0.3).is_clifford());
        assert!(Gate::Zz(q, p, FRAC_PI_2).is_clifford());
        assert!(Gate::Xx(q, p, -FRAC_PI_2).is_clifford());
        assert!(!Gate::Xx(q, p, FRAC_PI_4).is_clifford());
        // Cphase: Clifford only at multiples of π (CS is not).
        assert!(Gate::Cphase(q, p, PI).is_clifford());
        assert!(Gate::Cphase(q, p, 0.0).is_clifford());
        assert!(!Gate::Cphase(q, p, FRAC_PI_2).is_clifford());
    }

    #[test]
    fn single_qubit_unitary_excludes_measure() {
        assert!(Gate::H(Qubit(0)).is_single_qubit_unitary());
        assert!(!Gate::Measure(Qubit(0)).is_single_qubit_unitary());
        assert!(!Gate::Barrier.is_single_qubit_unitary());
    }
}
