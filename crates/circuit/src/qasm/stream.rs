//! Pull-based OpenQASM 2.0 gate streaming.
//!
//! [`QasmStream`] yields gates one statement at a time from any
//! [`BufRead`] source instead of materializing the whole program as a
//! [`Circuit`](crate::Circuit) — the front end of the bounded-memory
//! streaming compile pipeline. It reuses [`parse_qasm`]'s statement
//! parser verbatim, so every accepted program parses to exactly the gate
//! sequence the monolithic parser produces, with one restriction: the
//! `qreg` declaration must precede the first gate (the monolithic parser
//! tolerates a trailing `qreg` because it buffers everything; a stream
//! cannot size its register after the fact).
//!
//! ```
//! use tilt_circuit::qasm::QasmStream;
//!
//! let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
//! let mut stream = QasmStream::new(src.as_bytes());
//! let gates: Vec<_> = stream.by_ref().collect::<Result<_, _>>()?;
//! assert_eq!(gates.len(), 2);
//! assert_eq!(stream.n_qubits(), Some(2));
//! # Ok::<(), tilt_circuit::qasm::QasmStreamError>(())
//! ```

use super::parse::{parse_statement, ParseQasmError};
use crate::gate::Gate;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::io::BufRead;

/// Why pulling the next gate off a QASM stream failed.
#[derive(Debug)]
pub enum QasmStreamError {
    /// The statement failed to parse (same errors as [`parse_qasm`],
    /// same line numbers).
    ///
    /// [`parse_qasm`]: super::parse_qasm
    Parse(ParseQasmError),
    /// The underlying reader failed.
    Io(std::io::Error),
}

impl fmt::Display for QasmStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmStreamError::Parse(e) => e.fmt(f),
            QasmStreamError::Io(e) => write!(f, "QASM stream read failed: {e}"),
        }
    }
}

impl Error for QasmStreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QasmStreamError::Parse(e) => Some(e),
            QasmStreamError::Io(e) => Some(e),
        }
    }
}

impl From<ParseQasmError> for QasmStreamError {
    fn from(e: ParseQasmError) -> Self {
        QasmStreamError::Parse(e)
    }
}

impl From<std::io::Error> for QasmStreamError {
    fn from(e: std::io::Error) -> Self {
        QasmStreamError::Io(e)
    }
}

/// An iterator of gates lexed incrementally from an OpenQASM source.
///
/// Yields `Result<Gate, QasmStreamError>`; after the first error the
/// stream is exhausted. Memory use is one source line plus one
/// statement's gate expansion, independent of program length.
pub struct QasmStream<R> {
    reader: R,
    lineno: usize,
    n_qubits: Option<usize>,
    in_gate_def: bool,
    line: String,
    /// Gates from the current statement not yet yielded (a
    /// whole-register `measure` expands to one gate per qubit).
    pending: VecDeque<Gate>,
    /// Scratch for [`parse_statement`]'s output.
    scratch: Vec<Gate>,
    done: bool,
}

impl<R: BufRead> QasmStream<R> {
    /// Wraps a buffered reader positioned at the start of a QASM program.
    pub fn new(reader: R) -> Self {
        QasmStream {
            reader,
            lineno: 0,
            n_qubits: None,
            in_gate_def: false,
            line: String::new(),
            pending: VecDeque::new(),
            scratch: Vec::new(),
            done: false,
        }
    }

    /// The register width, once the `qreg` declaration has been read
    /// (always before the first yielded gate).
    pub fn n_qubits(&self) -> Option<usize> {
        self.n_qubits
    }

    /// Reads ahead until the register width is known, without consuming
    /// any gate.
    ///
    /// # Errors
    ///
    /// Fails if a gate precedes the `qreg` declaration, the program ends
    /// without one, or reading fails.
    pub fn require_n_qubits(&mut self) -> Result<usize, QasmStreamError> {
        while self.n_qubits.is_none() && self.pending.is_empty() && !self.done {
            self.advance()?;
        }
        self.n_qubits.ok_or_else(|| {
            QasmStreamError::Parse(ParseQasmError {
                line: self.lineno.max(1),
                message: "no qreg declaration found".into(),
            })
        })
    }

    /// Reads and parses the next source line into `pending`.
    fn advance(&mut self) -> Result<(), QasmStreamError> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            self.done = true;
            return Ok(());
        }
        self.lineno += 1;

        // Mirror `parse_qasm`'s per-line handling exactly: strip line
        // comments, skip custom gate-definition bodies, split on `;`.
        let line = match self.line.find("//") {
            Some(i) => &self.line[..i],
            None => &self.line[..],
        };
        if self.in_gate_def {
            if line.contains('}') {
                self.in_gate_def = false;
            }
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.starts_with("gate ") {
            if !trimmed.contains('}') {
                self.in_gate_def = true;
            }
            return Ok(());
        }

        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, self.lineno, &mut self.n_qubits, &mut self.scratch)?;
            if !self.scratch.is_empty() && self.n_qubits.is_none() {
                self.scratch.clear();
                return Err(QasmStreamError::Parse(ParseQasmError {
                    line: self.lineno,
                    message: "streaming requires the qreg declaration before the first gate".into(),
                }));
            }
            self.pending.extend(self.scratch.drain(..));
        }
        Ok(())
    }
}

impl<R: BufRead> Iterator for QasmStream<R> {
    type Item = Result<Gate, QasmStreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(g) = self.pending.pop_front() {
                return Some(Ok(g));
            }
            if self.done {
                return None;
            }
            if let Err(e) = self.advance() {
                self.done = true;
                return Some(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::{parse_qasm, to_qasm};
    use crate::{Circuit, Qubit};
    use std::f64::consts::PI;

    fn stream_all(src: &str) -> Result<(usize, Vec<Gate>), QasmStreamError> {
        let mut s = QasmStream::new(src.as_bytes());
        let n = s.require_n_qubits()?;
        let gates = s.collect::<Result<Vec<_>, _>>()?;
        Ok((n, gates))
    }

    #[test]
    fn matches_monolithic_parser_on_emitter_output() {
        let mut c = Circuit::new(5);
        c.h(Qubit(0))
            .t(Qubit(1))
            .cnot(Qubit(0), Qubit(1))
            .cphase(Qubit(1), Qubit(2), PI / 8.0)
            .zz(Qubit(0), Qubit(2), 0.3)
            .xx(Qubit(1), Qubit(4), 0.7)
            .swap(Qubit(0), Qubit(2))
            .toffoli(Qubit(0), Qubit(1), Qubit(2))
            .barrier()
            .measure(Qubit(2));
        let text = to_qasm(&c);
        let mono = parse_qasm(&text).unwrap();
        let (n, gates) = stream_all(&text).unwrap();
        assert_eq!(n, mono.n_qubits());
        assert_eq!(gates, mono.gates());
    }

    #[test]
    fn handles_comments_gate_defs_and_multi_statement_lines() {
        let src = "OPENQASM 2.0;\nqreg q[3]; creg c[3];\n// comment\n\
             gate rxx(theta) a, b { h a; h b; cx a, b; rz(theta) b; cx a, b; h a; h b; }\n\
             h q[0]; cx q[0], q[1]; // trailing\nrxx(pi/4) q[0], q[2];\nmeasure q -> c;\n";
        let mono = parse_qasm(src).unwrap();
        let (n, gates) = stream_all(src).unwrap();
        assert_eq!(n, 3);
        assert_eq!(gates, mono.gates());
        // Whole-register measure expanded to one gate per qubit.
        assert_eq!(
            gates
                .iter()
                .filter(|g| matches!(g, Gate::Measure(_)))
                .count(),
            3
        );
    }

    #[test]
    fn gate_before_qreg_is_rejected() {
        let err = stream_all("OPENQASM 2.0;\nh q[0];\nqreg q[2];\n").unwrap_err();
        match err {
            QasmStreamError::Parse(e) => {
                assert!(e.message.contains("qreg"), "{e}");
                assert_eq!(e.line, 2);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn missing_qreg_is_rejected_by_require() {
        let err = stream_all("OPENQASM 2.0;\n").unwrap_err();
        assert!(matches!(err, QasmStreamError::Parse(_)));
    }

    #[test]
    fn parse_errors_carry_line_numbers_and_end_the_stream() {
        let mut s = QasmStream::new("qreg q[2];\nh q[0];\nfrobnicate q[1];\nh q[1];\n".as_bytes());
        assert!(matches!(s.next(), Some(Ok(Gate::H(_)))));
        match s.next() {
            Some(Err(QasmStreamError::Parse(e))) => {
                assert_eq!(e.line, 3);
                assert!(e.message.contains("frobnicate"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(s.next().is_none());
    }

    #[test]
    fn out_of_range_operand_is_rejected() {
        let err = stream_all("qreg q[2];\nh q[5];\n").unwrap_err();
        match err {
            QasmStreamError::Parse(e) => assert!(e.message.contains("outside")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn empty_source_yields_nothing() {
        let mut s = QasmStream::new("".as_bytes());
        assert!(s.next().is_none());
        assert_eq!(s.n_qubits(), None);
    }
}
