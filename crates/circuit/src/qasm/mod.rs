//! OpenQASM 2.0 interchange: emission ([`to_qasm`]) and parsing
//! ([`parse_qasm`]).
//!
//! LinQ's front end accepts "high-level quantum programs" (§IV of the
//! paper); OpenQASM 2.0 is the lingua franca for that, so the IR can be
//! round-tripped through text:
//!
//! ```
//! use tilt_circuit::{qasm, Circuit, Qubit};
//!
//! let mut c = Circuit::new(2);
//! c.h(Qubit(0));
//! c.cnot(Qubit(0), Qubit(1));
//! let text = qasm::to_qasm(&c);
//! let back = qasm::parse_qasm(&text)?;
//! assert_eq!(back, c);
//! # Ok::<(), tilt_circuit::qasm::ParseQasmError>(())
//! ```

mod emit;
mod parse;
pub mod stream;

pub use emit::{to_qasm, write_qasm_stream};
pub use parse::{parse_qasm, ParseQasmError};
pub use stream::{QasmStream, QasmStreamError};
