//! OpenQASM 2.0 parsing.
//!
//! Supports the subset the emitter produces plus common variants: a single
//! quantum register, the `qelib1` gates used by the benchmarks
//! (`h x y z s sdg t tdg sx sy rx ry rz cx cz cp/cu1 rzz rxx swap ccx id`),
//! `measure`, `barrier`, custom `gate` definition blocks (skipped — the
//! built-in semantics are used), and arithmetic angle expressions over
//! `pi` with `+ - * /` and parentheses.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::qubit::Qubit;
use std::error::Error;
use std::fmt;

/// Why a QASM program failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseQasmError> {
    Err(ParseQasmError {
        line,
        message: message.into(),
    })
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown gates, malformed statements,
/// multiple quantum registers, out-of-range qubit indices, or invalid
/// angle expressions.
///
/// # Example
///
/// ```
/// use tilt_circuit::qasm::parse_qasm;
///
/// let c = parse_qasm(
///     "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0], q[2];\n",
/// )?;
/// assert_eq!(c.n_qubits(), 3);
/// assert_eq!(c.two_qubit_count(), 1);
/// # Ok::<(), tilt_circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse_qasm(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut n_qubits: Option<usize> = None;
    let mut gates: Vec<Gate> = Vec::new();
    let mut in_gate_def = false;

    for (lineno, raw_line) in source.lines().enumerate() {
        let lineno = lineno + 1;
        // Strip line comments.
        let line = match raw_line.find("//") {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };

        // Skip custom gate-definition bodies (we know the semantics of the
        // gates the emitter defines).
        if in_gate_def {
            if line.contains('}') {
                in_gate_def = false;
            }
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with("gate ") {
            if !trimmed.contains('}') {
                in_gate_def = true;
            }
            continue;
        }

        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, lineno, &mut n_qubits, &mut gates)?;
        }
    }

    let n = match n_qubits {
        Some(n) => n,
        None if gates.is_empty() => 0,
        None => return err(1, "no qreg declaration found"),
    };
    Ok(Circuit::from_gates(n, gates))
}

pub(super) fn parse_statement(
    stmt: &str,
    line: usize,
    n_qubits: &mut Option<usize>,
    gates: &mut Vec<Gate>,
) -> Result<(), ParseQasmError> {
    if stmt.starts_with("OPENQASM") || stmt.starts_with("include") || stmt.starts_with("creg") {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        let (_, size) = parse_register_ref(rest, line)?;
        let size = size.ok_or_else(|| ParseQasmError {
            line,
            message: "qreg needs an explicit size".into(),
        })?;
        if n_qubits.replace(size).is_some() {
            return err(line, "multiple quantum registers are not supported");
        }
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("measure") {
        // `measure q[i] -> c[i]` or `measure q -> c`.
        let target = rest.split("->").next().unwrap_or("");
        let (_, index) = parse_register_ref(target, line)?;
        match index {
            Some(i) => gates.push(Gate::Measure(Qubit(i))),
            None => {
                let n = n_qubits.ok_or_else(|| ParseQasmError {
                    line,
                    message: "measure before qreg".into(),
                })?;
                gates.extend((0..n).map(|i| Gate::Measure(Qubit(i))));
            }
        }
        return Ok(());
    }
    if stmt.starts_with("barrier") {
        gates.push(Gate::Barrier);
        return Ok(());
    }

    // General gate application: name[(params)] operand[, operand...]
    let (head, operand_text) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(i) if !stmt[..i].contains('(') || stmt[..i].contains(')') => (&stmt[..i], &stmt[i..]),
        _ => match stmt.find(')') {
            // Parameterized with possible space inside parens.
            Some(i) => (&stmt[..=i], &stmt[i + 1..]),
            None => return err(line, format!("malformed statement `{stmt}`")),
        },
    };

    let (name, params) = match head.find('(') {
        Some(i) => {
            let close = head.rfind(')').ok_or_else(|| ParseQasmError {
                line,
                message: format!("unclosed parameter list in `{head}`"),
            })?;
            (&head[..i], parse_params(&head[i + 1..close], line)?)
        }
        None => (head, Params::default()),
    };
    let name = name.trim();

    // Fixed-capacity operand list: the service parses millions of these
    // statements, and a heap `Vec` per gate dominated the hot path.
    let mut operands = [Qubit(0); 3];
    let mut n_operands = 0usize;
    for part in operand_text.split(',') {
        if part.trim().is_empty() {
            continue;
        }
        let (_, index) = parse_register_ref(part, line)?;
        let index = index.ok_or_else(|| ParseQasmError {
            line,
            message: format!("whole-register operand `{part}` not supported here"),
        })?;
        if n_operands == operands.len() {
            return err(line, format!("too many operands for `{name}`"));
        }
        operands[n_operands] = Qubit(index);
        n_operands += 1;
    }

    let angle = |k: usize| -> Result<f64, ParseQasmError> {
        params.get(k).ok_or_else(|| ParseQasmError {
            line,
            message: format!("`{name}` expects an angle parameter"),
        })
    };
    let op = |k: usize| -> Result<Qubit, ParseQasmError> {
        if k < n_operands {
            Ok(operands[k])
        } else {
            Err(ParseQasmError {
                line,
                message: format!("`{name}` expects at least {} operand(s)", k + 1),
            })
        }
    };

    let gate = match name {
        "h" => Gate::H(op(0)?),
        "x" => Gate::X(op(0)?),
        "y" => Gate::Y(op(0)?),
        "z" => Gate::Z(op(0)?),
        "s" => Gate::S(op(0)?),
        "sdg" => Gate::Sdg(op(0)?),
        "t" => Gate::T(op(0)?),
        "tdg" => Gate::Tdg(op(0)?),
        "sx" => Gate::SqrtX(op(0)?),
        "sy" => Gate::SqrtY(op(0)?),
        "rx" => Gate::Rx(op(0)?, angle(0)?),
        "ry" => Gate::Ry(op(0)?, angle(0)?),
        "rz" | "u1" => Gate::Rz(op(0)?, angle(0)?),
        "cx" | "CX" => Gate::Cnot(op(0)?, op(1)?),
        "cz" => Gate::Cz(op(0)?, op(1)?),
        "cp" | "cu1" => Gate::Cphase(op(0)?, op(1)?, angle(0)?),
        "rzz" => Gate::Zz(op(0)?, op(1)?, angle(0)?),
        "rxx" => Gate::Xx(op(0)?, op(1)?, angle(0)?),
        "swap" => Gate::Swap(op(0)?, op(1)?),
        "ccx" => Gate::Toffoli(op(0)?, op(1)?, op(2)?),
        "reset" => Gate::Reset(op(0)?),
        "id" => return Ok(()),
        other => return err(line, format!("unknown gate `{other}`")),
    };
    if let Some(n) = *n_qubits {
        for q in gate.operands().iter() {
            if q.index() >= n {
                return err(
                    line,
                    format!("qubit {} outside qreg of size {n}", q.index()),
                );
            }
        }
    }
    gates.push(gate);
    Ok(())
}

/// Parses `name` or `name[index]`, returning the (borrowed) register
/// name and the optional index. Allocation-free: this runs once per
/// operand of every statement.
fn parse_register_ref(text: &str, line: usize) -> Result<(&str, Option<usize>), ParseQasmError> {
    let text = text.trim();
    match text.find('[') {
        Some(i) => {
            let close = text.rfind(']').ok_or_else(|| ParseQasmError {
                line,
                message: format!("unclosed index in `{text}`"),
            })?;
            if close <= i {
                return Err(ParseQasmError {
                    line,
                    message: format!("malformed register reference `{text}`"),
                });
            }
            let index: usize = text[i + 1..close]
                .trim()
                .parse()
                .map_err(|_| ParseQasmError {
                    line,
                    message: format!("invalid index in `{text}`"),
                })?;
            Ok((text[..i].trim_end(), Some(index)))
        }
        None => Ok((text, None)),
    }
}

/// Fixed-capacity parameter list (no `qelib1` gate takes more than
/// three angles; ours take at most one).
#[derive(Default)]
struct Params {
    values: [f64; 3],
    len: usize,
}

impl Params {
    fn get(&self, k: usize) -> Option<f64> {
        (k < self.len).then(|| self.values[k])
    }
}

fn parse_params(text: &str, line: usize) -> Result<Params, ParseQasmError> {
    let mut params = Params::default();
    for part in text.split(',') {
        if params.len == params.values.len() {
            return err(line, format!("too many parameters in `{text}`"));
        }
        let part = part.trim();
        // Fast path: the emitter (and every mainstream toolchain)
        // writes plain decimal angles; the expression grammar only
        // runs for symbolic forms like `pi/2`.
        let raw = match part.parse::<f64>() {
            Ok(v) if v.is_finite() => v,
            _ => parse_angle_expr(part, line)?,
        };
        // Canonicalize so equivalent spellings (`rz(-3*pi/2)` vs
        // `rz(pi/2)`) build bit-identical gates — and therefore the
        // same circuit digest, cache key, and simulator selection.
        params.values[params.len] = crate::clifford::normalize_angle(raw);
        params.len += 1;
    }
    Ok(params)
}

/// Tiny recursive-descent parser for angle expressions:
/// `expr := term (('+'|'-') term)*`, `term := factor (('*'|'/') factor)*`,
/// `factor := ['-'] (number | 'pi' | '(' expr ')')`.
fn parse_angle_expr(text: &str, line: usize) -> Result<f64, ParseQasmError> {
    struct P<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        line: usize,
    }
    impl P<'_> {
        fn skip_ws(&mut self) {
            while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
                self.chars.next();
            }
        }
        fn expr(&mut self) -> Result<f64, ParseQasmError> {
            let mut v = self.term()?;
            loop {
                self.skip_ws();
                match self.chars.peek() {
                    Some('+') => {
                        self.chars.next();
                        v += self.term()?;
                    }
                    Some('-') => {
                        self.chars.next();
                        v -= self.term()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn term(&mut self) -> Result<f64, ParseQasmError> {
            let mut v = self.factor()?;
            loop {
                self.skip_ws();
                match self.chars.peek() {
                    Some('*') => {
                        self.chars.next();
                        v *= self.factor()?;
                    }
                    Some('/') => {
                        self.chars.next();
                        v /= self.factor()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn factor(&mut self) -> Result<f64, ParseQasmError> {
            self.skip_ws();
            match self.chars.peek() {
                Some('-') => {
                    self.chars.next();
                    Ok(-self.factor()?)
                }
                Some('(') => {
                    self.chars.next();
                    let v = self.expr()?;
                    self.skip_ws();
                    if self.chars.next() != Some(')') {
                        return err(self.line, "expected `)` in angle expression");
                    }
                    Ok(v)
                }
                Some('p') | Some('P') => {
                    let p = self.chars.next();
                    let i = self.chars.next();
                    if !matches!((p, i), (Some('p') | Some('P'), Some('i') | Some('I'))) {
                        return err(self.line, "expected `pi`");
                    }
                    Ok(std::f64::consts::PI)
                }
                Some(c) if c.is_ascii_digit() || *c == '.' => {
                    let mut num = String::new();
                    while let Some(&c) = self.chars.peek() {
                        let exp_sign = (c == '+' || c == '-') && num.ends_with(['e', 'E']);
                        if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || exp_sign {
                            num.push(c);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    num.parse().map_err(|_| ParseQasmError {
                        line: self.line,
                        message: format!("invalid number `{num}`"),
                    })
                }
                other => err(self.line, format!("unexpected `{other:?}` in angle")),
            }
        }
    }
    let mut p = P {
        chars: text.chars().peekable(),
        line,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.chars.next().is_some() {
        return err(line, format!("trailing input in angle `{text}`"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::to_qasm;
    use std::f64::consts::PI;

    #[test]
    fn parses_basic_program() {
        let c = parse_qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n\
             h q[0];\ncx q[0], q[3];\nmeasure q[3] -> c[3];\n",
        )
        .unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[1], Gate::Cnot(Qubit(0), Qubit(3)));
    }

    #[test]
    fn parses_angle_expressions() {
        let c = parse_qasm("qreg q[1];\nrz(pi/2) q[0];\nrx(-pi/4) q[0];\nry(2*pi) q[0];\nrz(0.25) q[0];\nrx((pi+pi)/4) q[0];\n").unwrap();
        let angles: Vec<f64> = c
            .iter()
            .filter_map(|g| match *g {
                Gate::Rx(_, a) | Gate::Ry(_, a) | Gate::Rz(_, a) => Some(a),
                _ => None,
            })
            .collect();
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] + PI / 4.0).abs() < 1e-12);
        // `2*pi` canonicalizes to 0: angles are normalized into (-π, π].
        assert_eq!(angles[2], 0.0);
        assert!((angles[3] - 0.25).abs() < 1e-12);
        assert!((angles[4] - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalizes_equivalent_angle_spellings_to_one_digest() {
        // The Clifford-classification satellite case: a wrapped negative
        // angle and its canonical spelling must build bit-identical
        // circuits, so digests (cache keys) and simulator selection
        // cannot diverge on equivalent programs.
        let a = parse_qasm("qreg q[1];\nrz(-3*pi/2) q[0];\n").unwrap();
        let b = parse_qasm("qreg q[1];\nrz(pi/2) q[0];\n").unwrap();
        assert_eq!(a.gates(), b.gates());
        assert_eq!(a.digest(), b.digest());
        assert!(a.gates()[0].is_clifford());
        // Decimal spellings of π multiples snap onto the same grid point.
        let c = parse_qasm("qreg q[1];\nrz(1.5707963267948966) q[0];\n").unwrap();
        assert_eq!(c.digest(), b.digest());
    }

    #[test]
    fn skips_gate_definitions_and_comments() {
        let c = parse_qasm(
            "OPENQASM 2.0;\nqreg q[2];\n// comment line\n\
             gate rxx(theta) a, b { h a; h b; cx a, b; rz(theta) b; cx a, b; h a; h b; }\n\
             rxx(pi/4) q[0], q[1]; // trailing comment\n",
        )
        .unwrap();
        assert_eq!(c.len(), 1);
        assert!(matches!(c.gates()[0], Gate::Xx(..)));
    }

    #[test]
    fn whole_register_measure_expands() {
        let c = parse_qasm("qreg q[3];\ncreg c[3];\nmeasure q -> c;\n").unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|g| matches!(g, Gate::Measure(_))));
    }

    #[test]
    fn rejects_unknown_gate() {
        let e = parse_qasm("qreg q[1];\nfrobnicate q[0];\n").unwrap_err();
        assert!(e.message.contains("frobnicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_out_of_range_qubit() {
        let e = parse_qasm("qreg q[2];\nh q[5];\n").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn rejects_multiple_qregs() {
        let e = parse_qasm("qreg q[2];\nqreg r[2];\n").unwrap_err();
        assert!(e.message.contains("multiple"));
    }

    #[test]
    fn round_trips_the_emitters_output() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .t(Qubit(1))
            .cnot(Qubit(0), Qubit(1))
            .cphase(Qubit(1), Qubit(2), PI / 8.0)
            .zz(Qubit(0), Qubit(2), 0.3)
            .xx(Qubit(1), Qubit(2), 0.7)
            .swap(Qubit(0), Qubit(2))
            .toffoli(Qubit(0), Qubit(1), Qubit(2))
            .barrier()
            .measure(Qubit(2));
        let parsed = parse_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn empty_source_gives_empty_circuit() {
        let c = parse_qasm("").unwrap();
        assert_eq!(c.n_qubits(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn error_display_mentions_line() {
        let e = parse_qasm("qreg q[1];\nrx() q[0];\n").unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }
}
