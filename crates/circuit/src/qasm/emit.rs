//! OpenQASM 2.0 emission (see [`crate::qasm`] for the module docs).
//!
//! The emitter exists for interchange and debugging: any circuit in this IR
//! (program gates or native gates) can be dumped to a QASM 2.0 string and
//! inspected with external tooling. Gates without a standard-library QASM
//! spelling (`rxx`, `rzz`, `sx`, `sy`) are emitted with explicit `gate`
//! definitions in the preamble so the output is self-contained.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Renders `circuit` as a self-contained OpenQASM 2.0 program.
///
/// # Example
///
/// ```
/// use tilt_circuit::{qasm, Circuit, Qubit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("OPENQASM 2.0"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");

    // Preamble definitions for gates absent from qelib1.
    let uses = |pred: fn(&Gate) -> bool| circuit.iter().any(pred);
    if uses(|g| matches!(g, Gate::Xx(..))) {
        out.push_str(
            "gate rxx(theta) a, b { h a; h b; cx a, b; rz(theta) b; cx a, b; h a; h b; }\n",
        );
    }
    if uses(|g| matches!(g, Gate::Zz(..))) {
        out.push_str("gate rzz(theta) a, b { cx a, b; rz(theta) b; cx a, b; }\n");
    }
    if uses(|g| matches!(g, Gate::SqrtX(_))) {
        out.push_str("gate sx a { sdg a; h a; sdg a; }\n");
    }
    if uses(|g| matches!(g, Gate::SqrtY(_))) {
        out.push_str("gate sy a { s a; s a; h a; }\n");
    }

    let n = circuit.n_qubits();
    let _ = writeln!(out, "qreg q[{n}];");
    if circuit.iter().any(|g| matches!(g, Gate::Measure(_))) {
        let _ = writeln!(out, "creg c[{n}];");
    }

    for g in circuit {
        emit_gate(&mut out, g);
    }
    out
}

/// Streams `gates` as OpenQASM 2.0 to `w` without ever materializing a
/// [`Circuit`] — the emitter half of the bounded-memory pipeline, for
/// writing million-gate inputs that [`crate::qasm::QasmStream`] will
/// read back. Unlike [`to_qasm`], the gate stream cannot be pre-scanned
/// for which preamble definitions it needs, so every non-qelib1
/// definition and the `creg` are always emitted (both parsers skip
/// unused preamble lines).
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_qasm_stream<W: std::io::Write>(
    n_qubits: usize,
    gates: impl IntoIterator<Item = Gate>,
    w: &mut W,
) -> std::io::Result<()> {
    w.write_all(b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")?;
    w.write_all(
        b"gate rxx(theta) a, b { h a; h b; cx a, b; rz(theta) b; cx a, b; h a; h b; }\n\
          gate rzz(theta) a, b { cx a, b; rz(theta) b; cx a, b; }\n\
          gate sx a { sdg a; h a; sdg a; }\n\
          gate sy a { s a; s a; h a; }\n",
    )?;
    writeln!(w, "qreg q[{n_qubits}];")?;
    writeln!(w, "creg c[{n_qubits}];")?;
    let mut line = String::new();
    for g in gates {
        line.clear();
        emit_gate(&mut line, &g);
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn emit_gate(out: &mut String, g: &Gate) {
    use Gate::*;
    let q = |q: crate::Qubit| format!("q[{}]", q.index());
    let line = match *g {
        H(a) => format!("h {};", q(a)),
        X(a) => format!("x {};", q(a)),
        Y(a) => format!("y {};", q(a)),
        Z(a) => format!("z {};", q(a)),
        S(a) => format!("s {};", q(a)),
        Sdg(a) => format!("sdg {};", q(a)),
        T(a) => format!("t {};", q(a)),
        Tdg(a) => format!("tdg {};", q(a)),
        SqrtX(a) => format!("sx {};", q(a)),
        SqrtY(a) => format!("sy {};", q(a)),
        Rx(a, t) => format!("rx({t}) {};", q(a)),
        Ry(a, t) => format!("ry({t}) {};", q(a)),
        Rz(a, t) => format!("rz({t}) {};", q(a)),
        Cnot(a, b) => format!("cx {}, {};", q(a), q(b)),
        Cz(a, b) => format!("cz {}, {};", q(a), q(b)),
        Cphase(a, b, t) => format!("cu1({t}) {}, {};", q(a), q(b)),
        Zz(a, b, t) => format!("rzz({t}) {}, {};", q(a), q(b)),
        Xx(a, b, t) => format!("rxx({t}) {}, {};", q(a), q(b)),
        Swap(a, b) => format!("swap {}, {};", q(a), q(b)),
        Toffoli(a, b, c) => format!("ccx {}, {}, {};", q(a), q(b), q(c)),
        Measure(a) => format!("measure {} -> c[{}];", q(a), a.index()),
        Reset(a) => format!("reset {};", q(a)),
        Barrier => "barrier q;".to_string(),
    };
    out.push_str(&line);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn header_and_register() {
        let text = to_qasm(&Circuit::new(3));
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(!text.contains("creg")); // no measurements
    }

    #[test]
    fn measurement_adds_creg() {
        let mut c = Circuit::new(2);
        c.measure(Qubit(1));
        let text = to_qasm(&c);
        assert!(text.contains("creg c[2];"));
        assert!(text.contains("measure q[1] -> c[1];"));
    }

    #[test]
    fn nonstandard_gates_get_definitions() {
        let mut c = Circuit::new(2);
        c.xx(Qubit(0), Qubit(1), 0.785);
        let text = to_qasm(&c);
        assert!(text.contains("gate rxx(theta)"));
        assert!(text.contains("rxx(0.785) q[0], q[1];"));
    }

    #[test]
    fn definitions_only_when_used() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        let text = to_qasm(&c);
        assert!(!text.contains("gate rxx"));
        assert!(!text.contains("gate rzz"));
    }

    #[test]
    fn stream_writer_round_trips_through_both_parsers() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .push(Gate::SqrtX(Qubit(1)))
            .cz(Qubit(0), Qubit(2))
            .xx(Qubit(1), Qubit(2), 0.25)
            .measure(Qubit(2));
        let mut bytes = Vec::new();
        write_qasm_stream(3, c.iter().copied(), &mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let reparsed = crate::qasm::parse_qasm(&text).unwrap();
        assert_eq!(reparsed.gates(), c.gates());
        let streamed: Vec<Gate> = crate::qasm::QasmStream::new(text.as_bytes())
            .map(Result::unwrap)
            .collect();
        assert_eq!(streamed, c.gates().to_vec());
    }

    #[test]
    fn every_gate_kind_emits() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .x(Qubit(0))
            .y(Qubit(0))
            .z(Qubit(0))
            .s(Qubit(0))
            .sdg(Qubit(0))
            .t(Qubit(0))
            .tdg(Qubit(0))
            .push(Gate::SqrtX(Qubit(0)))
            .push(Gate::SqrtY(Qubit(0)))
            .rx(Qubit(0), 1.0)
            .ry(Qubit(0), 1.0)
            .rz(Qubit(0), 1.0)
            .cnot(Qubit(0), Qubit(1))
            .cz(Qubit(0), Qubit(1))
            .cphase(Qubit(0), Qubit(1), 0.5)
            .zz(Qubit(0), Qubit(1), 0.5)
            .xx(Qubit(0), Qubit(1), 0.5)
            .swap(Qubit(0), Qubit(1))
            .toffoli(Qubit(0), Qubit(1), Qubit(2))
            .barrier()
            .measure(Qubit(2));
        let text = to_qasm(&c);
        // One `;`-terminated line per gate plus the four preamble lines
        // (OPENQASM, include, qreg, creg).
        assert_eq!(
            text.lines().filter(|l| l.ends_with(';')).count() - 4,
            c.len()
        );
    }
}
