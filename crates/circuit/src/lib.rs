//! Quantum circuit intermediate representation for the TILT/LinQ toolflow.
//!
//! This crate provides the circuit substrate that every other crate in the
//! workspace builds on:
//!
//! * [`Qubit`] — a typed index into a quantum register.
//! * [`Gate`] — the gate set used by the paper's benchmarks plus the
//!   trapped-ion native set `{Rx, Ry, Rz, XX}`.
//! * [`Circuit`] — an ordered gate list with a builder-style API.
//! * [`Dag`] — per-qubit dependency analysis (front layers, depth,
//!   topological layering) used by the swap inserter and the tape scheduler.
//! * [`qasm`] — OpenQASM 2.0 emission for debugging and interchange.
//! * [`digest`] — canonical structural hashing ([`Circuit::digest`]),
//!   the circuit half of the engine's compile-cache key.
//!
//! # Example
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cnot(Qubit(0), Qubit(1));
//! assert_eq!(bell.two_qubit_count(), 1);
//! assert_eq!(bell.depth(), 2);
//! ```

pub mod circuit;
pub mod clifford;
pub mod dag;
pub mod digest;
pub mod gate;
pub mod layers;
pub mod qasm;
pub mod qubit;
pub mod stats;
pub mod validate;

pub use circuit::Circuit;
pub use dag::{Dag, ReadyTracker};
pub use gate::{Gate, Operands};
pub use layers::Layers;
pub use qubit::Qubit;
pub use stats::CircuitStats;
pub use validate::{validate, validate_gate, ValidateCircuitError};
