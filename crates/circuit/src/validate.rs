//! Fallible circuit validation.

use crate::circuit::Circuit;
use std::error::Error;
use std::fmt;

/// Why a circuit failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateCircuitError {
    /// A gate references a qubit outside the register.
    QubitOutOfRange {
        /// Index of the offending gate in program order.
        gate_index: usize,
        /// The out-of-range qubit index.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// A multi-qubit gate uses the same qubit twice.
    DuplicateOperand {
        /// Index of the offending gate in program order.
        gate_index: usize,
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A rotation angle is NaN or infinite.
    NonFiniteAngle {
        /// Index of the offending gate in program order.
        gate_index: usize,
    },
}

impl fmt::Display for ValidateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCircuitError::QubitOutOfRange {
                gate_index,
                qubit,
                n_qubits,
            } => write!(
                f,
                "gate {gate_index} references qubit {qubit} outside register of width {n_qubits}"
            ),
            ValidateCircuitError::DuplicateOperand { gate_index, qubit } => {
                write!(f, "gate {gate_index} uses qubit {qubit} more than once")
            }
            ValidateCircuitError::NonFiniteAngle { gate_index } => {
                write!(f, "gate {gate_index} has a non-finite rotation angle")
            }
        }
    }
}

impl Error for ValidateCircuitError {}

/// Checks structural well-formedness of `circuit`.
///
/// # Errors
///
/// Returns the first violation found: an operand outside the register, a
/// repeated operand on a multi-qubit gate, or a non-finite angle.
///
/// # Example
///
/// ```
/// use tilt_circuit::{validate, Circuit, Gate, Qubit};
///
/// let mut good = Circuit::new(2);
/// good.cnot(Qubit(0), Qubit(1));
/// assert!(validate(&good).is_ok());
///
/// let bad = Circuit::from_gates(2, [Gate::H(Qubit(0)), Gate::Rz(Qubit(1), f64::NAN)]);
/// assert!(validate(&bad).is_err());
/// ```
pub fn validate(circuit: &Circuit) -> Result<(), ValidateCircuitError> {
    for (gate_index, g) in circuit.iter().enumerate() {
        validate_gate(g, gate_index, circuit.n_qubits())?;
    }
    Ok(())
}

/// Checks one gate exactly as [`validate`] would at position `gate_index`
/// of a circuit `n_qubits` wide.
///
/// The streaming front end validates gates as they are pulled off the
/// source instead of materializing a circuit first; errors carry the same
/// global gate index the monolithic pass would report.
///
/// # Errors
///
/// As [`validate`], for this gate only.
pub fn validate_gate(
    g: &crate::gate::Gate,
    gate_index: usize,
    n_qubits: usize,
) -> Result<(), ValidateCircuitError> {
    use crate::gate::Gate;
    let qs = g.qubits();
    for &q in &qs {
        if q.index() >= n_qubits {
            return Err(ValidateCircuitError::QubitOutOfRange {
                gate_index,
                qubit: q.index(),
                n_qubits,
            });
        }
    }
    for (i, &a) in qs.iter().enumerate() {
        if qs[i + 1..].contains(&a) {
            return Err(ValidateCircuitError::DuplicateOperand {
                gate_index,
                qubit: a.index(),
            });
        }
    }
    let angle = match *g {
        Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) => Some(t),
        Gate::Cphase(_, _, t) | Gate::Zz(_, _, t) | Gate::Xx(_, _, t) => Some(t),
        _ => None,
    };
    if let Some(t) = angle {
        if !t.is_finite() {
            return Err(ValidateCircuitError::NonFiniteAngle { gate_index });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::qubit::Qubit;

    #[test]
    fn valid_circuit_passes() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(2)).measure(Qubit(2));
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn out_of_range_qubit_is_reported() {
        let c = Circuit::from_gates(2, [Gate::H(Qubit(0))]);
        let mut wide = c;
        wide.push(Gate::Cnot(Qubit(0), Qubit(5)));
        // from_gates debug-asserts, so build the bad gate via push on a
        // 2-wide register and validate.
        let bad = Circuit::from_gates(6, wide.gates().to_vec());
        assert!(validate(&bad).is_ok()); // 6-wide register is fine
        let err = validate(&{
            let mut c = Circuit::new(2);
            c.extend(wide.gates().to_vec());
            c
        })
        .unwrap_err();
        assert_eq!(
            err,
            ValidateCircuitError::QubitOutOfRange {
                gate_index: 1,
                qubit: 5,
                n_qubits: 2
            }
        );
    }

    #[test]
    fn duplicate_operand_is_reported() {
        let mut c = Circuit::new(2);
        c.extend([Gate::Cnot(Qubit(1), Qubit(1))]);
        let err = validate(&c).unwrap_err();
        assert_eq!(
            err,
            ValidateCircuitError::DuplicateOperand {
                gate_index: 0,
                qubit: 1
            }
        );
    }

    #[test]
    fn nan_angle_is_reported() {
        let mut c = Circuit::new(1);
        c.rz(Qubit(0), f64::NAN);
        assert_eq!(
            validate(&c).unwrap_err(),
            ValidateCircuitError::NonFiniteAngle { gate_index: 0 }
        );
    }

    #[test]
    fn infinite_xx_angle_is_reported() {
        let mut c = Circuit::new(2);
        c.xx(Qubit(0), Qubit(1), f64::INFINITY);
        assert!(matches!(
            validate(&c),
            Err(ValidateCircuitError::NonFiniteAngle { .. })
        ));
    }

    #[test]
    fn error_display_mentions_gate_index() {
        let err = ValidateCircuitError::NonFiniteAngle { gate_index: 7 };
        assert!(err.to_string().contains("gate 7"));
    }
}
