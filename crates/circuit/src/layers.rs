//! ASAP topological layering.
//!
//! A *layer* is a maximal set of gates that can run simultaneously: every
//! gate in layer `l` has all of its dependencies in layers `< l`. Layering
//! backs two things in the toolflow: the look-ahead decay `α^Δ(g)` of the
//! LinQ swap score (Eq. 1), where `Δ(g)` is a difference of layer indices,
//! and the execution-time model (Eq. 5), which sums the maximum gate time of
//! each depth layer.

use crate::circuit::Circuit;
use crate::dag::Dag;

/// As-soon-as-possible layering of a circuit.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Layers, Qubit};
///
/// let mut c = Circuit::new(3);
/// c.h(Qubit(0));                  // layer 0
/// c.h(Qubit(1));                  // layer 0
/// c.cnot(Qubit(0), Qubit(1));     // layer 1
/// c.cnot(Qubit(1), Qubit(2));     // layer 2
/// let layers = Layers::new(&c);
/// assert_eq!(layers.depth(), 3);
/// assert_eq!(layers.layer_of(2), 1);
/// assert_eq!(layers.gates_in(0), &[0, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct Layers {
    layer_of: Vec<usize>,
    layers: Vec<Vec<usize>>,
}

impl Layers {
    /// Computes the ASAP layering of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        Self::from_dag(circuit, &Dag::new(circuit))
    }

    /// Computes the layering given a pre-built [`Dag`] (avoids rebuilding it
    /// when the caller already has one).
    pub fn from_dag(circuit: &Circuit, dag: &Dag) -> Self {
        let n = circuit.len();
        let mut layer_of = vec![0usize; n];
        // Program order is a topological order of the DAG, so one forward
        // pass suffices.
        for i in 0..n {
            layer_of[i] = dag
                .preds(i)
                .iter()
                .map(|&p| layer_of[p] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = layer_of.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut layers = vec![Vec::new(); depth];
        for (i, &l) in layer_of.iter().enumerate() {
            layers[l].push(i);
        }
        Layers { layer_of, layers }
    }

    /// Layer index of gate `i`.
    pub fn layer_of(&self, i: usize) -> usize {
        self.layer_of[i]
    }

    /// Number of layers (equals circuit depth when no barriers are present).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Gate indices in layer `l`, ascending.
    pub fn gates_in(&self, l: usize) -> &[usize] {
        &self.layers[l]
    }

    /// Iterates over layers front to back.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<usize>> {
        self.layers.iter()
    }

    /// The layer-index distance `Δ` between two gates, used by the Eq. 1
    /// look-ahead decay. Saturates at zero when `later` is not actually
    /// later.
    pub fn delta(&self, current: usize, later: usize) -> usize {
        self.layer_of[later].saturating_sub(self.layer_of[current])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn empty_circuit_has_no_layers() {
        let layers = Layers::new(&Circuit::new(4));
        assert_eq!(layers.depth(), 0);
    }

    #[test]
    fn layering_matches_depth() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        let layers = Layers::new(&c);
        assert_eq!(layers.depth(), c.depth());
    }

    #[test]
    fn every_gate_is_in_exactly_one_layer() {
        let mut c = Circuit::new(4);
        for i in 0..3 {
            c.h(Qubit(i));
            c.cnot(Qubit(i), Qubit(i + 1));
        }
        let layers = Layers::new(&c);
        let mut seen = vec![false; c.len()];
        for l in 0..layers.depth() {
            for &g in layers.gates_in(l) {
                assert!(!seen[g]);
                seen[g] = true;
                assert_eq!(layers.layer_of(g), l);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn layers_respect_dependencies() {
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        c.cnot(Qubit(1), Qubit(2));
        let layers = Layers::new(&c);
        assert_eq!(layers.layer_of(0), 0);
        assert_eq!(layers.layer_of(1), 0);
        assert_eq!(layers.layer_of(2), 1);
    }

    #[test]
    fn delta_saturates() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        let layers = Layers::new(&c);
        assert_eq!(layers.delta(0, 1), 1);
        assert_eq!(layers.delta(1, 0), 0);
    }
}
