//! Aggregate circuit statistics.

use crate::circuit::Circuit;
use std::fmt;

/// Summary counters for a circuit, computed in one pass plus a depth scan.
///
/// These are the quantities Table II of the paper reports per benchmark
/// (qubits and two-qubit gates) plus the extra counters the compiler
/// and simulator report on.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// c.measure(Qubit(0));
/// let s = c.stats();
/// assert_eq!(s.n_qubits, 2);
/// assert_eq!(s.two_qubit_gates, 1);
/// assert_eq!(s.single_qubit_gates, 1);
/// assert_eq!(s.measurements, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Register width.
    pub n_qubits: usize,
    /// Total gate count, including measurements and barriers.
    pub total_gates: usize,
    /// Single-qubit unitary count.
    pub single_qubit_gates: usize,
    /// Two-qubit gate count (the Table II "2Q Gates" column).
    pub two_qubit_gates: usize,
    /// Three-qubit (Toffoli) gate count.
    pub three_qubit_gates: usize,
    /// Measurement count.
    pub measurements: usize,
    /// Qubit re-initialization (reset) count.
    pub resets: usize,
    /// Barrier count.
    pub barriers: usize,
    /// Unitary gates that are Clifford (per
    /// [`Gate::is_clifford`](crate::Gate::is_clifford), angle-aware;
    /// measurements, resets, and barriers are excluded so the count
    /// compares directly against the unitary totals above). The whole
    /// circuit is stabilizer-simulable iff this equals
    /// `single_qubit_gates + two_qubit_gates + three_qubit_gates`.
    pub clifford_gate_count: usize,
    /// Circuit depth (longest dependency chain).
    pub depth: usize,
    /// Maximum two-qubit operand distance `max d_g` in ion spacings.
    pub max_span: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut s = CircuitStats {
            n_qubits: circuit.n_qubits(),
            total_gates: circuit.len(),
            depth: circuit.depth(),
            ..CircuitStats::default()
        };
        for g in circuit {
            match g.arity() {
                0 => s.barriers += 1,
                1 => {
                    if g.is_single_qubit_unitary() {
                        s.single_qubit_gates += 1;
                    } else if matches!(g, crate::gate::Gate::Reset(_)) {
                        s.resets += 1;
                    } else {
                        s.measurements += 1;
                    }
                }
                2 => {
                    s.two_qubit_gates += 1;
                    s.max_span = s.max_span.max(g.span().unwrap_or(0));
                }
                _ => s.three_qubit_gates += 1,
            }
            if !matches!(
                g,
                crate::gate::Gate::Measure(_)
                    | crate::gate::Gate::Reset(_)
                    | crate::gate::Gate::Barrier
            ) && g.is_clifford()
            {
                s.clifford_gate_count += 1;
            }
        }
        s
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} gates ({} 1q, {} 2q, {} 3q, {} meas, {} clifford), depth {}, max span {}",
            self.n_qubits,
            self.total_gates,
            self.single_qubit_gates,
            self.two_qubit_gates,
            self.three_qubit_gates,
            self.measurements,
            self.clifford_gate_count,
            self.depth,
            self.max_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn counts_every_category() {
        let mut c = Circuit::new(5);
        c.h(Qubit(0));
        c.toffoli(Qubit(0), Qubit(1), Qubit(2));
        c.cnot(Qubit(0), Qubit(4));
        c.barrier();
        c.measure(Qubit(4));
        let s = c.stats();
        assert_eq!(s.total_gates, 5);
        assert_eq!(s.single_qubit_gates, 1);
        assert_eq!(s.two_qubit_gates, 1);
        assert_eq!(s.three_qubit_gates, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.measurements, 1);
        assert_eq!(s.max_span, 4);
    }

    #[test]
    fn clifford_count_is_angle_aware() {
        use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
        let mut c = Circuit::new(3);
        c.h(Qubit(0)); // clifford
        c.s(Qubit(1)); // clifford
        c.t(Qubit(2)); // not
        c.rz(Qubit(0), FRAC_PI_2); // clifford (on grid)
        c.rz(Qubit(0), FRAC_PI_4); // not (T-like)
        c.cnot(Qubit(0), Qubit(1)); // clifford
        c.cphase(Qubit(1), Qubit(2), std::f64::consts::PI); // clifford (CZ)
        c.cphase(Qubit(1), Qubit(2), FRAC_PI_2); // not (CS)
        c.toffoli(Qubit(0), Qubit(1), Qubit(2)); // not
        c.measure(Qubit(0)); // excluded from the count
        c.barrier(); // excluded
        let s = c.stats();
        assert_eq!(s.clifford_gate_count, 5);
        // The all-Clifford condition matches the per-gate sum identity.
        assert!(!c.is_clifford());
        let mut ok = Circuit::new(2);
        ok.h(Qubit(0)).cnot(Qubit(0), Qubit(1)).measure(Qubit(1));
        assert!(ok.is_clifford());
        let st = ok.stats();
        assert_eq!(
            st.clifford_gate_count,
            st.single_qubit_gates + st.two_qubit_gates + st.three_qubit_gates
        );
    }

    #[test]
    fn default_is_zeroed() {
        let s = CircuitStats::default();
        assert_eq!(s.total_gates, 0);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Circuit::new(1).stats();
        assert!(!s.to_string().is_empty());
    }
}
