//! Aggregate circuit statistics.

use crate::circuit::Circuit;
use std::fmt;

/// Summary counters for a circuit, computed in one pass plus a depth scan.
///
/// These are the quantities Table II of the paper reports per benchmark
/// (qubits and two-qubit gates) plus the extra counters the compiler
/// and simulator report on.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// c.measure(Qubit(0));
/// let s = c.stats();
/// assert_eq!(s.n_qubits, 2);
/// assert_eq!(s.two_qubit_gates, 1);
/// assert_eq!(s.single_qubit_gates, 1);
/// assert_eq!(s.measurements, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Register width.
    pub n_qubits: usize,
    /// Total gate count, including measurements and barriers.
    pub total_gates: usize,
    /// Single-qubit unitary count.
    pub single_qubit_gates: usize,
    /// Two-qubit gate count (the Table II "2Q Gates" column).
    pub two_qubit_gates: usize,
    /// Three-qubit (Toffoli) gate count.
    pub three_qubit_gates: usize,
    /// Measurement count.
    pub measurements: usize,
    /// Qubit re-initialization (reset) count.
    pub resets: usize,
    /// Barrier count.
    pub barriers: usize,
    /// Circuit depth (longest dependency chain).
    pub depth: usize,
    /// Maximum two-qubit operand distance `max d_g` in ion spacings.
    pub max_span: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut s = CircuitStats {
            n_qubits: circuit.n_qubits(),
            total_gates: circuit.len(),
            depth: circuit.depth(),
            ..CircuitStats::default()
        };
        for g in circuit.iter() {
            match g.arity() {
                0 => s.barriers += 1,
                1 => {
                    if g.is_single_qubit_unitary() {
                        s.single_qubit_gates += 1;
                    } else if matches!(g, crate::gate::Gate::Reset(_)) {
                        s.resets += 1;
                    } else {
                        s.measurements += 1;
                    }
                }
                2 => {
                    s.two_qubit_gates += 1;
                    s.max_span = s.max_span.max(g.span().unwrap_or(0));
                }
                _ => s.three_qubit_gates += 1,
            }
        }
        s
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} gates ({} 1q, {} 2q, {} 3q, {} meas), depth {}, max span {}",
            self.n_qubits,
            self.total_gates,
            self.single_qubit_gates,
            self.two_qubit_gates,
            self.three_qubit_gates,
            self.measurements,
            self.depth,
            self.max_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn counts_every_category() {
        let mut c = Circuit::new(5);
        c.h(Qubit(0));
        c.toffoli(Qubit(0), Qubit(1), Qubit(2));
        c.cnot(Qubit(0), Qubit(4));
        c.barrier();
        c.measure(Qubit(4));
        let s = c.stats();
        assert_eq!(s.total_gates, 5);
        assert_eq!(s.single_qubit_gates, 1);
        assert_eq!(s.two_qubit_gates, 1);
        assert_eq!(s.three_qubit_gates, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.measurements, 1);
        assert_eq!(s.max_span, 4);
    }

    #[test]
    fn default_is_zeroed() {
        let s = CircuitStats::default();
        assert_eq!(s.total_gates, 0);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Circuit::new(1).stats();
        assert!(!s.to_string().is_empty());
    }
}
