//! Ordered gate sequences with a builder-style API.

use crate::gate::Gate;
use crate::qubit::Qubit;
use crate::stats::CircuitStats;
use std::fmt;

/// A quantum circuit: a register of `n` qubits and an ordered list of gates.
///
/// The order is program order; parallelism is recovered by dependency
/// analysis ([`crate::Dag`]), not encoded here. Builder methods push gates
/// and return `&mut self` so construction chains naturally:
///
/// ```
/// use tilt_circuit::{Circuit, Qubit};
///
/// let mut c = Circuit::new(3);
/// c.h(Qubit(0)).cnot(Qubit(0), Qubit(1)).cnot(Qubit(1), Qubit(2));
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.two_qubit_count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit with gate-list capacity reserved up front.
    pub fn with_capacity(n_qubits: usize, capacity: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::with_capacity(capacity),
        }
    }

    /// Builds a circuit from an iterator of gates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any gate references a qubit `>= n_qubits`;
    /// use [`crate::validate()`](crate::validate()) for a fallible check.
    pub fn from_gates(n_qubits: usize, gates: impl IntoIterator<Item = Gate>) -> Self {
        let gates: Vec<Gate> = gates.into_iter().collect();
        debug_assert!(
            gates
                .iter()
                .flat_map(Gate::qubits)
                .all(|q| q.index() < n_qubits),
            "gate references qubit outside register"
        );
        Circuit { n_qubits, gates }
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates (including barriers and measurements).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit holds no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterate over gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Mutable access to the gate list. In-place edits bypass the
    /// builder methods' structure, so callers own any invariants they
    /// break — the static verifier's mutation tests use this to seed
    /// deliberate corruptions into compiled artifacts.
    pub fn gates_mut(&mut self) -> &mut [Gate] {
        &mut self.gates
    }

    /// Appends one gate.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.gates.push(gate);
        self
    }

    /// Clears the gate list and resizes the register to `n_qubits`,
    /// keeping the allocated gate capacity. This is the reuse hook for
    /// batch compilation: a scratch circuit reset between programs
    /// amortizes its allocation across the whole batch.
    pub fn reset(&mut self, n_qubits: usize) -> &mut Self {
        self.n_qubits = n_qubits;
        self.gates.clear();
        self
    }

    /// Appends every gate of `other` (registers must match in width).
    ///
    /// # Panics
    ///
    /// Panics if `other` is wider than `self`.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.n_qubits,
            other.n_qubits
        );
        self.gates.extend_from_slice(&other.gates);
        self
    }

    /// Number of two-qubit gates — the "2Q Gates" column of Table II.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit unitaries.
    pub fn single_qubit_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.is_single_qubit_unitary())
            .count()
    }

    /// True when every gate is in the trapped-ion native set.
    pub fn is_native(&self) -> bool {
        self.gates.iter().all(Gate::is_native)
    }

    /// True when every gate is Clifford (per [`Gate::is_clifford`],
    /// which admits measurement, reset, and barriers) — the condition
    /// under which the stabilizer tableau backend simulates the whole
    /// circuit exactly, and what the engine's `Auto` simulator
    /// selection tests.
    pub fn is_clifford(&self) -> bool {
        self.gates.iter().all(Gate::is_clifford)
    }

    /// Circuit depth: the length of the longest dependency chain.
    ///
    /// Computed with a linear scan tracking per-qubit completion levels;
    /// barriers synchronise all qubits.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut barrier_level = 0usize;
        for g in &self.gates {
            if matches!(g, Gate::Barrier) {
                barrier_level = level.iter().copied().max().unwrap_or(0).max(barrier_level);
                continue;
            }
            let qs = g.qubits();
            let start = qs
                .iter()
                .map(|q| level[q.index()])
                .max()
                .unwrap_or(0)
                .max(barrier_level);
            for q in qs {
                level[q.index()] = start + 1;
            }
        }
        level.into_iter().max().unwrap_or(0).max(barrier_level)
    }

    /// Gate, depth, and interaction statistics in one pass.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(self)
    }

    /// Returns a new circuit with every qubit operand rewritten through `f`.
    ///
    /// `new_width` is the register width of the result (a remapping may
    /// embed the circuit in a wider physical register).
    pub fn map_qubits(&self, new_width: usize, mut f: impl FnMut(Qubit) -> Qubit) -> Circuit {
        Circuit {
            n_qubits: new_width,
            gates: self.gates.iter().map(|g| g.map_qubits(&mut f)).collect(),
        }
    }

    /// The set of distinct two-qubit interaction pairs `(min, max)` with
    /// multiplicities, i.e. the weighted interaction graph used by the
    /// initial mapping heuristic.
    pub fn interaction_pairs(&self) -> std::collections::HashMap<(Qubit, Qubit), usize> {
        let mut pairs = std::collections::HashMap::new();
        for g in &self.gates {
            if g.is_two_qubit() {
                let qs = g.qubits();
                let key = (qs[0].min(qs[1]), qs[0].max(qs[1]));
                *pairs.entry(key).or_insert(0) += 1;
            }
        }
        pairs
    }

    // --- builder helpers ---------------------------------------------------

    /// Appends a Hadamard.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// Appends a Pauli-X.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// Appends an S gate.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::S(q))
    }
    /// Appends an S† gate.
    pub fn sdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Sdg(q))
    }
    /// Appends a T gate.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::T(q))
    }
    /// Appends a T† gate.
    pub fn tdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Tdg(q))
    }
    /// Appends an Rx rotation.
    pub fn rx(&mut self, q: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::Rx(q, angle))
    }
    /// Appends an Ry rotation.
    pub fn ry(&mut self, q: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::Ry(q, angle))
    }
    /// Appends an Rz rotation.
    pub fn rz(&mut self, q: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::Rz(q, angle))
    }
    /// Appends a CNOT.
    pub fn cnot(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.push(Gate::Cnot(control, target))
    }
    /// Appends a CZ.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }
    /// Appends a controlled phase rotation.
    pub fn cphase(&mut self, a: Qubit, b: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::Cphase(a, b, angle))
    }
    /// Appends a ZZ interaction.
    pub fn zz(&mut self, a: Qubit, b: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::Zz(a, b, angle))
    }
    /// Appends a Mølmer–Sørensen XX interaction.
    pub fn xx(&mut self, a: Qubit, b: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::Xx(a, b, angle))
    }
    /// Appends a SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }
    /// Appends a Toffoli.
    pub fn toffoli(&mut self, c0: Qubit, c1: Qubit, target: Qubit) -> &mut Self {
        self.push(Gate::Toffoli(c0, c1, target))
    }
    /// Appends a measurement.
    pub fn measure(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Measure(q))
    }
    /// Appends a qubit re-initialization (|0⟩ via optical pumping).
    /// Distinct from [`Circuit::reset`], which clears the *gate list*.
    pub fn reset_qubit(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Reset(q))
    }
    /// Appends a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Gate::Barrier)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.n_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        self.gates.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        for i in 1..n {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        c
    }

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(1)).measure(Qubit(1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn ghz_stats() {
        let c = ghz(5);
        assert_eq!(c.two_qubit_count(), 4);
        assert_eq!(c.single_qubit_count(), 1);
        assert_eq!(c.depth(), 5);
    }

    #[test]
    fn depth_of_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).h(Qubit(1)).h(Qubit(2)).h(Qubit(3));
        assert_eq!(c.depth(), 1);
        c.cnot(Qubit(0), Qubit(1)).cnot(Qubit(2), Qubit(3));
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn depth_of_empty_circuit_is_zero() {
        assert_eq!(Circuit::new(8).depth(), 0);
    }

    #[test]
    fn barrier_synchronises_depth() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.barrier();
        c.h(Qubit(1));
        // q1's H cannot start before the barrier completes level 1.
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn map_qubits_embeds_in_wider_register() {
        let c = ghz(3);
        let mapped = c.map_qubits(10, |q| Qubit(q.index() + 7));
        assert_eq!(mapped.n_qubits(), 10);
        assert_eq!(mapped.gates()[1].qubits(), vec![Qubit(7), Qubit(8)]);
    }

    #[test]
    fn interaction_pairs_are_canonical_and_weighted() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(2), Qubit(0));
        c.cnot(Qubit(0), Qubit(2));
        c.cz(Qubit(1), Qubit(2));
        let pairs = c.interaction_pairs();
        assert_eq!(pairs[&(Qubit(0), Qubit(2))], 2);
        assert_eq!(pairs[&(Qubit(1), Qubit(2))], 1);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = ghz(3);
        let b = ghz(3);
        let before = a.len();
        a.extend_from(&b);
        assert_eq!(a.len(), before + b.len());
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_from_wider_panics() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend_from(&b);
    }

    #[test]
    fn iterator_yields_program_order() {
        let c = ghz(3);
        let names: Vec<_> = c.iter().map(super::super::gate::Gate::name).collect();
        assert_eq!(names, vec!["h", "cx", "cx"]);
    }
}
