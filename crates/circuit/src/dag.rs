//! Gate dependency analysis.
//!
//! Both LinQ passes consume the circuit through its dependency structure:
//! swap insertion walks two-qubit gates in dependency order and scores
//! against the *remaining* gate set (Eq. 1), while the tape scheduler
//! repeatedly asks "which gates are executable right now at head position
//! `p`" (Algorithm 2). [`Dag`] gives the static structure; [`ReadyTracker`]
//! gives the mutable frontier.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Dependency DAG over gate indices of a [`Circuit`].
///
/// Gate `j` depends on gate `i` when they share a qubit and `i` precedes `j`
/// in program order (only the *nearest* predecessor per qubit is recorded —
/// transitive edges are implied). A [`Gate::Barrier`] depends on every gate
/// before it and precedes every gate after it.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Dag, Qubit};
///
/// let mut c = Circuit::new(3);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// c.h(Qubit(2));
/// let dag = Dag::new(&c);
/// assert_eq!(dag.preds(1), &[0]);   // CNOT waits on the H
/// assert_eq!(dag.front(), vec![0, 2]); // H(q0) and H(q2) are ready
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl Dag {
    /// Builds the dependency DAG of `circuit` in `O(gates)`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Last gate index touching each qubit.
        let mut last_on: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        // Gates since the previous barrier (a barrier depends on all of them).
        let mut since_barrier: Vec<usize> = Vec::new();
        let mut last_barrier: Option<usize> = None;

        for (i, gate) in circuit.iter().enumerate() {
            if matches!(gate, Gate::Barrier) {
                for &j in &since_barrier {
                    preds[i].push(j);
                    succs[j].push(i);
                }
                if let Some(b) = last_barrier {
                    if since_barrier.is_empty() {
                        preds[i].push(b);
                        succs[b].push(i);
                    }
                }
                since_barrier.clear();
                last_barrier = Some(i);
                for slot in last_on.iter_mut() {
                    *slot = None;
                }
                continue;
            }

            let mut ps: Vec<usize> = gate
                .qubits()
                .iter()
                .filter_map(|q| last_on[q.index()])
                .collect();
            ps.sort_unstable();
            ps.dedup();
            if ps.is_empty() {
                if let Some(b) = last_barrier {
                    ps.push(b);
                }
            }
            for &p in &ps {
                succs[p].push(i);
            }
            preds[i] = ps;
            for q in gate.qubits() {
                last_on[q.index()] = Some(i);
            }
            since_barrier.push(i);
        }

        Dag { preds, succs }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of gate `i` (sorted, deduplicated).
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of gate `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Gates with no predecessors — the initial front layer.
    pub fn front(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// In-degree of every node; the starting state for [`ReadyTracker`].
    pub fn indegrees(&self) -> Vec<usize> {
        self.preds.iter().map(Vec::len).collect()
    }
}

/// Mutable execution frontier over a [`Dag`].
///
/// Supports the scheduler loop: query [`ReadyTracker::ready`], mark gates
/// executed with [`ReadyTracker::complete`], repeat until
/// [`ReadyTracker::is_done`].
#[derive(Clone, Debug)]
pub struct ReadyTracker {
    indeg: Vec<usize>,
    ready: Vec<usize>,
    done: Vec<bool>,
    n_done: usize,
}

impl ReadyTracker {
    /// Starts a fresh traversal of `dag`.
    pub fn new(dag: &Dag) -> Self {
        let indeg = dag.indegrees();
        let ready = dag.front();
        ReadyTracker {
            indeg,
            done: vec![false; dag.len()],
            ready,
            n_done: 0,
        }
    }

    /// Gate indices whose dependencies are all satisfied, ascending.
    pub fn ready(&self) -> &[usize] {
        &self.ready
    }

    /// Marks gate `i` executed, unlocking its successors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not currently ready (dependency violation) or was
    /// already completed.
    pub fn complete(&mut self, dag: &Dag, i: usize) {
        assert!(!self.done[i], "gate {i} completed twice");
        assert_eq!(
            self.indeg[i], 0,
            "gate {i} completed before its dependencies"
        );
        let pos = self
            .ready
            .iter()
            .position(|&r| r == i)
            .expect("gate not in ready set");
        self.ready.swap_remove(pos);
        self.done[i] = true;
        self.n_done += 1;
        for &s in dag.succs(i) {
            self.indeg[s] -= 1;
            if self.indeg[s] == 0 {
                self.ready.push(s);
            }
        }
    }

    /// True when `i` has been completed.
    pub fn is_complete(&self, i: usize) -> bool {
        self.done[i]
    }

    /// Number of completed gates.
    pub fn completed(&self) -> usize {
        self.n_done
    }

    /// True when every gate has been completed.
    pub fn is_done(&self) -> bool {
        self.n_done == self.done.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    fn chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        c.h(Qubit(2));
        c
    }

    #[test]
    fn preds_follow_qubit_chains() {
        let dag = Dag::new(&chain());
        assert!(dag.preds(0).is_empty());
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.preds(3), &[2]);
    }

    #[test]
    fn front_is_gates_without_preds() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.h(Qubit(3));
        c.cnot(Qubit(0), Qubit(3));
        let dag = Dag::new(&c);
        assert_eq!(dag.front(), vec![0, 1]);
    }

    #[test]
    fn shared_pred_is_deduplicated() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        let dag = Dag::new(&c);
        assert_eq!(dag.preds(1), &[0]); // not [0, 0]
    }

    #[test]
    fn barrier_orders_everything() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)); // 0
        c.barrier(); // 1
        c.h(Qubit(1)); // 2
        let dag = Dag::new(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
    }

    #[test]
    fn consecutive_barriers_chain() {
        let mut c = Circuit::new(1);
        c.barrier();
        c.barrier();
        c.h(Qubit(0));
        let dag = Dag::new(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
    }

    #[test]
    fn ready_tracker_walks_whole_circuit() {
        let c = chain();
        let dag = Dag::new(&c);
        let mut t = ReadyTracker::new(&dag);
        let mut order = Vec::new();
        while !t.is_done() {
            let i = t.ready()[0];
            t.complete(&dag, i);
            order.push(i);
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(t.completed(), 4);
    }

    #[test]
    #[should_panic(expected = "completed before its dependencies")]
    fn ready_tracker_rejects_dependency_violation() {
        let c = chain();
        let dag = Dag::new(&c);
        let mut t = ReadyTracker::new(&dag);
        t.complete(&dag, 2);
    }

    #[test]
    fn ready_tracker_exposes_parallel_front() {
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        c.cnot(Qubit(1), Qubit(2));
        let dag = Dag::new(&c);
        let t = ReadyTracker::new(&dag);
        assert_eq!(t.ready(), &[0, 1]);
    }
}
