//! Gate dependency analysis.
//!
//! Both LinQ passes consume the circuit through its dependency structure:
//! swap insertion walks two-qubit gates in dependency order and scores
//! against the *remaining* gate set (Eq. 1), while the tape scheduler
//! repeatedly asks "which gates are executable right now at head position
//! `p`" (Algorithm 2). [`Dag`] gives the static structure; [`ReadyTracker`]
//! gives the mutable frontier.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Dependency DAG over gate indices of a [`Circuit`].
///
/// Gate `j` depends on gate `i` when they share a qubit and `i` precedes `j`
/// in program order (only the *nearest* predecessor per qubit is recorded —
/// transitive edges are implied). A [`Gate::Barrier`] depends on every gate
/// before it and precedes every gate after it.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Circuit, Dag, Qubit};
///
/// let mut c = Circuit::new(3);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// c.h(Qubit(2));
/// let dag = Dag::new(&c);
/// assert_eq!(dag.preds(1), &[0]);   // CNOT waits on the H
/// assert_eq!(dag.front(), vec![0, 2]); // H(q0) and H(q2) are ready
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    /// Flat CSR edge storage: gate `i`'s predecessors are
    /// `pred_edges[pred_offsets[i]..pred_offsets[i + 1]]`. Two flat
    /// arrays per direction instead of a `Vec` per gate keep DAG
    /// construction allocation-light — the tape scheduler builds one
    /// per `schedule` call.
    pred_edges: Vec<usize>,
    pred_offsets: Vec<usize>,
    succ_edges: Vec<usize>,
    succ_offsets: Vec<usize>,
}

impl Dag {
    /// Builds the dependency DAG of `circuit` in `O(gates)`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut pred_edges: Vec<usize> = Vec::with_capacity(2 * n);
        let mut pred_offsets: Vec<usize> = Vec::with_capacity(n + 1);
        pred_offsets.push(0);
        // Last gate index touching each qubit.
        let mut last_on: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        // Gates since the previous barrier (a barrier depends on all of them).
        let mut since_barrier: Vec<usize> = Vec::new();
        let mut last_barrier: Option<usize> = None;

        for (i, gate) in circuit.iter().enumerate() {
            if matches!(gate, Gate::Barrier) {
                pred_edges.extend_from_slice(&since_barrier);
                if let Some(b) = last_barrier {
                    if since_barrier.is_empty() {
                        pred_edges.push(b);
                    }
                }
                since_barrier.clear();
                last_barrier = Some(i);
                last_on.fill(None);
                pred_offsets.push(pred_edges.len());
                continue;
            }

            // Gate operands: at most three qubits — collect, sort,
            // dedup in place on the flat tail.
            let start = pred_edges.len();
            for q in gate.qubits() {
                if let Some(p) = last_on[q.index()] {
                    if !pred_edges[start..].contains(&p) {
                        pred_edges.push(p);
                    }
                }
            }
            pred_edges[start..].sort_unstable();
            if pred_edges.len() == start {
                if let Some(b) = last_barrier {
                    pred_edges.push(b);
                }
            }
            for q in gate.qubits() {
                last_on[q.index()] = Some(i);
            }
            since_barrier.push(i);
            pred_offsets.push(pred_edges.len());
        }

        // Invert into successor CSR: count out-degrees, prefix-sum,
        // fill in program order (successors therefore ascend, exactly
        // as the per-gate push order used to produce).
        let mut succ_offsets = vec![0usize; n + 1];
        for &p in &pred_edges {
            succ_offsets[p + 1] += 1;
        }
        for k in 1..=n {
            succ_offsets[k] += succ_offsets[k - 1];
        }
        let mut succ_edges = vec![0usize; pred_edges.len()];
        let mut cursor = succ_offsets.clone();
        for i in 0..n {
            for &p in &pred_edges[pred_offsets[i]..pred_offsets[i + 1]] {
                succ_edges[cursor[p]] = i;
                cursor[p] += 1;
            }
        }

        Dag {
            pred_edges,
            pred_offsets,
            succ_edges,
            succ_offsets,
        }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.pred_offsets.len() - 1
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct predecessors of gate `i` (sorted, deduplicated).
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.pred_edges[self.pred_offsets[i]..self.pred_offsets[i + 1]]
    }

    /// Direct successors of gate `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succ_edges[self.succ_offsets[i]..self.succ_offsets[i + 1]]
    }

    /// Gates with no predecessors — the initial front layer.
    pub fn front(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds(i).is_empty())
            .collect()
    }

    /// In-degree of every node; the starting state for [`ReadyTracker`].
    pub fn indegrees(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.preds(i).len()).collect()
    }
}

/// Mutable execution frontier over a [`Dag`].
///
/// Supports the scheduler loop: query [`ReadyTracker::ready`], mark gates
/// executed with [`ReadyTracker::complete`], repeat until
/// [`ReadyTracker::is_done`].
#[derive(Clone, Debug)]
pub struct ReadyTracker {
    indeg: Vec<usize>,
    ready: Vec<usize>,
    /// Index of each gate inside `ready` ([`NOT_READY`] otherwise) —
    /// makes [`ReadyTracker::complete`] O(successors) instead of a scan
    /// of the ready set per completion.
    ready_slot: Vec<usize>,
    done: Vec<bool>,
    n_done: usize,
}

/// Sentinel for gates not currently in the ready set.
const NOT_READY: usize = usize::MAX;

impl ReadyTracker {
    /// Starts a fresh traversal of `dag`.
    pub fn new(dag: &Dag) -> Self {
        let indeg = dag.indegrees();
        let ready = dag.front();
        let mut ready_slot = vec![NOT_READY; dag.len()];
        for (slot, &g) in ready.iter().enumerate() {
            ready_slot[g] = slot;
        }
        ReadyTracker {
            indeg,
            done: vec![false; dag.len()],
            ready,
            ready_slot,
            n_done: 0,
        }
    }

    /// Gate indices whose dependencies are all satisfied, ascending.
    pub fn ready(&self) -> &[usize] {
        &self.ready
    }

    /// Marks gate `i` executed, unlocking its successors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not currently ready (dependency violation) or was
    /// already completed.
    pub fn complete(&mut self, dag: &Dag, i: usize) {
        self.complete_notify(dag, i, |_| {});
    }

    /// [`ReadyTracker::complete`], invoking `on_ready` for every
    /// successor that became ready as a result. Incremental consumers
    /// (the tape scheduler's per-position indexes) use the callback to
    /// learn the newly-unlocked frontier without re-scanning
    /// [`ReadyTracker::ready`].
    ///
    /// # Panics
    ///
    /// As [`ReadyTracker::complete`].
    pub fn complete_notify(&mut self, dag: &Dag, i: usize, mut on_ready: impl FnMut(usize)) {
        assert!(!self.done[i], "gate {i} completed twice");
        assert_eq!(
            self.indeg[i], 0,
            "gate {i} completed before its dependencies"
        );
        let slot = self.ready_slot[i];
        assert_ne!(slot, NOT_READY, "gate not in ready set");
        self.ready.swap_remove(slot);
        self.ready_slot[i] = NOT_READY;
        if let Some(&moved) = self.ready.get(slot) {
            self.ready_slot[moved] = slot;
        }
        self.done[i] = true;
        self.n_done += 1;
        for &s in dag.succs(i) {
            self.indeg[s] -= 1;
            if self.indeg[s] == 0 {
                self.ready_slot[s] = self.ready.len();
                self.ready.push(s);
                on_ready(s);
            }
        }
    }

    /// True when `i` has been completed.
    pub fn is_complete(&self, i: usize) -> bool {
        self.done[i]
    }

    /// Number of direct predecessors of `i` not yet completed (0 for
    /// ready gates). O(1) — the tracker maintains the residual
    /// in-degrees anyway, so incremental consumers need not re-scan
    /// `dag.preds(i)`.
    pub fn pending_preds(&self, i: usize) -> usize {
        self.indeg[i]
    }

    /// Number of completed gates.
    pub fn completed(&self) -> usize {
        self.n_done
    }

    /// True when every gate has been completed.
    pub fn is_done(&self) -> bool {
        self.n_done == self.done.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    fn chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        c.h(Qubit(2));
        c
    }

    #[test]
    fn preds_follow_qubit_chains() {
        let dag = Dag::new(&chain());
        assert!(dag.preds(0).is_empty());
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.preds(3), &[2]);
    }

    #[test]
    fn front_is_gates_without_preds() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.h(Qubit(3));
        c.cnot(Qubit(0), Qubit(3));
        let dag = Dag::new(&c);
        assert_eq!(dag.front(), vec![0, 1]);
    }

    #[test]
    fn shared_pred_is_deduplicated() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        let dag = Dag::new(&c);
        assert_eq!(dag.preds(1), &[0]); // not [0, 0]
    }

    #[test]
    fn barrier_orders_everything() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)); // 0
        c.barrier(); // 1
        c.h(Qubit(1)); // 2
        let dag = Dag::new(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
    }

    #[test]
    fn consecutive_barriers_chain() {
        let mut c = Circuit::new(1);
        c.barrier();
        c.barrier();
        c.h(Qubit(0));
        let dag = Dag::new(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
    }

    #[test]
    fn ready_tracker_walks_whole_circuit() {
        let c = chain();
        let dag = Dag::new(&c);
        let mut t = ReadyTracker::new(&dag);
        let mut order = Vec::new();
        while !t.is_done() {
            let i = t.ready()[0];
            t.complete(&dag, i);
            order.push(i);
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(t.completed(), 4);
    }

    #[test]
    #[should_panic(expected = "completed before its dependencies")]
    fn ready_tracker_rejects_dependency_violation() {
        let c = chain();
        let dag = Dag::new(&c);
        let mut t = ReadyTracker::new(&dag);
        t.complete(&dag, 2);
    }

    #[test]
    fn ready_tracker_exposes_parallel_front() {
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        c.cnot(Qubit(1), Qubit(2));
        let dag = Dag::new(&c);
        let t = ReadyTracker::new(&dag);
        assert_eq!(t.ready(), &[0, 1]);
    }
}
