//! Typed qubit indices.

use std::fmt;

/// A logical or physical qubit, identified by its index in a register.
///
/// `Qubit` is a transparent newtype over `usize` so that qubit arguments are
/// not confused with gate counts, positions, or other integers
/// (guideline C-NEWTYPE). Whether a `Qubit` denotes a *logical* program qubit
/// or a *physical* tape position depends on context: circuits emitted by the
/// benchmark generators are logical, circuits produced by the LinQ mapping
/// pass are physical.
///
/// # Example
///
/// ```
/// use tilt_circuit::Qubit;
///
/// let q = Qubit(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(pub usize);

impl Qubit {
    /// Returns the raw register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Absolute distance between two qubits on a linear register, in units
    /// of ion spacings.
    ///
    /// This is the `d_g` of the paper (Table I) when both qubits are
    /// physical tape positions.
    ///
    /// # Example
    ///
    /// ```
    /// use tilt_circuit::Qubit;
    /// assert_eq!(Qubit(2).distance(Qubit(7)), 5);
    /// assert_eq!(Qubit(7).distance(Qubit(2)), 5);
    /// ```
    #[inline]
    pub fn distance(self, other: Qubit) -> usize {
        self.0.abs_diff(other.0)
    }
}

impl From<usize> for Qubit {
    fn from(index: usize) -> Self {
        Qubit(index)
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> Self {
        q.0
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(Qubit(3).distance(Qubit(10)), 7);
        assert_eq!(Qubit(10).distance(Qubit(3)), 7);
    }

    #[test]
    fn distance_to_self_is_zero() {
        assert_eq!(Qubit(5).distance(Qubit(5)), 0);
    }

    #[test]
    fn conversions_round_trip() {
        let q: Qubit = 42usize.into();
        let i: usize = q.into();
        assert_eq!(i, 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(Qubit(0).to_string(), "q0");
        assert_eq!(format!("{:?}", Qubit(1)), "Qubit(1)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit(1) < Qubit(2));
    }
}
