//! Clifford-angle arithmetic: canonical normalization and grid tests.
//!
//! Two consumers share this module:
//!
//! * the QASM parser canonicalizes every gate angle through
//!   [`normalize_angle`] so equivalent programs (`rz(-3*pi/2)` vs
//!   `rz(pi/2)`) produce bit-identical circuits — and therefore the
//!   same [`Circuit::digest`](crate::Circuit::digest) and the same
//!   simulator selection;
//! * [`Gate::is_clifford`](crate::Gate::is_clifford) and the stabilizer
//!   backend classify rotation angles against the Clifford grid
//!   (multiples of π/2, or π for a controlled phase) with the same
//!   tolerance, so "Auto picked the stabilizer backend" and "the
//!   stabilizer backend accepts the circuit" can never disagree.
//!
//! Angles within [`ANGLE_TOL`] of a grid point count as on-grid: QASM
//! sources write `pi/2` through finite-precision expression evaluation,
//! and toolchains emit decimal approximations like `1.5707963267948966`.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Absolute tolerance for angle classification and snapping.
///
/// Wide enough to absorb decimal-literal rounding of π multiples (a few
/// ulps, ~1e-16) with huge margin; narrow enough that no deliberately
/// non-Clifford angle (the closest in practice is T's π/4 offset,
/// ~0.785 away from the π/2 grid) is misclassified.
pub const ANGLE_TOL: f64 = 1e-9;

const TAU: f64 = 2.0 * PI;

/// Canonicalizes a gate angle: wraps into `(-π, π]`, then snaps values
/// within [`ANGLE_TOL`] of a multiple of π/4 to the exact grid point
/// (`k * FRAC_PI_4`, the same bits for every equivalent spelling).
///
/// The function is the identity on angles already in `(-π, π]` and away
/// from the π/4 grid, and idempotent everywhere. Non-finite input is
/// returned unchanged (the parser rejects it separately).
///
/// Note that wrapping by 2π changes `Rx/Ry/Rz/Zz/Xx` by a global phase
/// of −1 (they are 4π-periodic as matrices); that phase is unobservable,
/// which is exactly why the canonical form is safe to substitute.
///
/// # Example
///
/// ```
/// use std::f64::consts::{FRAC_PI_2, PI};
/// use tilt_circuit::clifford::normalize_angle;
///
/// assert_eq!(normalize_angle(-3.0 * PI / 2.0), FRAC_PI_2);
/// assert_eq!(normalize_angle(0.3), 0.3); // in range, off grid: untouched
/// ```
pub fn normalize_angle(theta: f64) -> f64 {
    if !theta.is_finite() {
        return theta;
    }
    let mut t = theta;
    if !(-PI < t && t <= PI) {
        t = t.rem_euclid(TAU); // [0, 2π)
        if t > PI {
            t -= TAU;
        }
    }
    let k = (t / FRAC_PI_4).round();
    let snapped = k * FRAC_PI_4;
    if (t - snapped).abs() <= ANGLE_TOL {
        // −π and π are the same point; π is the canonical spelling.
        if snapped <= -PI {
            return PI;
        }
        return snapped;
    }
    t
}

/// `Some(k)` with `theta ≡ k·π/2 (mod 2π)`, `k ∈ {0, 1, 2, 3}`, when
/// `theta` lies within [`ANGLE_TOL`] of the π/2 grid; `None` otherwise.
///
/// This is the acceptance test for `Rx`/`Ry`/`Rz`/`Zz`/`Xx` on the
/// stabilizer backend, and the quarter-turn count its lowering uses.
pub fn half_pi_steps(theta: f64) -> Option<u8> {
    if !theta.is_finite() {
        return None;
    }
    let t = theta.rem_euclid(TAU);
    let k = (t / FRAC_PI_2).round();
    if (t - k * FRAC_PI_2).abs() <= ANGLE_TOL {
        Some((k as u8) % 4)
    } else {
        None
    }
}

/// `Some(k)` with `theta ≡ k·π (mod 2π)`, `k ∈ {0, 1}`, when `theta`
/// lies within [`ANGLE_TOL`] of the π grid; `None` otherwise.
///
/// The Clifford test for `Cphase`: `diag(1,1,1,e^{iλ})` is Clifford
/// only at λ ≡ 0 (identity) or λ ≡ π (CZ). λ = π/2 is the CS gate —
/// *not* Clifford, despite being a "multiple of π/2".
pub fn pi_steps(theta: f64) -> Option<u8> {
    if !theta.is_finite() {
        return None;
    }
    let t = theta.rem_euclid(TAU);
    let k = (t / PI).round();
    if (t - k * PI).abs() <= ANGLE_TOL {
        Some((k as u8) % 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::approx_constant)] // decimal π/2 spellings are the point
    fn normalize_wraps_and_snaps() {
        // The satellite's motivating case: rz(-3*pi/2) ≡ rz(pi/2).
        assert_eq!(normalize_angle(-3.0 * PI / 2.0), FRAC_PI_2);
        assert_eq!(normalize_angle(7.0 * FRAC_PI_4), -FRAC_PI_4);
        assert_eq!(normalize_angle(TAU), 0.0);
        assert_eq!(normalize_angle(-PI), PI);
        assert_eq!(normalize_angle(3.0 * PI), PI);
        // Near-grid decimals snap to the exact grid point.
        assert_eq!(normalize_angle(1.5707963267948966), FRAC_PI_2);
        assert_eq!(normalize_angle(FRAC_PI_2 + 5e-10), FRAC_PI_2);
    }

    #[test]
    fn normalize_is_identity_off_grid_in_range() {
        for t in [0.3, -0.7, 1.0, 2.5, -3.0, FRAC_PI_2 + 0.1] {
            assert_eq!(normalize_angle(t), t);
        }
    }

    #[test]
    fn normalize_is_idempotent() {
        for raw in [
            -3.0 * PI / 2.0,
            7.0 * FRAC_PI_4,
            5.9,
            -9.99,
            0.3,
            PI,
            -PI,
            0.0,
        ] {
            let once = normalize_angle(raw);
            assert_eq!(normalize_angle(once), once, "raw {raw}");
        }
    }

    #[test]
    fn normalize_passes_non_finite_through() {
        assert!(normalize_angle(f64::NAN).is_nan());
        assert_eq!(normalize_angle(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    #[allow(clippy::approx_constant)] // decimal π/2 spellings are the point
    fn half_pi_grid() {
        assert_eq!(half_pi_steps(0.0), Some(0));
        assert_eq!(half_pi_steps(FRAC_PI_2), Some(1));
        assert_eq!(half_pi_steps(PI), Some(2));
        assert_eq!(half_pi_steps(-FRAC_PI_2), Some(3));
        assert_eq!(half_pi_steps(-3.0 * PI / 2.0), Some(1));
        assert_eq!(half_pi_steps(TAU), Some(0));
        assert_eq!(half_pi_steps(1.5707963267948966), Some(1));
        assert_eq!(half_pi_steps(FRAC_PI_4), None);
        assert_eq!(half_pi_steps(0.3), None);
        assert_eq!(half_pi_steps(f64::NAN), None);
    }

    #[test]
    fn pi_grid_rejects_cs() {
        assert_eq!(pi_steps(0.0), Some(0));
        assert_eq!(pi_steps(PI), Some(1));
        assert_eq!(pi_steps(-PI), Some(1));
        assert_eq!(pi_steps(TAU), Some(0));
        // CS = Cphase(π/2) is not Clifford.
        assert_eq!(pi_steps(FRAC_PI_2), None);
    }
}
