//! Incremental vs reference LinQ scoring (the acceptance yardstick:
//! ≥2× routing the 16-qubit RCS benchmark).
//!
//! Run with: `cargo bench -p tilt-bench --bench router`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilt_benchmarks::qft::qft64;
use tilt_benchmarks::rcs::random_circuit_sampling;
use tilt_circuit::Circuit;
use tilt_compiler::decompose::decompose;
use tilt_compiler::mapping::InitialMapping;
use tilt_compiler::route::LinqConfig;
use tilt_compiler::{DeviceSpec, RouterKind};

fn bench_workload(c: &mut Criterion, name: &str, circuit: &Circuit, head: usize) {
    let native = decompose(circuit);
    let spec = DeviceSpec::new(native.n_qubits(), head).unwrap();
    let initial = InitialMapping::Identity.build(&native, spec.n_ions());
    let mut group = c.benchmark_group(format!("router_{name}"));
    group.sample_size(10);
    for (id, cfg) in [
        ("incremental", LinqConfig::default()),
        (
            "reference",
            LinqConfig {
                incremental: false,
                ..LinqConfig::default()
            },
        ),
    ] {
        let kind = RouterKind::Linq(cfg);
        group.bench_function(id, |b| {
            b.iter(|| {
                kind.route(black_box(&native), spec, &initial)
                    .expect("benchmark workloads route")
            });
        });
    }
    group.finish();
}

fn bench_rcs16(c: &mut Criterion) {
    bench_workload(c, "rcs16_head4", &random_circuit_sampling(4, 4, 16, 7), 4);
}

fn bench_qft64(c: &mut Criterion) {
    bench_workload(c, "qft64_head16", &qft64(), 16);
}

criterion_group!(benches, bench_rcs16, bench_qft64);
criterion_main!(benches);
