//! Criterion timing of the three LinQ passes (the `t_swap`/`t_move`
//! columns of Table III, measured robustly).
//!
//! Run with: `cargo bench -p bench --bench compiler_passes`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilt_benchmarks::{bv::bv64, qft::qft64, sqrt::sqrt78};
use tilt_compiler::decompose::decompose;
use tilt_compiler::mapping::InitialMapping;
use tilt_compiler::schedule::{schedule, SchedulerKind};
use tilt_compiler::{DeviceSpec, RouterKind};

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for (name, circuit) in [("bv64", bv64()), ("qft64", qft64())] {
        group.bench_function(name, |b| b.iter(|| decompose(black_box(&circuit))));
    }
    group.finish();
}

fn bench_swap_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_insertion_head16");
    group.sample_size(10);
    let workloads = [("bv64", bv64()), ("qft64", qft64()), ("sqrt78", sqrt78())];
    for (name, circuit) in &workloads {
        let native = decompose(circuit);
        let spec = DeviceSpec::new(native.n_qubits(), 16).unwrap();
        let initial = InitialMapping::Identity.build(&native, spec.n_ions());
        group.bench_function(format!("linq/{name}"), |b| {
            b.iter(|| {
                RouterKind::default()
                    .route(black_box(&native), spec, &initial)
                    .unwrap()
            });
        });
        group.bench_function(format!("baseline/{name}"), |b| {
            b.iter(|| {
                RouterKind::Stochastic(Default::default())
                    .route(black_box(&native), spec, &initial)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_tape_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tape_scheduling_head16");
    group.sample_size(10);
    for (name, circuit) in [("bv64", bv64()), ("qft64", qft64())] {
        let native = decompose(&circuit);
        let spec = DeviceSpec::new(native.n_qubits(), 16).unwrap();
        let initial = InitialMapping::Identity.build(&native, spec.n_ions());
        let routed = RouterKind::default()
            .route(&native, spec, &initial)
            .unwrap();
        let lowered = decompose(&routed.circuit);
        group.bench_function(name, |b| {
            b.iter(|| {
                schedule(
                    black_box(&lowered),
                    spec,
                    SchedulerKind::GreedyMaxExecutable,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decompose,
    bench_swap_insertion,
    bench_tape_scheduling
);
criterion_main!(benches);
