//! Incremental vs rescan Algorithm-2 scheduling (the acceptance
//! yardstick: ≥3× moves/sec on the 16-qubit RCS benchmark; QFT-32
//! covers the many-position regime).
//!
//! Run with: `cargo bench -p tilt-bench --bench scheduler`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilt_benchmarks::qft::qft;
use tilt_benchmarks::rcs::random_circuit_sampling;
use tilt_circuit::Circuit;
use tilt_compiler::decompose::decompose;
use tilt_compiler::mapping::InitialMapping;
use tilt_compiler::schedule::{schedule_with, ScheduleConfig, SchedulerKind};
use tilt_compiler::{DeviceSpec, RouterKind};

fn bench_workload(c: &mut Criterion, name: &str, circuit: &Circuit, head: usize) {
    let spec = DeviceSpec::new(circuit.n_qubits(), head).unwrap();
    let native = decompose(circuit);
    let initial = InitialMapping::Identity.build(&native, spec.n_ions());
    let routed = RouterKind::default()
        .route(&native, spec, &initial)
        .expect("bench workloads route");
    let lowered = decompose(&routed.circuit);
    let mut group = c.benchmark_group(format!("scheduler_{name}"));
    group.sample_size(10);
    for (id, config) in [
        (
            "incremental",
            ScheduleConfig::new(SchedulerKind::GreedyMaxExecutable),
        ),
        (
            "rescan",
            ScheduleConfig::rescan(SchedulerKind::GreedyMaxExecutable),
        ),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| schedule_with(black_box(&lowered), spec, config));
        });
    }
    group.finish();
}

fn bench_rcs16(c: &mut Criterion) {
    bench_workload(c, "rcs16_head4", &random_circuit_sampling(4, 4, 16, 7), 4);
}

fn bench_qft32(c: &mut Criterion) {
    bench_workload(c, "qft32_head8", &qft(32), 8);
}

criterion_group!(benches, bench_rcs16, bench_qft32);
criterion_main!(benches);
