//! Optimized vs naive state-vector execution (the acceptance yardstick:
//! ≥5× on the 20-qubit QFT).
//!
//! Run with: `cargo bench -p tilt-bench --bench statevec_kernels`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilt_benchmarks::qft::qft;
use tilt_statevec::{RunOptions, State};

fn bench_qft20(c: &mut Criterion) {
    let circuit = qft(20);
    let probe = State::random(20, 1);
    let mut group = c.benchmark_group("statevec_qft20");
    group.sample_size(5);
    group.bench_function("optimized", |b| {
        b.iter(|| black_box(probe.clone()).run(black_box(&circuit)));
    });
    group.bench_function("unfused", |b| {
        b.iter(|| {
            black_box(probe.clone()).run_with(black_box(&circuit), RunOptions::serial_unfused())
        });
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(probe.clone()).run_naive(black_box(&circuit)));
    });
    group.finish();
}

fn bench_qft16(c: &mut Criterion) {
    let circuit = qft(16);
    let probe = State::random(16, 1);
    let mut group = c.benchmark_group("statevec_qft16");
    group.sample_size(10);
    group.bench_function("optimized", |b| {
        b.iter(|| black_box(probe.clone()).run(black_box(&circuit)));
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(probe.clone()).run_naive(black_box(&circuit)));
    });
    group.finish();
}

criterion_group!(benches, bench_qft20, bench_qft16);
criterion_main!(benches);
