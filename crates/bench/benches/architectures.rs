//! Criterion timing of full end-to-end evaluations: the TILT pipeline
//! plus simulation vs the QCCD router plus simulation, per benchmark —
//! the compile-and-estimate loop a design-space exploration would run.
//!
//! Run with: `cargo bench -p bench --bench architectures`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilt_benchmarks::{adder::adder64, qaoa::qaoa64};
use tilt_compiler::decompose::decompose;
use tilt_compiler::{Compiler, DeviceSpec};
use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
use tilt_sim::{estimate_success, GateTimeModel, NoiseModel};

fn bench_tilt_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("tilt_end_to_end_head16");
    group.sample_size(10);
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    for (name, circuit) in [("adder64", adder64()), ("qaoa64", qaoa64())] {
        let spec = DeviceSpec::new(circuit.n_qubits(), 16).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Compiler::new(spec).compile(black_box(&circuit)).unwrap();
                estimate_success(&out.program, &noise, &times)
            });
        });
    }
    group.finish();
}

fn bench_qccd_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("qccd_end_to_end_17ions");
    group.sample_size(10);
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let params = QccdParams::default();
    for (name, circuit) in [("adder64", adder64()), ("qaoa64", qaoa64())] {
        let native = decompose(&circuit);
        let spec = QccdSpec::for_qubits(64, 17).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let program = compile_qccd(black_box(&native), &spec).unwrap();
                estimate_qccd_success(&program, &noise, &times, &params)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tilt_end_to_end, bench_qccd_end_to_end);
criterion_main!(benches);
